//! No-op `Serialize`/`Deserialize` derives for the offline `serde`
//! stand-in: the workspace derives the traits for forward compatibility
//! but never serializes through them, so the derives expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; the blanket impl in the `serde` shim covers every
/// type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the blanket impl in the `serde` shim covers every
/// type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
