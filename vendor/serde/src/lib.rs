//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types for
//! forward compatibility but contains no serialization call sites, and
//! the build environment cannot reach crates.io. This shim keeps the
//! derive syntax compiling: the traits are markers with blanket impls and
//! the derives (re-exported from the sibling `serde_derive` shim) expand
//! to nothing. Swapping in the real serde is a manifest-only change.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
