//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides exactly the (deterministic) subset of the `rand 0.8`
//! API the workspace uses: `Rng::gen_range` over integer ranges,
//! `SeedableRng::seed_from_u64`, `rngs::SmallRng` (xoshiro256**),
//! `rngs::mock::StepRng`, and `seq::SliceRandom::shuffle`.
//!
//! Everything is reproducible: the same seed yields the same stream on
//! every platform, which is all the experiment harness relies on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (either `a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from a closed interval.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform sample from `[low, high]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample from an empty range");
                let span = (high as u128) - (low as u128);
                if span == u128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                // Modulo reduction: a negligible bias is irrelevant for
                // the deterministic test workloads this shim serves.
                let r = u128::from(rng.next_u64()) % (span + 1);
                low.wrapping_add(r as $t)
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample from an empty range");
                let span = (high as i128 - low as i128) as u128;
                let r = u128::from(rng.next_u64()) % (span + 1);
                (low as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + Dec> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_inclusive(rng, self.start, self.end.dec())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Integer decrement, used to turn an exclusive bound inclusive.
pub trait Dec {
    /// `self - 1`.
    fn dec(self) -> Self;
}

macro_rules! impl_dec {
    ($($t:ty),*) => {$(
        impl Dec for $t {
            fn dec(self) -> Self { self - 1 }
        }
    )*};
}

impl_dec!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (via splitmix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256**),
    /// seeded through splitmix64 like `rand`'s `SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state would trap xoshiro in the zero cycle.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Deterministic mock generators.
    pub mod mock {
        use super::super::RngCore;

        /// Yields `start`, `start + step`, `start + 2·step`, … (wrapping).
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            current: u64,
            step: u64,
        }

        impl StepRng {
            /// A generator counting from `start` in increments of `step`.
            pub fn new(start: u64, step: u64) -> Self {
                StepRng {
                    current: start,
                    step,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.current;
                self.current = self.current.wrapping_add(self.step);
                out
            }
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random slice operations.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// An in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..=1000), b.gen_range(0usize..=1000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1u32..=100);
            assert!((1..=100).contains(&w));
        }
    }

    #[test]
    fn step_rng_counts() {
        let mut rng = StepRng::new(7, 13);
        use super::RngCore;
        assert_eq!(rng.next_u64(), 7);
        assert_eq!(rng.next_u64(), 20);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle is a fixed point with negligible probability"
        );
    }
}
