//! Offline stand-in for `crossbeam`.
//!
//! Provides the one facility the threaded runtime uses: an unbounded
//! MPMC channel whose `Sender` *and* `Receiver` are clonable, with
//! non-blocking `try_iter` draining. Backed by a `Mutex<VecDeque>`; the
//! runtime's barrier discipline means the lock is never contended on a
//! hot path.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
    }

    /// The sending half; clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clonable (crossbeam channels are MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// The message could not be sent (all receivers dropped); carries the
    /// message back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`; an unbounded channel never blocks.
        ///
        /// # Errors
        ///
        /// Never fails in this shim (queue storage is shared with the
        /// receivers, so it outlives both halves); the `Result` mirrors
        /// crossbeam's signature.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.shared
                .queue
                .lock()
                .expect("channel lock poisoned")
                .push_back(msg);
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// A non-blocking iterator over the messages currently queued.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    /// Iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> fmt::Debug for TryIter<'_, T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("TryIter { .. }")
        }
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver
                .shared
                .queue
                .lock()
                .expect("channel lock poisoned")
                .pop_front()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn send_and_drain() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(rx.try_iter().count(), 0);
    }

    #[test]
    fn clones_share_the_queue() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx2.send(7).unwrap();
        assert_eq!(rx2.try_iter().next(), Some(7));
        assert_eq!(rx.try_iter().next(), None);
    }

    #[test]
    fn crosses_threads() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || tx.send(99).unwrap());
        handle.join().unwrap();
        assert_eq!(rx.try_iter().next(), Some(99));
    }
}
