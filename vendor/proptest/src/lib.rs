//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this shim implements
//! the subset of the proptest API the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`/`prop_filter`,
//! integer-range and tuple strategies, [`Just`], [`any`],
//! `collection::vec`/`collection::btree_set`, `option::of`, the
//! [`proptest!`] macro with `ProptestConfig::with_cases`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` assertion macros.
//!
//! Unlike the real proptest there is **no shrinking** and no persisted
//! regression corpus: cases are generated from a deterministic per-test
//! seed, so every failure replays identically on the next run. For this
//! repository's purposes — seeded randomized sweeps over scenario space —
//! that is the contract the tests rely on.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How many times a filter/assume may reject before the test aborts.
const MAX_REJECTS: u32 = 65_536;

/// Test-case verdicts carried out of a property body.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case does not apply (`prop_assume!` failed); try another.
    Reject(String),
    /// The property is violated.
    Fail(String),
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A deterministic RNG for one property test, seeded from the test name.
pub fn rng_for(test_name: &str) -> SmallRng {
    let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    for b in test_name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(seed)
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Retains only values satisfying `pred` (regenerating on rejection).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut SmallRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut SmallRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let candidate = self.inner.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter rejected {MAX_REJECTS} candidates: {}",
            self.whence
        );
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($( self.$idx.generate(rng), )+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The full-range strategy of an [`Arbitrary`] type, like `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range integer strategy backing [`any`].
#[derive(Debug, Clone)]
pub struct FullRange<T>(PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> Self::Strategy {
                FullRange(PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut SmallRng) -> bool {
        rng.gen_range(0u8..=1) == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;

    fn arbitrary() -> Self::Strategy {
        FullRange(PhantomData)
    }
}

/// An inclusive size band for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, SmallRng, Strategy};
    use rand::Rng;
    use std::collections::BTreeSet;

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` of values from `element` whose size lands in `size`
    /// (best effort: duplicates shrink small universes below `min`).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        fn generate(&self, rng: &mut SmallRng) -> BTreeSet<S::Value> {
            let target = rng.gen_range(self.size.min..=self.size.max);
            let mut out = BTreeSet::new();
            // Bounded attempts: tiny value universes may not hold `target`
            // distinct elements.
            for _ in 0..(target.max(1) * 64) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }

        type Value = BTreeSet<S::Value>;
    }
}

/// `Option` strategies.
pub mod option {
    use super::{SmallRng, Strategy};
    use rand::Rng;

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Option<S::Value> {
            if rng.gen_range(0u8..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Everything a property-test file usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fails the current case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u32..10, ys in proptest::collection::vec(0u32..5, 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strategy = ($($strategy,)+);
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                let ($($arg,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    { $body }
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(why)) => {
                        rejected += 1;
                        assert!(
                            rejected < 65_536,
                            "{}: prop_assume rejected too many cases ({why})",
                            stringify!($name),
                        );
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                        panic!(
                            "property {} falsified after {} passing case(s): {message}",
                            stringify!($name),
                            passed,
                        );
                    }
                }
            }
        }
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::Strategy;

    #[test]
    fn ranges_tuples_and_combinators_generate() {
        let mut rng = super::rng_for("smoke");
        let strat = (0u32..10, Just(7usize), 1usize..=3)
            .prop_map(|(a, b, c)| (a as usize) + b + c)
            .prop_filter("bounded", |&v| v >= 8);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((8..=19).contains(&v));
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = super::rng_for("collections");
        for _ in 0..100 {
            let v = super::collection::vec(0u32..5, 2..=4).generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
            let s = super::collection::btree_set(0u32..100, 3).generate(&mut rng);
            assert!(s.len() <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_and_asserts(x in 0u32..50, ys in super::collection::vec(0u32..5, 3)) {
            prop_assume!(x != 13);
            prop_assert!(x < 50);
            prop_assert_eq!(ys.len(), 3);
            prop_assert_ne!(x, 13);
        }

        #[test]
        fn flat_map_dependencies_hold(pair in (2usize..6).prop_flat_map(|n| (Just(n), 0usize..n))) {
            let (n, i) = pair;
            prop_assert!(i < n);
        }
    }
}
