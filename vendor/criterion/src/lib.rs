//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion 0.5 API the workspace's
//! benches use — `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `black_box` — over
//! a plain wall-clock measurement loop. No statistics, no plots: each
//! benchmark is warmed up briefly, then timed and reported as ns/iter.
//!
//! Under `--test` (what `cargo test --benches` passes) every benchmark
//! body runs exactly once, so benches double as smoke tests.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export site for `std::hint::black_box`, like criterion's.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            measure: Duration::from_millis(120),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            measure: self.measure,
            report: None,
        };
        f(&mut bencher);
        report(&id.0, bencher.report);
        self
    }

    /// Prints the closing line `criterion_main!` expects to emit.
    pub fn final_summary(&mut self) {
        eprintln!(
            "benchmarks complete{}",
            if self.test_mode { " (test mode)" } else { "" }
        );
    }
}

fn report(name: &str, measurement: Option<(u64, Duration)>) {
    match measurement {
        Some((iters, total)) if iters > 0 => {
            let ns = total.as_nanos() as f64 / iters as f64;
            eprintln!("  {name:<40} {ns:>14.1} ns/iter  ({iters} iters)");
        }
        _ => eprintln!("  {name:<40} ran"),
    }
}

/// A named collection of benchmarks sharing a prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark identified by `id` within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            measure: self.criterion.measure,
            report: None,
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id.0), bencher.report);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            measure: self.criterion.measure,
            report: None,
        };
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.0), bencher.report);
        self
    }

    /// Ends the group (reporting already happened per-benchmark).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the body.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    measure: Duration,
    report: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `routine`, storing (iterations, total time) for the report.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.report = Some((1, Duration::ZERO));
            return;
        }
        // Warm-up and calibration: run until ~10% of the budget is spent.
        let warmup = self.measure / 10;
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warmup || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = start.elapsed() / warm_iters.max(1) as u32;
        let target =
            ((self.measure.as_nanos() / per_iter.as_nanos().max(1)) as u64).clamp(10, 1_000_000);
        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.report = Some((target, start.elapsed()));
    }
}

/// Bundles benchmark functions into a group runner, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion {
            test_mode: true,
            measure: Duration::from_millis(1),
        };
        let mut ran = 0u32;
        c.bench_function("probe", |b| b.iter(|| ran += 1));
        assert!(ran >= 1);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).0, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}
