//! The fault-injection battery pinning the deterministic omission
//! layer's contract (the robustness tentpole):
//!
//! * **benign identity** — `FaultPlan::none()` under `Adversary::Omission`
//!   is trace-identical to the plain crash-only path on every executor
//!   that runs omission adversaries (simulator and networked loopback);
//! * **cross-executor byte-identity** — for *any* seeded plan (drops,
//!   delays, duplicates, reorders, partitions) and any crash pattern,
//!   simulator-under-omission and loopback-under-`FaultyTransport`
//!   produce the identical `Trace` — same outcomes, rounds and delivery
//!   count — even though the loopback tier applies the plan at the
//!   frame boundary of real node tasks;
//! * **principled outcomes** — faulty runs never hang and never panic:
//!   every run either returns an honest `Report` whose decided values
//!   are genuine proposals, or fails loudly with `RoundLimitExceeded`,
//!   and both executors agree on which;
//! * **partition-then-heal** — a system cut in two for a window that
//!   closes before the round bound still decides.

use proptest::prelude::*;

use setagree::conditions::MaxCondition;
use setagree::core::{
    Adversary, ConditionBasedConfig, Executor, ExperimentError, FaultPlan, Partition, ProtocolSpec,
    Report, Scenario, TransportKind, RATE_SCALE,
};
use setagree::sync::{CrashSpec, FailurePattern};
use setagree::types::{InputVector, ProcessId, ProcessSet};

const LOOPBACK: Executor = Executor::Networked {
    transport: TransportKind::Loopback,
};

const N: usize = 8;
const T: usize = 4;

fn pattern_strategy() -> impl Strategy<Value = FailurePattern> {
    proptest::collection::vec((0usize..N, 1usize..=4, 0usize..=N), 0..=T).prop_map(|crashes| {
        let mut pattern = FailurePattern::none(N);
        let mut victims = std::collections::BTreeSet::new();
        for (idx, round, prefix) in crashes {
            if victims.len() >= T || !victims.insert(idx) {
                continue;
            }
            pattern
                .crash(ProcessId::new(idx), CrashSpec::new(round, prefix))
                .expect("valid");
        }
        pattern
    })
}

/// Any seeded plan: independent drop/delay/duplicate/reorder rates up to
/// half of `RATE_SCALE` each, plus up to two partition windows.
fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    let rate = 0u32..=RATE_SCALE / 2;
    (
        any::<u64>(),
        rate.clone(),
        rate.clone(),
        1usize..=2,
        rate.clone(),
        rate,
        proptest::collection::vec(
            (
                proptest::collection::vec(any::<bool>(), N),
                1usize..=3,
                0usize..=2,
            ),
            0..=2,
        ),
    )
        .prop_map(|(seed, drop, delay, max_delay, dup, reorder, partitions)| {
            let mut plan = FaultPlan::new(N, seed)
                .drop_rate(drop)
                .delay_rate(delay, max_delay)
                .duplicate_rate(dup)
                .reorder_rate(reorder);
            for (side, from_round, span) in partitions {
                let mut members = ProcessSet::empty(N);
                for (i, &m) in side.iter().enumerate() {
                    if m {
                        members.insert(ProcessId::new(i));
                    }
                }
                plan = plan.partition(Partition::new(members, from_round, from_round + span));
            }
            plan
        })
}

/// One scenario per protocol spec, over the same (n, t, k, d, ℓ) =
/// (8, 4, 2, 2, 2) system, input and adversary.
fn scenarios(entries: Vec<u32>, adversary: &Adversary) -> Vec<Scenario<u32, MaxCondition>> {
    let config = ConditionBasedConfig::builder(N, T, 2)
        .condition_degree(2)
        .ell(2)
        .build()
        .expect("valid");
    let oracle = MaxCondition::new(config.legality());
    let input = InputVector::new(entries);
    [
        ProtocolSpec::condition_based(config, oracle),
        ProtocolSpec::early_condition_based(config, oracle),
        ProtocolSpec::early_deciding(N, T, 2),
        ProtocolSpec::flood_set(N, T, 2),
    ]
    .into_iter()
    .map(|spec| {
        Scenario::new(spec)
            .input(input.clone())
            .pattern(adversary.clone())
    })
    .collect()
}

/// A principled result: an honest report, or a loud round-limit failure.
/// Anything else (a hang would trip proptest's own timeout; a panic
/// fails the test) violates the robustness contract.
fn check_principled(
    result: &Result<Report<u32>, ExperimentError>,
    entries: &[u32],
) -> Result<(), TestCaseError> {
    match result {
        Ok(report) => {
            // Validity is fault-proof: drops only shrink what a process
            // sees, so every decided value is still a genuine proposal.
            prop_assert!(report.satisfies_validity());
            for value in report.decided_values() {
                prop_assert!(entries.contains(&value));
            }
        }
        Err(ExperimentError::RoundLimitExceeded { .. }) => {}
        Err(other) => prop_assert!(false, "unprincipled failure: {other}"),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `FaultPlan::none()` is invisible: the omission adversary with a
    /// benign plan reproduces the plain crash-only trace byte for byte,
    /// on both executors that run omission adversaries.
    #[test]
    fn benign_plans_are_trace_identical_to_the_plain_path(
        entries in proptest::collection::vec(1u32..=5, N),
        pattern in pattern_strategy(),
    ) {
        let benign = Adversary::Omission {
            plan: FaultPlan::none(N),
            crashes: pattern.clone(),
        };
        for (faulty, plain) in scenarios(entries.clone(), &benign)
            .into_iter()
            .zip(scenarios(entries.clone(), &Adversary::from(pattern.clone())))
        {
            for executor in [Executor::Simulator, LOOPBACK] {
                let with_plan = faulty.clone().executor(executor).run().expect("benign plan");
                let without = plain.clone().executor(executor).run().expect("plain path");
                prop_assert_eq!(
                    with_plan.trace(),
                    without.trace(),
                    "benign plan diverged on {:?} under {}",
                    executor,
                    &pattern
                );
            }
        }
    }

    /// The headline equivalence: for any seeded plan and crash pattern,
    /// the simulator's omission engine and the loopback tier's
    /// `FaultyTransport` produce the identical `Trace` — or fail with
    /// the identical round-limit error.
    #[test]
    fn simulator_and_faulty_loopback_are_byte_identical(
        entries in proptest::collection::vec(1u32..=5, N),
        pattern in pattern_strategy(),
        plan in plan_strategy(),
    ) {
        let adversary = Adversary::Omission { plan, crashes: pattern };
        for scenario in scenarios(entries.clone(), &adversary) {
            let protocol = scenario.spec().protocol();
            let simulated = scenario.clone().executor(Executor::Simulator).run();
            let networked = scenario.executor(LOOPBACK).run();
            match (&simulated, &networked) {
                (Ok(sim), Ok(net)) => prop_assert_eq!(
                    sim.trace(),
                    net.trace(),
                    "{} diverged under the plan",
                    protocol
                ),
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => prop_assert!(
                    false,
                    "executors disagree for {}: simulator {:?}, loopback {:?}",
                    protocol,
                    a.as_ref().map(|r| r.satisfies_all()),
                    b.as_ref().map(|r| r.satisfies_all())
                ),
            }
            check_principled(&simulated, &entries)?;
        }
    }

    /// Hostile plans (any rates, any partitions, any crashes) never
    /// hang or panic either tier: every run is a report or a loud,
    /// principled error.
    #[test]
    fn faulty_runs_always_reach_a_principled_outcome(
        entries in proptest::collection::vec(1u32..=5, N),
        pattern in pattern_strategy(),
        plan in plan_strategy(),
    ) {
        let adversary = Adversary::Omission { plan, crashes: pattern };
        for scenario in scenarios(entries.clone(), &adversary) {
            for executor in [Executor::Simulator, LOOPBACK] {
                check_principled(&scenario.clone().executor(executor).run(), &entries)?;
            }
        }
    }

    /// Partition-then-heal: a clean split (no other faults, no crashes)
    /// whose window closes before the final round still lets every
    /// process decide — after the heal, the remaining exchanges restore
    /// the flood.
    #[test]
    fn partition_then_heal_runs_decide(
        entries in proptest::collection::vec(1u32..=5, N),
        side in proptest::collection::vec(any::<bool>(), N),
    ) {
        let mut members = ProcessSet::empty(N);
        for (i, &m) in side.iter().enumerate() {
            if m {
                members.insert(ProcessId::new(i));
            }
        }
        // FloodSet runs t/k + 1 = 3 rounds; the cut covers round 1 only.
        let plan = FaultPlan::new(N, 0).partition(Partition::new(members, 1, 1));
        let adversary = Adversary::Omission {
            plan,
            crashes: FailurePattern::none(N),
        };
        let scenario = Scenario::flood_set(N, T, 2)
            .input(entries.clone())
            .pattern(adversary);
        for executor in [Executor::Simulator, LOOPBACK] {
            let report = scenario.clone().executor(executor).run().expect("heals");
            prop_assert!(report.satisfies_termination(), "undecided on {:?}", executor);
            prop_assert!(report.satisfies_validity());
        }
    }
}

/// The composed `Adversary::Network` (unordered crashes + link faults)
/// replays deterministically: the same scenario twice yields the same
/// trace, and the benign-plan case matches the plain unordered path.
#[test]
fn network_adversary_is_deterministic() {
    use setagree::sync::{SubsetCrash, UnorderedFailurePattern};

    let mut crashes = UnorderedFailurePattern::none(N);
    let mut delivered_to = ProcessSet::empty(N);
    delivered_to.insert(ProcessId::new(0));
    delivered_to.insert(ProcessId::new(3));
    crashes
        .crash(ProcessId::new(5), SubsetCrash::new(2, delivered_to))
        .expect("valid");
    let adversary = Adversary::Network {
        plan: FaultPlan::new(N, 77).drop_rate(2000).duplicate_rate(1000),
        crashes,
    };
    let scenario = Scenario::flood_set(N, T, 2)
        .input(vec![3u32, 9, 1, 4, 7, 2, 8, 5])
        .pattern(adversary);
    let first = scenario.clone().run().expect("network adversary");
    let second = scenario.run().expect("network adversary");
    assert_eq!(first.trace(), second.trace());
    assert!(first.satisfies_validity());
}
