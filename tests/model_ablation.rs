//! Ablation of the paper's model choice (Section 6.2): the Figure 2
//! algorithm relies on round-1 broadcasts going out in a *predetermined
//! order*, so that a crash loses a **suffix** and all views are totally
//! ordered by containment. Under the standard synchronous model — where a
//! crash loses an *arbitrary subset* — the containment chain breaks, and
//! with it the agreement argument: this file exhibits a concrete execution
//! in which the algorithm, run unmodified, violates consensus.

use setagree::conditions::{legality, Condition, ExplicitOracle, MaxEll};
use setagree::core::{ConditionBasedConfig, Scenario};
use setagree::sync::{
    run_protocol, run_protocol_unordered, CrashSpec, FailurePattern, Step, SubsetCrash,
    SyncProtocol, UnorderedFailurePattern,
};
use setagree::types::{InputVector, ProcessId, ProcessSet, View};

/// A one-round protocol that just reports its assembled view.
#[derive(Debug)]
struct ViewCollector {
    view: View<u32>,
}

impl ViewCollector {
    fn new(me: usize, n: usize, input: u32) -> Self {
        let mut view = View::all_bottom(n);
        view.set(ProcessId::new(me), input);
        ViewCollector { view }
    }
}

impl SyncProtocol for ViewCollector {
    type Msg = u32;
    type Output = View<u32>;
    fn message(&mut self, _round: usize) -> u32 {
        self.view
            .iter()
            .flatten()
            .next()
            .copied()
            .expect("own value present")
    }
    fn receive(&mut self, _round: usize, from: ProcessId, msg: &u32) {
        self.view.set(from, *msg);
    }
    fn compute(&mut self, _round: usize) -> Step<View<u32>> {
        Step::Decide(self.view.clone())
    }
}

fn collectors(inputs: &[u32]) -> Vec<ViewCollector> {
    inputs
        .iter()
        .enumerate()
        .map(|(i, &v)| ViewCollector::new(i, inputs.len(), v))
        .collect()
}

/// Under ordered sends, every pair of round-1 views is comparable; under
/// subset loss, incomparable views are reachable.
#[test]
fn containment_breaks_without_ordered_sends() {
    let inputs = [6u32, 5, 3, 3];
    // Ordered: p1 and p2 both crash with prefixes — all views comparable.
    for p1_prefix in 0..=4 {
        for p2_prefix in 0..=4 {
            let mut pattern = FailurePattern::none(4);
            pattern
                .crash(ProcessId::new(0), CrashSpec::new(1, p1_prefix))
                .unwrap();
            pattern
                .crash(ProcessId::new(1), CrashSpec::new(1, p2_prefix))
                .unwrap();
            let trace = run_protocol(collectors(&inputs), &pattern, 3).unwrap();
            let views: Vec<View<u32>> = trace
                .outcomes()
                .iter()
                .filter_map(|o| o.decided_value().cloned())
                .collect();
            for a in &views {
                for b in &views {
                    assert!(
                        a.is_contained_in(b) || b.is_contained_in(a),
                        "ordered sends must give a containment chain"
                    );
                }
            }
        }
    }

    // Unordered: p1 reaches only p3, p2 reaches only p4 → p3 and p4 hold
    // incomparable views.
    let mut pattern = UnorderedFailurePattern::none(4);
    let mut only_p3 = ProcessSet::empty(4);
    only_p3.insert(ProcessId::new(2));
    let mut only_p4 = ProcessSet::empty(4);
    only_p4.insert(ProcessId::new(3));
    pattern
        .crash(ProcessId::new(0), SubsetCrash::new(1, only_p3))
        .unwrap();
    pattern
        .crash(ProcessId::new(1), SubsetCrash::new(1, only_p4))
        .unwrap();
    let trace = run_protocol_unordered(collectors(&inputs), &pattern, 3).unwrap();
    let v3 = trace.outcome(ProcessId::new(2)).decided_value().unwrap();
    let v4 = trace.outcome(ProcessId::new(3)).decided_value().unwrap();
    assert!(
        !v3.is_contained_in(v4) && !v4.is_contained_in(v3),
        "subset loss must produce incomparable views: {v3} vs {v4}"
    );
}

/// The bespoke two-vector condition used to break the algorithm: legal for
/// (x, ℓ) = (1, 1), decoding 6 from one vector and 5 from the other.
fn split_condition() -> ExplicitOracle<u32, MaxEll> {
    let i6 = InputVector::new(vec![6u32, 6, 3, 3]);
    let i5 = InputVector::new(vec![5u32, 5, 3, 3]);
    let cond = Condition::from_vectors(vec![i6, i5]).unwrap();
    let params = setagree::conditions::LegalityParams::new(1, 1).unwrap();
    assert!(legality::check(&cond, &MaxEll::new(1), params).is_ok());
    ExplicitOracle::new(cond, MaxEll::new(1), params)
}

/// The headline ablation: the identical algorithm, condition and crash
/// *count* — consensus holds under every ordered pattern, and is violated
/// under a subset-loss pattern. Both models run through the same
/// `Scenario`; only the adversary variant changes.
#[test]
fn figure_2_needs_the_ordered_send_model() {
    // n = 4, t = 2, k = 1 (consensus), d = 1, ℓ = 1 → x = 1.
    let config = ConditionBasedConfig::builder(4, 2, 1)
        .condition_degree(1)
        .ell(1)
        .build()
        .unwrap();
    let scenario = Scenario::condition_based(config, split_condition()).input(vec![6u32, 5, 3, 3]);

    // Ordered model: sweep every prefix pair for the two crashers.
    for p1_prefix in 0..=4 {
        for p2_prefix in 0..=4 {
            let mut pattern = FailurePattern::none(4);
            pattern
                .crash(ProcessId::new(0), CrashSpec::new(1, p1_prefix))
                .unwrap();
            pattern
                .crash(ProcessId::new(1), CrashSpec::new(1, p2_prefix))
                .unwrap();
            let report = scenario.clone().pattern(pattern).run().unwrap();
            assert!(
                report.satisfies_agreement(),
                "consensus must hold under ordered sends (prefixes {p1_prefix}/{p2_prefix}): {:?}",
                report.decided_values()
            );
        }
    }

    // Standard model: p1's 6 reaches only p3, p2's 5 reaches only p4 —
    // the same scenario, an `Adversary::Unordered` pattern.
    let mut pattern = UnorderedFailurePattern::none(4);
    let mut only_p3 = ProcessSet::empty(4);
    only_p3.insert(ProcessId::new(2));
    let mut only_p4 = ProcessSet::empty(4);
    only_p4.insert(ProcessId::new(3));
    pattern
        .crash(ProcessId::new(0), SubsetCrash::new(1, only_p3))
        .unwrap();
    pattern
        .crash(ProcessId::new(1), SubsetCrash::new(1, only_p4))
        .unwrap();
    let report = scenario.pattern(pattern).run().unwrap();
    assert!(
        !report.satisfies_agreement(),
        "the very same algorithm must split under subset loss: {:?}",
        report.decided_values()
    );
    assert_eq!(report.decided_values(), [5, 6].into_iter().collect());
}

/// Ordered patterns embed into the unordered model (the prefix becomes the
/// delivered set): running either way gives identical traces.
#[test]
fn ordered_patterns_embed_into_unordered_model() {
    let inputs = [6u32, 5, 3, 3];
    for p1_prefix in 0..=4 {
        let mut ordered = FailurePattern::none(4);
        ordered
            .crash(ProcessId::new(0), CrashSpec::new(1, p1_prefix))
            .unwrap();
        ordered
            .crash(ProcessId::new(3), CrashSpec::new(2, 2))
            .unwrap();
        let unordered: UnorderedFailurePattern = (&ordered).into();
        let a = run_protocol(collectors(&inputs), &ordered, 3).unwrap();
        let b = run_protocol_unordered(collectors(&inputs), &unordered, 3).unwrap();
        assert_eq!(a, b);
    }
}
