//! Fuzz-grade proptest battery for the binary wire codec: arbitrary
//! [`Report`]s — both execution shapes, every protocol family, executor
//! and outcome variant — and every [`ExperimentError`] variant encode →
//! decode **byte-identically**, and decoding arbitrary bytes never
//! panics and never allocates past the declared record cap (hostile
//! length/count prefixes are rejected *before* any allocation).
//!
//! The chain-integrity properties (byte flips, truncation, crash
//! resume) live in `tests/journal_chain.rs`; this file pins the codec
//! itself.

use proptest::prelude::*;

use setagree::asynchronous::{AsyncOutcome, AsyncReport};
use setagree::codec::journal::{Cursor, JournalWriter};
use setagree::codec::{DecodeError, Reader, Writer};
use setagree::conditions::LegalityParams;
use setagree::core::codec::{decode_record, decode_result, encode_result};
use setagree::core::{
    CachedResult, Executor, ExperimentError, ProtocolKind, Report, TransportKind,
};
use setagree::sync::{Outcome, Trace};
use setagree::types::{InputVector, ProcessId};

fn executor_strategy() -> impl Strategy<Value = Executor> {
    (0u8..5, any::<u64>(), any::<bool>()).prop_map(|(tag, seed, tcp)| match tag {
        0 => Executor::Simulator,
        1 => Executor::Threaded,
        2 => Executor::AsyncSharedMemory { seed },
        3 => Executor::AsyncMessagePassing { seed },
        _ => Executor::Networked {
            transport: if tcp {
                TransportKind::Tcp
            } else {
                TransportKind::Loopback
            },
        },
    })
}

fn protocol_strategy() -> impl Strategy<Value = ProtocolKind> {
    (0u8..5).prop_map(|tag| match tag {
        0 => ProtocolKind::ConditionBased,
        1 => ProtocolKind::EarlyConditionBased,
        2 => ProtocolKind::EarlyDeciding,
        3 => ProtocolKind::FloodSet,
        _ => ProtocolKind::AsyncSetAgreement,
    })
}

fn sync_outcomes_strategy() -> impl Strategy<Value = Vec<Outcome<u32>>> {
    proptest::collection::vec((0u8..3, any::<u32>(), 0usize..1000), 1..=8).prop_map(|raw| {
        raw.into_iter()
            .map(|(tag, value, round)| match tag {
                0 => Outcome::Decided { value, round },
                1 => Outcome::Crashed { round },
                _ => Outcome::Undecided,
            })
            .collect()
    })
}

fn async_outcomes_strategy() -> impl Strategy<Value = Vec<AsyncOutcome<u32>>> {
    proptest::collection::vec((0u8..4, any::<u32>(), any::<u64>()), 1..=8).prop_map(|raw| {
        raw.into_iter()
            .map(|(tag, value, steps)| match tag {
                0 => AsyncOutcome::Decided { value, steps },
                1 => AsyncOutcome::Crashed,
                2 => AsyncOutcome::Blocked,
                _ => AsyncOutcome::Unfinished,
            })
            .collect()
    })
}

/// Arbitrary reports across the full vocabulary: either execution shape,
/// any protocol/executor pairing (the codec is shape-agnostic — it must
/// round-trip pairings no live run would produce), full-range values.
fn report_strategy() -> impl Strategy<Value = Report<u32>> {
    (
        (
            any::<bool>(),
            sync_outcomes_strategy(),
            async_outcomes_strategy(),
        ),
        (0usize..1000, 0usize..1000, any::<u64>(), any::<u64>()),
        (
            1usize..=4,
            protocol_strategy(),
            executor_strategy(),
            proptest::collection::vec(any::<u32>(), 1..=8),
        ),
    )
        .prop_map(
            |(
                (rounds_shape, sync_outcomes, async_outcomes),
                (predicted, executed, messages, total_steps),
                (k, protocol, executor, entries),
            )| {
                if rounds_shape {
                    Report::from_trace(
                        Trace::from_parts(sync_outcomes, executed, messages),
                        InputVector::new(entries),
                        k,
                        predicted,
                        protocol,
                        executor,
                    )
                } else {
                    Report::from_async(
                        AsyncReport::from_parts(async_outcomes, total_steps),
                        InputVector::new(entries),
                        k,
                        protocol,
                        executor,
                    )
                }
            },
        )
}

fn error_strategy() -> impl Strategy<Value = ExperimentError> {
    (
        0u8..13,
        (0usize..100, 0usize..100, 1usize..=3, 0usize..3),
        executor_strategy(),
        protocol_strategy(),
        any::<u64>(),
    )
        .prop_map(|(tag, (a, b, ell, extra), executor, protocol, n)| {
            let params = |x, ell| LegalityParams::new(x, ell).expect("ell <= x by construction");
            match tag {
                0 => ExperimentError::MissingInput,
                1 => ExperimentError::InputSizeMismatch {
                    expected: a,
                    got: b,
                },
                2 => ExperimentError::ZeroK,
                3 => ExperimentError::TooManyCrashes { t: a, scheduled: b },
                4 => ExperimentError::OracleMismatch {
                    expected: params(ell + extra, ell),
                    got: params(ell + extra + 1, ell),
                },
                5 => ExperimentError::RoundLimitExceeded { limit: a },
                6 => ExperimentError::SystemSizeMismatch {
                    processes: a,
                    pattern: b,
                },
                7 => ExperimentError::ProcessPanicked {
                    process: ProcessId::new(a),
                },
                8 => ExperimentError::UnsupportedAdversary { executor },
                9 => ExperimentError::UnknownCrashVictim {
                    victim: ProcessId::new(a),
                    n: b,
                },
                10 => ExperimentError::UnsupportedProtocol { executor, protocol },
                11 => ExperimentError::UnsupportedTransport {
                    transport: match executor {
                        Executor::Networked { transport } => transport,
                        _ => TransportKind::Tcp,
                    },
                },
                _ => ExperimentError::Internal {
                    message: format!("wire: {n} — é∞\n\ttab"),
                },
            }
        })
}

/// Encode → decode → re-encode, asserting the decode reproduces the
/// value and the re-encode reproduces the bytes (canonical form).
fn assert_roundtrip(result: CachedResult<u32>) -> Result<(), TestCaseError> {
    let mut out = Writer::new();
    encode_result(&result, &mut out);
    let bytes = out.into_vec();
    let mut r = Reader::new(&bytes);
    let back = match decode_result::<u32>(&mut r) {
        Ok(back) => back,
        Err(e) => return Err(TestCaseError::Fail(format!("decode failed: {e}"))),
    };
    prop_assert!(r.finish().is_ok(), "decode consumed everything");
    prop_assert_eq!(&back, &result);
    let mut again = Writer::new();
    encode_result(&back, &mut again);
    prop_assert_eq!(again.into_vec(), bytes, "byte-identical re-encode");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Any report of either shape survives the wire byte-identically.
    #[test]
    fn arbitrary_reports_round_trip_byte_identically(report in report_strategy()) {
        assert_roundtrip(Ok(report))?;
    }

    /// Any error variant survives the wire byte-identically.
    #[test]
    fn arbitrary_errors_round_trip_byte_identically(error in error_strategy()) {
        assert_roundtrip(Err(error))?;
    }

    /// Decoding arbitrary bytes returns an error or a value — never a
    /// panic — whatever the length or content.
    #[test]
    fn decoding_arbitrary_bytes_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..=300),
    ) {
        let _ = decode_record::<u32>(&bytes);
        let _ = decode_record::<u64>(&bytes);
        let _ = decode_record::<i32>(&bytes);
    }

    /// Flipping any single byte of a valid encoding decodes to an error
    /// or a *different* value — never a panic. (Some flips land in
    /// don't-recompare fields like the key, so "error or different" is
    /// the strongest safe claim at this layer; the journal's hash chain
    /// — tests/journal_chain.rs — catches every flip.)
    #[test]
    fn flipped_encodings_never_panic(
        report in report_strategy(),
        position in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let mut out = Writer::new();
        encode_result(&Ok(report), &mut out);
        let mut bytes = out.into_vec();
        let at = position % bytes.len();
        bytes[at] ^= mask;
        let mut r = Reader::new(&bytes);
        let _ = decode_result::<u32>(&mut r);
    }

    /// A hostile count prefix claiming more elements than the buffer
    /// could possibly hold is rejected as `Oversized` *before*
    /// allocating — `Vec::with_capacity` never sees the claim.
    #[test]
    fn hostile_counts_are_rejected_before_allocation(
        claimed in 301u64..=u64::MAX,
        shape in any::<bool>(),
    ) {
        let mut out = Writer::new();
        out.u8(0); // Ok tag
        if shape {
            out.u8(0); // rounds
            out.u64(1); // predicted
            out.u64(1); // executed
            out.u64(0); // messages
        } else {
            out.u8(1); // steps
            out.u64(9); // total steps
        }
        out.u64(claimed); // outcome count, larger than the whole buffer
        let bytes = out.into_vec();
        prop_assert!(bytes.len() < 300, "buffer stays tiny");
        let mut r = Reader::new(&bytes);
        prop_assert_eq!(
            decode_result::<u32>(&mut r),
            Err(DecodeError::Oversized { claimed })
        );
    }

    /// Journal round trip: arbitrary payload sequences written through
    /// `JournalWriter` replay through `Cursor` exactly, in order, with a
    /// clean tail.
    #[test]
    fn journal_replay_returns_exactly_what_was_appended(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..=60),
            0..=12,
        ),
        version in any::<u32>(),
    ) {
        let mut writer = JournalWriter::create(Vec::new(), version).expect("vec sink");
        for p in &payloads {
            writer.append(p).expect("vec sink");
        }
        let bytes = writer.into_inner();
        let mut cursor = Cursor::new(&bytes);
        prop_assert_eq!(cursor.version(), Some(version));
        let replayed: Vec<Vec<u8>> = cursor.by_ref().map(<[u8]>::to_vec).collect();
        prop_assert_eq!(replayed, payloads);
        prop_assert!(cursor.tail().expect("ended").is_clean());
        prop_assert_eq!(cursor.valid_len(), bytes.len());
    }
}
