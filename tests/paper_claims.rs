//! Integration tests for the paper's headline claims: the round-complexity
//! properties of Section 6.1 (Lemmas 1 and 2, Theorem 10), validity
//! (Theorem 11) and agreement (Theorem 12) of the Figure 2 algorithm,
//! exercised across parameter sweeps and adversary classes.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use setagree::conditions::MaxCondition;
use setagree::core::{ConditionBasedConfig, Scenario};
use setagree::sync::{CrashSpec, FailurePattern};
use setagree::types::{InputVector, ProcessId};

/// Runs the Figure 2 algorithm on the unified Scenario API.
fn run_cb(
    config: &ConditionBasedConfig,
    oracle: &MaxCondition,
    input: &InputVector<u32>,
    pattern: &FailurePattern,
) -> setagree::core::Report<u32> {
    Scenario::condition_based(*config, *oracle)
        .input(input.clone())
        .pattern(pattern.clone())
        .run()
        .expect("valid scenario")
}

/// All (n, t, k, d, ℓ) combinations used by the sweeps: every row respects
/// the paper's constraints ℓ ≤ k and ℓ ≤ t − d.
fn grid() -> Vec<ConditionBasedConfig> {
    let mut out = Vec::new();
    for (n, t) in [(6usize, 3usize), (8, 4), (9, 5), (12, 7)] {
        for k in 1..=3 {
            for d in 1..t {
                for ell in 1..=k.min(t - d) {
                    if let Ok(config) = ConditionBasedConfig::builder(n, t, k)
                        .condition_degree(d)
                        .ell(ell)
                        .build()
                    {
                        out.push(config);
                    }
                }
            }
        }
    }
    assert!(!out.is_empty());
    out
}

fn in_condition_input<R: Rng>(config: &ConditionBasedConfig, rng: &mut R) -> InputVector<u32> {
    let x = config.legality().x();
    let ell = config.ell();
    let heavy: Vec<u32> = (0..ell as u32).map(|i| 900 + i).collect();
    let mut entries: Vec<u32> = (0..=x).map(|s| heavy[s % ell]).collect();
    while entries.len() < config.n() {
        entries.push(rng.gen_range(1..=50));
    }
    for i in (1..entries.len()).rev() {
        let j = rng.gen_range(0..=i);
        entries.swap(i, j);
    }
    InputVector::new(entries)
}

fn out_of_condition_input(config: &ConditionBasedConfig) -> InputVector<u32> {
    // All distinct: top-ℓ occupies ℓ ≤ x entries.
    InputVector::new((1..=config.n() as u32).collect())
}

/// Lemma 1(i): input in the condition and at most t − d crashes by the end
/// of round 1 → no process executes more than two rounds.
#[test]
fn lemma_1_two_round_fast_path() {
    let mut rng = SmallRng::seed_from_u64(101);
    for config in grid() {
        let oracle = MaxCondition::new(config.legality());
        let input = in_condition_input(&config, &mut rng);
        assert!(oracle.contains(&input));

        let t_minus_d = config.t() - config.d();
        for crashes in 0..=t_minus_d {
            let mut pattern = FailurePattern::none(config.n());
            for i in 0..crashes {
                pattern
                    .crash(
                        ProcessId::new(config.n() - 1 - i),
                        CrashSpec::new(1, rng.gen_range(0..=config.n())),
                    )
                    .unwrap();
            }
            let report = run_cb(&config, &oracle, &input, &pattern);
            assert!(report.satisfies_all(), "{config}, {crashes} crashes");
            assert_eq!(
                report.decision_round(),
                Some(2),
                "{config}: Lemma 1(i) promises exactly the 2-round fast path"
            );
        }
    }
}

/// Lemma 1(ii): input in the condition, arbitrary ≤ t crashes →
/// at most max(2, ⌊(d+ℓ−1)/k⌋ + 1) rounds.
#[test]
fn lemma_1_general_bound() {
    let mut rng = SmallRng::seed_from_u64(202);
    for config in grid() {
        let oracle = MaxCondition::new(config.legality());
        let input = in_condition_input(&config, &mut rng);
        for seed in 0..6u64 {
            let pattern = FailurePattern::random(
                config.n(),
                config.t(),
                config.rounds_outside_condition(),
                &mut SmallRng::seed_from_u64(seed),
            );
            let report = run_cb(&config, &oracle, &input, &pattern);
            assert!(report.satisfies_all(), "{config} seed {seed}");
            assert!(
                report.decision_round().unwrap() <= config.condition_decision_round(),
                "{config} seed {seed}: Lemma 1(ii) bound violated ({:?} > {})",
                report.decision_round(),
                config.condition_decision_round()
            );
        }
    }
}

/// Lemma 2(i): input outside the condition but more than t − d initial
/// crashes → still the fast ⌊(d+ℓ−1)/k⌋ + 1 bound.
#[test]
fn lemma_2_initial_crashes_shortcut() {
    for config in grid() {
        let oracle = MaxCondition::new(config.legality());
        let input = out_of_condition_input(&config);
        let t_minus_d = config.t() - config.d();
        let crashes = t_minus_d + 1;
        if crashes > config.t() {
            continue;
        }
        let pattern = FailurePattern::initial(
            config.n(),
            (0..crashes).map(|i| ProcessId::new(config.n() - 1 - i)),
        )
        .unwrap();
        let report = run_cb(&config, &oracle, &input, &pattern);
        assert!(report.satisfies_all(), "{config}");
        assert!(
            report.decision_round().unwrap() <= config.condition_decision_round(),
            "{config}: Lemma 2(i) bound violated"
        );
    }
}

/// Lemma 2(ii) / Theorem 10: never more than ⌊t/k⌋ + 1 rounds, whatever
/// the input and adversary.
#[test]
fn theorem_10_global_bound() {
    let mut rng = SmallRng::seed_from_u64(303);
    for config in grid() {
        let oracle = MaxCondition::new(config.legality());
        for input in [
            in_condition_input(&config, &mut rng),
            out_of_condition_input(&config),
        ] {
            for seed in 0..4u64 {
                let pattern = FailurePattern::random(
                    config.n(),
                    config.t(),
                    config.rounds_outside_condition() + 1,
                    &mut SmallRng::seed_from_u64(seed * 7 + 1),
                );
                let report = run_cb(&config, &oracle, &input, &pattern);
                assert!(
                    report.decision_round().unwrap_or(0) <= config.final_decision_round(),
                    "{config} seed {seed}: global bound violated"
                );
                assert!(report.satisfies_termination(), "{config} seed {seed}");
            }
        }
    }
}

/// Theorem 11 (validity) and Theorem 12 (agreement) under the staircase
/// adversary used in the paper's own lower-bound argument.
#[test]
fn theorems_11_and_12_under_staircase() {
    let mut rng = SmallRng::seed_from_u64(404);
    for config in grid() {
        let oracle = MaxCondition::new(config.legality());
        for input in [
            in_condition_input(&config, &mut rng),
            out_of_condition_input(&config),
        ] {
            let pattern = FailurePattern::staircase(config.n(), config.t(), config.k());
            let report = run_cb(&config, &oracle, &input, &pattern);
            assert!(report.satisfies_validity(), "{config}: Theorem 11");
            assert!(
                report.satisfies_agreement(),
                "{config}: Theorem 12 — decided {:?} with k = {}",
                report.decided_values(),
                config.k()
            );
        }
    }
}

/// The condition-based algorithm is never slower than the flood-set
/// baseline, and strictly faster on in-condition inputs whenever the
/// formula says so.
#[test]
fn condition_beats_baseline_in_condition() {
    let mut rng = SmallRng::seed_from_u64(505);
    for config in grid() {
        let oracle = MaxCondition::new(config.legality());
        let input = in_condition_input(&config, &mut rng);
        let pattern = FailurePattern::none(config.n());
        let cb = run_cb(&config, &oracle, &input, &pattern);
        let base = Scenario::flood_set(config.n(), config.t(), config.k())
            .input(input.clone())
            .pattern(pattern.clone())
            .run()
            .unwrap();
        let cb_rounds = cb.decision_round().unwrap();
        let base_rounds = base.decision_round().unwrap();
        assert!(
            cb_rounds <= base_rounds.max(2),
            "{config}: slower than baseline"
        );
        if config.rounds_outside_condition() > 2 {
            assert!(
                cb_rounds < base_rounds,
                "{config}: expected a strict speedup ({cb_rounds} vs {base_rounds})"
            );
        }
    }
}

/// The consensus special case ([22]): k = 1, ℓ = 1 decides in d + 1 rounds
/// in-condition and t + 1 otherwise.
#[test]
fn consensus_special_case_matches_mrr() {
    let mut rng = SmallRng::seed_from_u64(606);
    let config = ConditionBasedConfig::builder(8, 5, 1)
        .condition_degree(3)
        .ell(1)
        .build()
        .unwrap();
    let oracle = MaxCondition::new(config.legality());
    assert_eq!(config.rounds_in_condition(), 4); // d + 1
    assert_eq!(config.rounds_outside_condition(), 6); // t + 1

    let inside = in_condition_input(&config, &mut rng);
    let pattern = FailurePattern::staircase(8, 5, 1);
    let report = run_cb(&config, &oracle, &inside, &pattern);
    assert!(report.decision_round().unwrap() <= 4);
    assert_eq!(
        report.decided_values().len(),
        1,
        "consensus decides one value"
    );

    let outside = out_of_condition_input(&config);
    let report = run_cb(&config, &oracle, &outside, &FailurePattern::none(8));
    assert_eq!(report.decision_round(), Some(6));
    assert_eq!(report.decided_values().len(), 1);
}
