//! The streaming suite engine's contract, property-tested:
//!
//! * **Streaming ≡ batch**: for any grid (mixed sync/async executors,
//!   proptest-generated inputs and failure patterns), `stream()` /
//!   `run_streaming` emit *exactly* `run()`'s cases, in grid order —
//!   the reorder buffer over the worker pool never reorders, drops or
//!   duplicates a cell.
//! * **Warm caches execute nothing**: a rerun of a full mixed
//!   synchronous/asynchronous grid against the cache its cold run
//!   filled serves every cell warm (hit counter = grid size, miss
//!   counter = 0) and reproduces a byte-identical report — including
//!   through a save/load roundtrip of the persisted cache file.
//! * **Explicit cases** (`cases(...)`) pair specs with exactly the
//!   executors that can run them, and `SuiteReport::find` looks cells
//!   up by coordinates instead of hand-computed flat indices.

use std::sync::Arc;

use proptest::prelude::*;

use setagree::conditions::{LegalityParams, MaxCondition};
use setagree::core::{
    CaseSpec, ConditionBasedConfig, Executor, ProtocolSpec, ScenarioSuite, SuiteCache,
};
use setagree::sync::{CrashSpec, FailurePattern};
use setagree::types::{InputVector, ProcessId};

const N: usize = 6;

fn pattern_strategy() -> impl Strategy<Value = FailurePattern> {
    proptest::collection::vec((0usize..N, 1usize..=3, 0usize..=N), 0..=2).prop_map(|crashes| {
        let mut pattern = FailurePattern::none(N);
        let mut victims = std::collections::BTreeSet::new();
        for (idx, round, prefix) in crashes {
            if victims.len() >= 2 || !victims.insert(idx) {
                continue;
            }
            pattern
                .crash(ProcessId::new(idx), CrashSpec::new(round, prefix))
                .expect("valid");
        }
        pattern
    })
}

/// A mixed grid over the (6, 3, 2, 2, 1) system: a condition-based spec
/// (runs on all four executor kinds) and two round-based baselines,
/// under generated inputs and patterns.
fn mixed_suite(
    entries: &[Vec<u32>],
    patterns: &[FailurePattern],
    executors: &[Executor],
) -> ScenarioSuite<u32, MaxCondition> {
    let config = ConditionBasedConfig::builder(N, 3, 2)
        .condition_degree(2)
        .ell(1)
        .build()
        .expect("valid");
    let mut suite = ScenarioSuite::new()
        .spec(ProtocolSpec::condition_based(
            config,
            MaxCondition::new(config.legality()),
        ))
        .spec(ProtocolSpec::flood_set(N, 3, 2))
        .inputs(entries.iter().map(|e| InputVector::new(e.clone())))
        .patterns(patterns.iter().cloned().map(Into::into));
    for &executor in executors {
        suite = suite.executor(executor);
    }
    suite
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline streaming property: whatever the grid and however
    /// the worker pool schedules it, the streamed cases are exactly the
    /// batch cases, in the batch order.
    #[test]
    fn streaming_emits_exactly_the_batch_cases_in_grid_order(
        entries in proptest::collection::vec(proptest::collection::vec(1u32..=9, N), 1..=3),
        patterns in proptest::collection::vec(pattern_strategy(), 0..=2),
        seed in 0u64..1000,
    ) {
        // Executors mix both models; crashing sync patterns on async
        // executors produce positioned errors, which must stream
        // identically too.
        let executors = [
            Executor::Simulator,
            Executor::AsyncSharedMemory { seed },
        ];
        let suite = mixed_suite(&entries, &patterns, &executors);
        let batch = suite.run();
        prop_assert_eq!(batch.len(), 2 * entries.len() * patterns.len().max(1) * 2);

        let mut streamed = Vec::new();
        let stats = suite.run_streaming(|case| streamed.push(case));
        prop_assert_eq!(stats.cases, batch.len());
        prop_assert_eq!(streamed.as_slice(), batch.cases());

        // The explicit iterator agrees as well (and is exact-size).
        let mut run = suite.stream();
        prop_assert_eq!(run.len(), batch.len());
        let iterated: Vec<_> = run.by_ref().collect();
        prop_assert_eq!(iterated.as_slice(), batch.cases());
    }

    /// A warm cache serves the whole grid without executing anything:
    /// the hit counter equals the grid size and the report is
    /// byte-identical to the cold one.
    #[test]
    fn warm_cache_reruns_are_identical_with_zero_executions(
        entries in proptest::collection::vec(proptest::collection::vec(1u32..=9, N), 1..=2),
        patterns in proptest::collection::vec(pattern_strategy(), 0..=1),
        seed in 0u64..1000,
    ) {
        let executors = [
            Executor::Simulator,
            Executor::Threaded,
            Executor::AsyncSharedMemory { seed },
            Executor::AsyncMessagePassing { seed },
        ];
        let cache = Arc::new(SuiteCache::new());
        let cold = mixed_suite(&entries, &patterns, &executors).cache(&cache).run();
        prop_assert_eq!(cold.cache_hits(), 0);
        prop_assert_eq!(cold.cache_misses() as usize, cold.len());

        let warm = mixed_suite(&entries, &patterns, &executors).cache(&cache).run();
        prop_assert_eq!(warm.cache_hits() as usize, warm.len(), "zero executions");
        prop_assert_eq!(warm.cache_misses(), 0);
        prop_assert_eq!(
            format!("{:?}", warm.cases()).into_bytes(),
            format!("{:?}", cold.cases()).into_bytes(),
            "byte-identical report"
        );
    }
}

/// The acceptance shape spelled out: one full mixed sync/async grid,
/// cold run persisted to a file, warm run from the *reloaded* file —
/// still zero executions, still byte-identical, across the process
/// boundary the file represents.
#[test]
fn persisted_cache_roundtrip_serves_a_mixed_grid_warm() {
    let entries = vec![vec![5u32, 5, 1, 2, 5, 5], vec![9u32, 9, 9, 1, 2, 3]];
    let patterns = vec![FailurePattern::none(N), FailurePattern::staircase(N, 3, 2)];
    let executors = [
        Executor::Simulator,
        Executor::Threaded,
        Executor::AsyncSharedMemory { seed: 11 },
        Executor::AsyncMessagePassing { seed: 11 },
    ];
    let path = std::env::temp_dir().join("setagree-suite-streaming-roundtrip");
    let _ = std::fs::remove_file(&path);

    let cache = Arc::new(SuiteCache::new());
    let cold = mixed_suite(&entries, &patterns, &executors)
        .cache(&cache)
        .run();
    assert_eq!(cold.len(), 2 * 2 * 2 * 4);
    assert_eq!(cold.cache_misses() as usize, cold.len());
    cache.save(&path).expect("cache saves");

    let reloaded = Arc::new(SuiteCache::load_or_empty(&path).expect("cache loads"));
    assert_eq!(reloaded.len(), cold.len());
    let warm = mixed_suite(&entries, &patterns, &executors)
        .cache(&reloaded)
        .run();
    assert_eq!(
        warm.cache_hits() as usize,
        warm.len(),
        "cache-hit counter equals grid size: zero protocol executions"
    );
    assert_eq!(warm.cache_misses(), 0);
    assert_eq!(
        format!("{:?}", warm.cases()),
        format!("{:?}", cold.cases()),
        "byte-identical report through the file"
    );
    std::fs::remove_file(&path).expect("cleanup");
}

/// A cache file left behind by an older format version — the pre-binary
/// text codec, or a binary journal of another version — reloads as a
/// *cold* cache, never an error and never misread cells; one cold rerun
/// then re-fills it, and the re-saved file serves the full mixed grid
/// warm with zero misses.
#[test]
fn stale_version_cache_files_reload_cold_then_refill_and_serve_warm() {
    let entries = vec![vec![5u32, 5, 1, 2, 5, 5]];
    let patterns = vec![FailurePattern::none(N)];
    let executors = [
        Executor::Simulator,
        Executor::AsyncSharedMemory { seed: 3 },
        Executor::AsyncMessagePassing { seed: 3 },
    ];
    let path = std::env::temp_dir().join("setagree-suite-streaming-stale");

    // The retired v1 text format under the same path.
    std::fs::write(&path, "setagree-suite-cache v1\nsome v1 line\n").expect("write stale");
    let stale: SuiteCache<u32> = SuiteCache::load_or_empty(&path).expect("stale is not an error");
    assert!(stale.is_empty(), "a stale format is a cold cache");

    let stale = Arc::new(stale);
    let cold = mixed_suite(&entries, &patterns, &executors)
        .cache(&stale)
        .run();
    assert_eq!(
        cold.cache_misses() as usize,
        cold.len(),
        "every cell re-executes from the stale file"
    );
    stale.save(&path).expect("re-save over the stale file");

    let reloaded: Arc<SuiteCache<u32>> =
        Arc::new(SuiteCache::load_or_empty(&path).expect("current-version file loads"));
    assert_eq!(reloaded.len(), cold.len(), "full reports round-tripped");
    let warm = mixed_suite(&entries, &patterns, &executors)
        .cache(&reloaded)
        .run();
    assert_eq!(warm.cache_hits() as usize, warm.len(), "hits == grid size");
    assert_eq!(warm.cache_misses(), 0, "zero misses on the warm rerun");
    assert_eq!(
        format!("{:?}", warm.cases()),
        format!("{:?}", cold.cases()),
        "byte-identical report through the refilled file"
    );
    std::fs::remove_file(&path).expect("cleanup");
}

/// Explicit cases express a heterogeneous sweep — round-based specs on
/// synchronous executors next to an async seed sweep — with no
/// manufactured `UnsupportedProtocol` cells, and `find` locates cells
/// by their coordinates.
#[test]
fn explicit_cases_and_find_cover_heterogeneous_sweeps() {
    let params = LegalityParams::new(1, 1).expect("valid");
    let async_spec = Arc::new(ProtocolSpec::async_set_agreement(
        4,
        params,
        MaxCondition::new(params),
    ));
    let async_input: Arc<InputVector<u32>> = Arc::new(vec![7u32, 7, 7, 2].into());

    let outcome = ScenarioSuite::new()
        .case((
            ProtocolSpec::flood_set(4, 2, 1),
            vec![3u32, 9, 1, 4],
            Executor::Simulator,
        ))
        .case((
            ProtocolSpec::flood_set(4, 2, 1),
            vec![3u32, 9, 1, 4],
            FailurePattern::staircase(4, 2, 1),
            Executor::Threaded,
        ))
        .cases((0..5).map(|seed| {
            CaseSpec::shared(
                Arc::clone(&async_spec),
                Arc::clone(&async_input),
                Executor::AsyncSharedMemory { seed },
            )
        }))
        .run();

    assert_eq!(outcome.len(), 7);
    assert!(outcome.all_ok(), "no deliberate error cells anywhere");

    // find() instead of flat-index arithmetic: the two owned flood-set
    // cases intern fresh components (indices 0 and 1), so the shared
    // async sweep sits at spec/input index 2 with executors 2..7 as
    // the seeds.
    for executor in 2..7 {
        let case = outcome
            .find(2, 2, None, Some(executor))
            .expect("async cell present");
        assert_eq!(
            case.report().expect("ran").executor(),
            Executor::AsyncSharedMemory {
                seed: (executor - 2) as u64
            }
        );
    }
    assert!(outcome.find(0, 0, None, Some(99)).is_none());
}
