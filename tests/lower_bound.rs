//! Lower-bound demonstrators: the `⌊t/k⌋ + 1` bound the paper cites from
//! Chaudhuri–Herlihy–Lynch–Tuttle is *tight* — protocols stopping one
//! round short are incorrect, which we exhibit constructively with chain
//! adversaries rather than prove topologically. Truncated protocols are
//! first-class scenarios (`Scenario::flood_set_truncated`), so the
//! violations show up as failed agreement in an ordinary `Report`.
//!
//! These tests guard the simulator as much as the protocols: an engine
//! that delivered messages too generously (or dropped the prefix
//! semantics) would make the violations unreachable and the positive
//! results above vacuous.

use setagree::core::Scenario;
use setagree::sync::{CrashSpec, FailurePattern};
use setagree::types::ProcessId;

/// For consensus (k = 1): the chain adversary defeats every flood-set
/// truncation below t + 1 rounds, while t + 1 always suffices.
#[test]
fn consensus_needs_t_plus_1_rounds() {
    for (n, t) in [(5usize, 3usize), (6, 4), (8, 5)] {
        // The hidden value 9 starts at the chain's head; everyone else
        // proposes 1.
        let inputs: Vec<u32> = (0..n).map(|i| if i == 0 { 9 } else { 1 }).collect();
        let chain = FailurePattern::chain(n, t);

        // One round short: the chain keeps the 9 inside the crashed prefix
        // plus the final carrier — someone decides 1, the carrier's heir
        // decides 9.
        let short = Scenario::flood_set_truncated(n, t, 1, t)
            .input(inputs.clone())
            .pattern(chain.clone())
            .run()
            .expect("short run");
        assert!(
            !short.satisfies_agreement(),
            "n={n}, t={t}: {t}-round floodset must split under the chain, got {:?}",
            short.decided_values()
        );

        // The full t + 1 rounds: consensus restored under the same chain.
        let full = Scenario::flood_set_truncated(n, t, 1, t + 1)
            .input(inputs)
            .pattern(chain)
            .run()
            .expect("full run");
        assert_eq!(
            full.decided_values().len(),
            1,
            "n={n}, t={t}: t+1 rounds must reach consensus"
        );
        assert!(full.satisfies_agreement());
    }
}

/// For k = 2: two parallel chains burn 2 crashes per round; ⌊t/2⌋ rounds
/// are beatable, ⌊t/2⌋ + 1 are not (three splinter values vs ≤ 2).
#[test]
fn two_set_agreement_needs_t_over_2_plus_1_rounds() {
    let n = 9;
    let t = 4;
    let k = 2;
    // Two hidden values 9 and 8 travel on disjoint chains: 9 along
    // p1 → p3 → survivors-prefix, 8 along p2 → p4 → …; everyone else
    // proposes 1.
    let inputs: Vec<u32> = (0..n)
        .map(|i| match i {
            0 => 9,
            1 => 8,
            _ => 1,
        })
        .collect();
    let mut pattern = FailurePattern::none(n);
    // Round 1: p1 whispers 9 to p3 only (prefix 3 = {p1, p2, p3}; p2 is the
    // other crasher); p2 whispers 8 to p4 only (prefix 4, the alive ones in
    // it being p3 — careful: prefix 4 reaches p3 AND p4).
    // Keep the chains disjoint by prefix arithmetic:
    //   p1 (idx 0) reaches p1..p3  → alive recipient: p3 (idx 2).
    //   p2 (idx 1) reaches p1..p4  → alive recipients: p3, p4. p3 now knows
    //   both 9 and 8; its estimate is max = 9; 8 still also at p4.
    pattern
        .crash(ProcessId::new(0), CrashSpec::new(1, 3))
        .unwrap();
    pattern
        .crash(ProcessId::new(1), CrashSpec::new(1, 4))
        .unwrap();
    // Round 2: p3 whispers {9} onward to p5 only (prefix 5); p4 whispers 8
    // to p5, p6 (prefix 6). After round 2 the extremal values live only in
    // p5/p6, everyone else still believes 1.
    pattern
        .crash(ProcessId::new(2), CrashSpec::new(2, 5))
        .unwrap();
    pattern
        .crash(ProcessId::new(3), CrashSpec::new(2, 6))
        .unwrap();

    // ⌊t/k⌋ = 2 rounds: p5 decides 9, p6 decides max(8, …) and the rest
    // decide 1 → three values > k.
    let short = Scenario::flood_set_truncated(n, t, k, t / k)
        .input(inputs.clone())
        .pattern(pattern.clone())
        .run()
        .expect("short run");
    assert!(
        !short.satisfies_agreement(),
        "⌊t/k⌋ rounds must violate 2-agreement, got {:?}",
        short.decided_values()
    );

    // ⌊t/k⌋ + 1 = 3 rounds: the correct bound holds under the same pattern.
    let full = Scenario::flood_set_truncated(n, t, k, t / k + 1)
        .input(inputs)
        .pattern(pattern)
        .run()
        .expect("full run");
    assert!(
        full.satisfies_agreement(),
        "⌊t/k⌋+1 rounds must satisfy 2-agreement, got {:?}",
        full.decided_values()
    );
}

/// The chain constructor is well-formed: t crashes, one per round, each
/// reaching exactly its successor among the living.
#[test]
fn chain_adversary_shape() {
    let chain = FailurePattern::chain(7, 4);
    assert_eq!(chain.fault_count(), 4);
    for r in 1..=4 {
        assert_eq!(chain.crashes_by_round(r), r, "one crash per round");
        let spec = chain
            .spec(ProcessId::new(r - 1))
            .expect("p_r crashes in round r");
        assert_eq!(spec.round, r);
        assert_eq!(spec.after_sends, r + 1);
    }
}
