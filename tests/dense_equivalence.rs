//! The dense interned-value engine is a pure representation change: a
//! `DenseView`/`DenseVector` over a `ValueTable` must behave exactly
//! like the generic `View<V>`/`InputVector<V>` it replaces on the hot
//! paths.
//!
//! Two layers of pinning:
//!
//! 1. **Operation equivalence** — a deliberately naive reference port
//!    over `Vec<Option<V>>` (independent of both the generic and the
//!    dense implementation) computes every operation the protocols use —
//!    merges, counts, containment, `greatest_distinct`, `complete_with`
//!    — and the dense engine, resolved back through its table, must
//!    agree on random value domains, system sizes across the
//!    inline/heap and one-word/multi-word thresholds, and arbitrary
//!    `⊥` placements. The `MaxCondition` dense oracle paths are pinned
//!    against the generic oracle the same way.
//! 2. **Trace equivalence** — all four protocol families run twice per
//!    seeded adversary, once over raw `u32` proposals and once over
//!    interned `ValueId`s; because interning is order-preserving the
//!    two executions must produce the same outcomes, rounds, and
//!    delivery counts once the ids are resolved back to values.

use std::collections::BTreeSet;

use proptest::prelude::*;

use setagree::conditions::{LegalityParams, MaxCondition};
use setagree::core::{ConditionBased, EarlyConditionBased, EarlyDeciding, FloodSet};
use setagree::core::{ConditionBasedConfig, DenseFlood};
use setagree::sync::{run_protocol, CrashSpec, FailurePattern, Outcome, SyncProtocol, Trace};
use setagree::types::{DenseView, IdSet, InputVector, ProcessId, ValueId, ValueTable, View};

// ---------------------------------------------------------------------
// The reference port: every operation written the obvious way over
// `Vec<Option<u32>>`, with no sharing of code with either engine.
// ---------------------------------------------------------------------

fn ref_count_bottom(entries: &[Option<u32>]) -> usize {
    entries.iter().filter(|e| e.is_none()).count()
}

fn ref_distinct(entries: &[Option<u32>]) -> BTreeSet<u32> {
    entries.iter().flatten().copied().collect()
}

fn ref_count_of(entries: &[Option<u32>], v: u32) -> usize {
    entries.iter().filter(|e| **e == Some(v)).count()
}

fn ref_count_in(entries: &[Option<u32>], values: &BTreeSet<u32>) -> usize {
    entries
        .iter()
        .filter(|e| e.is_some_and(|v| values.contains(&v)))
        .count()
}

fn ref_greatest_distinct(entries: &[Option<u32>], ell: usize) -> BTreeSet<u32> {
    ref_distinct(entries).into_iter().rev().take(ell).collect()
}

fn ref_merge_overwrite(mine: &[Option<u32>], theirs: &[Option<u32>]) -> Vec<Option<u32>> {
    mine.iter()
        .zip(theirs)
        .map(|(m, t)| if t.is_some() { *t } else { *m })
        .collect()
}

fn ref_merge_union(mine: &[Option<u32>], theirs: &[Option<u32>]) -> Vec<Option<u32>> {
    mine.iter()
        .zip(theirs)
        .map(|(m, t)| if m.is_some() { *m } else { *t })
        .collect()
}

fn ref_contained(inner: &[Option<u32>], outer: &[Option<u32>]) -> bool {
    inner.iter().zip(outer).all(|(a, b)| a.is_none() || a == b)
}

fn ref_complete_with(entries: &[Option<u32>], fill: u32) -> Vec<u32> {
    entries.iter().map(|e| e.unwrap_or(fill)).collect()
}

// ---------------------------------------------------------------------
// Harness helpers
// ---------------------------------------------------------------------

/// A table over the whole candidate value range, so every generated
/// entry (and some values no entry uses) interns.
fn table_over(range_max: u32) -> ValueTable<u32> {
    ValueTable::from_values(0..=range_max)
}

fn dense_of(table: &ValueTable<u32>, entries: &[Option<u32>]) -> DenseView {
    table.intern_view(&View::from_options(entries.to_vec()))
}

fn resolve_ids(table: &ValueTable<u32>, ids: &IdSet) -> BTreeSet<u32> {
    table.values_of(ids)
}

fn id_set_of(table: &ValueTable<u32>, values: &BTreeSet<u32>) -> IdSet {
    let mut ids = IdSet::empty(table);
    for v in values {
        ids.insert(table.id_of(v).expect("value in table"));
    }
    ids
}

/// System sizes probing every representation regime: inline slots
/// (n ≤ 16), heap slots, one presence word (n ≤ 64), and several words.
fn size_strategy() -> impl Strategy<Value = usize> {
    (0usize..=3, 1usize..=18, 60usize..=70).prop_map(|(pick, small, mid)| match pick {
        0 | 1 => small,
        2 => mid,
        _ => 130,
    })
}

const VALUE_MAX: u32 = 9;

fn entries_strategy(n: usize) -> impl Strategy<Value = Vec<Option<u32>>> {
    proptest::collection::vec(proptest::option::of(0u32..=VALUE_MAX), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every `View` operation: dense (resolved through the table), the
    /// generic implementation, and the naive reference agree.
    #[test]
    fn dense_view_matches_reference(
        (a, b) in size_strategy().prop_flat_map(|n| (entries_strategy(n), entries_strategy(n))),
        fill in 0u32..=VALUE_MAX,
        ell in 0usize..=4,
        probe in proptest::collection::btree_set(0u32..=VALUE_MAX, 0..=4),
    ) {
        let table = table_over(VALUE_MAX);
        let dense_a = dense_of(&table, &a);
        let dense_b = dense_of(&table, &b);
        let generic_a = View::from_options(a.clone());

        // Interning round-trips exactly.
        prop_assert_eq!(&table.view(&dense_a), &generic_a);

        // Counts.
        prop_assert_eq!(dense_a.count_bottom(), ref_count_bottom(&a));
        prop_assert_eq!(dense_a.distinct_count(), ref_distinct(&a).len());
        prop_assert_eq!(generic_a.distinct_count(), ref_distinct(&a).len());
        for v in 0..=VALUE_MAX {
            let id = table.id_of(&v).expect("in table");
            prop_assert_eq!(dense_a.count_of(id), ref_count_of(&a, v));
            prop_assert_eq!(generic_a.count_of(&v), ref_count_of(&a, v));
        }
        prop_assert_eq!(
            dense_a.count_in(&id_set_of(&table, &probe)),
            ref_count_in(&a, &probe)
        );
        prop_assert_eq!(generic_a.count_in(&probe), ref_count_in(&a, &probe));

        // Extremes and top-ℓ selections.
        let ref_max = ref_distinct(&a).into_iter().next_back();
        prop_assert_eq!(dense_a.max_id().map(|id| *table.value(id)), ref_max);
        prop_assert_eq!(generic_a.max_value().copied(), ref_max);
        let ref_top = ref_greatest_distinct(&a, ell);
        prop_assert_eq!(resolve_ids(&table, &dense_a.greatest_distinct(ell)), ref_top.clone());
        prop_assert_eq!(generic_a.greatest_distinct(ell), ref_top.clone());
        prop_assert_eq!(dense_a.greatest_distinct_weight(ell), ref_count_in(&a, &ref_top));
        prop_assert_eq!(generic_a.greatest_distinct_weight(ell), ref_count_in(&a, &ref_top));

        // Containment, both directions.
        prop_assert_eq!(dense_a.is_contained_in(&dense_b), ref_contained(&a, &b));
        prop_assert_eq!(dense_b.is_contained_in(&dense_a), ref_contained(&b, &a));

        // Overwrite merge (the generic `merge_from` semantics).
        let merged_ref = ref_merge_overwrite(&a, &b);
        let mut merged_dense = dense_a.clone();
        merged_dense.merge_from(&dense_b);
        prop_assert_eq!(
            table.view(&merged_dense),
            View::from_options(merged_ref.clone())
        );

        // Union merge (`merge_missing_from`): for same-vector views —
        // the only way protocols merge — it agrees with overwrite; in
        // general it keeps the receiver's entries.
        let union_ref = ref_merge_union(&a, &b);
        let mut union_dense = dense_a.clone();
        union_dense.merge_missing_from(&dense_b);
        prop_assert_eq!(table.view(&union_dense), View::from_options(union_ref));

        // Completion and full-view conversion.
        let fill_id = table.id_of(&fill).expect("in table");
        prop_assert_eq!(
            table.vector(&dense_a.complete_with(fill_id)).into_entries(),
            ref_complete_with(&a, fill)
        );
        prop_assert_eq!(generic_a.complete_with(&fill).into_entries(), ref_complete_with(&a, fill));
        let ref_full: Option<Vec<u32>> = a.iter().copied().collect();
        prop_assert_eq!(
            dense_a.to_vector().map(|v| table.vector(&v).into_entries()),
            ref_full
        );
    }

    /// Every `InputVector` operation agrees with the reference (full
    /// vectors are views with no `⊥`).
    #[test]
    fn dense_vector_matches_reference(
        values in size_strategy()
            .prop_flat_map(|n| proptest::collection::vec(0u32..=VALUE_MAX, n)),
        ell in 0usize..=4,
        probe in proptest::collection::btree_set(0u32..=VALUE_MAX, 0..=4),
    ) {
        let table = table_over(VALUE_MAX);
        let generic = InputVector::new(values.clone());
        let dense = table.intern_vector(&generic);
        let as_opts: Vec<Option<u32>> = values.iter().copied().map(Some).collect();

        prop_assert_eq!(&table.vector(&dense), &generic);
        prop_assert_eq!(dense.distinct_count(), ref_distinct(&as_opts).len());
        for v in 0..=VALUE_MAX {
            let id = table.id_of(&v).expect("in table");
            prop_assert_eq!(dense.count_of(id), ref_count_of(&as_opts, v));
        }
        prop_assert_eq!(
            dense.count_in(&id_set_of(&table, &probe)),
            ref_count_in(&as_opts, &probe)
        );
        prop_assert_eq!(*table.value(dense.max_id()), *values.iter().max().expect("non-empty"));
        prop_assert_eq!(*table.value(dense.min_id()), *values.iter().min().expect("non-empty"));
        let ref_top = ref_greatest_distinct(&as_opts, ell);
        prop_assert_eq!(resolve_ids(&table, &dense.greatest_distinct(ell)), ref_top.clone());
        prop_assert_eq!(dense.greatest_distinct_weight(ell), ref_count_in(&as_opts, &ref_top));
        prop_assert_eq!(generic.greatest_distinct_weight(ell), ref_count_in(&as_opts, &ref_top));

        // The fully-observed view round-trips through both engines.
        prop_assert_eq!(table.view(&dense.to_view()), generic.to_view());
    }

    /// The `MaxCondition` dense oracle paths (membership, the analytic
    /// view predicate, Definition-4 decoding) agree with the generic
    /// oracle on random views.
    #[test]
    fn dense_oracle_matches_generic(
        entries in size_strategy().prop_flat_map(entries_strategy),
        x in 0usize..=6,
        ell in 1usize..=4,
    ) {
        use setagree::conditions::ConditionOracle;

        let params = LegalityParams::new(x, ell).expect("valid");
        let oracle = MaxCondition::new(params);
        let table = table_over(VALUE_MAX);
        let generic = View::from_options(entries.clone());
        let dense = table.intern_view(&generic);

        prop_assert_eq!(oracle.matches_dense(&dense), oracle.matches(&generic));
        prop_assert_eq!(
            oracle.decode_dense(&dense).map(|ids| resolve_ids(&table, &ids)),
            oracle.decode_view(&generic)
        );

        if let Some(full) = generic.to_vector() {
            let dense_full = table.intern_vector(&full);
            prop_assert_eq!(oracle.contains_dense(&dense_full), oracle.contains(&full));
        }
    }
}

// ---------------------------------------------------------------------
// Trace equivalence: interned executions of the four protocol families
// ---------------------------------------------------------------------

fn pattern_strategy(n: usize, t: usize) -> impl Strategy<Value = FailurePattern> {
    proptest::collection::vec((0usize..n, 1usize..=4, 0usize..=n), 0..=t).prop_map(move |crashes| {
        let mut pattern = FailurePattern::none(n);
        let mut victims = std::collections::BTreeSet::new();
        for (idx, round, prefix) in crashes {
            if victims.len() >= t || !victims.insert(idx) {
                continue;
            }
            pattern
                .crash(ProcessId::new(idx), CrashSpec::new(round, prefix))
                .expect("valid");
        }
        pattern
    })
}

const N: usize = 8;
const T: usize = 4;

fn config() -> ConditionBasedConfig {
    ConditionBasedConfig::builder(N, T, 2)
        .condition_degree(2)
        .ell(2)
        .build()
        .expect("valid")
}

/// Runs `make_raw` over `u32` proposals and `make_interned` over their
/// `ValueId`s and asserts the traces agree once ids resolve back
/// through `table`.
fn assert_interned_trace_equal<P, Q, F, G>(
    table: &ValueTable<u32>,
    make_raw: F,
    make_interned: G,
    pattern: &FailurePattern,
    limit: usize,
) where
    P: SyncProtocol<Output = u32>,
    Q: SyncProtocol<Output = ValueId>,
    F: FnOnce() -> Vec<P>,
    G: FnOnce() -> Vec<Q>,
{
    let raw: Trace<u32> = run_protocol(make_raw(), pattern, limit).expect("raw run");
    let interned: Trace<ValueId> = run_protocol(make_interned(), pattern, limit).expect("interned");
    let resolved: Vec<Outcome<u32>> = interned
        .outcomes()
        .iter()
        .map(|o| match o {
            Outcome::Decided { value, round } => Outcome::Decided {
                value: *table.value(*value),
                round: *round,
            },
            Outcome::Crashed { round } => Outcome::Crashed { round: *round },
            Outcome::Undecided => Outcome::Undecided,
        })
        .collect();
    assert_eq!(
        raw.outcomes(),
        &resolved[..],
        "interned execution diverged under {pattern}"
    );
    assert_eq!(raw.rounds_executed(), interned.rounds_executed());
    assert_eq!(raw.messages_delivered(), interned.messages_delivered());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All four protocol families produce identical traces whether they
    /// run on raw values or on interned ids — interning is invisible to
    /// protocol semantics.
    #[test]
    fn interned_traces_match_raw_traces(
        entries in proptest::collection::vec(1u32..=5, N),
        pattern in pattern_strategy(N, T),
    ) {
        let cfg = config();
        let oracle = MaxCondition::new(cfg.legality());
        let limit = cfg.round_limit();
        let table = ValueTable::from_vector(&InputVector::new(entries.clone()));
        let ids: Vec<ValueId> = entries
            .iter()
            .map(|v| table.id_of(v).expect("interned"))
            .collect();

        assert_interned_trace_equal(
            &table,
            || (0..N).map(|i| ConditionBased::new(cfg, ProcessId::new(i), entries[i], oracle)).collect::<Vec<_>>(),
            || (0..N).map(|i| ConditionBased::new(cfg, ProcessId::new(i), ids[i], oracle)).collect::<Vec<_>>(),
            &pattern,
            limit,
        );
        assert_interned_trace_equal(
            &table,
            || (0..N).map(|i| EarlyConditionBased::new(cfg, ProcessId::new(i), entries[i], oracle)).collect::<Vec<_>>(),
            || (0..N).map(|i| EarlyConditionBased::new(cfg, ProcessId::new(i), ids[i], oracle)).collect::<Vec<_>>(),
            &pattern,
            limit,
        );
        assert_interned_trace_equal(
            &table,
            || entries.iter().map(|&v| FloodSet::new(T, 2, v)).collect::<Vec<_>>(),
            || ids.iter().map(|&id| FloodSet::new(T, 2, id)).collect::<Vec<_>>(),
            &pattern,
            limit,
        );
        assert_interned_trace_equal(
            &table,
            || entries.iter().map(|&v| EarlyDeciding::new(N, T, 2, v)).collect::<Vec<_>>(),
            || ids.iter().map(|&id| EarlyDeciding::new(N, T, 2, id)).collect::<Vec<_>>(),
            &pattern,
            limit,
        );
    }

    /// The dense flood protocol (interned views, union merges) decides
    /// exactly like a generic `View<u32>` flood under every adversary.
    #[test]
    fn dense_flood_matches_generic_flood(
        entries in proptest::collection::vec(1u32..=5, N),
        pattern in pattern_strategy(N, T),
        rounds in 1usize..=4,
    ) {
        #[derive(Debug, Clone)]
        struct GenericFlood {
            rounds: usize,
            view: View<u32>,
        }
        impl SyncProtocol for GenericFlood {
            type Msg = View<u32>;
            type Output = usize;
            fn message(&mut self, _round: usize) -> Self::Msg {
                self.view.clone()
            }
            fn receive(&mut self, _round: usize, _from: ProcessId, msg: &Self::Msg) {
                self.view.merge_from(msg);
            }
            fn compute(&mut self, round: usize) -> setagree::sync::Step<usize> {
                if round >= self.rounds {
                    setagree::sync::Step::Decide(self.view.distinct_count())
                } else {
                    setagree::sync::Step::Continue
                }
            }
        }

        let vector = InputVector::new(entries.clone());
        let table = ValueTable::from_vector(&vector);
        let inputs = table.intern_vector(&vector);

        let generic: Vec<GenericFlood> = (0..N)
            .map(|i| {
                let mut view = View::all_bottom(N);
                view.set(ProcessId::new(i), entries[i]);
                GenericFlood { rounds, view }
            })
            .collect();

        let dense_trace = run_protocol(DenseFlood::system(&inputs, rounds), &pattern, rounds + 1)
            .expect("dense");
        let generic_trace = run_protocol(generic, &pattern, rounds + 1).expect("generic");
        prop_assert_eq!(dense_trace.outcomes(), generic_trace.outcomes());
        prop_assert_eq!(dense_trace.rounds_executed(), generic_trace.rounds_executed());
        prop_assert_eq!(
            dense_trace.messages_delivered(),
            generic_trace.messages_delivered()
        );
    }
}
