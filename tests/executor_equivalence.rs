//! The deterministic simulator and the real-thread runtime are
//! observationally equivalent: same decisions, same rounds, same message
//! counts. Randomized property test over the unified `Scenario` API —
//! one generated scenario, two `Executor`s, identical `Trace`s — across
//! seeds, all four protocols, and proptest-generated failure patterns.
//!
//! The asynchronous side gets the same treatment: the deprecated
//! `run_async`/`run_message_passing` shims must replay byte-identical
//! executions to `Executor::AsyncSharedMemory`/`AsyncMessagePassing` for
//! fixed seeds, and a `ScenarioSuite` grid can mix synchronous and
//! asynchronous cells.

use proptest::prelude::*;

use setagree::conditions::{LegalityParams, MaxCondition};
use setagree::core::{
    AsyncCrashes, ConditionBasedConfig, Executor, ProtocolKind, ProtocolSpec, Scenario,
    ScenarioSuite,
};
use setagree::sync::{CrashSpec, FailurePattern};
use setagree::types::{InputVector, ProcessId};

fn pattern_strategy(n: usize, t: usize) -> impl Strategy<Value = FailurePattern> {
    proptest::collection::vec((0usize..n, 1usize..=4, 0usize..=n), 0..=t).prop_map(move |crashes| {
        let mut pattern = FailurePattern::none(n);
        let mut victims = std::collections::BTreeSet::new();
        for (idx, round, prefix) in crashes {
            if victims.len() >= t || !victims.insert(idx) {
                continue;
            }
            pattern
                .crash(ProcessId::new(idx), CrashSpec::new(round, prefix))
                .expect("valid");
        }
        pattern
    })
}

/// One scenario for each of the four protocol specs, over the same
/// (n, t, k, d, ℓ) = (8, 4, 2, 2, 2) system, input and pattern.
fn scenarios(entries: Vec<u32>, pattern: &FailurePattern) -> Vec<Scenario<u32, MaxCondition>> {
    let config = ConditionBasedConfig::builder(8, 4, 2)
        .condition_degree(2)
        .ell(2)
        .build()
        .expect("valid");
    let oracle = MaxCondition::new(config.legality());
    let input = InputVector::new(entries);
    [
        ProtocolSpec::condition_based(config, oracle),
        ProtocolSpec::early_condition_based(config, oracle),
        ProtocolSpec::early_deciding(8, 4, 2),
        ProtocolSpec::flood_set(8, 4, 2),
    ]
    .into_iter()
    .map(|spec| {
        Scenario::new(spec)
            .input(input.clone())
            .pattern(pattern.clone())
    })
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline property: for every protocol, every input and every
    /// ordered failure pattern, `Executor::Simulator` and
    /// `Executor::Threaded` produce the identical `Trace`.
    #[test]
    fn executors_are_observationally_equivalent(
        entries in proptest::collection::vec(1u32..=5, 8),
        pattern in pattern_strategy(8, 4),
    ) {
        for scenario in scenarios(entries.clone(), &pattern) {
            let protocol = scenario.spec().protocol();
            let simulated = scenario
                .clone()
                .executor(Executor::Simulator)
                .run()
                .expect("simulator");
            let threaded = scenario
                .executor(Executor::Threaded)
                .run()
                .expect("threaded runtime");
            prop_assert_eq!(
                simulated.trace(),
                threaded.trace(),
                "{} diverged under {}",
                protocol,
                pattern
            );
            prop_assert_eq!(simulated.predicted_rounds(), threaded.predicted_rounds());
            prop_assert_eq!(simulated.executor(), Executor::Simulator);
            prop_assert_eq!(threaded.executor(), Executor::Threaded);
        }
    }

    /// Equivalence also survives the batch layer: a suite run on the
    /// threaded executor matches the same suite on the simulator.
    #[test]
    fn suites_agree_across_executors(
        entries in proptest::collection::vec(1u32..=9, 6),
        pattern in pattern_strategy(6, 3),
    ) {
        let build = |executor| {
            ScenarioSuite::new()
                .spec(ProtocolSpec::flood_set(6, 3, 2))
                .spec(ProtocolSpec::early_deciding(6, 3, 2))
                .input(InputVector::new(entries.clone()))
                .pattern(pattern.clone())
                .executor(executor)
                .run()
        };
        let simulated = build(Executor::Simulator);
        let threaded = build(Executor::Threaded);
        prop_assert_eq!(simulated.len(), threaded.len());
        for (s, t) in simulated.cases().iter().zip(threaded.cases()) {
            let s = s.report().expect("simulator case");
            let t = t.report().expect("threaded case");
            prop_assert_eq!(s.trace(), t.trace());
        }
    }
}

fn async_crashes_strategy(n: usize, x: usize) -> impl Strategy<Value = AsyncCrashes> {
    proptest::collection::vec((0usize..n, 0u64..=2), 0..=x).prop_map(move |crashes| {
        let mut schedule = AsyncCrashes::none();
        let mut victims = std::collections::BTreeSet::new();
        for (idx, steps) in crashes {
            if victims.len() >= x || !victims.insert(idx) {
                continue;
            }
            schedule = schedule.crash_after(ProcessId::new(idx), steps);
        }
        schedule
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The deprecated async one-call helpers are trace-identical shims:
    /// for any fixed seed, input and crash schedule they replay the
    /// byte-identical `AsyncReport` the `Executor` variants produce.
    #[test]
    #[allow(deprecated)]
    fn deprecated_async_shims_are_trace_identical(
        entries in proptest::collection::vec(1u32..=5, 6),
        crashes in async_crashes_strategy(6, 2),
        seed in any::<u64>(),
    ) {
        let params = LegalityParams::new(2, 2).expect("valid");
        let oracle = MaxCondition::new(params);
        let input = InputVector::new(entries);
        let scenario = Scenario::async_set_agreement(6, params, oracle)
            .input(input.clone())
            .pattern(crashes.clone());

        let shim = setagree::asynchronous::run_async(&oracle, 2, &input, &crashes, seed);
        let unified = scenario
            .clone()
            .executor(Executor::AsyncSharedMemory { seed })
            .run()
            .expect("valid scenario");
        prop_assert_eq!(
            unified.async_report().expect("asynchronous run"),
            &shim,
            "shared-memory shim diverged at seed {}",
            seed
        );

        let shim = setagree::asynchronous::run_message_passing(&oracle, 2, &input, &crashes, seed);
        let unified = scenario
            .executor(Executor::AsyncMessagePassing { seed })
            .run()
            .expect("valid scenario");
        prop_assert_eq!(
            unified.async_report().expect("asynchronous run"),
            &shim,
            "message-passing shim diverged at seed {}",
            seed
        );
    }
}

/// The acceptance shape of the unification: one suite grid mixing the
/// synchronous and asynchronous executors over a single condition-based
/// spec, every cell satisfying its model's guarantees.
#[test]
fn suites_mix_sync_and_async_executors() {
    let config = ConditionBasedConfig::builder(6, 3, 2)
        .condition_degree(2)
        .ell(1)
        .build()
        .expect("valid");
    let outcome = ScenarioSuite::new()
        .spec(ProtocolSpec::condition_based(
            config,
            MaxCondition::new(config.legality()),
        ))
        .input(vec![5u32, 5, 5, 2, 5, 5])
        .executors([
            Executor::Simulator,
            Executor::Threaded,
            Executor::AsyncSharedMemory { seed: 17 },
            Executor::AsyncMessagePassing { seed: 17 },
        ])
        .run();
    assert_eq!(outcome.len(), 4);
    assert!(outcome.all_ok(), "every cell satisfies its model");
    let reports: Vec<_> = outcome.reports().collect();
    // Round-based cells carry traces and predicted bounds…
    assert!(reports[0].trace().is_some());
    assert_eq!(reports[0].trace(), reports[1].trace());
    assert!(reports[0].predicted_rounds().is_some());
    // …asynchronous cells carry step reports, and check ℓ instead of k.
    assert!(reports[2].async_report().is_some());
    assert_eq!(reports[2].k(), 1);
    assert_eq!(
        reports[3].executor(),
        Executor::AsyncMessagePassing { seed: 17 }
    );
}

/// Protocol kinds are preserved through either executor (spot check, not
/// property-based: the mapping is static).
#[test]
fn protocol_kinds_round_trip() {
    let pattern = FailurePattern::none(8);
    let kinds: Vec<ProtocolKind> = scenarios(vec![1, 2, 3, 4, 5, 1, 2, 3], &pattern)
        .into_iter()
        .map(|s| s.run().expect("runs").protocol())
        .collect();
    assert_eq!(
        kinds,
        vec![
            ProtocolKind::ConditionBased,
            ProtocolKind::EarlyConditionBased,
            ProtocolKind::EarlyDeciding,
            ProtocolKind::FloodSet,
        ]
    );
}
