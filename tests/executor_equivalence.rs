//! The deterministic simulator and the real-thread runtime are
//! observationally equivalent: same decisions, same rounds, same message
//! counts, on the same protocols and failure patterns.

use proptest::prelude::*;

use setagree::conditions::MaxCondition;
use setagree::core::{ConditionBased, ConditionBasedConfig, EarlyDeciding, FloodSet};
use setagree::runtime::run_threaded;
use setagree::sync::{run_protocol, CrashSpec, FailurePattern};
use setagree::types::{InputVector, ProcessId};

fn pattern_strategy(n: usize, t: usize) -> impl Strategy<Value = FailurePattern> {
    proptest::collection::vec((0usize..n, 1usize..=4, 0usize..=n), 0..=t).prop_map(
        move |crashes| {
            let mut pattern = FailurePattern::none(n);
            let mut victims = std::collections::BTreeSet::new();
            for (idx, round, prefix) in crashes {
                if victims.len() >= t || !victims.insert(idx) {
                    continue;
                }
                pattern
                    .crash(ProcessId::new(idx), CrashSpec::new(round, prefix))
                    .expect("valid");
            }
            pattern
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn floodset_equivalence(
        entries in proptest::collection::vec(1u32..=9, 6),
        pattern in pattern_strategy(6, 3),
    ) {
        let build = || entries.iter().map(|&v| FloodSet::new(3, 2, v)).collect::<Vec<_>>();
        let simulated = run_protocol(build(), &pattern, 10).expect("simulator");
        let threaded = run_threaded(build(), &pattern, 10).expect("runtime");
        prop_assert_eq!(simulated, threaded);
    }

    #[test]
    fn condition_based_equivalence(
        entries in proptest::collection::vec(1u32..=5, 8),
        pattern in pattern_strategy(8, 4),
    ) {
        let config = ConditionBasedConfig::builder(8, 4, 2)
            .condition_degree(2)
            .ell(2)
            .build()
            .expect("valid");
        let oracle = MaxCondition::new(config.legality());
        let input = InputVector::new(entries.clone());
        let build = || {
            ProcessId::all(8)
                .map(|id| ConditionBased::new(config, id, *input.get(id), oracle))
                .collect::<Vec<_>>()
        };
        let limit = config.round_limit();
        let simulated = run_protocol(build(), &pattern, limit).expect("simulator");
        let threaded = run_threaded(build(), &pattern, limit).expect("runtime");
        prop_assert_eq!(simulated, threaded);
    }

    #[test]
    fn early_deciding_equivalence(
        entries in proptest::collection::vec(1u32..=9, 6),
        pattern in pattern_strategy(6, 4),
    ) {
        let build = || entries.iter().map(|&v| EarlyDeciding::new(6, 4, 2, v)).collect::<Vec<_>>();
        let simulated = run_protocol(build(), &pattern, 10).expect("simulator");
        let threaded = run_threaded(build(), &pattern, 10).expect("runtime");
        prop_assert_eq!(simulated, threaded);
    }
}
