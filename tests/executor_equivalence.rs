//! The deterministic simulator and the real-thread runtime are
//! observationally equivalent: same decisions, same rounds, same message
//! counts. Randomized property test over the unified `Scenario` API —
//! one generated scenario, two `Executor`s, identical `Trace`s — across
//! seeds, all four protocols, and proptest-generated failure patterns.

use proptest::prelude::*;

use setagree::conditions::MaxCondition;
use setagree::core::{
    ConditionBasedConfig, Executor, ProtocolKind, ProtocolSpec, Scenario, ScenarioSuite,
};
use setagree::sync::{CrashSpec, FailurePattern};
use setagree::types::{InputVector, ProcessId};

fn pattern_strategy(n: usize, t: usize) -> impl Strategy<Value = FailurePattern> {
    proptest::collection::vec((0usize..n, 1usize..=4, 0usize..=n), 0..=t).prop_map(move |crashes| {
        let mut pattern = FailurePattern::none(n);
        let mut victims = std::collections::BTreeSet::new();
        for (idx, round, prefix) in crashes {
            if victims.len() >= t || !victims.insert(idx) {
                continue;
            }
            pattern
                .crash(ProcessId::new(idx), CrashSpec::new(round, prefix))
                .expect("valid");
        }
        pattern
    })
}

/// One scenario for each of the four protocol specs, over the same
/// (n, t, k, d, ℓ) = (8, 4, 2, 2, 2) system, input and pattern.
fn scenarios(entries: Vec<u32>, pattern: &FailurePattern) -> Vec<Scenario<u32, MaxCondition>> {
    let config = ConditionBasedConfig::builder(8, 4, 2)
        .condition_degree(2)
        .ell(2)
        .build()
        .expect("valid");
    let oracle = MaxCondition::new(config.legality());
    let input = InputVector::new(entries);
    [
        ProtocolSpec::condition_based(config, oracle),
        ProtocolSpec::early_condition_based(config, oracle),
        ProtocolSpec::early_deciding(8, 4, 2),
        ProtocolSpec::flood_set(8, 4, 2),
    ]
    .into_iter()
    .map(|spec| {
        Scenario::new(spec)
            .input(input.clone())
            .pattern(pattern.clone())
    })
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline property: for every protocol, every input and every
    /// ordered failure pattern, `Executor::Simulator` and
    /// `Executor::Threaded` produce the identical `Trace`.
    #[test]
    fn executors_are_observationally_equivalent(
        entries in proptest::collection::vec(1u32..=5, 8),
        pattern in pattern_strategy(8, 4),
    ) {
        for scenario in scenarios(entries.clone(), &pattern) {
            let protocol = scenario.spec().protocol();
            let simulated = scenario
                .clone()
                .executor(Executor::Simulator)
                .run()
                .expect("simulator");
            let threaded = scenario
                .executor(Executor::Threaded)
                .run()
                .expect("threaded runtime");
            prop_assert_eq!(
                simulated.trace(),
                threaded.trace(),
                "{} diverged under {}",
                protocol,
                pattern
            );
            prop_assert_eq!(simulated.predicted_rounds(), threaded.predicted_rounds());
            prop_assert_eq!(simulated.executor(), Executor::Simulator);
            prop_assert_eq!(threaded.executor(), Executor::Threaded);
        }
    }

    /// Equivalence also survives the batch layer: a suite run on the
    /// threaded executor matches the same suite on the simulator.
    #[test]
    fn suites_agree_across_executors(
        entries in proptest::collection::vec(1u32..=9, 6),
        pattern in pattern_strategy(6, 3),
    ) {
        let build = |executor| {
            ScenarioSuite::new()
                .spec(ProtocolSpec::flood_set(6, 3, 2))
                .spec(ProtocolSpec::early_deciding(6, 3, 2))
                .input(InputVector::new(entries.clone()))
                .pattern(pattern.clone())
                .executor(executor)
                .run()
        };
        let simulated = build(Executor::Simulator);
        let threaded = build(Executor::Threaded);
        prop_assert_eq!(simulated.len(), threaded.len());
        for (s, t) in simulated.cases().iter().zip(threaded.cases()) {
            let s = s.report().expect("simulator case");
            let t = t.report().expect("threaded case");
            prop_assert_eq!(s.trace(), t.trace());
        }
    }
}

/// Protocol kinds are preserved through either executor (spot check, not
/// property-based: the mapping is static).
#[test]
fn protocol_kinds_round_trip() {
    let pattern = FailurePattern::none(8);
    let kinds: Vec<ProtocolKind> = scenarios(vec![1, 2, 3, 4, 5, 1, 2, 3], &pattern)
        .into_iter()
        .map(|s| s.run().expect("runs").protocol())
        .collect();
    assert_eq!(
        kinds,
        vec![
            ProtocolKind::ConditionBased,
            ProtocolKind::EarlyConditionBased,
            ProtocolKind::EarlyDeciding,
            ProtocolKind::FloodSet,
        ]
    );
}
