//! Fuzz-grade proptest battery for the observability layer (same bar
//! as `tests/journal_roundtrip.rs`): the histogram's log-bucket mapping
//! is monotone and exhaustive, snapshot merging is commutative and
//! histogram merging associative, every snapshot survives
//! [`SnapshotCodec`] encode → decode → re-encode **byte-identically**,
//! the `METRIC` line form round-trips, and decoding arbitrary or
//! corrupted bytes never panics.

use proptest::prelude::*;

use setagree::codec::SnapshotCodec;
use setagree::obs::{
    bucket_index, bucket_upper_bound, HistogramData, MetricValue, Snapshot, SnapshotEntry, BUCKETS,
};

fn histogram_strategy() -> impl Strategy<Value = HistogramData> {
    (
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec((0u8..BUCKETS as u8, 1u64..=u64::MAX), 0..6),
    )
        .prop_map(|(count, sum, pairs)| {
            // Last write per bucket index wins; BTreeMap gives the sorted,
            // duplicate-free form every live histogram snapshot has.
            let buckets: std::collections::BTreeMap<u8, u64> = pairs.into_iter().collect();
            HistogramData {
                count,
                sum,
                buckets: buckets.into_iter().collect(),
            }
        })
}

fn value_strategy() -> impl Strategy<Value = MetricValue> {
    (0u8..3, any::<u64>(), any::<i64>(), histogram_strategy()).prop_map(
        |(kind, counter, gauge, histogram)| match kind {
            0 => MetricValue::Counter(counter),
            1 => MetricValue::Gauge(gauge),
            _ => MetricValue::Histogram(histogram),
        },
    )
}

/// Metric-name and label pools: a small alphabet forces same-key
/// collisions (exercising `add_entry`'s merge path) while still
/// covering distinct names, empty label values, and `:`-bearing values
/// like the live `faults 51966:1500` summaries.
const NAMES: [&str; 6] = [
    "suite_cache_hits",
    "tcp_frames_sent",
    "node_round_duration_us",
    "pool_handoff_wait_us",
    "fault_messages_dropped",
    "x",
];
const LABEL_KEYS: [&str; 3] = ["kind", "peer", "tier"];
const LABEL_VALS: [&str; 4] = ["msg", "resend", "51966:1500", ""];

fn entry_strategy() -> impl Strategy<Value = SnapshotEntry> {
    let label = (0usize..LABEL_KEYS.len(), 0usize..LABEL_VALS.len())
        .prop_map(|(k, v)| (LABEL_KEYS[k].to_string(), LABEL_VALS[v].to_string()));
    (
        (0usize..NAMES.len()).prop_map(|i| NAMES[i].to_string()),
        proptest::collection::vec(label, 0..3),
        value_strategy(),
    )
        .prop_map(|(name, labels, value)| SnapshotEntry {
            name,
            labels,
            value,
        })
}

/// Arbitrary snapshots: entries folded through `add_entry`, so same-key
/// collisions merge exactly as live registry snapshots and harness
/// folds do.
fn snapshot_strategy() -> impl Strategy<Value = Snapshot> {
    proptest::collection::vec(entry_strategy(), 0..10).prop_map(|entries| {
        let mut snapshot = Snapshot::new();
        for entry in entries {
            snapshot.add_entry(entry);
        }
        snapshot
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The log-bucket mapping is monotone: a larger value never lands
    /// in a smaller bucket, and every value lands within its bucket's
    /// bounds.
    #[test]
    fn bucketing_is_monotone_and_exhaustive(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
        let i = bucket_index(a);
        prop_assert!(i < BUCKETS);
        prop_assert!(a <= bucket_upper_bound(i));
        if i > 0 {
            prop_assert!(a > bucket_upper_bound(i - 1));
        }
    }

    /// Histogram merging is associative: folding child histograms in
    /// any grouping yields the same aggregate.
    #[test]
    fn histogram_merge_is_associative(
        a in histogram_strategy(),
        b in histogram_strategy(),
        c in histogram_strategy(),
    ) {
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Snapshot merging is commutative: the testnet harness may fold
    /// child reports in any order.
    #[test]
    fn snapshot_merge_is_commutative(a in snapshot_strategy(), b in snapshot_strategy()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// Every snapshot survives the binary codec byte-identically:
    /// encode → decode reproduces the value, re-encode reproduces the
    /// bytes (canonical form).
    #[test]
    fn snapshots_round_trip_byte_identically(snapshot in snapshot_strategy()) {
        let bytes = SnapshotCodec::encode(&snapshot);
        let decoded = match SnapshotCodec::decode(&bytes) {
            Ok(decoded) => decoded,
            Err(e) => return Err(TestCaseError::Fail(format!("decode failed: {e}"))),
        };
        prop_assert_eq!(&decoded, &snapshot);
        prop_assert_eq!(SnapshotCodec::encode(&decoded), bytes, "byte-identical re-encode");
    }

    /// The `METRIC` line form round-trips: a child's printed lines fold
    /// back into the identical snapshot.
    #[test]
    fn metric_lines_round_trip(snapshot in snapshot_strategy()) {
        let mut folded = Snapshot::new();
        for line in snapshot.to_lines() {
            let entry = Snapshot::parse_line(&line)
                .ok_or_else(|| TestCaseError::Fail("own line failed to parse".into()))?;
            folded.add_entry(entry);
        }
        prop_assert_eq!(folded, snapshot);
    }

    /// Decoding arbitrary bytes returns an error or a value — never a
    /// panic — whatever the length or content.
    #[test]
    fn decoding_arbitrary_bytes_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..=300),
    ) {
        let _ = SnapshotCodec::decode(&bytes);
    }

    /// Flipping any single byte of a valid encoding decodes to an error
    /// or some snapshot — never a panic.
    #[test]
    fn flipped_encodings_never_panic(
        snapshot in snapshot_strategy(),
        position in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let mut bytes = SnapshotCodec::encode(&snapshot);
        if bytes.is_empty() {
            return Ok(());
        }
        let at = position % bytes.len();
        bytes[at] ^= mask;
        let _ = SnapshotCodec::decode(&bytes);
    }
}
