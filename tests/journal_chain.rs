//! Chain-integrity battery for the hash-chained execution journal:
//!
//! * **any single-byte flip is detected** — replay stops at exactly the
//!   damaged record, yields exactly the intact prefix, and reports the
//!   damage (flips in the header's version field are surfaced through
//!   `Cursor::version`, which the cache layer treats as a cold file);
//! * **truncation at any offset yields exactly the valid prefix** —
//!   with a clean tail precisely when the cut lands on a record
//!   boundary (a crash *between* appends loses nothing and looks like a
//!   shorter, intact journal — the crash-grained durability contract);
//! * **crash-resume end to end** — a suite run whose journal loses its
//!   final record mid-write resumes by re-executing only the missing
//!   cell, and the merged report is byte-identical to an uninterrupted
//!   run's.

use std::sync::Arc;

use proptest::prelude::*;

use setagree::codec::journal::{Cursor, JournalTail, JournalWriter, HEADER_LEN};
use setagree::conditions::MaxCondition;
use setagree::core::{ConditionBasedConfig, Executor, ProtocolSpec, ScenarioSuite, SuiteCache};
use setagree::sync::FailurePattern;
use setagree::types::InputVector;

/// Length prefix (4) plus chain hash (16) around every payload.
const RECORD_OVERHEAD: usize = 20;

const VERSION: u32 = 7;

fn journal(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut writer = JournalWriter::create(Vec::new(), VERSION).expect("vec sink");
    for p in payloads {
        writer.append(p).expect("vec sink");
    }
    writer.into_inner()
}

/// The byte offset where each record *ends* (exclusive), header first.
fn boundaries(payloads: &[Vec<u8>]) -> Vec<usize> {
    let mut ends = vec![HEADER_LEN];
    for p in payloads {
        ends.push(ends.last().unwrap() + RECORD_OVERHEAD + p.len());
    }
    ends
}

fn payload_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..=40), 1..=6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Flip any single byte anywhere in a journal: the replay recovers
    /// exactly the records before the damage and reports the rest.
    #[test]
    fn any_single_byte_flip_is_detected_at_the_right_record(
        payloads in payload_strategy(),
        position in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let good = journal(&payloads);
        let at = position % good.len();
        let mut bad = good.clone();
        bad[at] ^= mask;

        let mut cursor = Cursor::new(&bad);
        let replayed: Vec<Vec<u8>> = cursor.by_ref().map(<[u8]>::to_vec).collect();
        let tail = cursor.tail().expect("ended");

        if at < HEADER_LEN - 4 {
            // Magic damage: corruption at record 0, nothing replayed.
            prop_assert_eq!(
                tail,
                JournalTail::Corrupted { record: 0, offset: 0, reason: "bad magic" }
            );
            prop_assert!(replayed.is_empty());
        } else if at < HEADER_LEN {
            // Version damage: the chain itself still verifies, but the
            // version no longer matches what the writer wrote — the
            // cache layer reloads such a file as cold, serving nothing.
            prop_assert_ne!(cursor.version(), Some(VERSION));
        } else {
            // Body damage: the first record whose bytes include `at`.
            let ends = boundaries(&payloads);
            let damaged = ends.iter().skip(1).position(|&end| at < end).expect("inside");
            prop_assert_eq!(replayed.len(), damaged, "exactly the intact prefix");
            prop_assert_eq!(&replayed, &payloads[..damaged]);
            prop_assert!(!tail.is_clean(), "damage reported, not served");
            match tail {
                JournalTail::Corrupted { record, offset, .. }
                | JournalTail::Truncated { record, offset } => {
                    prop_assert_eq!(record, damaged);
                    prop_assert_eq!(offset, ends[damaged]);
                }
                JournalTail::Clean => unreachable!("checked above"),
            }
            prop_assert_eq!(cursor.valid_len(), ends[damaged]);
        }
    }

    /// Truncate a journal at any offset: the replay yields exactly the
    /// records that fit, with a clean tail precisely when the cut lands
    /// on a record boundary.
    #[test]
    fn truncation_at_any_offset_yields_exactly_the_valid_prefix(
        payloads in payload_strategy(),
        position in any::<usize>(),
    ) {
        let whole = journal(&payloads);
        let cut = position % (whole.len() + 1);
        let mut cursor = Cursor::new(&whole[..cut]);
        let replayed: Vec<Vec<u8>> = cursor.by_ref().map(<[u8]>::to_vec).collect();
        let tail = cursor.tail().expect("ended");

        if cut < HEADER_LEN {
            prop_assert_eq!(tail, JournalTail::Truncated { record: 0, offset: 0 });
            prop_assert!(replayed.is_empty());
        } else {
            let ends = boundaries(&payloads);
            let complete = ends.iter().skip(1).filter(|&&end| end <= cut).count();
            prop_assert_eq!(replayed.len(), complete);
            prop_assert_eq!(&replayed, &payloads[..complete]);
            prop_assert_eq!(cursor.valid_len(), ends[complete]);
            let on_boundary = ends[complete] == cut;
            prop_assert_eq!(
                tail.is_clean(),
                on_boundary,
                "clean exactly on record boundaries; tail = {:?}, cut = {}",
                tail,
                cut
            );
            if !on_boundary {
                prop_assert_eq!(
                    tail,
                    JournalTail::Truncated { record: complete, offset: ends[complete] }
                );
            }
        }
    }
}

const N: usize = 6;

/// A mixed synchronous/asynchronous grid, the same shape every call.
fn grid() -> ScenarioSuite<u32, MaxCondition> {
    let config = ConditionBasedConfig::builder(N, 3, 2)
        .condition_degree(2)
        .ell(1)
        .build()
        .expect("valid");
    ScenarioSuite::new()
        .spec(ProtocolSpec::condition_based(
            config,
            MaxCondition::new(config.legality()),
        ))
        .spec(ProtocolSpec::flood_set(N, 3, 2))
        .input(InputVector::new(vec![5u32, 5, 1, 2, 5, 5]))
        .input(InputVector::new(vec![9u32, 9, 9, 1, 2, 3]))
        .pattern(FailurePattern::none(N))
        .pattern(FailurePattern::staircase(N, 3, 2))
        .executor(Executor::Simulator)
        .executor(Executor::AsyncSharedMemory { seed: 11 })
}

/// The acceptance shape end to end: run a suite journaled, kill the
/// writer mid-record (simulated by truncating the file inside its last
/// record), reopen, and observe the resumed run execute *only* the
/// missing cell and merge into a report byte-identical to an
/// uninterrupted run's.
#[test]
fn crash_resume_executes_only_missing_cells_and_merges_identically() {
    let path = std::env::temp_dir().join("setagree-journal-crash-resume");
    let _ = std::fs::remove_file(&path);

    // The uninterrupted baseline.
    let baseline = grid().cache(&Arc::new(SuiteCache::new())).run();
    let cells = baseline.len();
    assert_eq!(cells, 2 * 2 * 2 * 2);

    // The journaled cold run: every miss lands in the file as it
    // completes.
    let cache = Arc::new(SuiteCache::new());
    let stats = cache.resume_journal(&path).expect("fresh journal");
    assert_eq!((stats.recovered, stats.tail), (0, JournalTail::Clean));
    let cold = grid().cache(&cache).run();
    assert_eq!(cold.cache_misses() as usize, cells);
    assert_eq!(cache.journal_error(), None);
    drop(cache);

    // The crash: the writer dies mid-append, leaving a torn final
    // record (every record carries ≥ 20 bytes of framing, so cutting 9
    // always lands inside the last one).
    let bytes = std::fs::read(&path).expect("journal written");
    std::fs::write(&path, &bytes[..bytes.len() - 9]).expect("simulate torn write");

    // The resume: the verified prefix is replayed, the torn record is
    // reported and re-executed — nothing else runs.
    let resumed_cache = Arc::new(SuiteCache::new());
    let stats = resumed_cache.resume_journal(&path).expect("resumable");
    assert_eq!(stats.recovered, cells - 1, "all but the torn record");
    assert!(
        matches!(stats.tail, JournalTail::Truncated { record, .. } if record == cells - 1),
        "torn tail reported at the right record: {:?}",
        stats.tail
    );
    let resumed = grid().cache(&resumed_cache).run();
    assert_eq!(resumed.cache_misses(), 1, "only the lost cell re-executes");
    assert_eq!(resumed.cache_hits() as usize, cells - 1);
    assert_eq!(
        format!("{:?}", resumed.cases()),
        format!("{:?}", baseline.cases()),
        "merged report byte-identical to the uninterrupted run"
    );
    drop(resumed_cache);

    // The re-executed cell was re-journaled: a third open replays the
    // complete set cleanly.
    let whole = Arc::new(SuiteCache::<u32>::new());
    let stats = whole.resume_journal(&path).expect("healed journal");
    assert_eq!((stats.recovered, stats.tail), (cells, JournalTail::Clean));
    let warm = grid().cache(&whole).run();
    assert_eq!(warm.cache_misses(), 0);
    assert_eq!(warm.cache_hits() as usize, cells);
    std::fs::remove_file(&path).expect("cleanup");
}
