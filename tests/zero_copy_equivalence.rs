//! The zero-copy broadcast path is a pure optimization: delivering each
//! sender's one owned message to all recipients by reference (simulator)
//! or behind one `Arc` (threaded runtime) must be observationally
//! identical to the seed engine's clone-per-recipient semantics.
//!
//! The reference implementation below is a line-for-line port of the seed
//! `run_with_policy` loop that still deep-clones every message for every
//! recipient; the property tests sweep seeded adversaries over every
//! protocol family and assert byte-identical [`Trace`]s — same outcomes,
//! same rounds, same `messages_delivered` counts — from the reference
//! engine, the zero-copy simulator, and the `Arc`-fan-out threaded
//! runtime.

use proptest::prelude::*;

use setagree::conditions::MaxCondition;
use setagree::core::{
    ConditionBased, ConditionBasedConfig, EarlyConditionBased, EarlyDeciding, Executor, FloodSet,
    Scenario,
};
use setagree::runtime::run_threaded;
use setagree::sync::{run_protocol, CrashSpec, FailurePattern, Outcome, Step, SyncProtocol, Trace};
use setagree::types::{InputVector, ProcessId, View};

/// The seed engine, verbatim, with the per-recipient deep clone the
/// zero-copy rework removed: every delivery clones the sender's message
/// and hands the clone to the recipient.
fn run_protocol_cloning<P>(
    processes: Vec<P>,
    pattern: &FailurePattern,
    max_rounds: usize,
) -> Trace<P::Output>
where
    P: SyncProtocol,
    P::Msg: Clone,
{
    let n = processes.len();
    assert_eq!(n, pattern.system_size(), "size mismatch");

    let mut procs = processes;
    let mut outcomes: Vec<Option<Outcome<P::Output>>> = (0..n).map(|_| None).collect();
    let mut messages_delivered: u64 = 0;
    let mut rounds_executed = 0;

    for round in 1..=max_rounds {
        let active: Vec<usize> = (0..n).filter(|&i| outcomes[i].is_none()).collect();
        if active.is_empty() {
            break;
        }
        rounds_executed = round;

        let mut sends: Vec<(usize, P::Msg, bool)> = Vec::with_capacity(active.len());
        for &i in &active {
            let crashing_now = pattern.spec(ProcessId::new(i)).map(|s| s.round) == Some(round);
            let msg = procs[i].message(round);
            sends.push((i, msg, crashing_now));
        }

        for &(sender, ref msg, crashing_now) in &sends {
            let prefix = pattern
                .spec(ProcessId::new(sender))
                .map(|s| s.after_sends)
                .unwrap_or(0);
            for recipient in 0..n {
                if outcomes[recipient].is_some() {
                    continue;
                }
                if crashing_now && recipient >= prefix {
                    continue;
                }
                // The seed semantics under test: one deep clone per
                // recipient.
                let copy = msg.clone();
                procs[recipient].receive(round, ProcessId::new(sender), &copy);
                messages_delivered += 1;
            }
        }

        for &i in &active {
            if pattern.spec(ProcessId::new(i)).map(|s| s.round) == Some(round) {
                outcomes[i] = Some(Outcome::Crashed { round });
            }
        }

        for &i in &active {
            if outcomes[i].is_some() {
                continue;
            }
            if let Step::Decide(value) = procs[i].compute(round) {
                outcomes[i] = Some(Outcome::Decided { value, round });
            }
        }
    }

    let outcomes = outcomes
        .into_iter()
        .map(|o| o.expect("round limit exceeded in reference engine"))
        .collect();
    Trace::from_parts(outcomes, rounds_executed, messages_delivered)
}

/// A flood protocol with a *heavy* message — the full `View<u32>` the
/// paper's protocols broadcast — merging in place and deciding once its
/// view shows enough distinct values (a per-round check on
/// `View::distinct_count`, the clone-free count) or the round budget
/// runs out.
#[derive(Debug, Clone)]
struct ViewFlood {
    rounds: usize,
    target_distinct: usize,
    view: View<u32>,
}

impl ViewFlood {
    fn new(me: usize, n: usize, input: u32, rounds: usize, target_distinct: usize) -> Self {
        let mut view = View::all_bottom(n);
        view.set(ProcessId::new(me), input);
        ViewFlood {
            rounds,
            target_distinct,
            view,
        }
    }
}

impl SyncProtocol for ViewFlood {
    type Msg = View<u32>;
    type Output = View<u32>;

    fn message(&mut self, _round: usize) -> View<u32> {
        self.view.clone()
    }

    fn receive(&mut self, _round: usize, _from: ProcessId, msg: &View<u32>) {
        self.view.merge_from(msg);
    }

    fn compute(&mut self, round: usize) -> Step<View<u32>> {
        if round >= self.rounds || self.view.distinct_count() >= self.target_distinct {
            Step::Decide(self.view.clone())
        } else {
            Step::Continue
        }
    }
}

fn pattern_strategy(n: usize, t: usize) -> impl Strategy<Value = FailurePattern> {
    proptest::collection::vec((0usize..n, 1usize..=4, 0usize..=n), 0..=t).prop_map(move |crashes| {
        let mut pattern = FailurePattern::none(n);
        let mut victims = std::collections::BTreeSet::new();
        for (idx, round, prefix) in crashes {
            if victims.len() >= t || !victims.insert(idx) {
                continue;
            }
            pattern
                .crash(ProcessId::new(idx), CrashSpec::new(round, prefix))
                .expect("valid");
        }
        pattern
    })
}

const N: usize = 8;
const T: usize = 4;

fn config() -> ConditionBasedConfig {
    ConditionBasedConfig::builder(N, T, 2)
        .condition_degree(2)
        .ell(2)
        .build()
        .expect("valid")
}

fn assert_all_equal<P, F>(make: F, pattern: &FailurePattern, limit: usize) -> Trace<P::Output>
where
    P: SyncProtocol + Send + 'static,
    P::Msg: Clone + Send + Sync,
    P::Output: Clone + Ord + std::fmt::Debug + Send,
    F: Fn() -> Vec<P>,
{
    let reference = run_protocol_cloning(make(), pattern, limit);
    let zero_copy = run_protocol(make(), pattern, limit).expect("simulator");
    let threaded = run_threaded(make(), pattern, limit).expect("threaded runtime");
    assert_eq!(
        reference, zero_copy,
        "zero-copy simulator diverged from clone-based semantics under {pattern}"
    );
    assert_eq!(
        reference, threaded,
        "Arc-broadcast runtime diverged from clone-based semantics under {pattern}"
    );
    assert_eq!(
        reference.messages_delivered(),
        zero_copy.messages_delivered()
    );
    assert_eq!(
        reference.messages_delivered(),
        threaded.messages_delivered()
    );
    reference
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every protocol family, every seeded adversary: the reference
    /// clone-based engine, the zero-copy simulator and the threaded
    /// runtime produce identical traces.
    #[test]
    fn zero_copy_matches_cloning_semantics(
        entries in proptest::collection::vec(1u32..=5, N),
        pattern in pattern_strategy(N, T),
    ) {
        let cfg = config();
        let oracle = MaxCondition::new(cfg.legality());
        let limit = cfg.round_limit();

        assert_all_equal(
            || {
                (0..N)
                    .map(|i| {
                        ConditionBased::new(cfg, ProcessId::new(i), entries[i], oracle)
                    })
                    .collect::<Vec<_>>()
            },
            &pattern,
            limit,
        );
        assert_all_equal(
            || {
                (0..N)
                    .map(|i| {
                        EarlyConditionBased::new(cfg, ProcessId::new(i), entries[i], oracle)
                    })
                    .collect::<Vec<_>>()
            },
            &pattern,
            limit,
        );
        assert_all_equal(
            || entries.iter().map(|&v| EarlyDeciding::new(N, T, 2, v)).collect::<Vec<_>>(),
            &pattern,
            limit,
        );
        assert_all_equal(
            || entries.iter().map(|&v| FloodSet::new(T, 2, v)).collect::<Vec<_>>(),
            &pattern,
            limit,
        );
        // The heavy-message flood: the shape whose per-recipient clones
        // the zero-copy path actually eliminates.
        let distinct = InputVector::new(entries.clone()).distinct_count();
        assert_all_equal(
            || {
                (0..N)
                    .map(|i| ViewFlood::new(i, N, entries[i], 4, distinct))
                    .collect::<Vec<_>>()
            },
            &pattern,
            6,
        );
    }

    /// Report-level equivalence through the `Scenario` front door: both
    /// executors report the same decisions, rounds and delivery counts.
    #[test]
    fn reports_carry_identical_delivery_counts(
        entries in proptest::collection::vec(1u32..=5, N),
        pattern in pattern_strategy(N, T),
    ) {
        let cfg = config();
        let oracle = MaxCondition::new(cfg.legality());
        let scenario = Scenario::condition_based(cfg, oracle)
            .input(InputVector::new(entries))
            .pattern(pattern.clone());
        let simulated = scenario.clone().executor(Executor::Simulator).run().expect("simulator");
        let threaded = scenario.executor(Executor::Threaded).run().expect("threaded");
        prop_assert_eq!(simulated.trace(), threaded.trace());
        let (s, t) = (
            simulated.trace().expect("round-based"),
            threaded.trace().expect("round-based"),
        );
        prop_assert_eq!(s.messages_delivered(), t.messages_delivered());
        prop_assert_eq!(s.rounds_executed(), t.rounds_executed());
        prop_assert_eq!(s.outcomes(), t.outcomes());
    }
}
