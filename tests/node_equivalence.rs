//! The networked loopback tier is observationally equivalent to the
//! deterministic simulator: real node tasks, a kill-based crash
//! adversary — and the identical `Trace` (decisions, rounds, message
//! deliveries) for every protocol, input and ordered failure pattern.
//!
//! The equivalence is the networked tier's correctness anchor: the kill
//! (a victim's task genuinely leaving the round structure, its channel
//! closing) must be indistinguishable from the simulator's modelled
//! crash. The suite also pins the wire layer: the length-prefixed frame
//! codec round-trips every frame, and `Frame::decode` never panics on
//! arbitrary bytes.

use proptest::prelude::*;

use setagree::conditions::MaxCondition;
use setagree::core::{
    ConditionBasedConfig, Executor, ExperimentError, ProtocolSpec, Scenario, TransportKind,
};
use setagree::node::{Frame, FrameError, FrameKind, MAX_FRAME_LEN};
use setagree::sync::{CrashSpec, FailurePattern, Outcome};
use setagree::types::{InputVector, ProcessId};

const LOOPBACK: Executor = Executor::Networked {
    transport: TransportKind::Loopback,
};

fn pattern_strategy(n: usize, t: usize) -> impl Strategy<Value = FailurePattern> {
    proptest::collection::vec((0usize..n, 1usize..=4, 0usize..=n), 0..=t).prop_map(move |crashes| {
        let mut pattern = FailurePattern::none(n);
        let mut victims = std::collections::BTreeSet::new();
        for (idx, round, prefix) in crashes {
            if victims.len() >= t || !victims.insert(idx) {
                continue;
            }
            pattern
                .crash(ProcessId::new(idx), CrashSpec::new(round, prefix))
                .expect("valid");
        }
        pattern
    })
}

/// One scenario for each of the four protocol specs, over the same
/// (n, t, k, d, ℓ) = (8, 4, 2, 2, 2) system, input and pattern.
fn scenarios(entries: Vec<u32>, pattern: &FailurePattern) -> Vec<Scenario<u32, MaxCondition>> {
    let config = ConditionBasedConfig::builder(8, 4, 2)
        .condition_degree(2)
        .ell(2)
        .build()
        .expect("valid");
    let oracle = MaxCondition::new(config.legality());
    let input = InputVector::new(entries);
    [
        ProtocolSpec::condition_based(config, oracle),
        ProtocolSpec::early_condition_based(config, oracle),
        ProtocolSpec::early_deciding(8, 4, 2),
        ProtocolSpec::flood_set(8, 4, 2),
    ]
    .into_iter()
    .map(|spec| {
        Scenario::new(spec)
            .input(input.clone())
            .pattern(pattern.clone())
    })
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline property: for every protocol, every input and every
    /// ordered failure pattern, `Executor::Simulator` and the networked
    /// loopback tier produce the identical `Trace` — same outcomes, same
    /// `rounds_executed`, same `messages_delivered` — even though the
    /// loopback victims are genuinely killed, not simulated.
    #[test]
    fn loopback_nodes_match_the_simulator(
        entries in proptest::collection::vec(1u32..=5, 8),
        pattern in pattern_strategy(8, 4),
    ) {
        for scenario in scenarios(entries.clone(), &pattern) {
            let protocol = scenario.spec().protocol();
            let simulated = scenario
                .clone()
                .executor(Executor::Simulator)
                .run()
                .expect("simulator");
            let networked = scenario
                .executor(LOOPBACK)
                .run()
                .expect("loopback nodes");
            prop_assert_eq!(
                simulated.trace(),
                networked.trace(),
                "{} diverged under {}",
                protocol,
                pattern
            );
            prop_assert_eq!(simulated.predicted_rounds(), networked.predicted_rounds());
            prop_assert_eq!(networked.executor(), LOOPBACK);
            prop_assert_eq!(networked.executor().label(), "networked-loopback");
        }
    }

    /// Every frame the transport can form survives an encode → decode
    /// round trip, and decoding reports exactly the encoded length —
    /// including the self-healing tier's `Resend` and `Relay` kinds.
    #[test]
    fn frames_round_trip(
        kind in (0u8..5).prop_map(|code| match code {
            0 => FrameKind::Hello,
            1 => FrameKind::Msg,
            2 => FrameKind::Settled,
            3 => FrameKind::Resend,
            _ => FrameKind::Relay,
        }),
        from in 0usize..64,
        round in 0usize..=(u32::MAX as usize),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let frame = Frame {
            kind,
            from: ProcessId::new(from),
            round,
            payload,
        };
        let bytes = frame.encode();
        let (decoded, used) = Frame::decode(&bytes).expect("round trip");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, frame);
    }

    /// `Frame::decode` accepts arbitrary bytes without panicking; when it
    /// does produce a frame, the frame re-encodes to exactly the bytes it
    /// consumed — decoding never invents or drops wire data.
    #[test]
    fn decode_handles_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        match Frame::decode(&bytes) {
            Ok((frame, used)) => {
                prop_assert!(used <= bytes.len());
                prop_assert_eq!(frame.encode(), &bytes[..used]);
            }
            Err(FrameError::Oversized { len }) => prop_assert!(len > MAX_FRAME_LEN),
            Err(_) => {}
        }
    }

    /// A `Relay` frame with an arbitrary (possibly truncated) payload
    /// never panics the reader: `relay_parts` yields the original sender
    /// and body only when the payload actually carries the 4-byte sender
    /// prefix, and a short payload is a clean `None` — the transport
    /// drops the malformed relay instead of crashing mid-round.
    #[test]
    fn truncated_relay_payloads_are_rejected_not_panicked(
        from in 0usize..64,
        round in 0usize..1000,
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let frame = Frame {
            kind: FrameKind::Relay,
            from: ProcessId::new(from),
            round,
            payload,
        };
        match frame.relay_parts() {
            Some((_, body)) => {
                prop_assert!(frame.payload.len() >= 4);
                prop_assert_eq!(body.len(), frame.payload.len() - 4);
            }
            None => prop_assert!(frame.payload.len() < 4),
        }
    }
}

/// The kill is real and the bookkeeping still matches: victims come back
/// as `Outcome::Crashed` at their scheduled round, survivors decide, and
/// the simulator agrees on all of it.
#[test]
fn killed_nodes_report_their_scheduled_round() {
    let mut pattern = FailurePattern::none(6);
    pattern
        .crash(ProcessId::new(1), CrashSpec::new(1, 2))
        .expect("valid");
    pattern
        .crash(ProcessId::new(4), CrashSpec::new(2, 0))
        .expect("valid");
    let scenario = Scenario::flood_set(6, 3, 1)
        .input(vec![3u32, 9, 1, 4, 7, 2])
        .pattern(pattern);
    let networked = scenario.clone().executor(LOOPBACK).run().expect("nodes");
    let simulated = scenario
        .executor(Executor::Simulator)
        .run()
        .expect("simulator");
    let trace = networked.trace().expect("round-based run");
    assert_eq!(trace.outcomes()[1], Outcome::Crashed { round: 1 });
    assert_eq!(trace.outcomes()[4], Outcome::Crashed { round: 2 });
    assert_eq!(trace.crashed_count(), 2);
    assert_eq!(networked.trace(), simulated.trace());
    assert!(networked.satisfies_all());
}

/// `Scenario::run` executes in-process tiers only: the TCP transport
/// needs real node processes (the testnet harness), and saying so is the
/// API's job.
#[test]
fn tcp_through_scenario_is_rejected() {
    let err = Scenario::flood_set(4, 2, 1)
        .input(vec![3u32, 9, 1, 4])
        .executor(Executor::Networked {
            transport: TransportKind::Tcp,
        })
        .run()
        .unwrap_err();
    assert!(matches!(
        err,
        ExperimentError::UnsupportedTransport {
            transport: TransportKind::Tcp
        }
    ));
    assert!(err.to_string().contains("testnet"));
}
