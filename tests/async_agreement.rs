//! Integration tests for the asynchronous side (Section 4): the
//! condition-based ℓ-set agreement on simulated shared memory under
//! proptest-generated inputs, schedules and crash sets — driven through
//! the unified `Scenario`/`Executor` API (the seed rides in the
//! executor).

use proptest::prelude::*;

use setagree::conditions::{LegalityParams, MaxCondition};
use setagree::core::{AsyncCrashes, Executor, Scenario};
use setagree::types::{InputVector, ProcessId};

#[derive(Debug, Clone)]
struct AsyncScenario {
    x: usize,
    ell: usize,
    input: InputVector<u32>,
    crashes: AsyncCrashes,
    seed: u64,
}

impl AsyncScenario {
    fn run_on(&self, executor: Executor) -> setagree::core::Report<u32> {
        let params = LegalityParams::new(self.x, self.ell).expect("ℓ ≥ 1");
        Scenario::async_set_agreement(self.input.len(), params, MaxCondition::new(params))
            .input(self.input.clone())
            .pattern(self.crashes.clone())
            .executor(executor)
            .run()
            .expect("valid asynchronous scenario")
    }
}

fn async_scenario() -> impl Strategy<Value = AsyncScenario> {
    (5usize..=10)
        .prop_flat_map(|n| (Just(n), 1usize..n.min(4), 1usize..=2))
        .prop_flat_map(|(n, x, ell)| {
            let inputs = proptest::collection::vec(1u32..=5, n);
            let crash_set = proptest::collection::vec((0usize..n, 0u64..=2), 0..=x);
            (Just(x), Just(ell), inputs, crash_set, any::<u64>())
        })
        .prop_map(|(x, ell, entries, crash_set, seed)| {
            let mut crashes = AsyncCrashes::none();
            let mut victims = std::collections::BTreeSet::new();
            for (idx, steps) in crash_set {
                if victims.len() >= x || !victims.insert(idx) {
                    continue;
                }
                crashes = crashes.crash_after(ProcessId::new(idx), steps);
            }
            AsyncScenario {
                x,
                ell,
                input: InputVector::new(entries),
                crashes,
                seed,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Safety always: at most ℓ distinct values decided, all proposed —
    /// whatever the schedule, crashes, and condition membership.
    #[test]
    fn async_safety_universal(s in async_scenario()) {
        let report = s.run_on(Executor::AsyncSharedMemory { seed: s.seed });
        prop_assert!(report.satisfies_agreement(), "agreement: {report}");
        prop_assert!(report.satisfies_validity(), "validity: {report}");
    }

    /// Liveness when the paper promises it: input in the condition and at
    /// most x crashes ⇒ every correct process decides.
    #[test]
    fn async_termination_in_condition(s in async_scenario()) {
        let params = LegalityParams::new(s.x, s.ell).expect("ℓ ≥ 1");
        let oracle = MaxCondition::new(params);
        prop_assume!(oracle.contains(&s.input));
        let report = s.run_on(Executor::AsyncSharedMemory { seed: s.seed });
        prop_assert!(report.satisfies_termination(), "termination: {report}");
    }

    /// The message-passing substrate keeps the Section 4 guarantees for
    /// inputs in the condition, under proptest-generated schedules.
    #[test]
    fn message_passing_in_condition_guarantees(s in async_scenario()) {
        let params = LegalityParams::new(s.x, s.ell).expect("ℓ ≥ 1");
        let oracle = MaxCondition::new(params);
        prop_assume!(oracle.contains(&s.input));
        let report = s.run_on(Executor::AsyncMessagePassing { seed: s.seed });
        prop_assert!(report.satisfies_all(), "all three properties: {report}");
    }

    /// Snapshot containment in action: deciders' values always nest within
    /// the ℓ-sized decoded set of the *least-informed* decider — checked
    /// indirectly by |decided| ≤ ℓ even under maximal asynchrony (all
    /// crash budgets zero steps except the writers').
    #[test]
    fn async_agreement_under_initial_crashes(
        entries in proptest::collection::vec(1u32..=3, 6),
        seed in any::<u64>(),
    ) {
        let params = LegalityParams::new(2, 2).expect("valid");
        let crashes = AsyncCrashes::none()
            .crash_after(ProcessId::new(4), 0)
            .crash_after(ProcessId::new(5), 0);
        let report = Scenario::async_set_agreement(6, params, MaxCondition::new(params))
            .input(entries)
            .pattern(crashes)
            .executor(Executor::AsyncSharedMemory { seed })
            .run()
            .expect("valid asynchronous scenario");
        prop_assert!(report.satisfies_agreement());
    }
}

/// The wait-free corner of Figure 1: with x = n − 1 and ℓ = n every
/// process may decide its own value; the trivial condition suffices and
/// each process decides after its first qualifying snapshot.
#[test]
fn wait_free_n_set_agreement() {
    let n = 5;
    let params = LegalityParams::new(n - 1, n).unwrap();
    let input = InputVector::new(vec![5u32, 4, 3, 2, 1]);
    // Everyone but p1 crashes before writing: p1 must still decide.
    let mut crashes = AsyncCrashes::none();
    for i in 1..n {
        crashes = crashes.crash_after(ProcessId::new(i), 0);
    }
    let report = Scenario::async_set_agreement(n, params, MaxCondition::new(params))
        .input(input)
        .pattern(crashes)
        .executor(Executor::AsyncSharedMemory { seed: 11 })
        .run()
        .expect("valid asynchronous scenario");
    assert!(report.satisfies_termination());
    let raw = report.async_report().expect("asynchronous run");
    assert_eq!(raw.outcome(ProcessId::new(0)).decided_value(), Some(&5));
}
