//! The `setagree-node` binary: the networked execution tier's entry
//! point.
//!
//! Two subcommands (see [`setagree_node::USAGE`]):
//!
//! * `run` — be one TCP node: join the mesh, run `FloodSet` over this
//!   node's proposal, print `OUTCOME` / `RECEIVED` lines for the testnet
//!   harness. With `--crash R:S`, **abort the process** at the scheduled
//!   point — the kill-based adversary made physical.
//! * `testnet` — orchestrate a whole system: spawn one node per proposal
//!   (TCP: real processes on localhost, each one an invocation of this
//!   same binary; loopback: in-process tasks through
//!   `Executor::Networked`), kill the victims, and print the collected
//!   [`Report`] with a final `verdict:` line.
//!
//! Argument parsing lives in `setagree_node::cli` (unit-tested there);
//! this file only maps parsed values onto protocol instances, which
//! requires `setagree-core` — a dependency the node crate cannot have,
//! since core depends on it for the networked executor.

use std::error::Error;
use std::process::ExitCode;
use std::time::Duration;

use setagree_codec::SnapshotCodec;
use setagree_core::{Adversary, Executor, FloodSet, ProtocolKind, Report, Scenario, TransportKind};
use setagree_node::{
    drive, fault_plan, parse_command, run_testnet_observed, DriveError, NodeCommand, NodeConfig,
    RunArgs, TcpError, TcpTransport, TestnetArgs, TestnetConfig, Typed, TypedError, U32Codec,
    USAGE,
};
use setagree_obs::Snapshot;
use setagree_sync::{CrashSpec, FailurePattern, Outcome};
use setagree_types::{InputVector, ProcessId};

/// Resolves the metrics dump target — the `--metrics` flag wins, then
/// the `SETAGREE_METRICS` environment variable — and enables the
/// observability registry when one is set.
fn metrics_target(flag: &Option<String>) -> Option<String> {
    let target = flag.clone().or_else(setagree_obs::init_from_env);
    if target.is_some() {
        setagree_obs::set_enabled(true);
    }
    target
}

fn main() -> ExitCode {
    let command = match parse_command(std::env::args().skip(1)) {
        Ok(command) => command,
        Err(err) => {
            eprintln!("{USAGE}\n\nerror: {err}");
            return ExitCode::from(2);
        }
    };
    let result = match command {
        NodeCommand::Run(args) => run_one_node(args),
        NodeCommand::Testnet(args) => run_testnet_system(args),
    };
    match result {
        Ok(code) => code,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}

/// FloodSet's round bound, `⌊t/k⌋ + 1` — also the drive loop's limit
/// (the protocol decides exactly then, so no slack is needed).
fn predicted_rounds(t: usize, k: usize) -> Result<usize, Box<dyn Error>> {
    if k == 0 {
        return Err("k must be at least 1".into());
    }
    Ok(t / k + 1)
}

/// The `run` subcommand: one real TCP node.
fn run_one_node(args: RunArgs) -> Result<ExitCode, Box<dyn Error>> {
    if args.peers.len() != args.input.len() {
        return Err(format!(
            "{} peers but {} proposals — one proposal per node",
            args.peers.len(),
            args.input.len()
        )
        .into());
    }
    if args.id >= args.input.len() {
        return Err(format!("--id {} out of range for n = {}", args.id, args.input.len()).into());
    }
    let metrics = metrics_target(&args.metrics);
    let limit = predicted_rounds(args.t, args.k)?;
    let mut config = NodeConfig::new(ProcessId::new(args.id), args.peers)?
        .with_round_timeout(Duration::from_millis(args.round_timeout_ms));
    if let Some(plan) = fault_plan(args.input.len(), args.faults, &args.partitions)? {
        config = config.with_fault_plan(plan);
    }
    let tcp = TcpTransport::establish(&config)?;
    let mut transport = Typed::new(tcp, U32Codec);
    let proto = FloodSet::new(args.t, args.k, args.input[args.id]);
    let crash = args
        .crash
        .map(|(round, after_sends)| CrashSpec::new(round, after_sends));

    match drive(proto, &mut transport, crash, limit) {
        Ok(Outcome::Crashed { .. }) => {
            // The kill: die for real. The kernel closes the sockets and
            // peers observe end-of-stream; nothing is printed, the
            // harness fills in the Crashed outcome it injected.
            std::process::abort();
        }
        Ok(Outcome::Decided { value, round }) => {
            println!("OUTCOME decided {value} {round}");
            println!("RECEIVED {}", transport.inner().received_total());
            if let Some(target) = metrics {
                let snapshot = setagree_obs::global().snapshot();
                // Machine lines on stdout for the testnet harness; the
                // rendered exposition goes to the target (stderr for
                // `-`), keeping stdout parseable.
                for line in snapshot.to_lines() {
                    println!("{line}");
                }
                setagree_obs::dump(&target, &snapshot)?;
            }
            Ok(ExitCode::SUCCESS)
        }
        Ok(Outcome::Undecided) => Err(format!("no decision within the {limit}-round bound").into()),
        Err(DriveError::Transport(TypedError::Transport(TcpError::RoundTimeout {
            round,
            peers,
        }))) => {
            // A liveness anomaly, not a crash: silent-but-connected
            // peers. Report it machine-readably so the harness can
            // surface a distinct RoundTimeout instead of NodeFailed.
            let peers = peers
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(",");
            println!("TIMEOUT {round} {peers}");
            Err(format!("node {}: round {round} timed out on {peers}", args.id).into())
        }
        Err(err) => Err(format!("node {}: {err}", args.id).into()),
    }
}

/// The `testnet` subcommand: a whole system, on either transport.
fn run_testnet_system(args: TestnetArgs) -> Result<ExitCode, Box<dyn Error>> {
    let n = args.input.len();
    let predicted = predicted_rounds(args.t, args.k)?;
    let mut pattern = FailurePattern::none(n);
    for &(id, round, after_sends) in &args.crashes {
        pattern.crash(ProcessId::new(id), CrashSpec::new(round, after_sends))?;
    }

    let metrics = metrics_target(&args.metrics);
    let plan = fault_plan(n, args.faults, &args.partitions)?;
    // Attribution suffix for the verdict line: a run shaped by an
    // injected fault plan says so, compactly and deterministically.
    let fault_suffix = plan
        .as_ref()
        .map(|p| format!(" [{}]", p.summary()))
        .unwrap_or_default();

    let mut child_metrics = Snapshot::new();
    let report = match args.transport {
        TransportKind::Tcp => {
            let config = TestnetConfig {
                binary: std::env::current_exe()?,
                t: args.t,
                k: args.k,
                input: args.input.clone(),
                pattern,
                port_base: args.port_base,
                round_timeout: Duration::from_millis(args.round_timeout_ms),
                faults: args.faults,
                partitions: args.partitions.clone(),
                metrics: metrics.is_some(),
            };
            println!(
                "testnet: {n} node processes on 127.0.0.1:{}…, {} kill(s) scheduled{}",
                args.port_base,
                args.crashes.len(),
                if plan.is_some() {
                    ", link faults injected"
                } else {
                    ""
                }
            );
            let (trace, folded) = run_testnet_observed(&config)?;
            child_metrics = folded;
            Report::from_trace(
                trace,
                InputVector::new(args.input),
                args.k,
                predicted,
                ProtocolKind::FloodSet,
                Executor::Networked {
                    transport: TransportKind::Tcp,
                },
            )
        }
        TransportKind::Loopback => {
            println!(
                "testnet: {n} loopback node tasks, {} kill(s) scheduled{}",
                args.crashes.len(),
                if plan.is_some() {
                    ", link faults injected"
                } else {
                    ""
                }
            );
            let adversary = match plan.clone() {
                Some(plan) => Adversary::Omission {
                    plan,
                    crashes: pattern,
                },
                None => Adversary::from(pattern),
            };
            Scenario::flood_set(n, args.t, args.k)
                .input(args.input)
                .pattern(adversary)
                .executor(Executor::Networked {
                    transport: TransportKind::Loopback,
                })
                .run()?
        }
    };

    println!("{report}");
    if let Some(trace) = report.trace() {
        print!("{trace}");
    }
    if let Some(target) = metrics {
        // System-wide snapshot: the children's folded METRIC lines (TCP)
        // merged with this process's own registry (which holds
        // everything on the loopback tier).
        let mut aggregate = child_metrics;
        aggregate.merge(&setagree_obs::global().snapshot());
        // The snapshot must survive the cache/journal wire format
        // losslessly before anyone stores it there.
        let bytes = SnapshotCodec::encode(&aggregate);
        let decoded = SnapshotCodec::decode(&bytes)
            .map_err(|e| format!("metrics snapshot failed to decode: {e}"))?;
        if SnapshotCodec::encode(&decoded) != bytes {
            return Err("metrics snapshot codec round-trip diverged".into());
        }
        eprintln!(
            "metrics: {} series from {} ({} bytes, codec round-trip ok)",
            aggregate.entries().len(),
            report.executor().label_with_faults(plan.as_ref()),
            bytes.len(),
        );
        setagree_obs::dump(&target, &aggregate)?;
    }
    let satisfied = report.satisfies_all();
    println!(
        "verdict: {}{fault_suffix}",
        if satisfied { "SATISFIED" } else { "VIOLATED" }
    );
    Ok(if satisfied {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
