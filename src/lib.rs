//! # setagree — condition-based k-set agreement
//!
//! A full reproduction of Bonnet & Raynal, *Conditions for Set Agreement
//! with an Application to Synchronous Systems* (ICDCS 2008), as a Rust
//! workspace. This facade crate re-exports the public API of every
//! sub-crate:
//!
//! * [`types`] — input vectors, views, distances (Section 2.1);
//! * [`conditions`] — the (x, ℓ)-legality framework, maximal conditions,
//!   counting, the lattice of Theorems 4–9 (Sections 2, 3, 5);
//! * [`sync`] — the synchronous round-based simulator (Section 6.2);
//! * [`core`] — the condition-based synchronous k-set agreement algorithm
//!   of Figure 2, baselines and the early-deciding extension (Sections 6–8);
//! * [`asynchronous`] — the shared-memory substrate and the asynchronous
//!   condition-based ℓ-set agreement algorithm (Section 4);
//! * [`obs`] — the observability layer: a lock-light metrics registry
//!   (counters, gauges, log-bucket histograms, mergeable snapshots with
//!   a Prometheus-style rendering) and a structured event recorder,
//!   threaded through every execution tier and near-free when disabled;
//! * [`runtime`] — a real-thread, channel-based synchronous runtime;
//! * [`codec`] — the shared wire tier: a never-panicking binary
//!   reader/writer, the length-prefixed network frame codec, and the
//!   hash-chained execution journal behind crash-resumable sweeps;
//! * [`node`] — the networked execution tier: a transport abstraction
//!   (in-process loopback and real TCP), the shared node round loop,
//!   and the testnet harness behind the `setagree-node` binary, with a
//!   kill-based crash adversary.
//!
//! # Quickstart
//!
//! Experiments go through the unified [`Scenario`](core::Scenario) API:
//! pick a protocol, give it an input and an adversary, choose an
//! [`Executor`](core::Executor), and run. All four executors — the
//! synchronous simulator and real-thread runtime, and the seeded
//! asynchronous shared-memory and message-passing runtimes of Section 4
//! — produce the same unified [`Report`](core::Report).
//!
//! ```
//! use setagree::conditions::MaxCondition;
//! use setagree::core::{ConditionBasedConfig, Scenario};
//! use setagree::sync::FailurePattern;
//!
//! // A system of n = 6 processes, at most t = 3 crashes, deciding k = 2 values,
//! // helped by the maximal (x, ℓ) = (t − d, ℓ)-legal condition with d = 2, ℓ = 1.
//! let config = ConditionBasedConfig::builder(6, 3, 2)
//!     .condition_degree(2)
//!     .ell(1)
//!     .build()
//!     .expect("valid parameters");
//! // The oracle's legality parameters derive from the configuration, so
//! // the two cannot disagree.
//! let condition = MaxCondition::new(config.legality());
//! let report = Scenario::condition_based(config, condition)
//!     .input(vec![5u32, 5, 1, 2, 5, 5])
//!     .pattern(FailurePattern::none(6))
//!     .run()
//!     .expect("execution succeeds");
//! assert!(report.satisfies_all());
//! assert!(report.decided_values().len() <= 2);
//! ```
//!
//! Batch sweeps over executors × protocols × inputs × adversaries go
//! through [`ScenarioSuite`](core::ScenarioSuite), which fans the grid
//! out across worker threads; a grid can mix synchronous and
//! asynchronous cells, or sweep adversary seeds through the executor
//! dimension. Suites stream their cases in deterministic grid order as
//! cells complete (`run_streaming`), memoize cells in a persistable
//! [`SuiteCache`](core::SuiteCache) — a warm rerun executes zero
//! protocol steps — and take explicit `cases(...)` when a sweep pairs
//! specific specs with specific executors instead of crossing them.

#![forbid(unsafe_code)]

pub use setagree_async as asynchronous;
pub use setagree_codec as codec;
pub use setagree_conditions as conditions;
pub use setagree_core as core;
pub use setagree_node as node;
pub use setagree_obs as obs;
pub use setagree_runtime as runtime;
pub use setagree_sync as sync;
pub use setagree_types as types;
