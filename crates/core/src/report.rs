//! Execution reports: one run of an agreement protocol, with the paper's
//! properties checked against the execution record — the single result
//! type every [`Scenario`](crate::Scenario) run produces, whatever the
//! protocol and executor.
//!
//! A report records one of two execution shapes, [`Execution`]:
//! synchronous executors produce a round-based [`Trace`] plus the round
//! bound the paper's formulas predict; the asynchronous executors produce
//! a step-based [`AsyncReport`] with per-process outcomes. The property
//! checks (termination, validity, agreement) read uniformly through
//! either shape, so suite verdicts and table binaries treat mixed
//! synchronous/asynchronous grids alike.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use setagree_async::AsyncReport;
use setagree_sync::Trace;
use setagree_types::{InputVector, ProposalValue};

use crate::experiment::{Executor, ProtocolKind};

/// How a run's execution was recorded.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Execution<V: Ord> {
    /// A synchronous round-based run ([`Executor::Simulator`] /
    /// [`Executor::Threaded`]).
    Rounds {
        /// The raw execution trace.
        trace: Trace<V>,
        /// The round bound the paper's formulas predict for the scenario.
        predicted_rounds: usize,
    },
    /// An asynchronous step-based run ([`Executor::AsyncSharedMemory`] /
    /// [`Executor::AsyncMessagePassing`]).
    Steps(AsyncReport<V>),
}

/// The outcome of one run: the execution record plus the parameters
/// needed to check termination, validity and agreement — annotated with
/// which protocol produced it and which executor ran it.
///
/// The input vector is held behind an [`Arc`]: a suite fanning one input
/// across many grid cells shares it with every report rather than
/// copying it per cell. Equality ([`PartialEq`]) compares the pointed-to
/// data, so a cache-served report compares equal to the original.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report<V: Ord> {
    execution: Execution<V>,
    input: Arc<InputVector<V>>,
    k: usize,
    protocol: ProtocolKind,
    executor: Executor,
}

/// Former name of [`Report`].
#[deprecated(
    since = "0.2.0",
    note = "renamed to `Report`; produced by `Scenario::run`"
)]
pub type RunReport<V> = Report<V>;

impl<V: ProposalValue> Report<V> {
    pub(crate) fn new(
        trace: Trace<V>,
        input: Arc<InputVector<V>>,
        k: usize,
        predicted_rounds: usize,
        protocol: ProtocolKind,
        executor: Executor,
    ) -> Self {
        Report {
            execution: Execution::Rounds {
                trace,
                predicted_rounds,
            },
            input,
            k,
            protocol,
            executor,
        }
    }

    /// Wraps a trace produced *outside* `Scenario::run` — by an external
    /// execution tier such as the `setagree-node` testnet harness, which
    /// assembles its trace from real node processes — so external runs
    /// flow through the same verdict machinery (`satisfies_all`,
    /// `within_predicted_rounds`, Display) as in-process ones.
    pub fn from_trace(
        trace: Trace<V>,
        input: InputVector<V>,
        k: usize,
        predicted_rounds: usize,
        protocol: ProtocolKind,
        executor: Executor,
    ) -> Self {
        Report::new(
            trace,
            Arc::new(input),
            k,
            predicted_rounds,
            protocol,
            executor,
        )
    }

    /// Wraps an [`AsyncReport`] produced *outside* `Scenario::run` — the
    /// step-based counterpart of [`Report::from_trace`], used by the
    /// wire codec and by external async execution tiers — so it flows
    /// through the same verdict machinery as in-process runs.
    pub fn from_async(
        report: AsyncReport<V>,
        input: InputVector<V>,
        k: usize,
        protocol: ProtocolKind,
        executor: Executor,
    ) -> Self {
        Report::new_async(report, Arc::new(input), k, protocol, executor)
    }

    pub(crate) fn new_async(
        report: AsyncReport<V>,
        input: Arc<InputVector<V>>,
        k: usize,
        protocol: ProtocolKind,
        executor: Executor,
    ) -> Self {
        Report {
            execution: Execution::Steps(report),
            input,
            k,
            protocol,
            executor,
        }
    }

    /// Which algorithm produced this report.
    pub fn protocol(&self) -> ProtocolKind {
        self.protocol
    }

    /// Which executor ran the scenario.
    pub fn executor(&self) -> Executor {
        self.executor
    }

    /// The raw execution record.
    pub fn execution(&self) -> &Execution<V> {
        &self.execution
    }

    /// The raw execution trace, when the run was round-based.
    pub fn trace(&self) -> Option<&Trace<V>> {
        match &self.execution {
            Execution::Rounds { trace, .. } => Some(trace),
            Execution::Steps(_) => None,
        }
    }

    /// The raw asynchronous report, when the run was step-based.
    pub fn async_report(&self) -> Option<&AsyncReport<V>> {
        match &self.execution {
            Execution::Rounds { .. } => None,
            Execution::Steps(report) => Some(report),
        }
    }

    /// The input vector of the run.
    pub fn input(&self) -> &InputVector<V> {
        &self.input
    }

    /// The agreement degree the run was checked against: `k` for the
    /// synchronous protocols, ℓ for the asynchronous ones.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The round bound predicted by the paper's formulas for this run's
    /// scenario (`None` for the asynchronous executors, which have no
    /// round structure to predict).
    pub fn predicted_rounds(&self) -> Option<usize> {
        match &self.execution {
            Execution::Rounds {
                predicted_rounds, ..
            } => Some(*predicted_rounds),
            Execution::Steps(_) => None,
        }
    }

    /// The set of decided values.
    pub fn decided_values(&self) -> BTreeSet<V> {
        match &self.execution {
            Execution::Rounds { trace, .. } => trace.decided_values(),
            Execution::Steps(report) => report.decided_values(),
        }
    }

    /// The latest decision round (`None` if nobody decided — possible only
    /// when every process crashed — or if the run was asynchronous and
    /// measured steps, not rounds).
    pub fn decision_round(&self) -> Option<usize> {
        match &self.execution {
            Execution::Rounds { trace, .. } => trace.last_decision_round(),
            Execution::Steps(_) => None,
        }
    }

    /// Total scheduler steps (deliveries, for message passing) consumed —
    /// the asynchronous cost measure; `None` for round-based runs.
    pub fn total_steps(&self) -> Option<u64> {
        match &self.execution {
            Execution::Rounds { .. } => None,
            Execution::Steps(report) => Some(report.total_steps()),
        }
    }

    /// Termination: every non-crashed process decided.
    ///
    /// For an asynchronous run this is the condition-based sense of
    /// Section 4 — honest, since outside the condition the algorithm may
    /// block forever and the report then says `false`.
    pub fn satisfies_termination(&self) -> bool {
        match &self.execution {
            Execution::Rounds { trace, .. } => trace.all_correct_decided(),
            Execution::Steps(report) => report.all_correct_decided(),
        }
    }

    /// Validity: every decided value was proposed.
    pub fn satisfies_validity(&self) -> bool {
        let proposed = self.input.distinct_values();
        self.decided_values().iter().all(|v| proposed.contains(v))
    }

    /// Agreement: at most [`Report::k`] distinct values decided.
    pub fn satisfies_agreement(&self) -> bool {
        self.decided_values().len() <= self.k
    }

    /// All three properties at once.
    pub fn satisfies_all(&self) -> bool {
        self.satisfies_termination() && self.satisfies_validity() && self.satisfies_agreement()
    }

    /// Whether the run finished within the predicted resource bound: the
    /// paper's round formula for a synchronous run; for an asynchronous
    /// run, that no process was cut off by the scheduler's step budget
    /// (every process decided, blocked, or crashed — the only "on time"
    /// an asynchronous model can promise).
    pub fn within_predicted_rounds(&self) -> bool {
        match &self.execution {
            Execution::Rounds {
                trace,
                predicted_rounds,
            } => match trace.last_decision_round() {
                Some(r) => r <= *predicted_rounds,
                None => true, // everyone crashed; vacuously on time
            },
            Execution::Steps(report) => report.all_settled_or_crashed(),
        }
    }
}

impl<V: ProposalValue + fmt::Debug> fmt::Display for Report<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.execution {
            Execution::Rounds {
                predicted_rounds, ..
            } => write!(
                f,
                "{} on {}: decided {:?} in {:?} round(s) [predicted ≤ {}] — termination {} validity {} agreement {}",
                self.protocol,
                self.executor,
                self.decided_values(),
                self.decision_round(),
                predicted_rounds,
                self.satisfies_termination(),
                self.satisfies_validity(),
                self.satisfies_agreement(),
            ),
            Execution::Steps(report) => write!(
                f,
                "{} on {}: {report} — termination {} validity {} agreement {}",
                self.protocol,
                self.executor,
                self.satisfies_termination(),
                self.satisfies_validity(),
                self.satisfies_agreement(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setagree_async::{execute_shared_memory, AsyncCrashes};
    use setagree_conditions::{LegalityParams, MaxCondition};
    use setagree_sync::{run_protocol, FailurePattern, Step, SyncProtocol};
    use setagree_types::ProcessId;

    #[derive(Debug)]
    struct Fixed(u32);
    impl SyncProtocol for Fixed {
        type Msg = ();
        type Output = u32;
        fn message(&mut self, _round: usize) {}
        fn receive(&mut self, _round: usize, _from: ProcessId, _msg: &()) {}
        fn compute(&mut self, _round: usize) -> Step<u32> {
            Step::Decide(self.0)
        }
    }

    fn report(decisions: &[u32], k: usize, predicted: usize) -> Report<u32> {
        let procs: Vec<Fixed> = decisions.iter().map(|&v| Fixed(v)).collect();
        let n = procs.len();
        let trace = run_protocol(procs, &FailurePattern::none(n), 5).unwrap();
        Report::new(
            trace,
            Arc::new(InputVector::new(decisions.to_vec())),
            k,
            predicted,
            ProtocolKind::FloodSet,
            Executor::Simulator,
        )
    }

    fn async_report(entries: &[u32], x: usize, ell: usize, seed: u64) -> Report<u32> {
        let params = LegalityParams::new(x, ell).unwrap();
        let input = InputVector::new(entries.to_vec());
        let raw = execute_shared_memory(
            &MaxCondition::new(params),
            x,
            &input,
            &AsyncCrashes::none(),
            seed,
            1024,
        );
        Report::new_async(
            raw,
            Arc::new(input),
            ell,
            ProtocolKind::AsyncSetAgreement,
            Executor::AsyncSharedMemory { seed },
        )
    }

    #[test]
    fn properties_on_agreeing_run() {
        let r = report(&[4, 4, 4], 1, 1);
        assert!(r.satisfies_all());
        assert!(r.within_predicted_rounds());
        assert_eq!(r.decided_values(), [4].into_iter().collect());
        assert_eq!(r.decision_round(), Some(1));
        assert_eq!(r.k(), 1);
        assert_eq!(r.predicted_rounds(), Some(1));
        assert!(r.trace().is_some());
        assert!(r.async_report().is_none());
        assert_eq!(r.total_steps(), None);
    }

    #[test]
    fn agreement_fails_beyond_k() {
        let r = report(&[1, 2, 3], 2, 1);
        assert!(!r.satisfies_agreement());
        assert!(r.satisfies_validity());
        assert!(!r.satisfies_all());
    }

    #[test]
    fn validity_detects_foreign_values() {
        // Deciders return their input here, so validity holds by
        // construction; check the negative path via a doctored input.
        let procs = vec![Fixed(9), Fixed(9)];
        let trace = run_protocol(procs, &FailurePattern::none(2), 5).unwrap();
        let r = Report::new(
            trace,
            Arc::new(InputVector::new(vec![1u32, 2])),
            1,
            1,
            ProtocolKind::FloodSet,
            Executor::Simulator,
        );
        assert!(!r.satisfies_validity());
    }

    #[test]
    fn async_run_reads_through_the_same_checks() {
        // In C_max(1, 1): the top value 7 covers 3 > x entries.
        let r = async_report(&[7, 7, 7, 2], 1, 1, 11);
        assert!(r.satisfies_all(), "{r}");
        assert!(r.within_predicted_rounds(), "nobody cut off by the budget");
        assert_eq!(r.decision_round(), None);
        assert_eq!(r.predicted_rounds(), None);
        assert!(r.trace().is_none());
        let raw = r.async_report().expect("step-based execution");
        assert_eq!(raw.crashed_count(), 0);
        assert_eq!(r.total_steps(), Some(raw.total_steps()));
        assert_eq!(r.executor(), Executor::AsyncSharedMemory { seed: 11 });
    }

    #[test]
    fn async_blocking_reads_as_non_termination() {
        // All-distinct input is outside C_max(1, 1): blocked processes
        // must fail termination but never agreement or validity.
        let r = async_report(&[1, 2, 3, 4], 1, 1, 5);
        assert!(!r.satisfies_termination(), "{r}");
        assert!(r.satisfies_validity());
        assert!(r.satisfies_agreement());
        assert!(!r.satisfies_all());
    }

    #[test]
    fn display_mentions_the_verdicts() {
        let s = report(&[4, 4], 1, 2).to_string();
        assert!(s.contains("termination true"));
        assert!(s.contains("agreement true"));
        let s = async_report(&[7, 7, 7, 2], 1, 1, 3).to_string();
        assert!(s.contains("async-shared-memory"));
        assert!(s.contains("termination true"));
    }
}
