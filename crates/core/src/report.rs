//! Execution reports: one run of an agreement protocol, with the paper's
//! properties checked against the trace — the single result type every
//! [`Scenario`](crate::Scenario) run produces, whatever the protocol and
//! executor.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use setagree_sync::Trace;
use setagree_types::{InputVector, ProposalValue};

use crate::experiment::{Executor, ProtocolKind};

/// The outcome of one run: the trace plus the parameters needed to check
/// termination, validity and agreement, and to compare measured rounds
/// against predicted bounds — annotated with which protocol produced it
/// and which executor ran it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Report<V: Ord> {
    trace: Trace<V>,
    input: InputVector<V>,
    k: usize,
    predicted_rounds: usize,
    protocol: ProtocolKind,
    executor: Executor,
}

/// Former name of [`Report`].
#[deprecated(
    since = "0.2.0",
    note = "renamed to `Report`; produced by `Scenario::run`"
)]
pub type RunReport<V> = Report<V>;

impl<V: ProposalValue> Report<V> {
    pub(crate) fn new(
        trace: Trace<V>,
        input: InputVector<V>,
        k: usize,
        predicted_rounds: usize,
        protocol: ProtocolKind,
        executor: Executor,
    ) -> Self {
        Report {
            trace,
            input,
            k,
            predicted_rounds,
            protocol,
            executor,
        }
    }

    /// Which algorithm produced this report.
    pub fn protocol(&self) -> ProtocolKind {
        self.protocol
    }

    /// Which executor ran the scenario.
    pub fn executor(&self) -> Executor {
        self.executor
    }

    /// The raw execution trace.
    pub fn trace(&self) -> &Trace<V> {
        &self.trace
    }

    /// The input vector of the run.
    pub fn input(&self) -> &InputVector<V> {
        &self.input
    }

    /// The agreement degree `k` the run was checked against.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The round bound predicted by the paper's formulas for this run's
    /// scenario.
    pub fn predicted_rounds(&self) -> usize {
        self.predicted_rounds
    }

    /// The set of decided values.
    pub fn decided_values(&self) -> BTreeSet<V> {
        self.trace.decided_values()
    }

    /// The latest decision round (`None` if nobody decided — possible only
    /// when every process crashed).
    pub fn decision_round(&self) -> Option<usize> {
        self.trace.last_decision_round()
    }

    /// Termination: every non-crashed process decided.
    pub fn satisfies_termination(&self) -> bool {
        self.trace.all_correct_decided()
    }

    /// Validity: every decided value was proposed.
    pub fn satisfies_validity(&self) -> bool {
        let proposed = self.input.distinct_values();
        self.decided_values().iter().all(|v| proposed.contains(v))
    }

    /// Agreement: at most `k` distinct values decided.
    pub fn satisfies_agreement(&self) -> bool {
        self.decided_values().len() <= self.k
    }

    /// All three properties at once.
    pub fn satisfies_all(&self) -> bool {
        self.satisfies_termination() && self.satisfies_validity() && self.satisfies_agreement()
    }

    /// Whether the run finished within the predicted round bound.
    pub fn within_predicted_rounds(&self) -> bool {
        match self.decision_round() {
            Some(r) => r <= self.predicted_rounds,
            None => true, // everyone crashed; vacuously on time
        }
    }
}

impl<V: ProposalValue + fmt::Debug> fmt::Display for Report<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: decided {:?} in {:?} round(s) [predicted ≤ {}] — termination {} validity {} agreement {}",
            self.protocol,
            self.executor,
            self.decided_values(),
            self.decision_round(),
            self.predicted_rounds,
            self.satisfies_termination(),
            self.satisfies_validity(),
            self.satisfies_agreement(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setagree_sync::{run_protocol, FailurePattern, Step, SyncProtocol};
    use setagree_types::ProcessId;

    #[derive(Debug)]
    struct Fixed(u32);
    impl SyncProtocol for Fixed {
        type Msg = ();
        type Output = u32;
        fn message(&mut self, _round: usize) {}
        fn receive(&mut self, _round: usize, _from: ProcessId, _msg: ()) {}
        fn compute(&mut self, _round: usize) -> Step<u32> {
            Step::Decide(self.0)
        }
    }

    fn report(decisions: &[u32], k: usize, predicted: usize) -> Report<u32> {
        let procs: Vec<Fixed> = decisions.iter().map(|&v| Fixed(v)).collect();
        let n = procs.len();
        let trace = run_protocol(procs, &FailurePattern::none(n), 5).unwrap();
        Report::new(
            trace,
            InputVector::new(decisions.to_vec()),
            k,
            predicted,
            ProtocolKind::FloodSet,
            Executor::Simulator,
        )
    }

    #[test]
    fn properties_on_agreeing_run() {
        let r = report(&[4, 4, 4], 1, 1);
        assert!(r.satisfies_all());
        assert!(r.within_predicted_rounds());
        assert_eq!(r.decided_values(), [4].into_iter().collect());
        assert_eq!(r.decision_round(), Some(1));
        assert_eq!(r.k(), 1);
        assert_eq!(r.predicted_rounds(), 1);
    }

    #[test]
    fn agreement_fails_beyond_k() {
        let r = report(&[1, 2, 3], 2, 1);
        assert!(!r.satisfies_agreement());
        assert!(r.satisfies_validity());
        assert!(!r.satisfies_all());
    }

    #[test]
    fn validity_detects_foreign_values() {
        // Deciders return their input here, so validity holds by
        // construction; check the negative path via a doctored input.
        let procs = vec![Fixed(9), Fixed(9)];
        let trace = run_protocol(procs, &FailurePattern::none(2), 5).unwrap();
        let r = Report::new(
            trace,
            InputVector::new(vec![1u32, 2]),
            1,
            1,
            ProtocolKind::FloodSet,
            Executor::Simulator,
        );
        assert!(!r.satisfies_validity());
    }

    #[test]
    fn display_mentions_the_verdicts() {
        let s = report(&[4, 4], 1, 2).to_string();
        assert!(s.contains("termination true"));
        assert!(s.contains("agreement true"));
    }
}
