//! The Section 8 extension: **early-deciding condition-based k-set
//! agreement**.
//!
//! The paper's concluding remarks observe that, by the technique of \[22\],
//! the Figure 2 algorithm can be extended so that — on top of its
//! condition-based bounds — it never needs more than `⌊f/k⌋ + 2` rounds,
//! where `f ≤ t` is the number of *actual* crashes.
//!
//! This implementation grafts the failure-perception rule of the
//! early-deciding protocol onto the Figure 2 state machine:
//!
//! * the three-slot state `(v_cond, v_tmf, v_out)` evolves exactly as in
//!   [`ConditionBased`](crate::ConditionBased) — round-1 classification,
//!   max-folded flooding, line-14 commitment on `v_cond`, the line-18
//!   predicate and the final round;
//! * in addition, every process counts the broadcasts it receives per
//!   round (`nb_r`, `nb_0 = n`); when `nb_{r−1} − nb_r < k` — fewer than
//!   `k` processes went newly silent — it sets a decide flag, forwards its
//!   state (with the flag) once more, and returns its priority decision;
//! * a process receiving a flagged state absorbs it and decides at the end
//!   of the same round (the flagged sender's state is, by the max-fold,
//!   dominated by the receiver's updated state).
//!
//! The bounds consequently combine: decisions happen by round
//! `min( bound_of_Figure_2 , max(2, ⌊f/k⌋ + 2) )`. The combination is
//! validated by the property suites (random + staircase + silent-crash
//! adversaries) rather than by a formal proof — the paper itself only
//! sketches the extension.

use std::fmt;

use setagree_conditions::ConditionOracle;
use setagree_sync::{Step, SyncProtocol};
use setagree_types::{ProcessId, ProposalValue, View};

use crate::config::ConditionBasedConfig;

/// The wire format: round-1 proposals, then flagged state triples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcbMessage<V> {
    /// Round 1: the sender's proposal.
    Proposal(V),
    /// Rounds ≥ 2: the sender's state, plus its decide announcement.
    State {
        /// The sender's `v_cond`.
        cond: Option<V>,
        /// The sender's `v_tmf`.
        tmf: Option<V>,
        /// The sender's `v_out`.
        out: Option<V>,
        /// `true` when the sender decides this round.
        deciding: bool,
    },
}

/// One process of the early-deciding condition-based algorithm.
pub struct EarlyConditionBased<V, O> {
    config: ConditionBasedConfig,
    me: ProcessId,
    oracle: O,
    view: View<V>,
    v_cond: Option<V>,
    v_tmf: Option<V>,
    v_out: Option<V>,
    recv_cond: Option<V>,
    recv_tmf: Option<V>,
    recv_out: Option<V>,
    /// Line-14 commitment (own `v_cond` forwarded this round).
    committed: bool,
    /// The early rule fired (or a flagged state arrived): decide after the
    /// next send.
    deciding: bool,
    heard_prev: usize,
    heard_now: usize,
}

impl<V: ProposalValue, O: ConditionOracle<V>> EarlyConditionBased<V, O> {
    /// Creates the process `me` proposing `proposal`.
    ///
    /// # Panics
    ///
    /// Panics if `me` is outside the system.
    pub fn new(config: ConditionBasedConfig, me: ProcessId, proposal: V, oracle: O) -> Self {
        assert!(
            me.index() < config.n(),
            "{me} outside a system of {}",
            config.n()
        );
        let mut view = View::all_bottom(config.n());
        view.set(me, proposal);
        EarlyConditionBased {
            config,
            me,
            oracle,
            view,
            v_cond: None,
            v_tmf: None,
            v_out: None,
            recv_cond: None,
            recv_tmf: None,
            recv_out: None,
            committed: false,
            deciding: false,
            heard_prev: config.n(),
            heard_now: 0,
        }
    }

    /// The configuration this process runs under.
    pub fn config(&self) -> &ConditionBasedConfig {
        &self.config
    }

    fn decide_by_priority(&self) -> V {
        self.v_cond
            .clone()
            .or_else(|| self.v_tmf.clone())
            .or_else(|| self.v_out.clone())
            .expect("after round 1 at least one slot is non-⊥")
    }

    fn classify_view(&mut self) {
        let missing = self.view.count_bottom();
        let t_minus_d = self.config.t() - self.config.d();
        if missing <= t_minus_d {
            match self.oracle.decode_view(&self.view) {
                Some(decoded) => match decoded.into_iter().max() {
                    Some(v) => self.v_cond = Some(v),
                    None => self.v_out = self.view.max_value().cloned(),
                },
                None => self.v_out = self.view.max_value().cloned(),
            }
        } else {
            self.v_tmf = self.view.max_value().cloned();
        }
    }

    fn absorb_received(&mut self) {
        fn fold<V: Ord>(slot: &mut Option<V>, received: Option<V>) {
            if received > *slot {
                *slot = received;
            }
        }
        fold(&mut self.v_cond, self.recv_cond.take());
        fold(&mut self.v_tmf, self.recv_tmf.take());
        fold(&mut self.v_out, self.recv_out.take());
    }
}

impl<V: ProposalValue, O: ConditionOracle<V>> SyncProtocol for EarlyConditionBased<V, O> {
    type Msg = EcbMessage<V>;
    type Output = V;

    fn message(&mut self, round: usize) -> EcbMessage<V> {
        if round == 1 {
            let own = self
                .view
                .get(self.me)
                .cloned()
                .expect("own proposal recorded at construction");
            return EcbMessage::Proposal(own);
        }
        self.committed = self.v_cond.is_some();
        EcbMessage::State {
            cond: self.v_cond.clone(),
            tmf: self.v_tmf.clone(),
            out: self.v_out.clone(),
            deciding: self.deciding,
        }
    }

    fn receive(&mut self, round: usize, from: ProcessId, msg: &EcbMessage<V>) {
        self.heard_now += 1;
        match msg {
            EcbMessage::Proposal(v) => {
                // Proposals belong to round 1; a fault-delayed stale
                // copy in a later round is dropped (the view already
                // fed the estimates), never asserted away.
                if round == 1 {
                    self.view.set(from, v.clone());
                }
            }
            EcbMessage::State {
                cond,
                tmf,
                out,
                deciding,
            } => {
                // The message is shared with every recipient; clone a slot
                // only when it improves the fold.
                fn fold<V: Clone + Ord>(acc: &mut Option<V>, v: &Option<V>) {
                    if v.as_ref() > acc.as_ref() {
                        *acc = v.clone();
                    }
                }
                fold(&mut self.recv_cond, cond);
                fold(&mut self.recv_tmf, tmf);
                fold(&mut self.recv_out, out);
                if *deciding {
                    self.deciding = true;
                }
            }
        }
    }

    fn compute(&mut self, round: usize) -> Step<V> {
        let heard = self.heard_now;
        self.heard_now = 0;
        let newly_silent = self.heard_prev.saturating_sub(heard);
        self.heard_prev = heard;

        if round == 1 {
            self.classify_view();
            // The early rule may already fire in round 1 (f = 0 fast path).
            if newly_silent < self.config.k() {
                self.deciding = true;
            }
            return Step::Continue;
        }

        if self.committed {
            // Line 14 of Figure 2: forwarded a non-⊥ v_cond; decide it.
            return Step::Decide(self.v_cond.clone().expect("committed implies v_cond"));
        }
        let flagged_decider = self.deciding;
        self.absorb_received();

        if flagged_decider {
            // Own rule fired last round (flag broadcast this round), or a
            // flagged state arrived and was absorbed: decide by priority.
            return Step::Decide(self.decide_by_priority());
        }

        // Original Figure 2 decision logic.
        let early = round == self.config.condition_decision_round()
            && self.v_tmf.is_some()
            && self.v_out.is_none();
        let last = round >= self.config.final_decision_round();
        if early || last {
            return Step::Decide(self.decide_by_priority());
        }

        // The adaptive rule: fewer than k newly silent processes.
        if newly_silent < self.config.k() {
            self.deciding = true;
        }
        Step::Continue
    }
}

impl<V: fmt::Debug + Ord, O> fmt::Debug for EarlyConditionBased<V, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EarlyConditionBased")
            .field("me", &self.me)
            .field("v_cond", &self.v_cond)
            .field("v_tmf", &self.v_tmf)
            .field("v_out", &self.v_out)
            .field("deciding", &self.deciding)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use setagree_conditions::MaxCondition;
    use setagree_sync::{run_protocol, CrashSpec, FailurePattern};
    use setagree_types::InputVector;

    fn config(n: usize, t: usize, k: usize, d: usize, ell: usize) -> ConditionBasedConfig {
        ConditionBasedConfig::builder(n, t, k)
            .condition_degree(d)
            .ell(ell)
            .build()
            .unwrap()
    }

    fn processes(
        cfg: ConditionBasedConfig,
        input: &InputVector<u32>,
    ) -> Vec<EarlyConditionBased<u32, MaxCondition>> {
        let oracle = MaxCondition::new(cfg.legality());
        (0..cfg.n())
            .map(|i| {
                EarlyConditionBased::new(
                    cfg,
                    ProcessId::new(i),
                    *input.get(ProcessId::new(i)),
                    oracle,
                )
            })
            .collect()
    }

    #[test]
    fn in_condition_fast_path_is_preserved() {
        let cfg = config(8, 4, 2, 2, 1);
        let input = InputVector::new(vec![7, 7, 7, 1, 2, 7, 7, 7]);
        let trace = run_protocol(processes(cfg, &input), &FailurePattern::none(8), 10).unwrap();
        assert!(trace.all_correct_decided());
        assert_eq!(trace.last_decision_round(), Some(2));
        assert_eq!(trace.decided_values(), [7].into_iter().collect());
    }

    #[test]
    fn out_of_condition_failure_free_decides_early() {
        // Figure 2 alone would need ⌊t/k⌋ + 1 = 4 rounds; with f = 0 the
        // adaptive rule cuts it to 2.
        let cfg = config(12, 6, 2, 4, 1);
        let input = InputVector::new((1..=12u32).collect::<Vec<_>>());
        let trace = run_protocol(processes(cfg, &input), &FailurePattern::none(12), 10).unwrap();
        assert!(trace.all_correct_decided());
        assert!(trace.decided_values().len() <= 2);
        assert_eq!(trace.last_decision_round(), Some(2));
    }

    #[test]
    fn adaptive_bound_under_silent_staircase() {
        let cfg = config(12, 6, 2, 4, 1);
        let input = InputVector::new((1..=12u32).collect::<Vec<_>>());
        for f in 0..=6usize {
            let mut pattern = FailurePattern::none(12);
            for i in 0..f {
                pattern
                    .crash(ProcessId::new(11 - i), CrashSpec::new(i / 2 + 1, 0))
                    .unwrap();
            }
            let trace = run_protocol(processes(cfg, &input), &pattern, 10).unwrap();
            assert!(trace.all_correct_decided(), "f = {f}");
            assert!(trace.decided_values().len() <= 2, "f = {f}");
            let bound = (f / 2 + 2).max(2).min(cfg.final_decision_round());
            assert!(
                trace.last_decision_round().unwrap() <= bound,
                "f = {f}: decided at {:?}, adaptive bound {bound}",
                trace.last_decision_round()
            );
        }
    }

    #[test]
    fn never_worse_than_figure_2() {
        use crate::condition_based::ConditionBased;
        let cfg = config(10, 5, 2, 3, 1);
        let oracle = MaxCondition::new(cfg.legality());
        for seed in 0..40u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let input = InputVector::new(
                (0..10)
                    .map(|i| (i * 7 + seed as u32) % 6 + 1)
                    .collect::<Vec<u32>>(),
            );
            let pattern = FailurePattern::random(10, 5, 4, &mut rng);
            let plain: Vec<ConditionBased<u32, MaxCondition>> = (0..10)
                .map(|i| {
                    ConditionBased::new(
                        cfg,
                        ProcessId::new(i),
                        *input.get(ProcessId::new(i)),
                        oracle,
                    )
                })
                .collect();
            let plain_trace = run_protocol(plain, &pattern, cfg.round_limit()).unwrap();
            let early_trace =
                run_protocol(processes(cfg, &input), &pattern, cfg.round_limit()).unwrap();
            assert!(early_trace.all_correct_decided(), "seed {seed}");
            assert!(
                early_trace.decided_values().len() <= cfg.k(),
                "seed {seed}: agreement"
            );
            assert!(
                early_trace.last_decision_round().unwrap()
                    <= plain_trace.last_decision_round().unwrap(),
                "seed {seed}: early variant must not be slower"
            );
        }
    }

    #[test]
    fn agreement_under_random_adversaries_bulk() {
        for seed in 0..120u64 {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xEC8);
            let cfg = config(9, 4, 2, 2, 2);
            let input = InputVector::new(
                (0..9)
                    .map(|i| (i * 5 + seed as u32) % 7 + 1)
                    .collect::<Vec<u32>>(),
            );
            let pattern = FailurePattern::random(9, 4, 4, &mut rng);
            let trace = run_protocol(processes(cfg, &input), &pattern, 10).unwrap();
            assert!(trace.all_correct_decided(), "seed {seed}");
            assert!(
                trace.decided_values().len() <= 2,
                "seed {seed}: {:?}",
                trace.decided_values()
            );
            for v in trace.decided_values() {
                assert!(input.distinct_values().contains(&v), "seed {seed}");
            }
        }
    }

    #[test]
    fn debug_and_accessors() {
        let cfg = config(4, 2, 2, 1, 1);
        let p = EarlyConditionBased::new(
            cfg,
            ProcessId::new(0),
            3u32,
            MaxCondition::new(cfg.legality()),
        );
        assert_eq!(p.config().n(), 4);
        assert!(format!("{p:?}").contains("EarlyConditionBased"));
    }
}
