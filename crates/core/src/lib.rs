//! The paper's primary contribution: the **generic condition-based
//! synchronous k-set agreement algorithm** of Figure 2 (Bonnet & Raynal,
//! ICDCS 2008, Sections 6–8), together with the classical baselines it is
//! compared against.
//!
//! * [`ConditionBased`] — the Figure 2 protocol, instantiated with a
//!   condition `C ∈ S^d_t[ℓ]` through a
//!   [`ConditionOracle`](setagree_conditions::ConditionOracle). When the
//!   input vector belongs to `C` it decides in
//!   `max(2, ⌊(d+ℓ−1)/k⌋ + 1)` rounds (two rounds if at most `t−d`
//!   processes crash in round 1); otherwise in `⌊t/k⌋ + 1` rounds.
//! * [`FloodSet`] — the classical unconditioned synchronous k-set
//!   agreement (`⌊t/k⌋ + 1` rounds; consensus for `k = 1`).
//! * [`EarlyDeciding`] — the early-deciding k-set agreement of
//!   \[Gafni–Guerraoui–Pochon 2005\], deciding in
//!   `min(⌊f/k⌋ + 2, ⌊t/k⌋ + 1)` rounds where `f` is the number of actual
//!   crashes (the extension sketched in the paper's Section 8).
//! * [`experiment`] — the unified **experiment API**: a [`Scenario`]
//!   describes one run (protocol spec, input, adversary, executor) and
//!   produces a [`Report`] checking termination/validity/agreement and
//!   comparing measured rounds against the paper's formulas. The
//!   executors cover both of the paper's models: the synchronous
//!   simulator and real-thread runtime, and the Section 4 asynchronous
//!   shared-memory and message-passing runtimes
//!   ([`Executor::AsyncSharedMemory`] / [`Executor::AsyncMessagePassing`],
//!   seeded adversaries included);
//! * [`suite`] — [`ScenarioSuite`], the batch layer running cartesian
//!   grids of scenarios across worker threads; executors are a grid
//!   dimension, so one grid can mix synchronous and asynchronous cells.
//!   Suites stream ([`ScenarioSuite::run_streaming`] /
//!   [`ScenarioSuite::stream`] emit cases in deterministic grid order as
//!   they complete), share their specs/inputs/patterns with the workers
//!   via `Arc`, and take explicit [`cases`](ScenarioSuite::cases) for
//!   heterogeneous sweeps the product cannot express;
//! * [`cache`] — [`SuiteCache`], the suite result cache: warm cells are
//!   served without re-execution under a stable hash of (spec, input,
//!   pattern, executor-including-seed), in memory or persisted to a
//!   file.
//!
//! # Quickstart
//!
//! ```
//! use setagree_conditions::MaxCondition;
//! use setagree_core::{ConditionBasedConfig, Executor, Scenario};
//! use setagree_sync::FailurePattern;
//!
//! // n = 6, t = 3, k = 2, condition of degree d = 2 with ℓ = 1.
//! let config = ConditionBasedConfig::builder(6, 3, 2)
//!     .condition_degree(2)
//!     .ell(1)
//!     .build()?;
//! // The oracle's legality parameters come from the configuration —
//! // (x, ℓ) = (t − d, ℓ) = (1, 1) here — so they cannot drift apart.
//! let oracle = MaxCondition::new(config.legality());
//! let report = Scenario::condition_based(config, oracle)
//!     .input(vec![5u32, 5, 1, 2, 5, 5]) // in C_max(1, 1)
//!     .pattern(FailurePattern::none(6))
//!     .run()?;
//! assert!(report.satisfies_agreement());
//! assert!(report.satisfies_validity());
//! // Input in condition, no crashes: everyone decides in two rounds.
//! assert_eq!(report.decision_round(), Some(2));
//!
//! // The identical scenario on real OS threads:
//! let threaded = Scenario::condition_based(config, oracle)
//!     .input(vec![5u32, 5, 1, 2, 5, 5])
//!     .executor(Executor::Threaded)
//!     .run()?;
//! assert!(threaded.satisfies_all());
//!
//! // And the same condition in the asynchronous shared-memory model
//! // (Section 4): ℓ-set agreement despite x = t − d crashes, under a
//! // seeded scheduler adversary.
//! let asynchronous = Scenario::condition_based(config, oracle)
//!     .input(vec![5u32, 5, 1, 2, 5, 5])
//!     .executor(Executor::AsyncSharedMemory { seed: 42 })
//!     .run()?;
//! assert!(asynchronous.satisfies_all());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod baselines;
pub mod cache;
pub mod codec;
pub mod condition_based;
pub mod config;
pub mod dense_flood;
pub mod early_condition;
pub mod early_deciding;
pub mod experiment;
pub mod report;
pub mod runner;
pub mod suite;

pub use baselines::FloodSet;
pub use cache::{CacheKey, CacheableValue, CachedResult, JournalReplayStats, SuiteCache};
pub use condition_based::{CbMessage, ConditionBased};
pub use config::{ConditionBasedConfig, ConfigBuilder, ConfigError};
pub use dense_flood::DenseFlood;
pub use early_condition::{EarlyConditionBased, EcbMessage};
pub use early_deciding::EarlyDeciding;
pub use experiment::{Adversary, Executor, ExperimentError, ProtocolKind, ProtocolSpec, Scenario};
#[allow(deprecated)]
pub use report::RunReport;
pub use report::{Execution, Report};
#[allow(deprecated)]
pub use runner::{
    run_condition_based, run_early_condition_based, run_early_deciding, run_floodset, RunError,
};
// Re-exported so scenario authors can build async adversaries and read
// raw async outcomes without a separate setagree-async dependency.
pub use setagree_async::{AsyncCrashes, AsyncOutcome, AsyncReport};
// Re-exported so cache/journal users can read tail verdicts and write
// CacheableValue impls without a separate setagree-codec dependency.
pub use setagree_codec::journal::JournalTail;
pub use setagree_codec::{DecodeError, Reader, Writer};
// Re-exported so scenario authors can select the networked executor's
// transport without a separate setagree-node dependency.
pub use setagree_node::TransportKind;
// Re-exported so scenario authors can build omission adversaries
// (Adversary::Omission / Adversary::Network) without a separate
// setagree-sync dependency.
pub use setagree_sync::{FaultPlan, LinkFault, Partition, RATE_SCALE};
pub use suite::{CaseSpec, ScenarioSuite, SuiteCase, SuiteReport, SuiteRun, SuiteRunStats};
