//! Algorithm parameters `(n, t, k, d, ℓ)` and the paper's round formulas.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use setagree_conditions::{LegalityParams, SdtParams};

/// Error building a [`ConditionBasedConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// Need `1 ≤ t < n` (at least one process must survive, and a fault
    /// bound of zero leaves nothing to tolerate).
    BadFaultBound {
        /// The system size.
        n: usize,
        /// The offending fault bound.
        t: usize,
    },
    /// Need `k ≥ 1`.
    ZeroK,
    /// Need `1 ≤ ℓ ≤ k`: a condition encoding more values than the
    /// processes may decide is useless (Section 6.1).
    EllExceedsK {
        /// The agreement width of the condition.
        ell: usize,
        /// The number of values that may be decided.
        k: usize,
    },
    /// Need `ℓ ≥ 1`.
    ZeroEll,
    /// Need `d ≤ t`.
    DegreeExceedsFaults {
        /// The condition degree.
        d: usize,
        /// The fault bound.
        t: usize,
    },
    /// The paper requires `ℓ ≤ t − d`; beyond it the condition may include
    /// all input vectors and cannot beat `⌊t/k⌋ + 1` (Theorem 8 /
    /// footnote 6). Opt in with
    /// [`ConfigBuilder::permit_trivial_condition`].
    TrivialConditionRegime {
        /// The agreement width.
        ell: usize,
        /// `t − d`.
        t_minus_d: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadFaultBound { n, t } => {
                write!(f, "fault bound t = {t} must satisfy 1 ≤ t < n = {n}")
            }
            ConfigError::ZeroK => write!(f, "k must be at least 1"),
            ConfigError::ZeroEll => write!(f, "ℓ must be at least 1"),
            ConfigError::EllExceedsK { ell, k } => {
                write!(
                    f,
                    "condition width ℓ = {ell} exceeds the agreement degree k = {k}"
                )
            }
            ConfigError::DegreeExceedsFaults { d, t } => {
                write!(
                    f,
                    "condition degree d = {d} exceeds the fault bound t = {t}"
                )
            }
            ConfigError::TrivialConditionRegime { ell, t_minus_d } => write!(
                f,
                "ℓ = {ell} > t − d = {t_minus_d}: the condition is in the trivial regime \
                 (enable permit_trivial_condition to run it anyway)"
            ),
        }
    }
}

impl Error for ConfigError {}

/// The validated parameters of one [`ConditionBased`](crate::ConditionBased)
/// instantiation.
///
/// # Example
///
/// ```
/// use setagree_core::ConditionBasedConfig;
///
/// let config = ConditionBasedConfig::builder(8, 4, 2)
///     .condition_degree(2)
///     .ell(2)
///     .build()?;
/// assert_eq!(config.legality().x(), 2); // x = t − d
/// // ⌊(d+ℓ−1)/k⌋ + 1 = ⌊3/2⌋ + 1 = 2 rounds in-condition…
/// assert_eq!(config.rounds_in_condition(), 2);
/// // …vs ⌊t/k⌋ + 1 = 3 rounds outside.
/// assert_eq!(config.rounds_outside_condition(), 3);
/// # Ok::<(), setagree_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConditionBasedConfig {
    n: usize,
    t: usize,
    k: usize,
    d: usize,
    ell: usize,
}

impl ConditionBasedConfig {
    /// Starts a builder for a system of `n` processes tolerating `t`
    /// crashes and deciding at most `k` values.
    ///
    /// Defaults: `d = t`, `ℓ = 1` — the weakest consensus-grade condition.
    pub fn builder(n: usize, t: usize, k: usize) -> ConfigBuilder {
        ConfigBuilder {
            n,
            t,
            k,
            d: t,
            ell: 1,
            permit_trivial: false,
        }
    }

    /// The system size `n`.
    pub const fn n(&self) -> usize {
        self.n
    }

    /// The fault bound `t`.
    pub const fn t(&self) -> usize {
        self.t
    }

    /// The agreement degree `k` (at most `k` values decided).
    pub const fn k(&self) -> usize {
        self.k
    }

    /// The condition degree `d` (the condition is in `S^d_t[ℓ]`).
    pub const fn d(&self) -> usize {
        self.d
    }

    /// The condition width ℓ.
    pub const fn ell(&self) -> usize {
        self.ell
    }

    /// The legality parameters of the condition: `(x, ℓ) = (t − d, ℓ)`.
    pub fn legality(&self) -> LegalityParams {
        LegalityParams::new(self.t - self.d, self.ell).expect("ℓ ≥ 1 validated")
    }

    /// The hierarchy member `S^d_t[ℓ]` the condition belongs to.
    pub fn sdt(&self) -> SdtParams {
        SdtParams::new(self.t, self.d, self.ell).expect("d ≤ t and ℓ ≥ 1 validated")
    }

    /// The paper's in-condition round bound `⌊(d+ℓ−1)/k⌋ + 1`.
    ///
    /// This interpolates the known special cases: `ℓ = 1, k = 1` gives the
    /// `d + 1` of synchronous condition-based consensus \[22\], and
    /// `d = t − ℓ + 1` (the trivial regime boundary) gives `⌊t/k⌋ + 1`.
    pub const fn rounds_in_condition(&self) -> usize {
        (self.d + self.ell - 1) / self.k + 1
    }

    /// The out-of-condition bound `⌊t/k⌋ + 1` (the classical synchronous
    /// k-set agreement bound).
    pub const fn rounds_outside_condition(&self) -> usize {
        self.t / self.k + 1
    }

    /// The round at which the line-18 early predicate fires: the
    /// in-condition bound clamped to at least 2 (the algorithm's decision
    /// loop starts at round 2).
    pub fn condition_decision_round(&self) -> usize {
        self.rounds_in_condition().max(2)
    }

    /// The final decision round, clamped to at least 2.
    pub fn final_decision_round(&self) -> usize {
        self.rounds_outside_condition().max(2)
    }

    /// A safe engine round limit for executions of this configuration.
    pub fn round_limit(&self) -> usize {
        self.final_decision_round()
            .max(self.condition_decision_round())
            + 2
    }
}

impl fmt::Display for ConditionBasedConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} t={} k={} d={} ℓ={}",
            self.n, self.t, self.k, self.d, self.ell
        )
    }
}

/// Builder for [`ConditionBasedConfig`]; see
/// [`ConditionBasedConfig::builder`].
#[derive(Debug, Clone)]
pub struct ConfigBuilder {
    n: usize,
    t: usize,
    k: usize,
    d: usize,
    ell: usize,
    permit_trivial: bool,
}

impl ConfigBuilder {
    /// Sets the condition degree `d` (default: `t`).
    pub fn condition_degree(mut self, d: usize) -> Self {
        self.d = d;
        self
    }

    /// Sets the condition width ℓ (default: 1).
    pub fn ell(mut self, ell: usize) -> Self {
        self.ell = ell;
        self
    }

    /// Allows `ℓ > t − d` — the regime where the condition may contain all
    /// input vectors and the algorithm cannot beat `⌊t/k⌋ + 1` (useful for
    /// baseline measurements; see the paper's footnote 6).
    pub fn permit_trivial_condition(mut self) -> Self {
        self.permit_trivial = true;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// See [`ConfigError`] for each rejected combination.
    pub fn build(self) -> Result<ConditionBasedConfig, ConfigError> {
        let ConfigBuilder {
            n,
            t,
            k,
            d,
            ell,
            permit_trivial,
        } = self;
        if t == 0 || t >= n {
            return Err(ConfigError::BadFaultBound { n, t });
        }
        if k == 0 {
            return Err(ConfigError::ZeroK);
        }
        if ell == 0 {
            return Err(ConfigError::ZeroEll);
        }
        if ell > k {
            return Err(ConfigError::EllExceedsK { ell, k });
        }
        if d > t {
            return Err(ConfigError::DegreeExceedsFaults { d, t });
        }
        if ell + d > t && !permit_trivial {
            return Err(ConfigError::TrivialConditionRegime {
                ell,
                t_minus_d: t - d,
            });
        }
        Ok(ConditionBasedConfig { n, t, k, d, ell })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_accessors() {
        let c = ConditionBasedConfig::builder(8, 4, 2)
            .condition_degree(3)
            .ell(1)
            .build()
            .unwrap();
        assert_eq!((c.n(), c.t(), c.k(), c.d(), c.ell()), (8, 4, 2, 3, 1));
        assert_eq!(c.legality(), LegalityParams::new(1, 1).unwrap());
        assert_eq!(c.sdt().degree(), 3);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(matches!(
            ConditionBasedConfig::builder(4, 0, 1).build(),
            Err(ConfigError::BadFaultBound { .. })
        ));
        assert!(matches!(
            ConditionBasedConfig::builder(4, 4, 1).build(),
            Err(ConfigError::BadFaultBound { .. })
        ));
        assert!(matches!(
            ConditionBasedConfig::builder(4, 2, 0).build(),
            Err(ConfigError::ZeroK)
        ));
        assert!(matches!(
            ConditionBasedConfig::builder(8, 4, 2).ell(0).build(),
            Err(ConfigError::ZeroEll)
        ));
        assert!(matches!(
            ConditionBasedConfig::builder(8, 4, 2).ell(3).build(),
            Err(ConfigError::EllExceedsK { .. })
        ));
        assert!(matches!(
            ConditionBasedConfig::builder(8, 4, 2)
                .condition_degree(5)
                .build(),
            Err(ConfigError::DegreeExceedsFaults { .. })
        ));
    }

    #[test]
    fn trivial_regime_needs_opt_in() {
        // t = 2, d = 2 → t − d = 0 < ℓ = 1.
        let builder = || {
            ConditionBasedConfig::builder(6, 2, 2)
                .condition_degree(2)
                .ell(1)
        };
        assert!(matches!(
            builder().build(),
            Err(ConfigError::TrivialConditionRegime { .. })
        ));
        assert!(builder().permit_trivial_condition().build().is_ok());
    }

    #[test]
    fn round_formula_special_cases() {
        // ℓ = 1, k = 1: consensus in d + 1 rounds [22].
        let consensus = ConditionBasedConfig::builder(8, 5, 1)
            .condition_degree(3)
            .ell(1)
            .build()
            .unwrap();
        assert_eq!(consensus.rounds_in_condition(), 4);
        assert_eq!(consensus.rounds_outside_condition(), 6);

        // ℓ = 1: the generic pair (k, ⌊d/k⌋ + 1) of Section 1.2.
        let pair = ConditionBasedConfig::builder(10, 6, 3)
            .condition_degree(4)
            .ell(1)
            .build()
            .unwrap();
        assert_eq!(pair.rounds_in_condition(), 4 / 3 + 1);

        // d = t − ℓ + 1 (trivial boundary): in-condition bound equals ⌊t/k⌋ + 1.
        let boundary = ConditionBasedConfig::builder(10, 6, 2)
            .condition_degree(5)
            .ell(2)
            .permit_trivial_condition()
            .build()
            .unwrap();
        assert_eq!(
            boundary.rounds_in_condition(),
            boundary.rounds_outside_condition()
        );
    }

    #[test]
    fn k_greater_than_d_plus_ell_gives_one_round_formula() {
        // ⌊(d+ℓ−1)/k⌋ + 1 = 1 when k > d + ℓ − 1: the [21]-style one-round
        // regime; the runnable decision round clamps to 2.
        let c = ConditionBasedConfig::builder(10, 5, 4)
            .condition_degree(2)
            .ell(1)
            .build()
            .unwrap();
        assert_eq!(c.rounds_in_condition(), 1);
        assert_eq!(c.condition_decision_round(), 2);
    }

    #[test]
    fn round_limit_covers_both_bounds() {
        let c = ConditionBasedConfig::builder(9, 6, 2)
            .condition_degree(3)
            .ell(2)
            .build()
            .unwrap();
        assert!(c.round_limit() > c.final_decision_round());
        assert!(c.round_limit() > c.condition_decision_round());
    }

    #[test]
    fn display_lists_parameters() {
        let c = ConditionBasedConfig::builder(8, 4, 2)
            .condition_degree(2)
            .build()
            .unwrap();
        assert_eq!(c.to_string(), "n=8 t=4 k=2 d=2 ℓ=1");
    }
}
