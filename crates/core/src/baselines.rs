//! The classical unconditioned baseline: flood-set synchronous k-set
//! agreement in `⌊t/k⌋ + 1` rounds (consensus for `k = 1`, `t + 1`
//! rounds), per Chaudhuri–Herlihy–Lynch–Tuttle.
//!
//! Every process floods the greatest value it knows; after `⌊t/k⌋ + 1`
//! rounds it decides it. The paper's algorithm degenerates to this bound
//! when the input vector is outside the condition, which is what the
//! benches compare against.

use std::fmt;

use setagree_sync::{Step, SyncProtocol};
use setagree_types::{ProcessId, ProposalValue};

/// One process of the flood-set k-set agreement baseline.
///
/// # Example
///
/// ```
/// use setagree_core::FloodSet;
/// use setagree_sync::{run_protocol, FailurePattern};
///
/// // n = 4, t = 2, k = 1 (consensus): t + 1 = 3 rounds.
/// let procs: Vec<_> = [4u32, 7, 1, 2]
///     .into_iter()
///     .map(|v| FloodSet::new(2, 1, v))
///     .collect();
/// let trace = run_protocol(procs, &FailurePattern::none(4), 10).unwrap();
/// assert_eq!(trace.decided_values(), [7].into_iter().collect());
/// assert_eq!(trace.last_decision_round(), Some(3));
/// ```
#[derive(Debug, Clone)]
pub struct FloodSet<V> {
    target_round: usize,
    estimate: V,
}

impl<V: ProposalValue> FloodSet<V> {
    /// Creates a process proposing `value` in a system tolerating `t`
    /// crashes with agreement degree `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(t: usize, k: usize, value: V) -> Self {
        assert!(k > 0, "k must be at least 1");
        FloodSet {
            target_round: t / k + 1,
            estimate: value,
        }
    }

    /// Creates a flood-set process that decides at an explicit round —
    /// **for lower-bound experiments only**: with fewer than `⌊t/k⌋ + 1`
    /// rounds the protocol is incorrect, and the chain adversary of
    /// [`FailurePattern::chain`](setagree_sync::FailurePattern::chain)
    /// exhibits the violation (see `tests/lower_bound.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `target_round == 0`.
    pub fn with_target_round(target_round: usize, value: V) -> Self {
        assert!(target_round > 0, "rounds are 1-based");
        FloodSet {
            target_round,
            estimate: value,
        }
    }

    /// The round at which this process decides: `⌊t/k⌋ + 1`.
    pub fn target_round(&self) -> usize {
        self.target_round
    }

    /// The current estimate (the greatest value seen so far).
    pub fn estimate(&self) -> &V {
        &self.estimate
    }
}

impl<V: ProposalValue> SyncProtocol for FloodSet<V> {
    type Msg = V;
    type Output = V;

    fn message(&mut self, _round: usize) -> V {
        self.estimate.clone()
    }

    fn receive(&mut self, _round: usize, _from: ProcessId, msg: &V) {
        if *msg > self.estimate {
            self.estimate = msg.clone();
        }
    }

    fn compute(&mut self, round: usize) -> Step<V> {
        if round >= self.target_round {
            Step::Decide(self.estimate.clone())
        } else {
            Step::Continue
        }
    }
}

impl<V: fmt::Display> fmt::Display for FloodSet<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "floodset(est = {}, decides @ r{})",
            self.estimate, self.target_round
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setagree_sync::{run_protocol, CrashSpec, FailurePattern};
    use setagree_types::InputVector;

    fn system(t: usize, k: usize, inputs: &[u32]) -> Vec<FloodSet<u32>> {
        inputs.iter().map(|&v| FloodSet::new(t, k, v)).collect()
    }

    #[test]
    fn consensus_converges_to_max() {
        let trace =
            run_protocol(system(2, 1, &[3, 9, 1, 4]), &FailurePattern::none(4), 10).unwrap();
        assert_eq!(trace.decided_values(), [9].into_iter().collect());
        assert_eq!(trace.last_decision_round(), Some(3));
    }

    #[test]
    fn k_set_decides_by_t_over_k_plus_1() {
        // t = 4, k = 2 → 3 rounds.
        let inputs: Vec<u32> = (1..=8).collect();
        let trace = run_protocol(system(4, 2, &inputs), &FailurePattern::none(8), 10).unwrap();
        assert_eq!(trace.last_decision_round(), Some(3));
        assert!(trace.decided_values().len() <= 2);
    }

    #[test]
    fn agreement_holds_under_staircase() {
        // One crash per round (k = 1 worst case) must still yield consensus.
        let inputs: Vec<u32> = (1..=6).rev().collect();
        let pattern = FailurePattern::staircase(6, 3, 1);
        let trace = run_protocol(system(3, 1, &inputs), &pattern, 10).unwrap();
        assert_eq!(trace.decided_values().len(), 1);
        assert!(trace.all_correct_decided());
    }

    #[test]
    fn agreement_can_fail_if_stopped_early() {
        // Sanity for the lower bound: with only ⌊t/k⌋ rounds (one too few)
        // a crafted crash pattern yields more than k values. This guards
        // against the engine being accidentally "too kind" to protocols.
        #[derive(Debug, Clone)]
        struct ShortFlood(FloodSet<u32>);
        impl SyncProtocol for ShortFlood {
            type Msg = u32;
            type Output = u32;
            fn message(&mut self, r: usize) -> u32 {
                self.0.message(r)
            }
            fn receive(&mut self, r: usize, from: ProcessId, m: &u32) {
                self.0.receive(r, from, m);
            }
            fn compute(&mut self, round: usize) -> Step<u32> {
                if round >= self.0.target_round() - 1 {
                    Step::Decide(*self.0.estimate())
                } else {
                    Step::Continue
                }
            }
        }
        // t = 2, k = 1: full bound 3 rounds, truncated to 2. Chain crash:
        // p1 knows 9 and reaches only p2 in round 1; p2 reaches only p3 in
        // round 2 — too late for a 2-round protocol to flush.
        let mut pattern = FailurePattern::none(4);
        pattern
            .crash(ProcessId::new(0), CrashSpec::new(1, 2))
            .unwrap();
        pattern
            .crash(ProcessId::new(1), CrashSpec::new(2, 3))
            .unwrap();
        let procs: Vec<ShortFlood> = [9u32, 1, 1, 1]
            .into_iter()
            .map(|v| ShortFlood(FloodSet::new(2, 1, v)))
            .collect();
        let trace = run_protocol(procs, &pattern, 10).unwrap();
        assert!(
            trace.decided_values().len() > 1,
            "truncated floodset must disagree under the chain adversary, got {:?}",
            trace.decided_values()
        );
        let input = InputVector::new(vec![9u32, 1, 1, 1]);
        for v in trace.decided_values() {
            assert!(input.distinct_values().contains(&v));
        }
    }

    #[test]
    fn validity_under_random_crashes() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let inputs: Vec<u32> = vec![2, 8, 8, 3, 5, 1];
        for seed in 0..40 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let pattern = FailurePattern::random(6, 3, 4, &mut rng);
            let trace = run_protocol(system(3, 2, &inputs), &pattern, 10).unwrap();
            assert!(trace.all_correct_decided());
            assert!(trace.decided_values().len() <= 2, "seed {seed}");
            for v in trace.decided_values() {
                assert!(inputs.contains(&v), "seed {seed}: {v} not proposed");
            }
        }
    }

    #[test]
    fn display_and_accessors() {
        let p = FloodSet::new(4, 2, 7u32);
        assert_eq!(p.target_round(), 3);
        assert_eq!(*p.estimate(), 7);
        assert_eq!(p.to_string(), "floodset(est = 7, decides @ r3)");
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_is_rejected() {
        let _ = FloodSet::new(2, 0, 1u32);
    }
}
