//! Result caching for [`ScenarioSuite`](crate::ScenarioSuite) runs.
//!
//! Every grid cell of a suite is a pure function of its coordinates:
//! the spec (protocol, parameters, oracle), the input vector, the
//! adversary, the executor (seed included — the asynchronous executors
//! carry their adversary seed, so an async cell is exactly as cacheable
//! as a synchronous one) and the suite's round-limit/step-budget
//! overrides. A [`SuiteCache`] memoizes cells under a stable 128-bit
//! hash of those coordinates: a rerun of the same grid — or of a larger
//! grid sharing cells with an earlier one — serves the warm cells
//! without re-executing any protocol.
//!
//! ```
//! use std::sync::Arc;
//! use setagree_core::{ProtocolSpec, ScenarioSuite, SuiteCache};
//!
//! let cache = Arc::new(SuiteCache::new());
//! let suite = ScenarioSuite::new()
//!     .spec(ProtocolSpec::flood_set(4, 2, 1))
//!     .input(vec![3u32, 9, 1, 4])
//!     .cache(&cache);
//! let cold = suite.run();
//! assert_eq!((cold.cache_hits(), cold.cache_misses()), (0, 1));
//! let warm = suite.run(); // zero executions: every cell served warm
//! assert_eq!((warm.cache_hits(), warm.cache_misses()), (1, 0));
//! assert_eq!(cold.cases(), warm.cases());
//! ```
//!
//! # Persistence
//!
//! A cache can be [saved to](SuiteCache::save) and
//! [loaded from](SuiteCache::load_or_empty) a file, so warm cells
//! survive across processes (the CI smoke test runs `table_async` twice
//! against one cache file and diffs the outputs). The vendored `serde`
//! is an offline no-op shim — the derives compile but serialize nothing
//! — so the file format is a small versioned line codec implemented
//! here; when the real serde lands (see ROADMAP), the codec can swap to
//! `serde_json` without touching callers. Persistence needs the value
//! type to be token-encodable, which the [`CacheableValue`] impls
//! provide for the integer types the experiments use.
//!
//! # Key stability
//!
//! Keys are produced by a fixed FNV-1a hasher over the components'
//! `Hash` impls, so they are deterministic across runs of the same
//! build on the same platform — the contract a persisted cache needs.
//! They are *not* portable across architectures (`usize` width) or
//! guaranteed across compiler versions; the file header's format
//! version guards misreads, and a stale file simply reloads as cold
//! cells, never as wrong results served under a colliding key (the
//! 128-bit key makes accidental collision negligible for experiment
//! grids).

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::hash::{Hash, Hasher};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use setagree_async::{AsyncOutcome, AsyncReport};
use setagree_conditions::LegalityParams;
use setagree_sync::{Outcome, Trace};
use setagree_types::{InputVector, ProcessId, ProposalValue};

use crate::experiment::{Executor, ExperimentError, ProtocolKind, TransportKind};
use crate::report::{Execution, Report};

/// Bumped whenever the key derivation or the file codec changes shape;
/// mixed into every key and written into the file header, so stale
/// files read as cold caches instead of decoding garbage.
const FORMAT_VERSION: u64 = 1;

/// The file header line identifying a persisted suite cache.
const FILE_MAGIC: &str = "setagree-suite-cache v1";

/// A fixed-parameter FNV-1a 64-bit hasher: deterministic across runs,
/// unlike `std`'s randomized `DefaultHasher` — the property a persisted
/// cache key needs.
#[derive(Debug, Clone)]
pub(crate) struct StableHasher {
    state: u64,
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
/// The standard FNV-1a offset basis.
const FNV_BASIS_LO: u64 = 0xCBF2_9CE4_8422_2325;
/// An alternative basis for the key's second half, so the two halves
/// are independent walks over the same bytes.
const FNV_BASIS_HI: u64 = 0x6C62_272E_07BB_0142;

impl StableHasher {
    fn with_basis(basis: u64) -> Self {
        StableHasher { state: basis }
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Hashes one value twice (two FNV bases), yielding the two independent
/// 64-bit halves cache keys are combined from.
pub(crate) fn stable_pair<T: Hash + ?Sized>(value: &T) -> (u64, u64) {
    let mut hi = StableHasher::with_basis(FNV_BASIS_HI);
    let mut lo = StableHasher::with_basis(FNV_BASIS_LO);
    value.hash(&mut hi);
    value.hash(&mut lo);
    (hi.finish(), lo.finish())
}

/// A 128-bit cache key: the stable hash of one suite cell's coordinates
/// (spec, input, pattern, executor with its seed, and the suite's
/// round-limit/step-budget overrides).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    hi: u64,
    lo: u64,
}

impl CacheKey {
    /// Folds component hash pairs (in a fixed order) into one key.
    pub(crate) fn combine(components: &[(u64, u64)]) -> CacheKey {
        let mut hi = StableHasher::with_basis(FNV_BASIS_HI);
        let mut lo = StableHasher::with_basis(FNV_BASIS_LO);
        hi.write_u64(FORMAT_VERSION);
        lo.write_u64(FORMAT_VERSION);
        for &(h, l) in components {
            hi.write_u64(h);
            lo.write_u64(l);
        }
        CacheKey {
            hi: hi.finish(),
            lo: lo.finish(),
        }
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// What a cache stores per cell: the cell's full positioned result —
/// a successful [`Report`] or the validation/engine error the cell
/// produced (errors are deterministic too, so a warm rerun reproduces
/// them without re-validating).
pub type CachedResult<V> = Result<Report<V>, ExperimentError>;

/// A shareable, thread-safe memo of suite cell results.
///
/// Hand one cache (behind an [`Arc`]) to any number of suites via
/// [`ScenarioSuite::cache`](crate::ScenarioSuite::cache); concurrent
/// workers of a streaming run consult and fill it through a mutex.
/// The `hits()`/`misses()` counters are lifetime totals; per-run
/// counters live on the run's [`SuiteReport`](crate::SuiteReport).
pub struct SuiteCache<V: Ord> {
    entries: Mutex<HashMap<CacheKey, CachedResult<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V: Ord> Default for SuiteCache<V> {
    fn default() -> Self {
        SuiteCache {
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl<V: ProposalValue> fmt::Debug for SuiteCache<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SuiteCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl<V: ProposalValue> SuiteCache<V> {
    /// An empty cache.
    pub fn new() -> Self {
        SuiteCache::default()
    }

    /// The number of cached cells.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock poisoned").len()
    }

    /// Whether the cache holds no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime cache hits (across every suite sharing this cache).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime cache misses.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drops every cached cell (counters are kept — they describe
    /// lookups, not contents).
    pub fn clear(&self) {
        self.entries.lock().expect("cache lock poisoned").clear();
    }

    /// Looks a cell up, counting a hit or a miss.
    pub(crate) fn lookup(&self, key: &CacheKey) -> Option<CachedResult<V>> {
        let found = self
            .entries
            .lock()
            .expect("cache lock poisoned")
            .get(key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a cell result.
    pub(crate) fn insert(&self, key: CacheKey, result: CachedResult<V>) {
        self.entries
            .lock()
            .expect("cache lock poisoned")
            .insert(key, result);
    }
}

/// A value type the cache file codec can round-trip: encodes to one
/// whitespace-free token and decodes back to an equal value.
///
/// Implemented for the integer types the experiments propose. The
/// in-memory cache needs only `Hash` (for keys); this trait gates the
/// persistence methods alone.
pub trait CacheableValue: ProposalValue + Hash {
    /// Encodes the value as one token (no whitespace, no newlines).
    fn encode(&self) -> String;
    /// Decodes a token produced by [`CacheableValue::encode`].
    fn decode(token: &str) -> Option<Self>;
}

macro_rules! cacheable_ints {
    ($($t:ty),*) => {$(
        impl CacheableValue for $t {
            fn encode(&self) -> String {
                self.to_string()
            }
            fn decode(token: &str) -> Option<Self> {
                token.parse().ok()
            }
        }
    )*};
}

cacheable_ints!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

fn corrupt(line_no: usize, what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("suite cache file line {line_no}: {what}"),
    )
}

impl<V: CacheableValue> SuiteCache<V> {
    /// Loads a persisted cache, or returns an empty one when `path`
    /// does not exist (the natural cold-start for a cron-style rerun).
    ///
    /// # Errors
    ///
    /// I/O failures other than `NotFound`, and malformed files —
    /// except a *version* mismatch in the header, which loads as an
    /// empty cache (an old file is a cold cache, not an error).
    pub fn load_or_empty(path: impl AsRef<Path>) -> io::Result<Self> {
        match fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(SuiteCache::new()),
            Err(e) => Err(e),
        }
    }

    /// Persists every cached cell to `path` (atomically per call: the
    /// file is rewritten whole into a sibling temp file and renamed
    /// over `path`, so a concurrent [`SuiteCache::load_or_empty`] — or
    /// a crash mid-save — never observes a truncated file), in
    /// deterministic key order.
    ///
    /// # Errors
    ///
    /// I/O failures creating, writing or renaming the file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let entries = self.entries.lock().expect("cache lock poisoned");
        let mut lines: Vec<String> = entries
            .iter()
            .map(|(key, result)| format!("{} {} {}", key.hi, key.lo, encode_result(result)))
            .collect();
        drop(entries);
        lines.sort();
        let mut text = String::from(FILE_MAGIC);
        text.push('\n');
        for line in lines {
            text.push_str(&line);
            text.push('\n');
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp-{}", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        fs::write(&tmp, text)?;
        fs::rename(&tmp, path).inspect_err(|_| {
            let _ = fs::remove_file(&tmp);
        })
    }

    fn parse(text: &str) -> io::Result<Self> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, header)) if header == FILE_MAGIC => {}
            // A different version of this codec: treat as a cold cache.
            Some((_, header)) if header.starts_with("setagree-suite-cache ") => {
                return Ok(SuiteCache::new());
            }
            _ => return Err(corrupt(1, "missing header")),
        }
        let cache = SuiteCache::new();
        let mut entries = HashMap::new();
        for (idx, line) in lines {
            let line_no = idx + 1;
            if line.trim().is_empty() {
                continue;
            }
            let mut tokens = line.split_ascii_whitespace();
            let hi = next_u64(&mut tokens, line_no)?;
            let lo = next_u64(&mut tokens, line_no)?;
            let result = decode_result(&mut tokens, line_no)?;
            if tokens.next().is_some() {
                return Err(corrupt(line_no, "trailing tokens"));
            }
            entries.insert(CacheKey { hi, lo }, result);
        }
        *cache.entries.lock().expect("cache lock poisoned") = entries;
        Ok(cache)
    }
}

type Tokens<'a> = std::str::SplitAsciiWhitespace<'a>;

fn next_token<'a>(tokens: &mut Tokens<'a>, line_no: usize) -> io::Result<&'a str> {
    tokens
        .next()
        .ok_or_else(|| corrupt(line_no, "unexpected end of line"))
}

fn next_u64(tokens: &mut Tokens<'_>, line_no: usize) -> io::Result<u64> {
    next_token(tokens, line_no)?
        .parse()
        .map_err(|_| corrupt(line_no, "expected an integer"))
}

fn next_usize(tokens: &mut Tokens<'_>, line_no: usize) -> io::Result<usize> {
    next_token(tokens, line_no)?
        .parse()
        .map_err(|_| corrupt(line_no, "expected an integer"))
}

fn next_value<V: CacheableValue>(tokens: &mut Tokens<'_>, line_no: usize) -> io::Result<V> {
    V::decode(next_token(tokens, line_no)?).ok_or_else(|| corrupt(line_no, "bad value token"))
}

fn encode_executor(executor: Executor) -> String {
    match executor {
        Executor::Simulator => "sim".into(),
        Executor::Threaded => "thr".into(),
        Executor::AsyncSharedMemory { seed } => format!("asm {seed}"),
        Executor::AsyncMessagePassing { seed } => format!("amp {seed}"),
        Executor::Networked {
            transport: TransportKind::Loopback,
        } => "net-lb".into(),
        Executor::Networked {
            transport: TransportKind::Tcp,
        } => "net-tcp".into(),
    }
}

fn decode_executor(tokens: &mut Tokens<'_>, line_no: usize) -> io::Result<Executor> {
    Ok(match next_token(tokens, line_no)? {
        "sim" => Executor::Simulator,
        "thr" => Executor::Threaded,
        "asm" => Executor::AsyncSharedMemory {
            seed: next_u64(tokens, line_no)?,
        },
        "amp" => Executor::AsyncMessagePassing {
            seed: next_u64(tokens, line_no)?,
        },
        "net-lb" => Executor::Networked {
            transport: TransportKind::Loopback,
        },
        "net-tcp" => Executor::Networked {
            transport: TransportKind::Tcp,
        },
        _ => return Err(corrupt(line_no, "unknown executor")),
    })
}

fn encode_protocol(protocol: ProtocolKind) -> &'static str {
    match protocol {
        ProtocolKind::ConditionBased => "cb",
        ProtocolKind::EarlyConditionBased => "ecb",
        ProtocolKind::EarlyDeciding => "ed",
        ProtocolKind::FloodSet => "fs",
        ProtocolKind::AsyncSetAgreement => "asa",
    }
}

fn decode_protocol(tokens: &mut Tokens<'_>, line_no: usize) -> io::Result<ProtocolKind> {
    Ok(match next_token(tokens, line_no)? {
        "cb" => ProtocolKind::ConditionBased,
        "ecb" => ProtocolKind::EarlyConditionBased,
        "ed" => ProtocolKind::EarlyDeciding,
        "fs" => ProtocolKind::FloodSet,
        "asa" => ProtocolKind::AsyncSetAgreement,
        _ => return Err(corrupt(line_no, "unknown protocol")),
    })
}

/// Percent-escapes everything outside printable ASCII (plus `%`) so
/// arbitrary error messages fit in one token. Escaping byte-wise keeps
/// the output pure ASCII — pushing a byte ≥ 0x80 as a `char` would
/// re-encode it in UTF-8 and corrupt non-ASCII messages on the way
/// back.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for b in text.bytes() {
        match b {
            b'%' => out.push_str("%25"),
            0x21..=0x7E => out.push(b as char),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    if out.is_empty() {
        out.push('%');
    }
    out
}

fn unescape(token: &str) -> Option<String> {
    if token == "%" {
        return Some(String::new());
    }
    let bytes = token.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

fn encode_result<V: CacheableValue>(result: &CachedResult<V>) -> String {
    match result {
        Ok(report) => encode_report(report),
        Err(error) => format!("err {}", encode_error(error)),
    }
}

fn encode_report<V: CacheableValue>(report: &Report<V>) -> String {
    let mut out = String::from("ok ");
    match report.execution() {
        Execution::Rounds {
            trace,
            predicted_rounds,
        } => {
            out.push_str(&format!(
                "R {predicted_rounds} {} {} ",
                trace.rounds_executed(),
                trace.messages_delivered()
            ));
            out.push_str(&format!("{} ", trace.outcomes().len()));
            for outcome in trace.outcomes() {
                match outcome {
                    Outcome::Decided { value, round } => {
                        out.push_str(&format!("d {} {round} ", value.encode()));
                    }
                    Outcome::Crashed { round } => out.push_str(&format!("c {round} ")),
                    Outcome::Undecided => out.push_str("x "),
                }
            }
        }
        Execution::Steps(steps) => {
            out.push_str(&format!("S {} ", steps.total_steps()));
            out.push_str(&format!("{} ", steps.outcomes().len()));
            for outcome in steps.outcomes() {
                match outcome {
                    AsyncOutcome::Decided { value, steps } => {
                        out.push_str(&format!("d {} {steps} ", value.encode()));
                    }
                    AsyncOutcome::Crashed => out.push_str("c "),
                    AsyncOutcome::Blocked => out.push_str("b "),
                    AsyncOutcome::Unfinished => out.push_str("u "),
                }
            }
        }
    }
    out.push_str(&format!(
        "{} {} {} ",
        report.k(),
        encode_protocol(report.protocol()),
        encode_executor(report.executor())
    ));
    out.push_str(&format!("{}", report.input().len()));
    for value in report.input().iter() {
        out.push(' ');
        out.push_str(&value.encode());
    }
    out
}

fn decode_report<V: CacheableValue>(
    tokens: &mut Tokens<'_>,
    line_no: usize,
) -> io::Result<Report<V>> {
    let shape = next_token(tokens, line_no)?;
    let execution = match shape {
        "R" => {
            let predicted_rounds = next_usize(tokens, line_no)?;
            let rounds_executed = next_usize(tokens, line_no)?;
            let messages_delivered = next_u64(tokens, line_no)?;
            let count = next_usize(tokens, line_no)?;
            let mut outcomes = Vec::with_capacity(count);
            for _ in 0..count {
                outcomes.push(match next_token(tokens, line_no)? {
                    "d" => Outcome::Decided {
                        value: next_value(tokens, line_no)?,
                        round: next_usize(tokens, line_no)?,
                    },
                    "c" => Outcome::Crashed {
                        round: next_usize(tokens, line_no)?,
                    },
                    "x" => Outcome::Undecided,
                    _ => return Err(corrupt(line_no, "unknown outcome")),
                });
            }
            Execution::Rounds {
                trace: Trace::from_parts(outcomes, rounds_executed, messages_delivered),
                predicted_rounds,
            }
        }
        "S" => {
            let total_steps = next_u64(tokens, line_no)?;
            let count = next_usize(tokens, line_no)?;
            let mut outcomes = Vec::with_capacity(count);
            for _ in 0..count {
                outcomes.push(match next_token(tokens, line_no)? {
                    "d" => AsyncOutcome::Decided {
                        value: next_value(tokens, line_no)?,
                        steps: next_u64(tokens, line_no)?,
                    },
                    "c" => AsyncOutcome::Crashed,
                    "b" => AsyncOutcome::Blocked,
                    "u" => AsyncOutcome::Unfinished,
                    _ => return Err(corrupt(line_no, "unknown outcome")),
                });
            }
            Execution::Steps(AsyncReport::from_parts(outcomes, total_steps))
        }
        _ => return Err(corrupt(line_no, "unknown execution shape")),
    };
    let k = next_usize(tokens, line_no)?;
    let protocol = decode_protocol(tokens, line_no)?;
    let executor = decode_executor(tokens, line_no)?;
    let len = next_usize(tokens, line_no)?;
    if len == 0 {
        return Err(corrupt(line_no, "empty input vector"));
    }
    let mut entries = Vec::with_capacity(len);
    for _ in 0..len {
        entries.push(next_value(tokens, line_no)?);
    }
    let input = Arc::new(InputVector::new(entries));
    Ok(match execution {
        Execution::Rounds {
            trace,
            predicted_rounds,
        } => Report::new(trace, input, k, predicted_rounds, protocol, executor),
        Execution::Steps(steps) => Report::new_async(steps, input, k, protocol, executor),
    })
}

fn encode_error(error: &ExperimentError) -> String {
    match error {
        ExperimentError::MissingInput => "missing-input".into(),
        ExperimentError::InputSizeMismatch { expected, got } => {
            format!("input-size {expected} {got}")
        }
        ExperimentError::ZeroK => "zero-k".into(),
        ExperimentError::TooManyCrashes { t, scheduled } => {
            format!("too-many-crashes {t} {scheduled}")
        }
        ExperimentError::OracleMismatch { expected, got } => format!(
            "oracle-mismatch {} {} {} {}",
            expected.x(),
            expected.ell(),
            got.x(),
            got.ell()
        ),
        ExperimentError::RoundLimitExceeded { limit } => format!("round-limit {limit}"),
        ExperimentError::SystemSizeMismatch { processes, pattern } => {
            format!("system-size {processes} {pattern}")
        }
        ExperimentError::ProcessPanicked { process } => {
            format!("process-panicked {}", process.index())
        }
        ExperimentError::UnsupportedAdversary { executor } => {
            format!("unsupported-adversary {}", encode_executor(*executor))
        }
        ExperimentError::UnknownCrashVictim { victim, n } => {
            format!("unknown-victim {} {n}", victim.index())
        }
        ExperimentError::UnsupportedProtocol { executor, protocol } => format!(
            "unsupported-protocol {} {}",
            encode_executor(*executor),
            encode_protocol(*protocol)
        ),
        ExperimentError::UnsupportedTransport { transport } => format!(
            "unsupported-transport {}",
            match transport {
                TransportKind::Loopback => "lb",
                TransportKind::Tcp => "tcp",
            }
        ),
        ExperimentError::Internal { message } => format!("internal {}", escape(message)),
    }
}

fn decode_error(tokens: &mut Tokens<'_>, line_no: usize) -> io::Result<ExperimentError> {
    let params = |x, ell, line_no| {
        LegalityParams::new(x, ell).map_err(|_| corrupt(line_no, "bad legality params"))
    };
    Ok(match next_token(tokens, line_no)? {
        "missing-input" => ExperimentError::MissingInput,
        "input-size" => ExperimentError::InputSizeMismatch {
            expected: next_usize(tokens, line_no)?,
            got: next_usize(tokens, line_no)?,
        },
        "zero-k" => ExperimentError::ZeroK,
        "too-many-crashes" => ExperimentError::TooManyCrashes {
            t: next_usize(tokens, line_no)?,
            scheduled: next_usize(tokens, line_no)?,
        },
        "oracle-mismatch" => ExperimentError::OracleMismatch {
            expected: params(
                next_usize(tokens, line_no)?,
                next_usize(tokens, line_no)?,
                line_no,
            )?,
            got: params(
                next_usize(tokens, line_no)?,
                next_usize(tokens, line_no)?,
                line_no,
            )?,
        },
        "round-limit" => ExperimentError::RoundLimitExceeded {
            limit: next_usize(tokens, line_no)?,
        },
        "system-size" => ExperimentError::SystemSizeMismatch {
            processes: next_usize(tokens, line_no)?,
            pattern: next_usize(tokens, line_no)?,
        },
        "process-panicked" => ExperimentError::ProcessPanicked {
            process: ProcessId::new(next_usize(tokens, line_no)?),
        },
        "unsupported-adversary" => ExperimentError::UnsupportedAdversary {
            executor: decode_executor(tokens, line_no)?,
        },
        "unknown-victim" => ExperimentError::UnknownCrashVictim {
            victim: ProcessId::new(next_usize(tokens, line_no)?),
            n: next_usize(tokens, line_no)?,
        },
        "unsupported-protocol" => ExperimentError::UnsupportedProtocol {
            executor: decode_executor(tokens, line_no)?,
            protocol: decode_protocol(tokens, line_no)?,
        },
        "unsupported-transport" => ExperimentError::UnsupportedTransport {
            transport: match next_token(tokens, line_no)? {
                "lb" => TransportKind::Loopback,
                "tcp" => TransportKind::Tcp,
                _ => return Err(corrupt(line_no, "unknown transport")),
            },
        },
        "internal" => ExperimentError::Internal {
            message: unescape(next_token(tokens, line_no)?)
                .ok_or_else(|| corrupt(line_no, "bad escape"))?,
        },
        _ => return Err(corrupt(line_no, "unknown error variant")),
    })
}

fn decode_result<V: CacheableValue>(
    tokens: &mut Tokens<'_>,
    line_no: usize,
) -> io::Result<CachedResult<V>> {
    match next_token(tokens, line_no)? {
        "ok" => Ok(Ok(decode_report(tokens, line_no)?)),
        "err" => Ok(Err(decode_error(tokens, line_no)?)),
        _ => Err(corrupt(line_no, "expected ok or err")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setagree_sync::{run_protocol, FailurePattern};

    fn sample_report(values: &[u32]) -> Report<u32> {
        use setagree_sync::{Step, SyncProtocol};
        #[derive(Debug)]
        struct Fixed(u32);
        impl SyncProtocol for Fixed {
            type Msg = ();
            type Output = u32;
            fn message(&mut self, _round: usize) {}
            fn receive(&mut self, _round: usize, _from: ProcessId, _msg: &()) {}
            fn compute(&mut self, _round: usize) -> Step<u32> {
                Step::Decide(self.0)
            }
        }
        let procs: Vec<Fixed> = values.iter().map(|&v| Fixed(v)).collect();
        let n = procs.len();
        let trace = run_protocol(procs, &FailurePattern::none(n), 5).unwrap();
        Report::new(
            trace,
            Arc::new(InputVector::new(values.to_vec())),
            1,
            2,
            ProtocolKind::FloodSet,
            Executor::Simulator,
        )
    }

    #[test]
    fn stable_pair_is_deterministic_and_input_sensitive() {
        assert_eq!(stable_pair(&42u64), stable_pair(&42u64));
        assert_ne!(stable_pair(&42u64), stable_pair(&43u64));
        let (hi, lo) = stable_pair(&42u64);
        assert_ne!(hi, lo, "the two bases walk independently");
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let cache: SuiteCache<u32> = SuiteCache::new();
        let key = CacheKey::combine(&[stable_pair(&1u8)]);
        assert!(cache.lookup(&key).is_none());
        cache.insert(key, Ok(sample_report(&[4, 4])));
        assert!(cache.lookup(&key).is_some());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn file_roundtrip_preserves_reports_and_errors() {
        let dir = std::env::temp_dir().join("setagree-cache-test-roundtrip");
        let _ = fs::remove_file(&dir);
        let cache: SuiteCache<u32> = SuiteCache::new();
        let ok_key = CacheKey::combine(&[stable_pair(&"ok")]);
        let err_key = CacheKey::combine(&[stable_pair(&"err")]);
        let report = sample_report(&[7, 7, 2]);
        cache.insert(ok_key, Ok(report.clone()));
        cache.insert(
            err_key,
            Err(ExperimentError::Internal {
                message: "with spaces, %, é → ∞, and\nnewlines".into(),
            }),
        );
        cache.save(&dir).unwrap();
        let reloaded: SuiteCache<u32> = SuiteCache::load_or_empty(&dir).unwrap();
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.lookup(&ok_key), Some(Ok(report)));
        assert_eq!(
            reloaded.lookup(&err_key),
            Some(Err(ExperimentError::Internal {
                message: "with spaces, %, é → ∞, and\nnewlines".into()
            }))
        );
        fs::remove_file(&dir).unwrap();
    }

    #[test]
    fn missing_file_loads_empty_and_stale_version_loads_cold() {
        let missing: SuiteCache<u32> =
            SuiteCache::load_or_empty("/nonexistent/definitely-not-here").unwrap();
        assert!(missing.is_empty());

        let path = std::env::temp_dir().join("setagree-cache-test-stale");
        fs::write(&path, "setagree-suite-cache v0\ngarbage garbage\n").unwrap();
        let stale: SuiteCache<u32> = SuiteCache::load_or_empty(&path).unwrap();
        assert!(stale.is_empty(), "old versions reload as cold caches");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_files_are_rejected_not_misread() {
        let path = std::env::temp_dir().join("setagree-cache-test-corrupt");
        fs::write(&path, "not a cache\n").unwrap();
        assert!(SuiteCache::<u32>::load_or_empty(&path).is_err());
        fs::write(&path, format!("{FILE_MAGIC}\n1 2 ok R not-a-number\n")).unwrap();
        assert!(SuiteCache::<u32>::load_or_empty(&path).is_err());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn escape_roundtrips() {
        for s in [
            "",
            "plain",
            "two words",
            "100% %% \n\t\r",
            "%41",
            "non-ASCII: é → ∞ 🦀",
        ] {
            assert_eq!(unescape(&escape(s)).as_deref(), Some(s), "{s:?}");
            assert!(escape(s).is_ascii(), "escaped form stays one ASCII token");
        }
    }
}
