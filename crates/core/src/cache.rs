//! Result caching for [`ScenarioSuite`](crate::ScenarioSuite) runs.
//!
//! Every grid cell of a suite is a pure function of its coordinates:
//! the spec (protocol, parameters, oracle), the input vector, the
//! adversary, the executor (seed included — the asynchronous executors
//! carry their adversary seed, so an async cell is exactly as cacheable
//! as a synchronous one) and the suite's round-limit/step-budget
//! overrides. A [`SuiteCache`] memoizes cells under a stable 128-bit
//! hash of those coordinates: a rerun of the same grid — or of a larger
//! grid sharing cells with an earlier one — serves the warm cells
//! without re-executing any protocol.
//!
//! ```
//! use std::sync::Arc;
//! use setagree_core::{ProtocolSpec, ScenarioSuite, SuiteCache};
//!
//! let cache = Arc::new(SuiteCache::new());
//! let suite = ScenarioSuite::new()
//!     .spec(ProtocolSpec::flood_set(4, 2, 1))
//!     .input(vec![3u32, 9, 1, 4])
//!     .cache(&cache);
//! let cold = suite.run();
//! assert_eq!((cold.cache_hits(), cold.cache_misses()), (0, 1));
//! let warm = suite.run(); // zero executions: every cell served warm
//! assert_eq!((warm.cache_hits(), warm.cache_misses()), (1, 0));
//! assert_eq!(cold.cases(), warm.cases());
//! ```
//!
//! # Persistence
//!
//! A cache can be [saved to](SuiteCache::save) and
//! [loaded from](SuiteCache::load_or_empty) a file, so warm cells
//! survive across processes (the CI smoke test runs `table_async` twice
//! against one cache file and diffs the outputs). The file is a
//! hash-chained binary journal — the `setagree-codec`
//! [`journal`](setagree_codec::journal) format, one
//! [`crate::codec`] record per cell — holding *complete* [`Report`]s:
//! both execution shapes, all outcome and error variants, round-tripped
//! byte-identically.
//!
//! # Journaling
//!
//! Beyond whole-file save/load, a cache can be **journal-backed**
//! ([`SuiteCache::resume_journal`]): every insert is appended to the
//! journal file and flushed as it happens, so a crashed sweep loses at
//! most the record being written. Reopening the journal replays the
//! verified prefix back into the cache — the chain detects a torn or
//! corrupted tail and reports it ([`JournalTail`]) instead of serving
//! damaged cells — and the resumed run re-executes only the missing
//! cells.
//!
//! # Key stability
//!
//! Keys are produced by a fixed FNV-1a hasher over the components'
//! `Hash` impls, so they are deterministic across runs of the same
//! build on the same platform — the contract a persisted cache needs.
//! They are *not* portable across architectures (`usize` width) or
//! guaranteed across compiler versions; the file header's format
//! version guards misreads, and a stale file simply reloads as cold
//! cells, never as wrong results served under a colliding key (the
//! 128-bit key makes accidental collision negligible for experiment
//! grids).

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::hash::{Hash, Hasher};
use std::io::{self, Seek};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use setagree_codec::chain::{FNV_BASIS_HI, FNV_BASIS_LO, FNV_PRIME};
use setagree_codec::journal::{Cursor, JournalTail, JournalWriter, HEADER_LEN};
use setagree_codec::{DecodeError, Reader, Writer};
use setagree_types::ProposalValue;

use crate::codec;
use crate::experiment::ExperimentError;
use crate::report::Report;

/// Bumped whenever the key derivation or the file codec changes shape;
/// mixed into every key and written into the file header, so stale
/// files read as cold caches instead of decoding garbage. Version 2 is
/// the binary journal format (version 1 was a text line codec carrying
/// summary integers only).
const FORMAT_VERSION: u64 = 2;

/// The magic line opening the pre-v2 text format; recognized so old
/// files reload as cold caches rather than hard errors.
const TEXT_FILE_MAGIC: &[u8] = b"setagree-suite-cache ";

/// A fixed-parameter FNV-1a 64-bit hasher: deterministic across runs,
/// unlike `std`'s randomized `DefaultHasher` — the property a persisted
/// cache key needs. The constants are shared with `setagree-codec`'s
/// journal chain: one hash family for every durable artifact.
#[derive(Debug, Clone)]
pub(crate) struct StableHasher {
    state: u64,
}

impl StableHasher {
    fn with_basis(basis: u64) -> Self {
        StableHasher { state: basis }
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Hashes one value twice (two FNV bases), yielding the two independent
/// 64-bit halves cache keys are combined from.
pub(crate) fn stable_pair<T: Hash + ?Sized>(value: &T) -> (u64, u64) {
    let mut hi = StableHasher::with_basis(FNV_BASIS_HI);
    let mut lo = StableHasher::with_basis(FNV_BASIS_LO);
    value.hash(&mut hi);
    value.hash(&mut lo);
    (hi.finish(), lo.finish())
}

/// A 128-bit cache key: the stable hash of one suite cell's coordinates
/// (spec, input, pattern, executor with its seed, and the suite's
/// round-limit/step-budget overrides).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    hi: u64,
    lo: u64,
}

impl CacheKey {
    /// Folds component hash pairs (in a fixed order) into one key.
    pub(crate) fn combine(components: &[(u64, u64)]) -> CacheKey {
        let mut hi = StableHasher::with_basis(FNV_BASIS_HI);
        let mut lo = StableHasher::with_basis(FNV_BASIS_LO);
        hi.write_u64(FORMAT_VERSION);
        lo.write_u64(FORMAT_VERSION);
        for &(h, l) in components {
            hi.write_u64(h);
            lo.write_u64(l);
        }
        CacheKey {
            hi: hi.finish(),
            lo: lo.finish(),
        }
    }

    /// The key's two halves, for the wire codec.
    pub(crate) fn parts(&self) -> (u64, u64) {
        (self.hi, self.lo)
    }

    /// Rebuilds a key from its wire halves.
    pub(crate) fn from_parts(hi: u64, lo: u64) -> CacheKey {
        CacheKey { hi, lo }
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// What a cache stores per cell: the cell's full positioned result —
/// a successful [`Report`] or the validation/engine error the cell
/// produced (errors are deterministic too, so a warm rerun reproduces
/// them without re-validating).
pub type CachedResult<V> = Result<Report<V>, ExperimentError>;

/// The outcome of [`SuiteCache::resume_journal`]: how many cells the
/// journal's verified prefix restored, and how the journal ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalReplayStats {
    /// Cells replayed into the cache.
    pub recovered: usize,
    /// How the replay ended — [`JournalTail::Clean`] for an intact
    /// journal, otherwise where the torn/corrupted tail began (that tail
    /// was discarded and will be re-executed, not served).
    pub tail: JournalTail,
}

/// The live append side of a journal-backed cache.
struct JournalSink<V: Ord> {
    writer: JournalWriter<fs::File>,
    /// Captured under the `CacheableValue` bound when the journal is
    /// attached, so `insert` (bounded only on `ProposalValue`) can
    /// encode records.
    encode: fn(&CacheKey, &CachedResult<V>) -> Vec<u8>,
    /// The first append failure, sticky: after an I/O error the journal
    /// stops appending (the file may hold a partial record — the shape
    /// replay recovers from) rather than interleaving torn writes.
    error: Option<io::ErrorKind>,
}

/// A shareable, thread-safe memo of suite cell results.
///
/// Hand one cache (behind an [`Arc`](std::sync::Arc)) to any number of
/// suites via [`ScenarioSuite::cache`](crate::ScenarioSuite::cache);
/// concurrent workers of a streaming run consult and fill it through a
/// mutex. The `hits()`/`misses()` counters are lifetime totals; per-run
/// counters live on the run's [`SuiteReport`](crate::SuiteReport).
pub struct SuiteCache<V: Ord> {
    entries: Mutex<HashMap<CacheKey, CachedResult<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    journal: Mutex<Option<JournalSink<V>>>,
}

impl<V: Ord> Default for SuiteCache<V> {
    fn default() -> Self {
        SuiteCache {
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            journal: Mutex::new(None),
        }
    }
}

impl<V: ProposalValue> fmt::Debug for SuiteCache<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SuiteCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl<V: ProposalValue> SuiteCache<V> {
    /// An empty cache.
    pub fn new() -> Self {
        SuiteCache::default()
    }

    /// The number of cached cells.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock poisoned").len()
    }

    /// Whether the cache holds no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime cache hits (across every suite sharing this cache).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime cache misses.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drops every cached cell (counters are kept — they describe
    /// lookups, not contents).
    pub fn clear(&self) {
        self.entries.lock().expect("cache lock poisoned").clear();
    }

    /// The first I/O failure the attached journal hit, if any: appends
    /// stop at that point, so a caller about to rely on the journal for
    /// resumption can surface the problem.
    pub fn journal_error(&self) -> Option<io::ErrorKind> {
        self.journal
            .lock()
            .expect("journal lock poisoned")
            .as_ref()
            .and_then(|sink| sink.error)
    }

    /// Looks a cell up, counting a hit or a miss.
    pub(crate) fn lookup(&self, key: &CacheKey) -> Option<CachedResult<V>> {
        let found = self
            .entries
            .lock()
            .expect("cache lock poisoned")
            .get(key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a cell result (journaling it first, when a journal is
    /// attached — the record is on disk before the cell is servable).
    pub(crate) fn insert(&self, key: CacheKey, result: CachedResult<V>) {
        {
            let mut journal = self.journal.lock().expect("journal lock poisoned");
            if let Some(sink) = journal.as_mut() {
                if sink.error.is_none() {
                    let payload = (sink.encode)(&key, &result);
                    if let Err(e) = sink.writer.append(&payload) {
                        sink.error = Some(e.kind());
                    }
                }
            }
        }
        self.entries
            .lock()
            .expect("cache lock poisoned")
            .insert(key, result);
    }
}

/// A value type the binary codec can round-trip byte-identically.
///
/// Implemented for the integer types the experiments propose (fixed
/// little-endian width; `usize`/`isize` travel as 64-bit so the wire
/// form is platform-independent). The in-memory cache needs only `Hash`
/// (for keys); this trait gates persistence and journaling alone.
pub trait CacheableValue: ProposalValue + Hash {
    /// Appends the value's canonical wire form.
    fn encode_wire(&self, out: &mut Writer);
    /// Reads a value written by [`CacheableValue::encode_wire`].
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`] on malformed input; must never panic.
    fn decode_wire(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

macro_rules! cacheable_ints {
    ($($t:ty),*) => {$(
        impl CacheableValue for $t {
            fn encode_wire(&self, out: &mut Writer) {
                out.raw(&self.to_le_bytes());
            }
            fn decode_wire(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                Ok(<$t>::from_le_bytes(
                    r.take(std::mem::size_of::<$t>())?
                        .try_into()
                        .expect("exact width"),
                ))
            }
        }
    )*};
}

cacheable_ints!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl CacheableValue for usize {
    fn encode_wire(&self, out: &mut Writer) {
        out.usize(*self);
    }
    fn decode_wire(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.usize()
    }
}

impl CacheableValue for isize {
    fn encode_wire(&self, out: &mut Writer) {
        out.u64(*self as i64 as u64);
    }
    fn decode_wire(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        isize::try_from(r.u64()? as i64).map_err(|_| DecodeError::Invalid {
            what: "isize field",
        })
    }
}

fn corrupt(record: usize, what: impl fmt::Display) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("suite cache journal record {record}: {what}"),
    )
}

/// The journal header version for this cache format.
fn header_version() -> u32 {
    FORMAT_VERSION as u32
}

impl<V: CacheableValue> SuiteCache<V> {
    /// Loads a persisted cache, or returns an empty one when `path`
    /// does not exist (the natural cold-start for a cron-style rerun).
    ///
    /// # Errors
    ///
    /// I/O failures other than `NotFound`, and malformed files —
    /// except a *version* mismatch in the header (including the pre-v2
    /// text format), which loads as an empty cache: an old file is a
    /// cold cache, not an error. Unlike [`SuiteCache::resume_journal`],
    /// a torn or corrupted tail here is an error too — `save` writes
    /// whole files atomically, so damage means the file is not ours.
    pub fn load_or_empty(path: impl AsRef<Path>) -> io::Result<Self> {
        match fs::read(path) {
            Ok(bytes) => Self::parse(&bytes),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(SuiteCache::new()),
            Err(e) => Err(e),
        }
    }

    /// Persists every cached cell to `path` (atomically per call: the
    /// file is rewritten whole into a sibling temp file and renamed
    /// over `path`, so a concurrent [`SuiteCache::load_or_empty`] — or
    /// a crash mid-save — never observes a truncated file), in
    /// deterministic key order. The written file is itself a valid
    /// journal: [`SuiteCache::resume_journal`] can append to it.
    ///
    /// # Errors
    ///
    /// I/O failures creating, writing or renaming the file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let entries = self.entries.lock().expect("cache lock poisoned");
        let mut records: Vec<((u64, u64), Vec<u8>)> = entries
            .iter()
            .map(|(key, result)| (key.parts(), codec::encode_record(key, result)))
            .collect();
        drop(entries);
        records.sort();
        let mut writer = JournalWriter::create(Vec::new(), header_version())?;
        for (_, payload) in &records {
            writer.append(payload)?;
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp-{}", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        fs::write(&tmp, writer.into_inner())?;
        fs::rename(&tmp, path).inspect_err(|_| {
            let _ = fs::remove_file(&tmp);
        })
    }

    fn parse(bytes: &[u8]) -> io::Result<Self> {
        // The pre-v2 text codec: a recognized stale format reloads cold.
        if bytes.starts_with(TEXT_FILE_MAGIC) {
            return Ok(SuiteCache::new());
        }
        let mut cursor = Cursor::new(bytes);
        match cursor.version() {
            // A newer/older journal version is a cold cache …
            Some(v) if v != header_version() => return Ok(SuiteCache::new()),
            Some(_) => {}
            // … but a missing or alien header is corruption.
            None => return Err(corrupt(0, "missing or damaged journal header")),
        }
        let mut entries = HashMap::new();
        for payload in cursor.by_ref() {
            let record = entries.len();
            let (key, result) = codec::decode_record(payload).map_err(|e| corrupt(record, e))?;
            entries.insert(key, result);
        }
        let tail = cursor.tail().expect("exhausted cursor has a tail");
        if !tail.is_clean() {
            return Err(corrupt(cursor.records(), tail));
        }
        let cache = SuiteCache::new();
        *cache.entries.lock().expect("cache lock poisoned") = entries;
        Ok(cache)
    }

    /// Attaches an append-only journal at `path`, replaying whatever
    /// valid prefix already exists into the cache first.
    ///
    /// * Missing (or empty) file → a fresh journal is created.
    /// * Stale version (including the pre-v2 text cache format written
    ///   under this path) → the file is a cold journal and is rewritten
    ///   fresh.
    /// * Valid prefix + torn/corrupted tail (a crashed writer) → the
    ///   prefix is replayed into the cache, the file is truncated back
    ///   to it, and appends continue from there; the damage is reported
    ///   in the returned stats, never served.
    ///
    /// After this call every insert — every cache miss a suite
    /// executes — is appended to the journal and flushed,
    /// so a crashed sweep resumes by calling this again: only the cells
    /// missing from the journal re-execute.
    ///
    /// # Errors
    ///
    /// I/O failures reading, truncating or reopening the file, and a
    /// file whose header is neither a journal nor the old text format
    /// (a foreign file is refused, not clobbered).
    pub fn resume_journal(&self, path: impl AsRef<Path>) -> io::Result<JournalReplayStats> {
        let path = path.as_ref();
        let bytes = match fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };

        let cursor = Cursor::new(&bytes);
        let start_fresh = match cursor.version() {
            // An intact header of another version: ours, just stale.
            Some(v) if v != header_version() => true,
            Some(_) => false,
            // A short header is our own torn write (or the old text
            // format's first line); anything else is a foreign file.
            None if bytes.len() < HEADER_LEN || bytes.starts_with(TEXT_FILE_MAGIC) => true,
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{} is not a setagree journal", path.display()),
                ))
            }
        };

        if start_fresh || bytes.is_empty() {
            let file = fs::File::create(path)?;
            let writer = JournalWriter::create(file, header_version())?;
            self.attach(writer);
            return Ok(JournalReplayStats {
                recovered: 0,
                tail: JournalTail::Clean,
            });
        }

        let mut cursor = cursor;
        let mut decoded = Vec::new();
        let mut undecodable = false;
        for payload in cursor.by_ref() {
            match codec::decode_record::<V>(payload) {
                Ok(entry) => decoded.push(entry),
                Err(_) => {
                    // Chain-valid but not a record of ours: keep only
                    // what precedes it and report it like corruption.
                    undecodable = true;
                    break;
                }
            }
        }
        let (recovered, keep_len, head, tail) = if undecodable {
            // The cursor's prefix includes the undecodable record;
            // replay one record less to find where it starts.
            let mut prefix = Cursor::new(&bytes);
            for _ in 0..decoded.len() {
                prefix.next();
            }
            let tail = JournalTail::Corrupted {
                record: decoded.len(),
                offset: prefix.valid_len(),
                reason: "undecodable record",
            };
            (decoded.len(), prefix.valid_len(), prefix.head(), tail)
        } else {
            let tail = cursor.tail().expect("exhausted cursor has a tail");
            (cursor.records(), cursor.valid_len(), cursor.head(), tail)
        };

        {
            let mut entries = self.entries.lock().expect("cache lock poisoned");
            for (key, result) in decoded {
                entries.insert(key, result);
            }
        }

        let mut file = fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(keep_len as u64)?;
        file.seek(io::SeekFrom::End(0))?;
        self.attach(JournalWriter::resume(file, head, recovered));
        if setagree_obs::enabled() && recovered > 0 {
            setagree_obs::counter("suite_journal_resumed", &[]).add(recovered as u64);
        }
        Ok(JournalReplayStats { recovered, tail })
    }

    fn attach(&self, writer: JournalWriter<fs::File>) {
        *self.journal.lock().expect("journal lock poisoned") = Some(JournalSink {
            writer,
            encode: codec::encode_record::<V>,
            error: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use setagree_sync::{run_protocol, FailurePattern};
    use setagree_types::{InputVector, ProcessId};

    use crate::experiment::{Executor, ProtocolKind};

    fn sample_report(values: &[u32]) -> Report<u32> {
        use setagree_sync::{Step, SyncProtocol};
        #[derive(Debug)]
        struct Fixed(u32);
        impl SyncProtocol for Fixed {
            type Msg = ();
            type Output = u32;
            fn message(&mut self, _round: usize) {}
            fn receive(&mut self, _round: usize, _from: ProcessId, _msg: &()) {}
            fn compute(&mut self, _round: usize) -> Step<u32> {
                Step::Decide(self.0)
            }
        }
        let procs: Vec<Fixed> = values.iter().map(|&v| Fixed(v)).collect();
        let n = procs.len();
        let trace = run_protocol(procs, &FailurePattern::none(n), 5).unwrap();
        Report::new(
            trace,
            Arc::new(InputVector::new(values.to_vec())),
            1,
            2,
            ProtocolKind::FloodSet,
            Executor::Simulator,
        )
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(name);
        let _ = fs::remove_file(&path);
        path
    }

    #[test]
    fn stable_pair_is_deterministic_and_input_sensitive() {
        assert_eq!(stable_pair(&42u64), stable_pair(&42u64));
        assert_ne!(stable_pair(&42u64), stable_pair(&43u64));
        let (hi, lo) = stable_pair(&42u64);
        assert_ne!(hi, lo, "the two bases walk independently");
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let cache: SuiteCache<u32> = SuiteCache::new();
        let key = CacheKey::combine(&[stable_pair(&1u8)]);
        assert!(cache.lookup(&key).is_none());
        cache.insert(key, Ok(sample_report(&[4, 4])));
        assert!(cache.lookup(&key).is_some());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn file_roundtrip_preserves_reports_and_errors() {
        let path = temp_path("setagree-cache-test-roundtrip");
        let cache: SuiteCache<u32> = SuiteCache::new();
        let ok_key = CacheKey::combine(&[stable_pair(&"ok")]);
        let err_key = CacheKey::combine(&[stable_pair(&"err")]);
        let report = sample_report(&[7, 7, 2]);
        cache.insert(ok_key, Ok(report.clone()));
        cache.insert(
            err_key,
            Err(ExperimentError::Internal {
                message: "with spaces, %, é → ∞, and\nnewlines".into(),
            }),
        );
        cache.save(&path).unwrap();
        let reloaded: SuiteCache<u32> = SuiteCache::load_or_empty(&path).unwrap();
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.lookup(&ok_key), Some(Ok(report)));
        assert_eq!(
            reloaded.lookup(&err_key),
            Some(Err(ExperimentError::Internal {
                message: "with spaces, %, é → ∞, and\nnewlines".into()
            }))
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_loads_empty_and_stale_versions_load_cold() {
        let missing: SuiteCache<u32> =
            SuiteCache::load_or_empty("/nonexistent/definitely-not-here").unwrap();
        assert!(missing.is_empty());

        let path = temp_path("setagree-cache-test-stale");
        // The pre-v2 text format.
        fs::write(&path, "setagree-suite-cache v1\ngarbage garbage\n").unwrap();
        let stale: SuiteCache<u32> = SuiteCache::load_or_empty(&path).unwrap();
        assert!(stale.is_empty(), "the old text format reloads cold");
        // A journal of a different version.
        let other = JournalWriter::create(Vec::new(), header_version() + 1)
            .unwrap()
            .into_inner();
        fs::write(&path, other).unwrap();
        let stale: SuiteCache<u32> = SuiteCache::load_or_empty(&path).unwrap();
        assert!(stale.is_empty(), "other journal versions reload cold");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_files_are_rejected_not_misread() {
        let path = temp_path("setagree-cache-test-corrupt");
        fs::write(&path, "not a cache\n").unwrap();
        assert!(SuiteCache::<u32>::load_or_empty(&path).is_err());

        // A saved file with any single byte of its body flipped fails
        // the chain, and load (unlike journal resume) treats that as an
        // error rather than quietly dropping cells.
        let cache: SuiteCache<u32> = SuiteCache::new();
        cache.insert(
            CacheKey::combine(&[stable_pair(&1u8)]),
            Ok(sample_report(&[4, 4])),
        );
        cache.save(&path).unwrap();
        let good = fs::read(&path).unwrap();
        let mut bad = good.clone();
        let mid = HEADER_LEN + (bad.len() - HEADER_LEN) / 2;
        bad[mid] ^= 0xFF;
        fs::write(&path, &bad).unwrap();
        assert!(SuiteCache::<u32>::load_or_empty(&path).is_err());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn journal_records_every_insert_and_replays_them() {
        let path = temp_path("setagree-cache-test-journal");
        let report = sample_report(&[9, 9]);
        let key_a = CacheKey::combine(&[stable_pair(&"a")]);
        let key_b = CacheKey::combine(&[stable_pair(&"b")]);

        let cache: SuiteCache<u32> = SuiteCache::new();
        let stats = cache.resume_journal(&path).unwrap();
        assert_eq!(stats.recovered, 0);
        assert!(stats.tail.is_clean());
        cache.insert(key_a, Ok(report.clone()));
        cache.insert(key_b, Err(ExperimentError::ZeroK));
        assert_eq!(cache.journal_error(), None);
        drop(cache);

        let resumed: SuiteCache<u32> = SuiteCache::new();
        let stats = resumed.resume_journal(&path).unwrap();
        assert_eq!(stats.recovered, 2);
        assert!(stats.tail.is_clean());
        assert_eq!(resumed.lookup(&key_a), Some(Ok(report)));
        assert_eq!(resumed.lookup(&key_b), Some(Err(ExperimentError::ZeroK)));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn a_torn_journal_tail_is_discarded_and_appends_continue() {
        let path = temp_path("setagree-cache-test-torn");
        let cache: SuiteCache<u32> = SuiteCache::new();
        cache.resume_journal(&path).unwrap();
        let keys: Vec<CacheKey> = (0..3)
            .map(|i| CacheKey::combine(&[stable_pair(&i)]))
            .collect();
        for &key in &keys {
            cache.insert(key, Ok(sample_report(&[5, 5])));
        }
        drop(cache);

        // A crashed writer: the last record loses its final 7 bytes.
        let bytes = fs::read(&path).unwrap();
        let torn = bytes.len() - 7;
        fs::write(&path, &bytes[..torn]).unwrap();

        let resumed: SuiteCache<u32> = SuiteCache::new();
        let stats = resumed.resume_journal(&path).unwrap();
        assert_eq!(stats.recovered, 2, "the valid prefix survives");
        assert!(
            matches!(stats.tail, JournalTail::Truncated { record: 2, .. }),
            "{:?}",
            stats.tail
        );
        assert_eq!(resumed.len(), 2);
        // The missing cell re-executes and re-journals; a third replay
        // then recovers all three records cleanly.
        resumed.insert(keys[2], Ok(sample_report(&[5, 5])));
        drop(resumed);
        let third: SuiteCache<u32> = SuiteCache::new();
        let stats = third.resume_journal(&path).unwrap();
        assert_eq!(stats.recovered, 3);
        assert!(stats.tail.is_clean());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_files_are_refused_not_clobbered() {
        let path = temp_path("setagree-cache-test-foreign");
        fs::write(&path, "someone else's twenty-plus bytes of data\n").unwrap();
        let cache: SuiteCache<u32> = SuiteCache::new();
        assert!(cache.resume_journal(&path).is_err());
        assert_eq!(
            fs::read(&path).unwrap(),
            b"someone else's twenty-plus bytes of data\n",
            "the file is untouched"
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn a_saved_cache_file_is_a_resumable_journal() {
        let path = temp_path("setagree-cache-test-save-resume");
        let cache: SuiteCache<u32> = SuiteCache::new();
        let key = CacheKey::combine(&[stable_pair(&"cell")]);
        cache.insert(key, Ok(sample_report(&[3, 3])));
        cache.save(&path).unwrap();

        let journaled: SuiteCache<u32> = SuiteCache::new();
        let stats = journaled.resume_journal(&path).unwrap();
        assert_eq!(stats.recovered, 1);
        assert!(stats.tail.is_clean());
        fs::remove_file(&path).unwrap();
    }
}
