//! Early-deciding synchronous k-set agreement — the extension discussed in
//! the paper's Section 8.
//!
//! While `⌊t/k⌋ + 1` rounds are necessary in the worst case, executions
//! with only `f < t` actual crashes can decide in
//! `min(⌊f/k⌋ + 2, ⌊t/k⌋ + 1)` rounds (Gafni–Guerraoui–Pochon's adaptive
//! lower bound; algorithms in \[12, 25, 27\]).
//!
//! The implementation follows the classical shape: every process floods its
//! estimate and counts how many processes it heard from each round
//! (`nb_r`, with `nb_0 = n`). When `nb_{r−1} − nb_r < k` — fewer than `k`
//! *new* crashes were perceived in round `r` — the process's estimate is
//! guaranteed to be among the `k` smallest-ranked surviving estimates; it
//! broadcasts a `DECIDE` flag in round `r+1` and returns. A process that
//! receives a `DECIDE` flag adopts the attached estimate (if smaller) and
//! decides one round later itself.

use std::fmt;

use setagree_sync::{Step, SyncProtocol};
use setagree_types::{ProcessId, ProposalValue};

/// The flood payload: the sender's estimate plus a decide announcement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdMessage<V> {
    /// The sender's current estimate (the smallest value it has seen).
    pub estimate: V,
    /// `true` when the sender decides this round (its last broadcast).
    pub deciding: bool,
}

/// One process of the early-deciding k-set agreement protocol.
///
/// # Example
///
/// ```
/// use setagree_core::EarlyDeciding;
/// use setagree_sync::{run_protocol, FailurePattern};
///
/// // Failure-free (f = 0): decide in ⌊0/k⌋ + 2 = 2 rounds, not ⌊t/k⌋ + 1 = 4.
/// let procs: Vec<_> = [4u32, 7, 1, 2]
///     .into_iter()
///     .map(|v| EarlyDeciding::new(4, 3, 1, v))
///     .collect();
/// let trace = run_protocol(procs, &FailurePattern::none(4), 10).unwrap();
/// assert_eq!(trace.decided_values(), [1].into_iter().collect());
/// assert_eq!(trace.last_decision_round(), Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct EarlyDeciding<V> {
    k: usize,
    final_round: usize,
    estimate: V,
    /// `nb_{r−1}`: how many processes were heard from last round (`n` for
    /// round 1).
    heard_prev: usize,
    /// Messages received in the current round.
    heard_now: usize,
    /// Set when the early rule fired: broadcast `DECIDE` next round, then
    /// return.
    deciding: bool,
}

impl<V: ProposalValue> EarlyDeciding<V> {
    /// Creates a process proposing `value` in a system of `n` processes
    /// tolerating `t` crashes with agreement degree `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `t >= n`.
    pub fn new(n: usize, t: usize, k: usize, value: V) -> Self {
        assert!(k > 0, "k must be at least 1");
        assert!(t < n, "someone must survive (t < n)");
        EarlyDeciding {
            k,
            final_round: t / k + 1,
            estimate: value,
            heard_prev: n,
            heard_now: 0,
            deciding: false,
        }
    }

    /// The worst-case decision round `⌊t/k⌋ + 1`.
    pub fn final_round(&self) -> usize {
        self.final_round
    }
}

impl<V: ProposalValue> SyncProtocol for EarlyDeciding<V> {
    type Msg = EdMessage<V>;
    type Output = V;

    fn message(&mut self, _round: usize) -> EdMessage<V> {
        EdMessage {
            estimate: self.estimate.clone(),
            deciding: self.deciding,
        }
    }

    fn receive(&mut self, _round: usize, _from: ProcessId, msg: &EdMessage<V>) {
        self.heard_now += 1;
        if msg.estimate < self.estimate {
            self.estimate = msg.estimate.clone();
        }
        if msg.deciding {
            // The sender decided: adopt its announcement schedule.
            self.deciding = true;
        }
    }

    fn compute(&mut self, round: usize) -> Step<V> {
        if self.deciding {
            // Either our own rule fired last round (we broadcast DECIDE
            // this round) or we saw a DECIDE — in both cases the estimate
            // is now safe.
            return Step::Decide(self.estimate.clone());
        }
        let heard = self.heard_now;
        self.heard_now = 0;
        let newly_silent = self.heard_prev.saturating_sub(heard);
        self.heard_prev = heard;

        if round >= self.final_round {
            return Step::Decide(self.estimate.clone());
        }
        if newly_silent < self.k {
            // Fewer than k new crashes perceived: decide after one more
            // announcing round.
            self.deciding = true;
        }
        Step::Continue
    }
}

impl<V: fmt::Display> fmt::Display for EarlyDeciding<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "early-deciding(est = {}, final @ r{}, deciding = {})",
            self.estimate, self.final_round, self.deciding
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use setagree_sync::{run_protocol, CrashSpec, FailurePattern};

    fn system(n: usize, t: usize, k: usize, inputs: &[u32]) -> Vec<EarlyDeciding<u32>> {
        assert_eq!(inputs.len(), n);
        inputs
            .iter()
            .map(|&v| EarlyDeciding::new(n, t, k, v))
            .collect()
    }

    #[test]
    fn failure_free_decides_in_two_rounds() {
        let inputs = [5u32, 3, 8, 6, 7];
        let trace = run_protocol(system(5, 3, 1, &inputs), &FailurePattern::none(5), 10).unwrap();
        assert_eq!(trace.last_decision_round(), Some(2));
        assert_eq!(trace.decided_values(), [3].into_iter().collect());
    }

    #[test]
    fn early_bound_tracks_actual_crashes() {
        // f = 2 initial crashes, k = 1, t = 4: bound min(f+2, t+1) = 4.
        let inputs = [5u32, 3, 8, 6, 7, 1];
        let pattern = FailurePattern::initial(6, [ProcessId::new(2), ProcessId::new(5)]).unwrap();
        let trace = run_protocol(system(6, 4, 1, &inputs), &pattern, 10).unwrap();
        assert!(trace.all_correct_decided());
        assert!(
            trace.last_decision_round().unwrap() <= 2 + 2,
            "⌊f/k⌋ + 2 bound, got {:?}",
            trace.last_decision_round()
        );
        assert_eq!(trace.decided_values().len(), 1);
    }

    #[test]
    fn never_exceeds_classical_bound() {
        // Crashes every round keep the rule from firing; the final-round
        // fallback must still decide by ⌊t/k⌋ + 1.
        let inputs: Vec<u32> = (1..=8).collect();
        let pattern = FailurePattern::staircase(8, 6, 2);
        let trace = run_protocol(system(8, 6, 2, &inputs), &pattern, 12).unwrap();
        assert!(trace.all_correct_decided());
        assert!(trace.last_decision_round().unwrap() <= 6 / 2 + 1);
        assert!(trace.decided_values().len() <= 2);
    }

    #[test]
    fn agreement_and_validity_under_random_adversaries() {
        for seed in 0..60 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = 7;
            let t = 4;
            let k = 2;
            let inputs: Vec<u32> = (0..n as u32).map(|i| (i * 13 + seed as u32) % 10).collect();
            let pattern = FailurePattern::random(n, t, t + 1, &mut rng);
            let f = pattern.fault_count();
            let trace = run_protocol(system(n, t, k, &inputs), &pattern, 12).unwrap();
            assert!(trace.all_correct_decided(), "seed {seed}");
            assert!(
                trace.decided_values().len() <= k,
                "seed {seed}: {} values decided",
                trace.decided_values().len()
            );
            for v in trace.decided_values() {
                assert!(inputs.contains(&v), "seed {seed}: {v} not proposed");
            }
            let bound = (f / k + 2).min(t / k + 1);
            assert!(
                trace.last_decision_round().unwrap() <= bound,
                "seed {seed}: decided at {:?}, bound {bound} (f = {f})",
                trace.last_decision_round()
            );
        }
    }

    #[test]
    fn decide_flag_propagates() {
        // p1 fires the rule in round 1 but crashes mid-announcement in
        // round 2; the prefix that heard it must still terminate correctly.
        let inputs = [1u32, 5, 5, 5];
        let mut pattern = FailurePattern::none(4);
        pattern
            .crash(ProcessId::new(0), CrashSpec::new(2, 2))
            .unwrap();
        let trace = run_protocol(system(4, 2, 1, &inputs), &pattern, 10).unwrap();
        assert!(trace.all_correct_decided());
        assert_eq!(trace.decided_values(), [1].into_iter().collect());
    }

    #[test]
    fn display_and_accessors() {
        let p = EarlyDeciding::new(5, 4, 2, 9u32);
        assert_eq!(p.final_round(), 3);
        assert!(p.to_string().contains("final @ r3"));
    }

    #[test]
    #[should_panic(expected = "survive")]
    fn t_must_be_less_than_n() {
        let _ = EarlyDeciding::new(3, 3, 1, 1u32);
    }
}
