//! The generic condition-based synchronous k-set agreement algorithm —
//! Figure 2 of the paper, line by line.
//!
//! Round 1 (lines 3–10): every process broadcasts its proposal in the
//! predetermined order and assembles its view `V_i` of the input vector.
//! Depending on what it saw, it primes exactly one of three state slots:
//!
//! * `v_cond` (line 6) — at most `t − d` entries missing **and** the view
//!   is compatible with the condition (`P(V_i)`): take
//!   `max(h_ℓ(V_i))`, a value the condition promises is decidable;
//! * `v_out` (line 7) — few entries missing but the view proves the input
//!   vector is **outside** the condition: fall back to `max(V_i)`;
//! * `v_tmf` (line 8) — more than `t − d` entries missing ("too many
//!   failures" to interrogate the condition): `max(V_i)`.
//!
//! Rounds ≥ 2 (lines 11–23): flood the state triple, reduce each slot with
//! `max` (lines 15–17), and decide with the priority `cond ≻ tmf ≻ out`:
//! immediately once `v_cond` is known (line 14, after forwarding it), at
//! round `⌊(d+ℓ−1)/k⌋ + 1` if someone witnessed too many failures and
//! nobody ruled the condition out (line 18), and unconditionally at round
//! `⌊t/k⌋ + 1`.

use std::fmt;

use setagree_conditions::ConditionOracle;
use setagree_sync::{Step, SyncProtocol};
use setagree_types::{ProcessId, ProposalValue, View};

use crate::config::ConditionBasedConfig;

/// The wire format of the algorithm: the proposal in round 1, the state
/// triple afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CbMessage<V> {
    /// Round 1: the sender's proposed value (line 4).
    Proposal(V),
    /// Rounds ≥ 2: the sender's `(v_cond, v_tmf, v_out)` triple (line 13).
    State {
        /// The sender's `v_cond` (`None` is the paper's `⊥`).
        cond: Option<V>,
        /// The sender's `v_tmf`.
        tmf: Option<V>,
        /// The sender's `v_out`.
        out: Option<V>,
    },
}

/// One process of the Figure 2 algorithm.
///
/// Construct one instance per process with the same configuration and
/// oracle, then execute them with
/// [`run_protocol`](setagree_sync::run_protocol) or the
/// [`runner`](crate::runner) helpers.
pub struct ConditionBased<V, O> {
    config: ConditionBasedConfig,
    me: ProcessId,
    oracle: O,
    /// `V_i`: the round-1 view of the input vector (line 1/5).
    view: View<V>,
    v_cond: Option<V>,
    v_tmf: Option<V>,
    v_out: Option<V>,
    /// Maxima of the triples received in the current round (lines 15–17).
    recv_cond: Option<V>,
    recv_tmf: Option<V>,
    recv_out: Option<V>,
    /// Set when the process enters a round with `v_cond ≠ ⊥`: it forwards
    /// the state and decides at line 14, ignoring this round's receipts.
    committed: bool,
}

impl<V: ProposalValue, O: ConditionOracle<V>> ConditionBased<V, O> {
    /// Creates the process `me` proposing `proposal`.
    ///
    /// # Panics
    ///
    /// Panics if `me` is outside the system.
    pub fn new(config: ConditionBasedConfig, me: ProcessId, proposal: V, oracle: O) -> Self {
        assert!(
            me.index() < config.n(),
            "{me} outside a system of {}",
            config.n()
        );
        let mut view = View::all_bottom(config.n());
        view.set(me, proposal);
        ConditionBased {
            config,
            me,
            oracle,
            view,
            v_cond: None,
            v_tmf: None,
            v_out: None,
            recv_cond: None,
            recv_tmf: None,
            recv_out: None,
            committed: false,
        }
    }

    /// The configuration this process runs under.
    pub fn config(&self) -> &ConditionBasedConfig {
        &self.config
    }

    /// This process's identity.
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// The state triple, exposed for tests and ablation studies.
    pub fn state(&self) -> (Option<&V>, Option<&V>, Option<&V>) {
        (
            self.v_cond.as_ref(),
            self.v_tmf.as_ref(),
            self.v_out.as_ref(),
        )
    }

    /// Line 6–8: classify the round-1 view and prime one state slot.
    fn classify_view(&mut self) {
        let missing = self.view.count_bottom();
        let t_minus_d = self.config.t() - self.config.d();
        if missing <= t_minus_d {
            match self.oracle.decode_view(&self.view) {
                Some(decoded) => {
                    // Line 6: P(V_i) holds. Theorem 1 guarantees the decoded
                    // set is non-empty for a legal condition; stay defensive
                    // against ill-formed oracles and fall back to line 7.
                    match decoded.into_iter().max() {
                        Some(v) => self.v_cond = Some(v),
                        None => self.v_out = self.view.max_value().cloned(),
                    }
                }
                None => {
                    // Line 7: the input vector is provably outside C.
                    self.v_out = self.view.max_value().cloned();
                }
            }
        } else {
            // Line 8: too many failures witnessed.
            self.v_tmf = self.view.max_value().cloned();
        }
    }

    /// Lines 15–17: fold this round's received triples into the state.
    fn absorb_received(&mut self) {
        fn fold<V: Ord>(slot: &mut Option<V>, received: Option<V>) {
            // `Option`'s ordering has None below Some, so `max` implements
            // the paper's "maximum non-⊥ value, ⊥ if none".
            if received > *slot {
                *slot = received;
            }
        }
        fold(&mut self.v_cond, self.recv_cond.take());
        fold(&mut self.v_tmf, self.recv_tmf.take());
        fold(&mut self.v_out, self.recv_out.take());
    }

    /// Lines 19–21: decide by the priority `cond ≻ tmf ≻ out`.
    fn decide_by_priority(&self) -> V {
        self.v_cond
            .clone()
            .or_else(|| self.v_tmf.clone())
            .or_else(|| self.v_out.clone())
            .expect("after round 1 at least one slot is non-⊥ (Theorem 11)")
    }
}

impl<V: ProposalValue, O: ConditionOracle<V>> SyncProtocol for ConditionBased<V, O> {
    type Msg = CbMessage<V>;
    type Output = V;

    fn message(&mut self, round: usize) -> CbMessage<V> {
        if round == 1 {
            // Line 4: broadcast the proposal (the engine realizes the
            // predetermined p_1 … p_n order and prefix crashes).
            let own = self
                .view
                .get(self.me)
                .cloned()
                .expect("own proposal recorded at construction");
            CbMessage::Proposal(own)
        } else {
            // Line 13. If our v_cond is already set we will decide at
            // line 14 this round, right after this send.
            self.committed = self.v_cond.is_some();
            CbMessage::State {
                cond: self.v_cond.clone(),
                tmf: self.v_tmf.clone(),
                out: self.v_out.clone(),
            }
        }
    }

    fn receive(&mut self, round: usize, from: ProcessId, msg: &CbMessage<V>) {
        match msg {
            CbMessage::Proposal(v) => {
                // Proposals belong to round 1; under an injected delay
                // fault a stale copy can surface in a later round, and
                // the synchronous algorithm simply has no line for it —
                // the view was folded into the estimates at the end of
                // round 1, so a late proposal is dropped, not asserted
                // away.
                if round == 1 {
                    self.view.set(from, v.clone());
                }
            }
            CbMessage::State { cond, tmf, out } => {
                // The message is shared with every recipient; clone a slot
                // only when it improves the fold.
                fn fold<V: Clone + Ord>(acc: &mut Option<V>, v: &Option<V>) {
                    if v.as_ref() > acc.as_ref() {
                        *acc = v.clone();
                    }
                }
                fold(&mut self.recv_cond, cond);
                fold(&mut self.recv_tmf, tmf);
                fold(&mut self.recv_out, out);
            }
        }
    }

    fn compute(&mut self, round: usize) -> Step<V> {
        if round == 1 {
            self.classify_view();
            return Step::Continue;
        }
        if self.committed {
            // Line 14: forwarded a non-⊥ v_cond this round; decide it.
            return Step::Decide(self.v_cond.clone().expect("committed implies v_cond set"));
        }
        self.absorb_received();

        // Line 18: early decision when someone witnessed too many failures
        // and nobody ruled the condition out, or the final round.
        let early = round == self.config.condition_decision_round()
            && self.v_tmf.is_some()
            && self.v_out.is_none();
        let last = round >= self.config.final_decision_round();
        if early || last {
            return Step::Decide(self.decide_by_priority());
        }
        Step::Continue
    }
}

impl<V: fmt::Debug + Ord, O> fmt::Debug for ConditionBased<V, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConditionBased")
            .field("me", &self.me)
            .field("config", &self.config)
            .field("v_cond", &self.v_cond)
            .field("v_tmf", &self.v_tmf)
            .field("v_out", &self.v_out)
            .field("committed", &self.committed)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setagree_conditions::MaxCondition;
    use setagree_sync::{run_protocol, FailurePattern};
    use setagree_types::InputVector;

    fn config(n: usize, t: usize, k: usize, d: usize, ell: usize) -> ConditionBasedConfig {
        ConditionBasedConfig::builder(n, t, k)
            .condition_degree(d)
            .ell(ell)
            .build()
            .unwrap()
    }

    fn processes(
        cfg: ConditionBasedConfig,
        oracle: MaxCondition,
        input: &InputVector<u32>,
    ) -> Vec<ConditionBased<u32, MaxCondition>> {
        (0..cfg.n())
            .map(|i| {
                ConditionBased::new(
                    cfg,
                    ProcessId::new(i),
                    *input.get(ProcessId::new(i)),
                    oracle,
                )
            })
            .collect()
    }

    #[test]
    fn failure_free_in_condition_decides_in_two_rounds() {
        let cfg = config(6, 3, 2, 2, 1);
        let oracle = MaxCondition::new(cfg.legality()); // (x=1, ℓ=1)
        let input = InputVector::new(vec![5, 5, 1, 2, 5, 5]); // 5 × 4 > 1: in C
        let trace =
            run_protocol(processes(cfg, oracle, &input), &FailurePattern::none(6), 10).unwrap();
        assert!(trace.all_correct_decided());
        assert_eq!(trace.decided_values(), [5].into_iter().collect());
        assert_eq!(trace.last_decision_round(), Some(2));
    }

    #[test]
    fn out_of_condition_decides_at_classical_bound() {
        let cfg = config(6, 3, 2, 2, 1);
        let oracle = MaxCondition::new(cfg.legality());
        // All distinct: max appears once ≤ x = 1 → outside C_max(1,1).
        let input = InputVector::new(vec![1, 2, 3, 4, 5, 6]);
        let trace =
            run_protocol(processes(cfg, oracle, &input), &FailurePattern::none(6), 10).unwrap();
        assert!(trace.all_correct_decided());
        // ⌊t/k⌋ + 1 = 2 here — make it distinguishable: use k = 1.
        let cfg1 = config(6, 3, 1, 2, 1);
        let oracle1 = MaxCondition::new(cfg1.legality());
        let trace1 = run_protocol(
            processes(cfg1, oracle1, &input),
            &FailurePattern::none(6),
            10,
        )
        .unwrap();
        assert_eq!(
            trace1.last_decision_round(),
            Some(cfg1.final_decision_round())
        );
        assert_eq!(trace1.decided_values().len(), 1, "consensus: one value");
        assert!(trace.rounds_executed() <= cfg.final_decision_round());
    }

    #[test]
    fn validity_decided_values_are_proposals() {
        let cfg = config(5, 2, 2, 1, 1);
        let oracle = MaxCondition::new(cfg.legality());
        let input = InputVector::new(vec![3, 1, 4, 1, 5]);
        let trace =
            run_protocol(processes(cfg, oracle, &input), &FailurePattern::none(5), 10).unwrap();
        let proposals = input.distinct_values();
        for v in trace.decided_values() {
            assert!(proposals.contains(&v), "decided {v} was never proposed");
        }
    }

    #[test]
    fn massive_initial_crashes_trigger_tmf_path() {
        // More than t − d = 1 initial crashes: survivors see too many ⊥,
        // set v_tmf, and decide at round ⌊(d+ℓ−1)/k⌋ + 1 (Lemma 2(i)).
        let cfg = config(6, 3, 2, 2, 1);
        let oracle = MaxCondition::new(cfg.legality());
        let input = InputVector::new(vec![1, 2, 3, 4, 5, 6]); // outside C
        let pattern =
            FailurePattern::initial(6, [ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)])
                .unwrap();
        let trace = run_protocol(processes(cfg, oracle, &input), &pattern, 10).unwrap();
        assert!(trace.all_correct_decided());
        assert!(
            trace.last_decision_round().unwrap() <= cfg.condition_decision_round(),
            "Lemma 2(i): ⌊(d+ℓ−1)/k⌋+1 rounds despite the input being outside C"
        );
        assert!(trace.decided_values().len() <= cfg.k());
    }

    #[test]
    fn state_and_accessors() {
        let cfg = config(4, 2, 2, 1, 1);
        let oracle = MaxCondition::new(cfg.legality());
        let p = ConditionBased::new(cfg, ProcessId::new(1), 9u32, oracle);
        assert_eq!(p.id(), ProcessId::new(1));
        assert_eq!(p.config().n(), 4);
        assert_eq!(p.state(), (None, None, None));
        let dbg = format!("{p:?}");
        assert!(dbg.contains("ConditionBased"));
    }

    #[test]
    #[should_panic(expected = "outside a system")]
    fn foreign_process_id_is_rejected() {
        let cfg = config(4, 2, 2, 1, 1);
        let oracle = MaxCondition::new(cfg.legality());
        let _ = ConditionBased::new(cfg, ProcessId::new(7), 1u32, oracle);
    }

    #[test]
    fn agreement_under_staircase_adversary() {
        // The worst-case schedule from the Theorem 12 proof: k crashes per
        // round. Agreement must still cap at k values.
        let cfg = config(8, 4, 2, 2, 2);
        let oracle = MaxCondition::new(cfg.legality()); // (2, 2)
        let input = InputVector::new(vec![8, 7, 6, 5, 4, 3, 2, 1]);
        let pattern = FailurePattern::staircase(8, 4, 2);
        let trace = run_protocol(processes(cfg, oracle, &input), &pattern, 10).unwrap();
        assert!(trace.all_correct_decided());
        assert!(
            trace.decided_values().len() <= cfg.k(),
            "agreement: at most k = {} values, got {:?}",
            cfg.k(),
            trace.decided_values()
        );
    }

    #[test]
    fn lemma_1_in_condition_bound_holds_under_crashes() {
        // Input in C, crashes beyond t − d during round 1: Lemma 1(ii)
        // bounds decisions by ⌊(d+ℓ−1)/k⌋ + 1.
        let cfg = config(8, 4, 2, 3, 1); // x = 1, R_cond = ⌊3/2⌋+1 = 2
        let oracle = MaxCondition::new(cfg.legality());
        let input = InputVector::new(vec![9, 9, 9, 9, 9, 1, 2, 3]); // 9×5 > 1
        let mut pattern = FailurePattern::none(8);
        for (i, prefix) in [(0usize, 0usize), (1, 2), (2, 5)] {
            pattern
                .crash(ProcessId::new(i), setagree_sync::CrashSpec::new(1, prefix))
                .unwrap();
        }
        let trace = run_protocol(processes(cfg, oracle, &input), &pattern, 12).unwrap();
        assert!(trace.all_correct_decided());
        assert!(
            trace.last_decision_round().unwrap() <= cfg.condition_decision_round(),
            "Lemma 1: in-condition bound"
        );
        assert!(trace.decided_values().len() <= cfg.k());
    }
}
