//! The dense-engine view flood: every process broadcasts its interned
//! [`DenseView`] each round and unions what it hears, deciding the
//! number of distinct proposals it observed after a fixed round budget.
//!
//! This is the workhorse protocol of the large-`n` tier. Messages are
//! flat id arrays over a shared [`ValueTable`](setagree_types::ValueTable) domain, merges are the
//! word-level [`DenseView::merge_missing_from`] (a saturated 64-entry
//! chunk of the view costs one bitmap test to skip), and the decision
//! is a single counting pass — no value clones anywhere in the round
//! loop. The `broadcast` benches, the `flood-smoke` CI binary, and the
//! dense-equivalence property suite all run this protocol; its generic
//! twin (a `View<V>`-flooding protocol with the same shape) is what the
//! before/after numbers in the README compare against.

use std::fmt;

use setagree_sync::{Step, SyncProtocol};
use setagree_types::{DenseVector, DenseView, ProcessId};

/// One process of the dense view flood. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct DenseFlood {
    rounds: usize,
    view: DenseView,
}

impl DenseFlood {
    /// Creates the process `me` of a system proposing `inputs`, flooding
    /// for `rounds` rounds. Its initial view observes only its own
    /// entry.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0` or `me` is not a process of the system.
    pub fn new(inputs: &DenseVector, me: ProcessId, rounds: usize) -> Self {
        assert!(rounds > 0, "rounds are 1-based");
        DenseFlood {
            rounds,
            view: inputs.initial_view(me),
        }
    }

    /// Creates the whole system over `inputs` — one process per entry.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    pub fn system(inputs: &DenseVector, rounds: usize) -> Vec<DenseFlood> {
        (0..inputs.len())
            .map(|i| DenseFlood::new(inputs, ProcessId::new(i), rounds))
            .collect()
    }

    /// The round at which this process decides.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The view accumulated so far.
    pub fn view(&self) -> &DenseView {
        &self.view
    }
}

impl SyncProtocol for DenseFlood {
    type Msg = DenseView;
    type Output = usize;

    fn message(&mut self, _round: usize) -> DenseView {
        self.view.clone()
    }

    fn receive(&mut self, _round: usize, _from: ProcessId, msg: &DenseView) {
        self.view.merge_missing_from(msg);
    }

    fn compute(&mut self, round: usize) -> Step<usize> {
        if round >= self.rounds {
            Step::Decide(self.view.distinct_count())
        } else {
            Step::Continue
        }
    }
}

impl fmt::Display for DenseFlood {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "denseflood(seen = {}/{}, decides @ r{})",
            self.view.len() - self.view.count_bottom(),
            self.view.len(),
            self.rounds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setagree_sync::{run_protocol, CrashSpec, FailurePattern};
    use setagree_types::{InputVector, ValueTable};

    fn dense_inputs(values: &[u32]) -> DenseVector {
        let vector = InputVector::new(values.to_vec());
        ValueTable::from_vector(&vector).intern_vector(&vector)
    }

    #[test]
    fn failure_free_flood_sees_every_value() {
        let inputs = dense_inputs(&[3, 9, 9, 1, 4, 3]);
        let trace =
            run_protocol(DenseFlood::system(&inputs, 3), &FailurePattern::none(6), 10).unwrap();
        // 4 distinct proposals; everyone converges on the full view.
        assert_eq!(trace.decided_values(), [4].into_iter().collect());
        assert_eq!(trace.last_decision_round(), Some(3));
    }

    #[test]
    fn matches_generic_view_flood_under_crashes() {
        // The generic twin: flood `View<u32>`s with overwrite-merge.
        #[derive(Debug, Clone)]
        struct GenericFlood {
            rounds: usize,
            view: setagree_types::View<u32>,
        }
        impl SyncProtocol for GenericFlood {
            type Msg = setagree_types::View<u32>;
            type Output = usize;
            fn message(&mut self, _round: usize) -> Self::Msg {
                self.view.clone()
            }
            fn receive(&mut self, _round: usize, _from: ProcessId, msg: &Self::Msg) {
                self.view.merge_from(msg);
            }
            fn compute(&mut self, round: usize) -> Step<usize> {
                if round >= self.rounds {
                    Step::Decide(self.view.distinct_count())
                } else {
                    Step::Continue
                }
            }
        }

        let values = [7u32, 2, 7, 5, 1, 2, 9, 5];
        let vector = InputVector::new(values.to_vec());
        let table = ValueTable::from_vector(&vector);
        let inputs = table.intern_vector(&vector);

        let generic: Vec<GenericFlood> = (0..values.len())
            .map(|i| {
                let mut view = setagree_types::View::all_bottom(values.len());
                view.set(ProcessId::new(i), values[i]);
                GenericFlood { rounds: 3, view }
            })
            .collect();

        let mut pattern = FailurePattern::none(values.len());
        pattern
            .crash(ProcessId::new(1), CrashSpec::new(1, 3))
            .unwrap();
        pattern
            .crash(ProcessId::new(6), CrashSpec::new(2, 0))
            .unwrap();

        let dense_trace = run_protocol(DenseFlood::system(&inputs, 3), &pattern, 10).unwrap();
        let generic_trace = run_protocol(generic, &pattern, 10).unwrap();
        assert_eq!(dense_trace.decided_values(), generic_trace.decided_values());
        assert_eq!(
            dense_trace.last_decision_round(),
            generic_trace.last_decision_round()
        );
    }

    #[test]
    fn display_and_accessors() {
        let inputs = dense_inputs(&[4, 4, 8]);
        let p = DenseFlood::new(&inputs, ProcessId::new(2), 2);
        assert_eq!(p.rounds(), 2);
        assert_eq!(p.view().count_bottom(), 2);
        assert_eq!(p.to_string(), "denseflood(seen = 1/3, decides @ r2)");
    }

    #[test]
    #[should_panic(expected = "rounds are 1-based")]
    fn zero_rounds_is_rejected() {
        let inputs = dense_inputs(&[1, 2]);
        let _ = DenseFlood::system(&inputs, 0);
    }
}
