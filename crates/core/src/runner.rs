//! One-call execution helpers: build the `n` protocol instances, run them
//! under a failure pattern, and wrap the trace in a [`RunReport`] with the
//! paper's predicted round bound for the scenario.

use std::error::Error;
use std::fmt;

use setagree_conditions::ConditionOracle;
use setagree_sync::{run_protocol, EngineError, FailurePattern};
use setagree_types::{InputVector, ProcessId, ProposalValue};

use crate::baselines::FloodSet;
use crate::condition_based::ConditionBased;
use crate::config::ConditionBasedConfig;
use crate::early_condition::EarlyConditionBased;
use crate::early_deciding::EarlyDeciding;
use crate::report::RunReport;

/// Error running an experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RunError {
    /// The input vector's length does not match the configuration's `n`.
    InputSizeMismatch {
        /// Expected system size.
        expected: usize,
        /// Input vector length.
        got: usize,
    },
    /// The failure pattern schedules more crashes than `t`.
    TooManyCrashes {
        /// The fault bound `t`.
        t: usize,
        /// Crashes scheduled.
        scheduled: usize,
    },
    /// The oracle's legality parameters disagree with the configuration's
    /// `(t − d, ℓ)` — the algorithm's guarantees presuppose they match.
    OracleMismatch {
        /// What the configuration requires.
        expected: setagree_conditions::LegalityParams,
        /// What the oracle reports.
        got: setagree_conditions::LegalityParams,
    },
    /// The engine failed (round limit or system size mismatch).
    Engine(EngineError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::InputSizeMismatch { expected, got } => {
                write!(f, "input vector has {got} entries, the system has {expected}")
            }
            RunError::TooManyCrashes { t, scheduled } => {
                write!(f, "failure pattern schedules {scheduled} crashes, bound is t = {t}")
            }
            RunError::OracleMismatch { expected, got } => write!(
                f,
                "oracle is built for {got} but the configuration requires {expected}"
            ),
            RunError::Engine(e) => write!(f, "engine: {e}"),
        }
    }
}

impl Error for RunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for RunError {
    fn from(e: EngineError) -> Self {
        RunError::Engine(e)
    }
}

/// Runs the Figure 2 condition-based algorithm on `input` under `pattern`.
///
/// The report's predicted bound follows the paper's case analysis
/// (Lemmas 1–2): two rounds when the input is in the condition and at most
/// `t − d` processes crash in round 1; `⌊(d+ℓ−1)/k⌋ + 1` when the input is
/// in the condition, or when more than `t − d` processes crash initially;
/// `⌊t/k⌋ + 1` otherwise. (Rounds clamp to ≥ 2, the loop's first decision
/// opportunity.)
///
/// # Errors
///
/// Size mismatches, over-budget failure patterns, and engine failures.
pub fn run_condition_based<V, O>(
    config: &ConditionBasedConfig,
    oracle: &O,
    input: &InputVector<V>,
    pattern: &FailurePattern,
) -> Result<RunReport<V>, RunError>
where
    V: ProposalValue,
    O: ConditionOracle<V> + Clone,
{
    validate(config.n(), config.t(), input, pattern)?;
    validate_oracle(config, oracle)?;
    let in_condition = oracle.matches(&input.to_view());
    let processes: Vec<ConditionBased<V, O>> = ProcessId::all(config.n())
        .map(|id| ConditionBased::new(*config, id, input.get(id).clone(), oracle.clone()))
        .collect();
    let trace = run_protocol(processes, pattern, config.round_limit())?;

    let round_1_crashes = pattern.crashes_by_round(1);
    let t_minus_d = config.t() - config.d();
    let predicted = if in_condition {
        if round_1_crashes <= t_minus_d {
            2
        } else {
            config.condition_decision_round()
        }
    } else if pattern.initial_crash_count() > t_minus_d {
        config.condition_decision_round()
    } else {
        config.final_decision_round()
    };
    Ok(RunReport::new(trace, input.clone(), config.k(), predicted))
}

/// Runs the Section 8 extension — the early-deciding condition-based
/// algorithm — with the combined predicted bound
/// `min( Figure 2 bound , max(2, ⌊f/k⌋ + 2) )`.
///
/// # Errors
///
/// Size mismatches, over-budget failure patterns, and engine failures.
pub fn run_early_condition_based<V, O>(
    config: &ConditionBasedConfig,
    oracle: &O,
    input: &InputVector<V>,
    pattern: &FailurePattern,
) -> Result<RunReport<V>, RunError>
where
    V: ProposalValue,
    O: ConditionOracle<V> + Clone,
{
    validate(config.n(), config.t(), input, pattern)?;
    validate_oracle(config, oracle)?;
    let in_condition = oracle.matches(&input.to_view());
    let processes: Vec<EarlyConditionBased<V, O>> = ProcessId::all(config.n())
        .map(|id| EarlyConditionBased::new(*config, id, input.get(id).clone(), oracle.clone()))
        .collect();
    let trace = run_protocol(processes, pattern, config.round_limit())?;

    let round_1_crashes = pattern.crashes_by_round(1);
    let t_minus_d = config.t() - config.d();
    let figure_2_bound = if in_condition {
        if round_1_crashes <= t_minus_d {
            2
        } else {
            config.condition_decision_round()
        }
    } else if pattern.initial_crash_count() > t_minus_d {
        config.condition_decision_round()
    } else {
        config.final_decision_round()
    };
    let adaptive = (pattern.fault_count() / config.k() + 2).max(2);
    let predicted = figure_2_bound.min(adaptive);
    Ok(RunReport::new(trace, input.clone(), config.k(), predicted))
}

/// Runs the flood-set baseline (`⌊t/k⌋ + 1` rounds).
///
/// # Errors
///
/// Size mismatches, over-budget failure patterns, and engine failures.
pub fn run_floodset<V: ProposalValue>(
    n: usize,
    t: usize,
    k: usize,
    input: &InputVector<V>,
    pattern: &FailurePattern,
) -> Result<RunReport<V>, RunError> {
    validate(n, t, input, pattern)?;
    let processes: Vec<FloodSet<V>> = input.iter().map(|v| FloodSet::new(t, k, v.clone())).collect();
    let predicted = t / k + 1;
    let trace = run_protocol(processes, pattern, predicted + 2)?;
    Ok(RunReport::new(trace, input.clone(), k, predicted))
}

/// Runs the early-deciding protocol
/// (`min(⌊f/k⌋ + 2, ⌊t/k⌋ + 1)` rounds, `f` = actual crashes).
///
/// # Errors
///
/// Size mismatches, over-budget failure patterns, and engine failures.
pub fn run_early_deciding<V: ProposalValue>(
    n: usize,
    t: usize,
    k: usize,
    input: &InputVector<V>,
    pattern: &FailurePattern,
) -> Result<RunReport<V>, RunError> {
    validate(n, t, input, pattern)?;
    let processes: Vec<EarlyDeciding<V>> = input
        .iter()
        .map(|v| EarlyDeciding::new(n, t, k, v.clone()))
        .collect();
    let f = pattern.fault_count();
    let predicted = (f / k + 2).min(t / k + 1);
    let trace = run_protocol(processes, pattern, t / k + 3)?;
    Ok(RunReport::new(trace, input.clone(), k, predicted))
}

fn validate_oracle<V: ProposalValue, O: ConditionOracle<V>>(
    config: &ConditionBasedConfig,
    oracle: &O,
) -> Result<(), RunError> {
    let expected = config.legality();
    let got = oracle.params();
    if expected != got {
        return Err(RunError::OracleMismatch { expected, got });
    }
    Ok(())
}

fn validate<V: ProposalValue>(
    n: usize,
    t: usize,
    input: &InputVector<V>,
    pattern: &FailurePattern,
) -> Result<(), RunError> {
    if input.len() != n {
        return Err(RunError::InputSizeMismatch { expected: n, got: input.len() });
    }
    if pattern.fault_count() > t {
        return Err(RunError::TooManyCrashes { t, scheduled: pattern.fault_count() });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use setagree_conditions::MaxCondition;

    fn config(n: usize, t: usize, k: usize, d: usize, ell: usize) -> ConditionBasedConfig {
        ConditionBasedConfig::builder(n, t, k)
            .condition_degree(d)
            .ell(ell)
            .build()
            .unwrap()
    }

    #[test]
    fn condition_based_report_checks_out() {
        let cfg = config(6, 3, 2, 2, 1);
        let oracle = MaxCondition::new(cfg.legality());
        let input = InputVector::new(vec![5u32, 5, 1, 2, 5, 5]);
        let report =
            run_condition_based(&cfg, &oracle, &input, &FailurePattern::none(6)).unwrap();
        assert!(report.satisfies_all());
        assert_eq!(report.predicted_rounds(), 2);
        assert!(report.within_predicted_rounds());
    }

    #[test]
    fn out_of_condition_prediction_is_classical() {
        let cfg = config(6, 3, 1, 2, 1);
        let oracle = MaxCondition::new(cfg.legality());
        let input = InputVector::new(vec![1u32, 2, 3, 4, 5, 6]);
        let report =
            run_condition_based(&cfg, &oracle, &input, &FailurePattern::none(6)).unwrap();
        assert_eq!(report.predicted_rounds(), 3 + 1);
        assert!(report.within_predicted_rounds());
        assert!(report.satisfies_all());
    }

    #[test]
    fn floodset_runner() {
        let input = InputVector::new(vec![3u32, 9, 1, 4]);
        let report = run_floodset(4, 2, 1, &input, &FailurePattern::none(4)).unwrap();
        assert!(report.satisfies_all());
        assert_eq!(report.predicted_rounds(), 3);
        assert_eq!(report.decided_values(), [9].into_iter().collect());
    }

    #[test]
    fn early_deciding_runner() {
        let input = InputVector::new(vec![3u32, 9, 1, 4]);
        let report = run_early_deciding(4, 2, 1, &input, &FailurePattern::none(4)).unwrap();
        assert!(report.satisfies_all());
        assert_eq!(report.predicted_rounds(), 2);
        assert!(report.within_predicted_rounds());
    }

    #[test]
    fn input_size_is_validated() {
        let cfg = config(6, 3, 2, 2, 1);
        let oracle = MaxCondition::new(cfg.legality());
        let input = InputVector::new(vec![1u32, 2]);
        assert!(matches!(
            run_condition_based(&cfg, &oracle, &input, &FailurePattern::none(6)),
            Err(RunError::InputSizeMismatch { expected: 6, got: 2 })
        ));
    }

    #[test]
    fn crash_budget_is_validated() {
        let input = InputVector::new(vec![1u32, 2, 3, 4]);
        let pattern = FailurePattern::initial(
            4,
            [ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)],
        )
        .unwrap();
        assert!(matches!(
            run_floodset(4, 2, 1, &input, &pattern),
            Err(RunError::TooManyCrashes { t: 2, scheduled: 3 })
        ));
    }

    #[test]
    fn oracle_params_are_validated() {
        let cfg = config(6, 3, 2, 2, 1); // requires (x, ℓ) = (1, 1)
        let wrong = MaxCondition::new(setagree_conditions::LegalityParams::new(2, 1).unwrap());
        let input = InputVector::new(vec![5u32, 5, 1, 2, 5, 5]);
        let err = run_condition_based(&cfg, &wrong, &input, &FailurePattern::none(6)).unwrap_err();
        assert!(matches!(err, RunError::OracleMismatch { .. }));
        assert!(err.to_string().contains("requires"));
        let err =
            run_early_condition_based(&cfg, &wrong, &input, &FailurePattern::none(6)).unwrap_err();
        assert!(matches!(err, RunError::OracleMismatch { .. }));
    }

    #[test]
    fn error_display_and_source() {
        let e = RunError::Engine(EngineError::RoundLimitExceeded { limit: 5 });
        assert!(e.to_string().contains("engine"));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&RunError::TooManyCrashes { t: 1, scheduled: 2 }).is_none());
    }
}
