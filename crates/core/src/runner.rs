//! Deprecated one-call execution helpers, kept as thin shims over the
//! unified [`Scenario`] API.
//!
//! Migration table:
//!
//! | old | new |
//! |---|---|
//! | `run_condition_based(&cfg, &oracle, &input, &pattern)` | `Scenario::condition_based(cfg, oracle).input(input).pattern(pattern).run()` |
//! | `run_early_condition_based(&cfg, &oracle, &input, &pattern)` | `Scenario::early_condition_based(cfg, oracle).input(input).pattern(pattern).run()` |
//! | `run_early_deciding(n, t, k, &input, &pattern)` | `Scenario::early_deciding(n, t, k).input(input).pattern(pattern).run()` |
//! | `run_floodset(n, t, k, &input, &pattern)` | `Scenario::flood_set(n, t, k).input(input).pattern(pattern).run()` |
//!
//! Batch sweeps that used to loop over these helpers belong in a
//! [`ScenarioSuite`](crate::ScenarioSuite).

use setagree_conditions::ConditionOracle;
use setagree_sync::FailurePattern;
use setagree_types::{InputVector, ProposalValue};

use crate::config::ConditionBasedConfig;
use crate::experiment::{ExperimentError, Scenario};
use crate::report::Report;

/// Former error type of the `run_*` helpers.
#[deprecated(since = "0.2.0", note = "absorbed into `ExperimentError`")]
pub type RunError = ExperimentError;

/// Runs the Figure 2 condition-based algorithm on `input` under `pattern`.
///
/// # Errors
///
/// Size mismatches, over-budget failure patterns, and engine failures.
#[deprecated(
    since = "0.2.0",
    note = "use `Scenario::condition_based(config, oracle).input(input).pattern(pattern).run()`"
)]
pub fn run_condition_based<V, O>(
    config: &ConditionBasedConfig,
    oracle: &O,
    input: &InputVector<V>,
    pattern: &FailurePattern,
) -> Result<Report<V>, ExperimentError>
where
    V: ProposalValue,
    O: ConditionOracle<V> + Clone,
{
    Scenario::condition_based(*config, oracle.clone())
        .input(input.clone())
        .pattern(pattern.clone())
        .run_simulated()
}

/// Runs the Section 8 early-deciding condition-based combination.
///
/// # Errors
///
/// Size mismatches, over-budget failure patterns, and engine failures.
#[deprecated(
    since = "0.2.0",
    note = "use `Scenario::early_condition_based(config, oracle).input(input).pattern(pattern).run()`"
)]
pub fn run_early_condition_based<V, O>(
    config: &ConditionBasedConfig,
    oracle: &O,
    input: &InputVector<V>,
    pattern: &FailurePattern,
) -> Result<Report<V>, ExperimentError>
where
    V: ProposalValue,
    O: ConditionOracle<V> + Clone,
{
    Scenario::early_condition_based(*config, oracle.clone())
        .input(input.clone())
        .pattern(pattern.clone())
        .run_simulated()
}

/// Runs the flood-set baseline (`⌊t/k⌋ + 1` rounds).
///
/// # Errors
///
/// Size mismatches, over-budget failure patterns, and engine failures.
#[deprecated(
    since = "0.2.0",
    note = "use `Scenario::flood_set(n, t, k).input(input).pattern(pattern).run()`"
)]
pub fn run_floodset<V: ProposalValue>(
    n: usize,
    t: usize,
    k: usize,
    input: &InputVector<V>,
    pattern: &FailurePattern,
) -> Result<Report<V>, ExperimentError> {
    Scenario::flood_set(n, t, k)
        .input(input.clone())
        .pattern(pattern.clone())
        .run_simulated()
}

/// Runs the early-deciding protocol
/// (`min(⌊f/k⌋ + 2, ⌊t/k⌋ + 1)` rounds, `f` = actual crashes).
///
/// # Errors
///
/// Size mismatches, over-budget failure patterns, and engine failures.
#[deprecated(
    since = "0.2.0",
    note = "use `Scenario::early_deciding(n, t, k).input(input).pattern(pattern).run()`"
)]
pub fn run_early_deciding<V: ProposalValue>(
    n: usize,
    t: usize,
    k: usize,
    input: &InputVector<V>,
    pattern: &FailurePattern,
) -> Result<Report<V>, ExperimentError> {
    Scenario::early_deciding(n, t, k)
        .input(input.clone())
        .pattern(pattern.clone())
        .run_simulated()
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use setagree_conditions::MaxCondition;

    /// The shims must produce byte-for-byte the reports the new API does.
    #[test]
    fn shims_match_the_scenario_api() {
        let config = ConditionBasedConfig::builder(6, 3, 2)
            .condition_degree(2)
            .ell(1)
            .build()
            .unwrap();
        let oracle = MaxCondition::new(config.legality());
        let input = InputVector::new(vec![5u32, 5, 1, 2, 5, 5]);
        let pattern = FailurePattern::staircase(6, 3, 2);

        let shim = run_condition_based(&config, &oracle, &input, &pattern).unwrap();
        let scenario = Scenario::condition_based(config, oracle)
            .input(input.clone())
            .pattern(pattern.clone())
            .run()
            .unwrap();
        assert_eq!(shim.trace(), scenario.trace());
        assert_eq!(shim.predicted_rounds(), scenario.predicted_rounds());

        let shim = run_floodset(6, 3, 2, &input, &pattern).unwrap();
        let scenario = Scenario::flood_set(6, 3, 2)
            .input(input.clone())
            .pattern(pattern.clone())
            .run()
            .unwrap();
        assert_eq!(shim.trace(), scenario.trace());

        let shim = run_early_deciding(6, 3, 2, &input, &pattern).unwrap();
        let scenario = Scenario::early_deciding(6, 3, 2)
            .input(input.clone())
            .pattern(pattern.clone())
            .run()
            .unwrap();
        assert_eq!(shim.trace(), scenario.trace());
        assert_eq!(shim.predicted_rounds(), scenario.predicted_rounds());

        let shim = run_early_condition_based(&config, &oracle, &input, &pattern).unwrap();
        let scenario = Scenario::early_condition_based(config, oracle)
            .input(input)
            .pattern(pattern)
            .run()
            .unwrap();
        assert_eq!(shim.trace(), scenario.trace());
        assert_eq!(shim.predicted_rounds(), scenario.predicted_rounds());
    }

    #[test]
    fn shims_propagate_unified_errors() {
        let input = InputVector::new(vec![1u32, 2]);
        assert!(matches!(
            run_floodset(4, 2, 1, &input, &FailurePattern::none(4)),
            Err(ExperimentError::InputSizeMismatch {
                expected: 4,
                got: 2
            })
        ));
    }
}
