//! The unified experiment API: describe **what** to run — a
//! [`ProtocolSpec`], an input vector, an adversary — and **where** to run
//! it — an [`Executor`] — then call [`Scenario::run`] for a [`Report`].
//!
//! This replaces the four parallel `run_*` helpers and the per-backend
//! entry points (`run_protocol`, `run_threaded`) with one front door:
//!
//! ```
//! use setagree_conditions::MaxCondition;
//! use setagree_core::{ConditionBasedConfig, Executor, Scenario};
//! use setagree_sync::FailurePattern;
//!
//! let config = ConditionBasedConfig::builder(6, 3, 2)
//!     .condition_degree(2)
//!     .ell(1)
//!     .build()?;
//! let report = Scenario::condition_based(config, MaxCondition::new(config.legality()))
//!     .input(vec![5u32, 5, 1, 2, 5, 5])
//!     .pattern(FailurePattern::none(6))
//!     .executor(Executor::Simulator)
//!     .run()?;
//! assert!(report.satisfies_all());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The same scenario runs unchanged on real OS threads
//! (`Executor::Threaded`) or under the standard arbitrary-subset crash
//! model (an [`Adversary::Unordered`] pattern) — the executor and the
//! adversary are data, not code paths the caller has to reimplement.
//!
//! The paper's **asynchronous** protocols (Section 4) are executors too:
//! [`Executor::AsyncSharedMemory`] runs the condition-based ℓ-set
//! agreement algorithm over simulated shared memory under a seeded
//! scheduler adversary, [`Executor::AsyncMessagePassing`] over reliable
//! channels under a seeded delivery adversary. Their crash schedules are
//! [`Adversary::Async`] patterns ([`AsyncCrashes`]), and the seed lives
//! in the executor, so a `Scenario` stays inert, replayable data across
//! all four executors. Build asynchronous scenarios with
//! [`Scenario::async_set_agreement`], or run a
//! [`Scenario::condition_based`] spec directly on an async executor to
//! compare the synchronous and asynchronous renderings of one condition.

use std::error::Error;
use std::fmt;
use std::marker::PhantomData;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use setagree_async::{
    default_delivery_budget, default_step_budget, execute_message_passing, execute_shared_memory,
    AsyncCrashes,
};
use setagree_conditions::{ConditionOracle, LegalityParams, MaxCondition};
pub use setagree_node::TransportKind;
use setagree_node::{run_loopback, run_loopback_faulty, NodeError};
use setagree_runtime::{run_threaded, ThreadedError};
use setagree_sync::{
    run_protocol, run_protocol_faulty, run_protocol_unordered, run_protocol_unordered_faulty,
    EngineError, FailurePattern, FaultPlan, SyncProtocol, Trace, UnorderedFailurePattern,
};
use setagree_types::{InputVector, ProcessId, ProposalValue};

use crate::baselines::FloodSet;
use crate::condition_based::ConditionBased;
use crate::config::ConditionBasedConfig;
use crate::early_condition::EarlyConditionBased;
use crate::early_deciding::EarlyDeciding;
use crate::report::Report;

/// Everything that can go wrong preparing or running a scenario — the
/// single error type absorbing the former `RunError`, `EngineError` and
/// `ThreadedError`.
///
/// Backend errors are *flattened* into matching variants rather than
/// wrapped (no `source()` chain): that keeps the type `Clone + Eq`,
/// which the suite's positioned per-case failures and equality-based
/// tests rely on. Backend variants this crate predates surface as
/// [`ExperimentError::Internal`] carrying the original message.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExperimentError {
    /// [`Scenario::run`] was called before [`Scenario::input`].
    MissingInput,
    /// The input vector's length does not match the protocol's `n`.
    InputSizeMismatch {
        /// Expected system size.
        expected: usize,
        /// Input vector length.
        got: usize,
    },
    /// The spec's agreement degree is zero (`k ≥ 1` is required; the
    /// condition-based specs already reject this in `ConfigBuilder`).
    ZeroK,
    /// The failure pattern schedules more crashes than `t`.
    TooManyCrashes {
        /// The fault bound `t`.
        t: usize,
        /// Crashes scheduled.
        scheduled: usize,
    },
    /// The oracle's legality parameters disagree with the configuration's
    /// `(t − d, ℓ)` — the algorithm's guarantees presuppose they match.
    OracleMismatch {
        /// What the configuration requires.
        expected: LegalityParams,
        /// What the oracle reports.
        got: LegalityParams,
    },
    /// Some process neither decided nor crashed within the round limit.
    RoundLimitExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// Process count and failure-pattern system size differ.
    SystemSizeMismatch {
        /// Protocol instances supplied.
        processes: usize,
        /// Pattern system size.
        pattern: usize,
    },
    /// A process thread panicked (threaded executor only).
    ProcessPanicked {
        /// The panicking process.
        process: ProcessId,
    },
    /// The executor cannot realize the requested adversary: the threaded
    /// runtime implements only the paper's ordered-send model, and the
    /// asynchronous executors take [`Adversary::Async`] schedules (or any
    /// failure-free pattern).
    UnsupportedAdversary {
        /// The executor that was asked.
        executor: Executor,
    },
    /// An asynchronous crash schedule names a process outside the
    /// system (the engines would silently ignore it, turning a typo
    /// into a failure-free run — mirrored after the range validation
    /// the synchronous `FailurePattern::crash` already performs).
    UnknownCrashVictim {
        /// The out-of-range process.
        victim: ProcessId,
        /// The system size.
        n: usize,
    },
    /// The executor cannot run the requested protocol: the asynchronous
    /// executors run the condition-based specs only, and the
    /// [`ProtocolKind::AsyncSetAgreement`] spec needs an asynchronous
    /// executor.
    UnsupportedProtocol {
        /// The executor that was asked.
        executor: Executor,
        /// The protocol the spec selects.
        protocol: ProtocolKind,
    },
    /// The networked executor's scenario integration runs the loopback
    /// transport only: TCP executions live in real node processes, driven
    /// by the `setagree-node` binary's testnet harness (wire codecs are
    /// per-value-type, so a generic `Scenario<V>` cannot frame them).
    UnsupportedTransport {
        /// The transport that was asked.
        transport: TransportKind,
    },
    /// A networked round timed out on peers that were never confirmed
    /// dead: they were *suspected* — slow, partitioned, or silently
    /// lossy — and the transport's resend/reconnect budget ran out
    /// before either a frame or an end-of-stream arrived. Distinct from
    /// a crash on purpose: mislabelling a slow node as a paper-model
    /// crash would fabricate a failure pattern the adversary never
    /// scheduled.
    RoundTimeout {
        /// The round that timed out.
        round: usize,
        /// The suspected-but-unconfirmed peers.
        peers: Vec<ProcessId>,
    },
    /// An engine or runtime error this crate predates (the backends'
    /// error enums are `#[non_exhaustive]`); carries the original
    /// message rather than mislabelling it.
    Internal {
        /// The backend error's own description.
        message: String,
    },
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::MissingInput => {
                write!(
                    f,
                    "the scenario has no input vector (call .input(...) before .run())"
                )
            }
            ExperimentError::InputSizeMismatch { expected, got } => {
                write!(
                    f,
                    "input vector has {got} entries, the system has {expected}"
                )
            }
            ExperimentError::ZeroK => write!(f, "the agreement degree k must be at least 1"),
            ExperimentError::TooManyCrashes { t, scheduled } => {
                write!(
                    f,
                    "failure pattern schedules {scheduled} crashes, bound is t = {t}"
                )
            }
            ExperimentError::OracleMismatch { expected, got } => write!(
                f,
                "oracle is built for {got} but the configuration requires {expected}"
            ),
            ExperimentError::RoundLimitExceeded { limit } => {
                write!(
                    f,
                    "execution exceeded the {limit}-round limit without termination"
                )
            }
            ExperimentError::SystemSizeMismatch { processes, pattern } => write!(
                f,
                "{processes} protocol instances but the failure pattern is over {pattern} processes"
            ),
            ExperimentError::ProcessPanicked { process } => {
                write!(f, "thread of {process} panicked")
            }
            ExperimentError::UnsupportedAdversary { executor } => write!(
                f,
                "executor {executor} cannot realize the requested adversary \
                 (threaded: ordered-send patterns; async: AsyncCrashes or failure-free)"
            ),
            ExperimentError::UnknownCrashVictim { victim, n } => write!(
                f,
                "crash schedule names {victim} but the system has only {n} processes"
            ),
            ExperimentError::UnsupportedProtocol { executor, protocol } => write!(
                f,
                "protocol {protocol} cannot run on executor {executor} \
                 (async executors run the condition-based specs; \
                 async-set-agreement specs need an async executor)"
            ),
            ExperimentError::UnsupportedTransport { transport } => write!(
                f,
                "the {transport} transport does not run through Scenario::run \
                 (use the setagree-node testnet harness for real node processes)"
            ),
            ExperimentError::RoundTimeout { round, peers } => {
                write!(f, "round {round} timed out waiting on unconfirmed peers")?;
                for (i, peer) in peers.iter().enumerate() {
                    write!(f, "{} {peer}", if i == 0 { ":" } else { "," })?;
                }
                Ok(())
            }
            ExperimentError::Internal { message } => write!(f, "backend error: {message}"),
        }
    }
}

impl Error for ExperimentError {}

impl From<EngineError> for ExperimentError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::RoundLimitExceeded { limit } => {
                ExperimentError::RoundLimitExceeded { limit }
            }
            EngineError::SystemSizeMismatch { processes, pattern } => {
                ExperimentError::SystemSizeMismatch { processes, pattern }
            }
            other => ExperimentError::Internal {
                message: other.to_string(),
            },
        }
    }
}

impl From<ThreadedError> for ExperimentError {
    fn from(e: ThreadedError) -> Self {
        match e {
            ThreadedError::RoundLimitExceeded { limit } => {
                ExperimentError::RoundLimitExceeded { limit }
            }
            ThreadedError::SystemSizeMismatch { processes, pattern } => {
                ExperimentError::SystemSizeMismatch { processes, pattern }
            }
            ThreadedError::ProcessPanicked { process } => {
                ExperimentError::ProcessPanicked { process }
            }
            other => ExperimentError::Internal {
                message: other.to_string(),
            },
        }
    }
}

impl From<NodeError> for ExperimentError {
    fn from(e: NodeError) -> Self {
        match e {
            NodeError::RoundLimitExceeded { limit } => {
                ExperimentError::RoundLimitExceeded { limit }
            }
            NodeError::SystemSizeMismatch { processes, pattern } => {
                ExperimentError::SystemSizeMismatch { processes, pattern }
            }
            NodeError::ProcessPanicked { process } => ExperimentError::ProcessPanicked { process },
            other => ExperimentError::Internal {
                message: other.to_string(),
            },
        }
    }
}

/// Where a scenario executes.
///
/// The first two executors run the **synchronous** round-based protocols;
/// the next two run the paper's **asynchronous** Section 4 algorithm, and
/// carry the adversary seed so the `Scenario` itself stays inert data:
/// the same seed replays the byte-identical interleaving, a different
/// seed is a different adversary over the same scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Executor {
    /// The deterministic in-process round simulator (fast; the default).
    #[default]
    Simulator,
    /// The real-thread runtime: one OS thread per process, channels as
    /// links. Observationally identical to the simulator on ordered
    /// patterns — which `tests/executor_equivalence.rs` asserts.
    Threaded,
    /// The asynchronous shared-memory runtime (Section 4): single-writer
    /// registers with atomic snapshots, a seeded scheduler picking which
    /// process takes its next linearized step. Runs the condition-based
    /// specs as ℓ-set agreement with `x = t − d` crash tolerance.
    AsyncSharedMemory {
        /// The scheduler-adversary seed.
        seed: u64,
    },
    /// The asynchronous message-passing runtime (Section 4 over reliable
    /// channels): a seeded adversary chooses delivery order. Same specs
    /// and guarantees *within the condition* as the shared-memory
    /// executor; see `setagree_async::message_passing` for the honest
    /// out-of-condition limitation.
    AsyncMessagePassing {
        /// The delivery-adversary seed.
        seed: u64,
    },
    /// The networked tier (`setagree-node`): each process is a real node,
    /// and crashes are injected by *killing* the victim — its task or
    /// process leaves the round structure instead of lingering silently.
    /// With [`TransportKind::Loopback`] the nodes are in-process tasks
    /// over the shared delivery mesh, trace-equivalent to the simulator
    /// (asserted by `tests/node_equivalence.rs`); [`TransportKind::Tcp`]
    /// executions run as real node processes through the `setagree-node`
    /// binary's testnet harness rather than through [`Scenario::run`].
    Networked {
        /// Which transport carries the rounds.
        transport: TransportKind,
    },
}

impl Executor {
    /// Whether this executor runs the asynchronous (step-based) model
    /// rather than a synchronous round-based one.
    pub fn is_async(&self) -> bool {
        matches!(
            self,
            Executor::AsyncSharedMemory { .. } | Executor::AsyncMessagePassing { .. }
        )
    }

    /// A short, stable, parameter-free name for table headings, shard
    /// summaries and logs — unlike [`fmt::Display`], which includes the
    /// adversary seed on the asynchronous executors.
    pub fn label(&self) -> &'static str {
        match self {
            Executor::Simulator => "simulator",
            Executor::Threaded => "threaded",
            Executor::AsyncSharedMemory { .. } => "async-shared-memory",
            Executor::AsyncMessagePassing { .. } => "async-message-passing",
            Executor::Networked {
                transport: TransportKind::Loopback,
            } => "networked-loopback",
            Executor::Networked {
                transport: TransportKind::Tcp,
            } => "networked-tcp",
        }
    }

    /// [`label`](Executor::label) plus a compact ` [faults …]` suffix
    /// when an injected link-fault plan shaped the run, so logs and
    /// metrics snapshots are attributable to the adversary that
    /// produced them (see [`FaultPlan::summary`]).
    pub fn label_with_faults(&self, plan: Option<&FaultPlan>) -> String {
        match plan {
            Some(plan) => format!("{} [{}]", self.label(), plan.summary()),
            None => self.label().to_string(),
        }
    }
}

impl fmt::Display for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Executor::Simulator => write!(f, "simulator"),
            Executor::Threaded => write!(f, "threaded"),
            Executor::AsyncSharedMemory { seed } => {
                write!(f, "async-shared-memory(seed {seed})")
            }
            Executor::AsyncMessagePassing { seed } => {
                write!(f, "async-message-passing(seed {seed})")
            }
            Executor::Networked { transport } => write!(f, "networked({transport})"),
        }
    }
}

/// The crash adversary of a scenario: the paper's ordered-send model, the
/// standard arbitrary-subset model used by the ablations, or an
/// asynchronous step-budget schedule for the async executors.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Adversary {
    /// Ordered sends: a crash loses a *suffix* of the broadcast
    /// (Section 6.2 — the model the Figure 2 guarantees assume).
    Ordered(FailurePattern),
    /// Arbitrary-subset loss: the standard synchronous model, under which
    /// the Figure 2 agreement argument does **not** hold (the ablation of
    /// `tests/model_ablation.rs`). Simulator only.
    Unordered(UnorderedFailurePattern),
    /// Asynchronous crashes: each faulty process halts after a budget of
    /// its own steps (deliveries, for message passing). Async executors
    /// only. The schedule may exceed the condition's tolerance `x` —
    /// stranded processes then surface as `Unfinished` outcomes rather
    /// than a validation error, which is how experiments probe the
    /// impossibility frontier.
    Async(AsyncCrashes),
    /// Link omissions layered over ordered-send crashes: the seeded
    /// [`FaultPlan`] drops, delays, duplicates, reorders and partitions
    /// messages per `(round, sender, receiver)` while `crashes` keeps the
    /// paper's crash-prefix semantics. Runs on the simulator and the
    /// networked-loopback executor — byte-identically, since both realize
    /// the plan through the same `FaultInbox` (pinned by
    /// `tests/fault_equivalence.rs`). The Figure 2 sharp bounds assume
    /// reliable links, so a report under a non-benign plan falls back to
    /// the generic `⌊t/k⌋ + 1` prediction.
    Omission {
        /// The seeded link-fault plan.
        plan: FaultPlan,
        /// The crash pattern underneath the link faults.
        crashes: FailurePattern,
    },
    /// The same link-fault plan over **unordered** (arbitrary-subset)
    /// crashes — the fully hostile network: no send-order discipline *and*
    /// lossy links. Simulator only.
    Network {
        /// The seeded link-fault plan.
        plan: FaultPlan,
        /// The unordered crash pattern underneath the link faults.
        crashes: UnorderedFailurePattern,
    },
}

impl Adversary {
    /// The system size the pattern is defined over (`None` for an
    /// asynchronous schedule, which names victims without fixing `n`).
    pub fn system_size(&self) -> Option<usize> {
        match self {
            Adversary::Ordered(p) => Some(p.system_size()),
            Adversary::Unordered(p) => Some(p.system_size()),
            Adversary::Async(_) => None,
            Adversary::Omission { crashes, .. } => Some(crashes.system_size()),
            Adversary::Network { crashes, .. } => Some(crashes.system_size()),
        }
    }

    /// The number of faulty processes. Link faults are not crashes: an
    /// omission adversary counts only the processes its crash pattern
    /// kills, so the `t` budget constrains crashes exactly as in the
    /// crash-only models.
    pub fn fault_count(&self) -> usize {
        match self {
            Adversary::Ordered(p) => p.fault_count(),
            Adversary::Unordered(p) => p.fault_count(),
            Adversary::Async(c) => c.fault_count(),
            Adversary::Omission { crashes, .. } => crashes.fault_count(),
            Adversary::Network { crashes, .. } => crashes.fault_count(),
        }
    }

    /// The link-fault plan, when this adversary injects one.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        match self {
            Adversary::Omission { plan, .. } | Adversary::Network { plan, .. } => Some(plan),
            _ => None,
        }
    }

    /// The ordered pattern, when this adversary is in the paper's model.
    pub fn as_ordered(&self) -> Option<&FailurePattern> {
        match self {
            Adversary::Ordered(p) => Some(p),
            _ => None,
        }
    }

    /// The asynchronous schedule, when this adversary is one.
    pub fn as_async(&self) -> Option<&AsyncCrashes> {
        match self {
            Adversary::Async(c) => Some(c),
            _ => None,
        }
    }
}

impl From<FailurePattern> for Adversary {
    fn from(p: FailurePattern) -> Self {
        Adversary::Ordered(p)
    }
}

impl From<UnorderedFailurePattern> for Adversary {
    fn from(p: UnorderedFailurePattern) -> Self {
        Adversary::Unordered(p)
    }
}

impl From<AsyncCrashes> for Adversary {
    fn from(c: AsyncCrashes) -> Self {
        Adversary::Async(c)
    }
}

/// Which algorithm a scenario ran — carried by every [`Report`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ProtocolKind {
    /// The Figure 2 condition-based algorithm.
    ConditionBased,
    /// The Section 8 early-deciding condition-based combination.
    EarlyConditionBased,
    /// The \[Gafni–Guerraoui–Pochon\] early-deciding baseline.
    EarlyDeciding,
    /// The classical flood-set baseline.
    FloodSet,
    /// The Section 4 asynchronous condition-based ℓ-set agreement
    /// algorithm (runs on the async executors only).
    AsyncSetAgreement,
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolKind::ConditionBased => write!(f, "condition-based"),
            ProtocolKind::EarlyConditionBased => write!(f, "early-condition-based"),
            ProtocolKind::EarlyDeciding => write!(f, "early-deciding"),
            ProtocolKind::FloodSet => write!(f, "floodset"),
            ProtocolKind::AsyncSetAgreement => write!(f, "async-set-agreement"),
        }
    }
}

#[derive(Clone, Hash)]
enum SpecKind<O> {
    ConditionBased {
        config: ConditionBasedConfig,
        oracle: O,
    },
    EarlyConditionBased {
        config: ConditionBasedConfig,
        oracle: O,
    },
    EarlyDeciding {
        n: usize,
        t: usize,
        k: usize,
    },
    FloodSet {
        n: usize,
        t: usize,
        k: usize,
        target_round: Option<usize>,
    },
    AsyncSetAgreement {
        n: usize,
        params: LegalityParams,
        oracle: O,
    },
}

/// Builds the process vector for a spec and hands it to a runner
/// expression — the single protocol-dispatch point shared by the
/// simulator and threaded executors, so a new [`SpecKind`] variant needs
/// exactly one arm here and cannot drift between backends.
macro_rules! dispatch_spec {
    ($spec:expr, $input:expr, |$procs:ident| $run:expr) => {
        match &$spec.kind {
            SpecKind::ConditionBased { config, oracle } => {
                let $procs = condition_processes(config, oracle, $input);
                $run
            }
            SpecKind::EarlyConditionBased { config, oracle } => {
                let $procs = early_condition_processes(config, oracle, $input);
                $run
            }
            SpecKind::EarlyDeciding { n, t, k } => {
                let $procs = early_deciding_processes(*n, *t, *k, $input);
                $run
            }
            SpecKind::FloodSet {
                t, k, target_round, ..
            } => {
                let $procs = flood_processes(*t, *k, *target_round, $input);
                $run
            }
            SpecKind::AsyncSetAgreement { .. } => {
                unreachable!("async specs are rejected before round-based dispatch")
            }
        }
    };
}

/// The algorithm a scenario runs, with its parameters and (for the
/// condition-based variants) the oracle wiring.
///
/// `V` is the proposal-value type; `O` the oracle, defaulting to the
/// analytic [`MaxCondition`].
pub struct ProtocolSpec<V, O = MaxCondition> {
    kind: SpecKind<O>,
    _values: PhantomData<fn() -> V>,
}

impl<O: Clone, V> Clone for ProtocolSpec<V, O> {
    fn clone(&self) -> Self {
        ProtocolSpec {
            kind: self.kind.clone(),
            _values: PhantomData,
        }
    }
}

/// Specs hash by protocol, parameters and oracle — the spec component of
/// a [`SuiteCache`](crate::SuiteCache) key. (Manual impl so `V`, which
/// only appears in `PhantomData`, needs no `Hash` bound.)
impl<V, O: std::hash::Hash> std::hash::Hash for ProtocolSpec<V, O> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.kind.hash(state);
    }
}

impl<V, O> fmt::Debug for ProtocolSpec<V, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ProtocolSpec({}, n={}, t={}, k={})",
            self.protocol(),
            self.n(),
            self.t(),
            self.k()
        )
    }
}

impl<V, O> ProtocolSpec<V, O> {
    /// The Figure 2 condition-based algorithm with `oracle` deciding
    /// condition membership.
    pub fn condition_based(config: ConditionBasedConfig, oracle: O) -> Self {
        ProtocolSpec {
            kind: SpecKind::ConditionBased { config, oracle },
            _values: PhantomData,
        }
    }

    /// The Section 8 combination: Figure 2 plus the early-decision rule.
    pub fn early_condition_based(config: ConditionBasedConfig, oracle: O) -> Self {
        ProtocolSpec {
            kind: SpecKind::EarlyConditionBased { config, oracle },
            _values: PhantomData,
        }
    }

    /// The Section 4 asynchronous condition-based ℓ-set agreement
    /// algorithm over `n` processes: tolerates `params.x()` crashes and
    /// decides at most `params.ell()` values when the input is in the
    /// oracle's `(x, ℓ)`-legal condition. Runs on the async executors
    /// only ([`Executor::AsyncSharedMemory`] /
    /// [`Executor::AsyncMessagePassing`]); a round-based executor reports
    /// [`ExperimentError::UnsupportedProtocol`].
    pub fn async_set_agreement(n: usize, params: LegalityParams, oracle: O) -> Self {
        ProtocolSpec {
            kind: SpecKind::AsyncSetAgreement { n, params, oracle },
            _values: PhantomData,
        }
    }

    /// Which algorithm this spec selects.
    pub fn protocol(&self) -> ProtocolKind {
        match &self.kind {
            SpecKind::ConditionBased { .. } => ProtocolKind::ConditionBased,
            SpecKind::EarlyConditionBased { .. } => ProtocolKind::EarlyConditionBased,
            SpecKind::EarlyDeciding { .. } => ProtocolKind::EarlyDeciding,
            SpecKind::FloodSet { .. } => ProtocolKind::FloodSet,
            SpecKind::AsyncSetAgreement { .. } => ProtocolKind::AsyncSetAgreement,
        }
    }

    /// The system size `n`.
    pub fn n(&self) -> usize {
        match &self.kind {
            SpecKind::ConditionBased { config, .. }
            | SpecKind::EarlyConditionBased { config, .. } => config.n(),
            SpecKind::EarlyDeciding { n, .. }
            | SpecKind::FloodSet { n, .. }
            | SpecKind::AsyncSetAgreement { n, .. } => *n,
        }
    }

    /// The fault bound: `t` for the synchronous protocols, the condition's
    /// crash tolerance `x` for the asynchronous one.
    pub fn t(&self) -> usize {
        match &self.kind {
            SpecKind::ConditionBased { config, .. }
            | SpecKind::EarlyConditionBased { config, .. } => config.t(),
            SpecKind::EarlyDeciding { t, .. } | SpecKind::FloodSet { t, .. } => *t,
            SpecKind::AsyncSetAgreement { params, .. } => params.x(),
        }
    }

    /// The agreement degree: `k` for the synchronous protocols, `ℓ` for
    /// the asynchronous one.
    pub fn k(&self) -> usize {
        match &self.kind {
            SpecKind::ConditionBased { config, .. }
            | SpecKind::EarlyConditionBased { config, .. } => config.k(),
            SpecKind::EarlyDeciding { k, .. } | SpecKind::FloodSet { k, .. } => *k,
            SpecKind::AsyncSetAgreement { params, .. } => params.ell(),
        }
    }

    /// The condition-based configuration, when this spec carries one.
    pub fn config(&self) -> Option<&ConditionBasedConfig> {
        match &self.kind {
            SpecKind::ConditionBased { config, .. }
            | SpecKind::EarlyConditionBased { config, .. } => Some(config),
            _ => None,
        }
    }

    /// A safe default engine round limit for this spec (round-based
    /// executors; the async executors use the step budgets of
    /// `setagree-async` instead).
    fn default_round_limit(&self) -> usize {
        match &self.kind {
            SpecKind::ConditionBased { config, .. }
            | SpecKind::EarlyConditionBased { config, .. } => config.round_limit(),
            SpecKind::EarlyDeciding { t, k, .. } => t / k + 3,
            SpecKind::FloodSet {
                t, k, target_round, ..
            } => match target_round {
                Some(target) => target + 2,
                None => t / k + 3,
            },
            SpecKind::AsyncSetAgreement { .. } => {
                unreachable!("async specs are rejected before round-based dispatch")
            }
        }
    }
}

impl<V> ProtocolSpec<V, MaxCondition> {
    /// The classical flood-set baseline (`⌊t/k⌋ + 1` rounds).
    pub fn flood_set(n: usize, t: usize, k: usize) -> Self {
        ProtocolSpec {
            kind: SpecKind::FloodSet {
                n,
                t,
                k,
                target_round: None,
            },
            _values: PhantomData,
        }
    }

    /// A flood-set **truncated** to decide at `target_round` regardless of
    /// `⌊t/k⌋ + 1` — deliberately incorrect below the bound; used by the
    /// lower-bound demonstrations, where the resulting [`Report`] shows
    /// the agreement violation.
    pub fn flood_set_truncated(n: usize, t: usize, k: usize, target_round: usize) -> Self {
        ProtocolSpec {
            kind: SpecKind::FloodSet {
                n,
                t,
                k,
                target_round: Some(target_round),
            },
            _values: PhantomData,
        }
    }

    /// The early-deciding baseline
    /// (`min(⌊f/k⌋ + 2, ⌊t/k⌋ + 1)` rounds, `f` = actual crashes).
    pub fn early_deciding(n: usize, t: usize, k: usize) -> Self {
        ProtocolSpec {
            kind: SpecKind::EarlyDeciding { n, t, k },
            _values: PhantomData,
        }
    }
}

/// One experiment: a protocol, an input, an adversary, an executor.
///
/// Build with the protocol constructors ([`Scenario::condition_based`],
/// [`Scenario::flood_set`], …), refine with the builder methods, execute
/// with [`Scenario::run`]. A `Scenario` is inert data: running it twice
/// (or on two executors) replays the identical experiment.
///
/// Internally the spec, input and adversary are held behind [`Arc`]s, so
/// cloning a scenario — or fanning hundreds of grid cells out of one
/// spec, as [`ScenarioSuite`](crate::ScenarioSuite) does — never deep
/// copies an oracle or an input vector. The shared-ownership
/// constructors ([`Scenario::from_shared`], [`Scenario::input_shared`],
/// [`Scenario::pattern_shared`]) accept pre-made `Arc`s directly.
pub struct Scenario<V, O = MaxCondition> {
    spec: Arc<ProtocolSpec<V, O>>,
    input: Option<Arc<InputVector<V>>>,
    adversary: Option<Arc<Adversary>>,
    round_limit: Option<usize>,
    step_budget: Option<u64>,
    executor: Executor,
}

impl<V, O> Clone for Scenario<V, O> {
    fn clone(&self) -> Self {
        Scenario {
            spec: Arc::clone(&self.spec),
            input: self.input.clone(),
            adversary: self.adversary.clone(),
            round_limit: self.round_limit,
            step_budget: self.step_budget,
            executor: self.executor,
        }
    }
}

impl<V: fmt::Debug, O> fmt::Debug for Scenario<V, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("spec", &self.spec)
            .field("input", &self.input)
            .field("adversary", &self.adversary)
            .field("round_limit", &self.round_limit)
            .field("step_budget", &self.step_budget)
            .field("executor", &self.executor)
            .finish()
    }
}

impl<V, O> Scenario<V, O> {
    /// Wraps a prepared [`ProtocolSpec`].
    pub fn new(spec: ProtocolSpec<V, O>) -> Self {
        Scenario::from_shared(Arc::new(spec))
    }

    /// Wraps an [`Arc`]-shared [`ProtocolSpec`] without copying it —
    /// the cheap way to fan many scenarios out of one expensive spec
    /// (e.g. an `ExplicitOracle` over an enumerated condition).
    pub fn from_shared(spec: Arc<ProtocolSpec<V, O>>) -> Self {
        Scenario {
            spec,
            input: None,
            adversary: None,
            round_limit: None,
            step_budget: None,
            executor: Executor::default(),
        }
    }

    /// Shorthand for [`Scenario::new`] over
    /// [`ProtocolSpec::condition_based`].
    pub fn condition_based(config: ConditionBasedConfig, oracle: O) -> Self {
        Scenario::new(ProtocolSpec::condition_based(config, oracle))
    }

    /// Shorthand for [`Scenario::new`] over
    /// [`ProtocolSpec::early_condition_based`].
    pub fn early_condition_based(config: ConditionBasedConfig, oracle: O) -> Self {
        Scenario::new(ProtocolSpec::early_condition_based(config, oracle))
    }

    /// Shorthand for [`Scenario::new`] over
    /// [`ProtocolSpec::async_set_agreement`]. Remember to select an
    /// asynchronous [`Executor`] — the default is the (synchronous)
    /// simulator, which cannot run this spec.
    pub fn async_set_agreement(n: usize, params: LegalityParams, oracle: O) -> Self {
        Scenario::new(ProtocolSpec::async_set_agreement(n, params, oracle))
    }

    /// Sets the input vector (one proposal per process). Required.
    pub fn input(mut self, input: impl Into<InputVector<V>>) -> Self {
        self.input = Some(Arc::new(input.into()));
        self
    }

    /// Sets an [`Arc`]-shared input vector without copying its entries.
    pub fn input_shared(mut self, input: Arc<InputVector<V>>) -> Self {
        self.input = Some(input);
        self
    }

    /// Sets the crash adversary; accepts a [`FailurePattern`] (ordered
    /// sends, the paper's model), an [`UnorderedFailurePattern`]
    /// (standard model, simulator only), or an [`AsyncCrashes`] schedule
    /// (async executors only). Defaults to failure-free.
    pub fn pattern(mut self, adversary: impl Into<Adversary>) -> Self {
        self.adversary = Some(Arc::new(adversary.into()));
        self
    }

    /// Sets an [`Arc`]-shared adversary without copying its schedule.
    pub fn pattern_shared(mut self, adversary: Arc<Adversary>) -> Self {
        self.adversary = Some(adversary);
        self
    }

    /// Overrides the engine round limit on the round-based executors
    /// (default: the protocol's proven bound plus slack). Rounds and
    /// asynchronous scheduler steps are different units, so the
    /// asynchronous executors ignore this — bound them with
    /// [`Scenario::step_budget`] instead; the split keeps one limit of
    /// each kind meaningful on a scenario that runs on both models.
    pub fn round_limit(mut self, limit: usize) -> Self {
        self.round_limit = Some(limit);
        self
    }

    /// Overrides the global step budget (deliveries, for message
    /// passing) on the asynchronous executors (default: the generous
    /// `setagree-async` budgets). The round-based executors ignore this
    /// — bound them with [`Scenario::round_limit`].
    pub fn step_budget(mut self, budget: u64) -> Self {
        self.step_budget = Some(budget);
        self
    }

    /// Selects the [`Executor`] (default: the simulator).
    pub fn executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// The spec this scenario runs.
    pub fn spec(&self) -> &ProtocolSpec<V, O> {
        &self.spec
    }

    /// The spec with its shared ownership, for fanning out further
    /// scenarios without copying it.
    pub fn spec_shared(&self) -> &Arc<ProtocolSpec<V, O>> {
        &self.spec
    }
}

impl<V> Scenario<V, MaxCondition> {
    /// Shorthand for [`Scenario::new`] over [`ProtocolSpec::flood_set`].
    pub fn flood_set(n: usize, t: usize, k: usize) -> Self {
        Scenario::new(ProtocolSpec::flood_set(n, t, k))
    }

    /// Shorthand for [`Scenario::new`] over
    /// [`ProtocolSpec::flood_set_truncated`].
    pub fn flood_set_truncated(n: usize, t: usize, k: usize, target_round: usize) -> Self {
        Scenario::new(ProtocolSpec::flood_set_truncated(n, t, k, target_round))
    }

    /// Shorthand for [`Scenario::new`] over
    /// [`ProtocolSpec::early_deciding`].
    pub fn early_deciding(n: usize, t: usize, k: usize) -> Self {
        Scenario::new(ProtocolSpec::early_deciding(n, t, k))
    }
}

impl<V: ProposalValue, O: ConditionOracle<V> + Clone> Scenario<V, O> {
    /// Validates the scenario and returns the input plus the effective
    /// adversary (failure-free when none was set — an [`AsyncCrashes`]
    /// schedule on the async executors, an ordered pattern otherwise).
    fn validate(&self) -> Result<(&Arc<InputVector<V>>, Arc<Adversary>), ExperimentError> {
        let n = self.spec.n();
        let t = self.spec.t();
        if self.spec.k() == 0 {
            return Err(ExperimentError::ZeroK);
        }
        let input = self.input.as_ref().ok_or(ExperimentError::MissingInput)?;
        if input.len() != n {
            return Err(ExperimentError::InputSizeMismatch {
                expected: n,
                got: input.len(),
            });
        }
        let adversary = self.adversary.clone().unwrap_or_else(|| {
            Arc::new(if self.executor.is_async() {
                Adversary::Async(AsyncCrashes::none())
            } else {
                Adversary::Ordered(FailurePattern::none(n))
            })
        });
        // Async schedules are exempt from the crash budget on purpose:
        // over-budget schedules probe the impossibility frontier, and the
        // engine reports stranded processes honestly as `Unfinished` —
        // but the victims must exist, or the engine would silently skip
        // them and a mistyped schedule would test the failure-free case.
        if let Adversary::Async(crashes) = &*adversary {
            if let Some(victim) = crashes.victims().find(|v| v.index() >= n) {
                return Err(ExperimentError::UnknownCrashVictim { victim, n });
            }
        } else if adversary.fault_count() > t {
            return Err(ExperimentError::TooManyCrashes {
                t,
                scheduled: adversary.fault_count(),
            });
        }
        match &self.spec.kind {
            SpecKind::ConditionBased { config, oracle }
            | SpecKind::EarlyConditionBased { config, oracle } => {
                let expected = config.legality();
                let got = oracle.params();
                if expected != got {
                    return Err(ExperimentError::OracleMismatch { expected, got });
                }
            }
            SpecKind::AsyncSetAgreement { params, oracle, .. } => {
                let got = oracle.params();
                if *params != got {
                    return Err(ExperimentError::OracleMismatch {
                        expected: *params,
                        got,
                    });
                }
            }
            _ => {}
        }
        Ok((input, adversary))
    }

    /// The round the paper's formulas predict for this scenario — the
    /// bound [`Report::within_predicted_rounds`] is checked against.
    ///
    /// Ordered adversaries get the sharp case analysis (Lemmas 1–2,
    /// Theorem 10 and the adaptive Section 8 bound); unordered ones get
    /// the only bound that survives the model ablation, `⌊t/k⌋ + 1` — a
    /// flood-set's bound is adversary-independent (its explicit target
    /// round when truncated), so it is handled once, up front.
    fn predicted_rounds(&self, input: &InputVector<V>, adversary: &Adversary) -> usize {
        if let SpecKind::FloodSet {
            t, k, target_round, ..
        } = &self.spec.kind
        {
            return target_round.unwrap_or(t / k + 1);
        }
        let t = self.spec.t();
        let k = self.spec.k();
        let Some(pattern) = adversary.as_ordered() else {
            return (t / k + 1).max(2);
        };
        match &self.spec.kind {
            SpecKind::ConditionBased { config, oracle } => {
                figure_2_bound(config, oracle, input, pattern)
            }
            SpecKind::EarlyConditionBased { config, oracle } => {
                let adaptive = (pattern.fault_count() / config.k() + 2).max(2);
                figure_2_bound(config, oracle, input, pattern).min(adaptive)
            }
            SpecKind::EarlyDeciding { t, k, .. } => (pattern.fault_count() / k + 2).min(t / k + 1),
            SpecKind::FloodSet { .. } => unreachable!("handled before the adversary split"),
            SpecKind::AsyncSetAgreement { .. } => {
                unreachable!("async specs are rejected before round-based dispatch")
            }
        }
    }

    /// Rejects an async spec on a round-based executor (the guard behind
    /// the `unreachable!` arms of the round-based dispatch).
    fn reject_async_spec(&self, executor: Executor) -> Result<(), ExperimentError> {
        if matches!(self.spec.kind, SpecKind::AsyncSetAgreement { .. }) {
            return Err(ExperimentError::UnsupportedProtocol {
                executor,
                protocol: self.spec.protocol(),
            });
        }
        Ok(())
    }

    /// Runs the scenario on the deterministic simulator regardless of
    /// the configured executor.
    ///
    /// Unlike [`Scenario::run`] this needs no `Send + 'static` bounds,
    /// so it accepts oracles that cannot cross threads (e.g. an
    /// `ExplicitOracle` over a borrowing recognizing function) — the
    /// same capability the deprecated `run_*` helpers had.
    ///
    /// # Errors
    ///
    /// As [`Scenario::run`], minus the executor-specific failures.
    pub fn run_simulated(&self) -> Result<Report<V>, ExperimentError> {
        self.reject_async_spec(Executor::Simulator)?;
        let (input, adversary) = self.validate()?;
        let predicted = self.predicted_rounds(input, &adversary);
        let limit = self
            .round_limit
            .unwrap_or_else(|| self.spec.default_round_limit());
        let trace = dispatch_spec!(self.spec, input, |procs| run_sim(procs, &adversary, limit))?;
        Ok(Report::new(
            trace,
            Arc::clone(input),
            self.spec.k(),
            predicted,
            self.spec.protocol(),
            Executor::Simulator,
        ))
    }

    /// Runs the scenario on one of the asynchronous runtimes.
    ///
    /// Like [`Scenario::run_simulated`] this needs no `Send + 'static`
    /// bounds. Supported specs: [`ProtocolSpec::async_set_agreement`]
    /// (the native Section 4 experiment) and
    /// [`ProtocolSpec::condition_based`] (the same condition rendered in
    /// the asynchronous model with `x = t − d` and agreement degree ℓ).
    /// The [`Report`]'s agreement degree is ℓ — the guarantee the
    /// asynchronous algorithm actually offers.
    fn run_on_async(&self, executor: Executor) -> Result<Report<V>, ExperimentError> {
        let (input, adversary) = self.validate()?;
        // validate() has checked the oracle's (x, ℓ) against the spec
        // (for condition-based specs, config.legality() = (t − d, ℓ)),
        // so the oracle's own params are the single source of truth here.
        let oracle = match &self.spec.kind {
            SpecKind::AsyncSetAgreement { oracle, .. }
            | SpecKind::ConditionBased { oracle, .. } => oracle,
            _ => {
                return Err(ExperimentError::UnsupportedProtocol {
                    executor,
                    protocol: self.spec.protocol(),
                })
            }
        };
        let (x, ell) = (oracle.params().x(), oracle.params().ell());
        let crashes = match &*adversary {
            Adversary::Async(crashes) => crashes.clone(),
            // Any failure-free pattern means "no crashes" in every model,
            // so shared suite grids can mix sync and async cells — but a
            // live fault plan is not failure-free, and silently ignoring
            // it would report a benign run as a faulty one.
            other
                if other.fault_count() == 0 && other.fault_plan().is_none_or(|p| p.is_benign()) =>
            {
                AsyncCrashes::none()
            }
            _ => return Err(ExperimentError::UnsupportedAdversary { executor }),
        };
        let n = self.spec.n();
        let budget = self.step_budget;
        let async_report = match executor {
            Executor::AsyncSharedMemory { seed } => execute_shared_memory(
                oracle,
                x,
                input,
                &crashes,
                seed,
                budget.unwrap_or_else(|| default_step_budget(n)),
            ),
            Executor::AsyncMessagePassing { seed } => execute_message_passing(
                oracle,
                x,
                input,
                &crashes,
                seed,
                budget.unwrap_or_else(|| default_delivery_budget(n)),
            ),
            _ => unreachable!("run() routes only async executors here"),
        };
        Ok(Report::new_async(
            async_report,
            Arc::clone(input),
            ell,
            self.spec.protocol(),
            executor,
        ))
    }
}

impl<V, O> Scenario<V, O>
where
    V: ProposalValue + Send + Sync + 'static,
    O: ConditionOracle<V> + Clone + Send + 'static,
{
    /// Runs the scenario on the configured executor.
    ///
    /// The `Send + Sync + 'static` bounds exist for the threaded arm
    /// (recipient threads share each broadcast behind an `Arc`); a
    /// non-`Send` oracle can still run on the simulator through
    /// [`Scenario::run_simulated`].
    ///
    /// # Errors
    ///
    /// Validation failures (sizes, crash budget, oracle wiring), engine
    /// failures (round limit), and executor-specific failures (a panicked
    /// process thread, an adversary or protocol the executor cannot
    /// realize).
    pub fn run(&self) -> Result<Report<V>, ExperimentError> {
        match self.executor {
            Executor::Simulator => self.run_simulated(),
            Executor::Threaded => self.run_on_threads(),
            Executor::AsyncSharedMemory { .. } | Executor::AsyncMessagePassing { .. } => {
                self.run_on_async(self.executor)
            }
            Executor::Networked { .. } => self.run_on_network(),
        }
    }

    fn run_on_threads(&self) -> Result<Report<V>, ExperimentError> {
        self.reject_async_spec(Executor::Threaded)?;
        let (input, adversary) = self.validate()?;
        let predicted = self.predicted_rounds(input, &adversary);
        let limit = self
            .round_limit
            .unwrap_or_else(|| self.spec.default_round_limit());
        let Adversary::Ordered(pattern) = &*adversary else {
            return Err(ExperimentError::UnsupportedAdversary {
                executor: Executor::Threaded,
            });
        };
        let trace = dispatch_spec!(self.spec, input, |procs| run_threaded(
            procs, pattern, limit
        )
        .map_err(ExperimentError::from))?;
        Ok(Report::new(
            trace,
            Arc::clone(input),
            self.spec.k(),
            predicted,
            self.spec.protocol(),
            Executor::Threaded,
        ))
    }

    /// The networked arm: real node tasks over the loopback transport,
    /// victims killed mid-round. Deliberately shaped like
    /// [`Scenario::run_on_threads`] — same validation, same adversary
    /// restriction, same report — with `setagree_node::run_loopback` as
    /// the backend, so the tier differs only in *how* processes run.
    fn run_on_network(&self) -> Result<Report<V>, ExperimentError> {
        let executor = self.executor;
        let Executor::Networked { transport } = executor else {
            unreachable!("run() routes only networked executors here")
        };
        self.reject_async_spec(executor)?;
        if transport != TransportKind::Loopback {
            return Err(ExperimentError::UnsupportedTransport { transport });
        }
        let (input, adversary) = self.validate()?;
        let predicted = self.predicted_rounds(input, &adversary);
        let limit = self
            .round_limit
            .unwrap_or_else(|| self.spec.default_round_limit());
        let trace = match &*adversary {
            Adversary::Ordered(pattern) => dispatch_spec!(self.spec, input, |procs| run_loopback(
                procs, pattern, limit
            )
            .map_err(ExperimentError::from))?,
            Adversary::Omission { plan, crashes } => {
                dispatch_spec!(self.spec, input, |procs| run_loopback_faulty(
                    procs, crashes, plan, limit
                )
                .map_err(ExperimentError::from))?
            }
            _ => return Err(ExperimentError::UnsupportedAdversary { executor }),
        };
        Ok(Report::new(
            trace,
            Arc::clone(input),
            self.spec.k(),
            predicted,
            self.spec.protocol(),
            executor,
        ))
    }
}

/// The Figure 2 case analysis shared by the condition-based variants.
fn figure_2_bound<V: ProposalValue, O: ConditionOracle<V>>(
    config: &ConditionBasedConfig,
    oracle: &O,
    input: &InputVector<V>,
    pattern: &FailurePattern,
) -> usize {
    let in_condition = oracle.matches(&input.to_view());
    let t_minus_d = config.t() - config.d();
    if in_condition {
        if pattern.crashes_by_round(1) <= t_minus_d {
            2
        } else {
            config.condition_decision_round()
        }
    } else if pattern.initial_crash_count() > t_minus_d {
        config.condition_decision_round()
    } else {
        config.final_decision_round()
    }
}

fn condition_processes<V: ProposalValue, O: ConditionOracle<V> + Clone>(
    config: &ConditionBasedConfig,
    oracle: &O,
    input: &InputVector<V>,
) -> Vec<ConditionBased<V, O>> {
    ProcessId::all(config.n())
        .map(|id| ConditionBased::new(*config, id, input.get(id).clone(), oracle.clone()))
        .collect()
}

fn early_condition_processes<V: ProposalValue, O: ConditionOracle<V> + Clone>(
    config: &ConditionBasedConfig,
    oracle: &O,
    input: &InputVector<V>,
) -> Vec<EarlyConditionBased<V, O>> {
    ProcessId::all(config.n())
        .map(|id| EarlyConditionBased::new(*config, id, input.get(id).clone(), oracle.clone()))
        .collect()
}

fn early_deciding_processes<V: ProposalValue>(
    n: usize,
    t: usize,
    k: usize,
    input: &InputVector<V>,
) -> Vec<EarlyDeciding<V>> {
    input
        .iter()
        .map(|v| EarlyDeciding::new(n, t, k, v.clone()))
        .collect()
}

fn flood_processes<V: ProposalValue>(
    t: usize,
    k: usize,
    target_round: Option<usize>,
    input: &InputVector<V>,
) -> Vec<FloodSet<V>> {
    input
        .iter()
        .map(|v| match target_round {
            Some(target) => FloodSet::with_target_round(target, v.clone()),
            None => FloodSet::new(t, k, v.clone()),
        })
        .collect()
}

fn run_sim<P: SyncProtocol>(
    processes: Vec<P>,
    adversary: &Adversary,
    limit: usize,
) -> Result<Trace<P::Output>, ExperimentError> {
    match adversary {
        Adversary::Ordered(pattern) => Ok(run_protocol(processes, pattern, limit)?),
        Adversary::Unordered(pattern) => Ok(run_protocol_unordered(processes, pattern, limit)?),
        Adversary::Async(_) => Err(ExperimentError::UnsupportedAdversary {
            executor: Executor::Simulator,
        }),
        Adversary::Omission { plan, crashes } => {
            Ok(run_protocol_faulty(processes, crashes, plan, limit)?)
        }
        Adversary::Network { plan, crashes } => Ok(run_protocol_unordered_faulty(
            processes, crashes, plan, limit,
        )?),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setagree_sync::{CrashSpec, Partition};
    use setagree_types::ProcessSet;

    fn config(n: usize, t: usize, k: usize, d: usize, ell: usize) -> ConditionBasedConfig {
        ConditionBasedConfig::builder(n, t, k)
            .condition_degree(d)
            .ell(ell)
            .build()
            .unwrap()
    }

    #[test]
    fn executor_labels_carry_the_fault_plan_summary() {
        let executor = Executor::Networked {
            transport: TransportKind::Tcp,
        };
        assert_eq!(executor.label_with_faults(None), "networked-tcp");
        let mut side = ProcessSet::empty(5);
        side.insert(ProcessId::new(0));
        side.insert(ProcessId::new(1));
        let plan = FaultPlan::uniform_drop(5, 0xCAFE, 1500).partition(Partition::new(side, 1, 1));
        assert_eq!(
            executor.label_with_faults(Some(&plan)),
            format!("networked-tcp [{}]", plan.summary()),
        );
        assert_eq!(
            executor.label_with_faults(Some(&plan)),
            "networked-tcp [faults 51966:1500 partitions:1]",
        );
    }

    #[test]
    fn condition_based_scenario_checks_out() {
        let cfg = config(6, 3, 2, 2, 1);
        let report = Scenario::condition_based(cfg, MaxCondition::new(cfg.legality()))
            .input(vec![5u32, 5, 1, 2, 5, 5])
            .run()
            .unwrap();
        assert!(report.satisfies_all());
        assert_eq!(report.predicted_rounds(), Some(2));
        assert!(report.within_predicted_rounds());
        assert_eq!(report.protocol(), ProtocolKind::ConditionBased);
        assert_eq!(report.executor(), Executor::Simulator);
    }

    #[test]
    fn both_executors_agree_on_the_trace() {
        let cfg = config(6, 3, 2, 2, 1);
        let mut pattern = FailurePattern::none(6);
        pattern
            .crash(ProcessId::new(5), CrashSpec::new(1, 3))
            .unwrap();
        let scenario = Scenario::condition_based(cfg, MaxCondition::new(cfg.legality()))
            .input(vec![5u32, 5, 1, 2, 5, 5])
            .pattern(pattern);
        let simulated = scenario.run().unwrap();
        let threaded = scenario.executor(Executor::Threaded).run().unwrap();
        assert_eq!(simulated.trace(), threaded.trace());
        assert_eq!(threaded.executor(), Executor::Threaded);
    }

    #[test]
    fn flood_set_and_early_deciding_scenarios() {
        let report = Scenario::flood_set(4, 2, 1)
            .input(vec![3u32, 9, 1, 4])
            .run()
            .unwrap();
        assert!(report.satisfies_all());
        assert_eq!(report.predicted_rounds(), Some(3));
        assert_eq!(report.decided_values(), [9].into_iter().collect());

        let report = Scenario::early_deciding(4, 2, 1)
            .input(vec![3u32, 9, 1, 4])
            .run()
            .unwrap();
        assert!(report.satisfies_all());
        assert_eq!(report.predicted_rounds(), Some(2));
        assert!(report.within_predicted_rounds());
    }

    #[test]
    fn async_set_agreement_scenario_checks_out() {
        let params = LegalityParams::new(1, 1).unwrap();
        let scenario = Scenario::async_set_agreement(4, params, MaxCondition::new(params))
            .input(vec![7u32, 7, 7, 2])
            .pattern(AsyncCrashes::none().crash_after(ProcessId::new(3), 0));
        for seed in 0..10 {
            let report = scenario
                .clone()
                .executor(Executor::AsyncSharedMemory { seed })
                .run()
                .unwrap();
            assert!(report.satisfies_all(), "seed {seed}: {report}");
            assert_eq!(report.protocol(), ProtocolKind::AsyncSetAgreement);
            assert_eq!(report.executor(), Executor::AsyncSharedMemory { seed });
            assert_eq!(report.k(), 1);
            assert_eq!(report.async_report().unwrap().crashed_count(), 1);

            let mp = scenario
                .clone()
                .executor(Executor::AsyncMessagePassing { seed })
                .run()
                .unwrap();
            assert!(mp.satisfies_all(), "seed {seed}: {mp}");
        }
    }

    #[test]
    fn condition_based_specs_run_on_async_executors() {
        // (n, t, k, d, ℓ) = (6, 3, 2, 2, 1): asynchronously the same
        // condition solves ℓ = 1-set agreement despite x = t − d = 1
        // crashes. The report's agreement degree is ℓ, not the sync k.
        let cfg = config(6, 3, 2, 2, 1);
        let report = Scenario::condition_based(cfg, MaxCondition::new(cfg.legality()))
            .input(vec![5u32, 5, 5, 2, 5, 5])
            .executor(Executor::AsyncSharedMemory { seed: 3 })
            .run()
            .unwrap();
        assert!(report.satisfies_all(), "{report}");
        assert_eq!(report.k(), 1);
        assert_eq!(report.protocol(), ProtocolKind::ConditionBased);
        assert!(report.trace().is_none() && report.async_report().is_some());
    }

    #[test]
    fn async_specs_are_rejected_on_round_executors() {
        let params = LegalityParams::new(1, 1).unwrap();
        let scenario = Scenario::async_set_agreement(4, params, MaxCondition::new(params))
            .input(vec![7u32, 7, 7, 2]);
        for executor in [Executor::Simulator, Executor::Threaded] {
            let err = scenario.clone().executor(executor).run().unwrap_err();
            assert_eq!(
                err,
                ExperimentError::UnsupportedProtocol {
                    executor,
                    protocol: ProtocolKind::AsyncSetAgreement
                }
            );
        }
    }

    #[test]
    fn round_protocols_are_rejected_on_async_executors() {
        let executor = Executor::AsyncMessagePassing { seed: 0 };
        let err = Scenario::flood_set(4, 2, 1)
            .input(vec![3u32, 9, 1, 4])
            .executor(executor)
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            ExperimentError::UnsupportedProtocol {
                executor,
                protocol: ProtocolKind::FloodSet
            }
        );
        assert!(err.to_string().contains("cannot run"));
    }

    #[test]
    fn crashing_sync_patterns_are_rejected_on_async_executors() {
        let params = LegalityParams::new(1, 1).unwrap();
        let executor = Executor::AsyncSharedMemory { seed: 0 };
        // Failure-free ordered patterns are accepted (shared suite grids)…
        let ok = Scenario::async_set_agreement(4, params, MaxCondition::new(params))
            .input(vec![7u32, 7, 7, 2])
            .pattern(FailurePattern::none(4))
            .executor(executor)
            .run();
        assert!(ok.is_ok());
        // …but a synchronous pattern that actually crashes is not
        // expressible in the asynchronous model.
        let mut pattern = FailurePattern::none(4);
        pattern
            .crash(ProcessId::new(1), CrashSpec::new(1, 2))
            .unwrap();
        let err = Scenario::async_set_agreement(4, params, MaxCondition::new(params))
            .input(vec![7u32, 7, 7, 2])
            .pattern(pattern)
            .executor(executor)
            .run()
            .unwrap_err();
        assert_eq!(err, ExperimentError::UnsupportedAdversary { executor });
    }

    #[test]
    fn async_oracle_params_are_validated() {
        let params = LegalityParams::new(2, 1).unwrap();
        let wrong = MaxCondition::new(LegalityParams::new(1, 1).unwrap());
        let err = Scenario::async_set_agreement(5, params, wrong)
            .input(vec![7u32, 7, 7, 7, 2])
            .executor(Executor::AsyncSharedMemory { seed: 0 })
            .run()
            .unwrap_err();
        assert!(matches!(err, ExperimentError::OracleMismatch { .. }));
    }

    #[test]
    fn async_over_budget_schedules_probe_the_frontier() {
        // 3 initial crashes against x = 1: legal to schedule — the report
        // shows the stranded survivor instead of a validation error.
        let params = LegalityParams::new(1, 1).unwrap();
        let crashes = AsyncCrashes::none()
            .crash_after(ProcessId::new(0), 0)
            .crash_after(ProcessId::new(1), 0)
            .crash_after(ProcessId::new(2), 0);
        let report = Scenario::async_set_agreement(4, params, MaxCondition::new(params))
            .input(vec![5u32, 5, 1, 2])
            .pattern(crashes)
            .executor(Executor::AsyncSharedMemory { seed: 7 })
            .run()
            .unwrap();
        assert_eq!(report.async_report().unwrap().unfinished_count(), 1);
        assert!(!report.within_predicted_rounds(), "budget cut the run off");
    }

    #[test]
    fn step_budget_override_bounds_async_runs_and_round_limit_does_not() {
        // A 1-step budget cannot finish anything: everyone unfinished.
        let params = LegalityParams::new(1, 1).unwrap();
        let scenario = Scenario::async_set_agreement(4, params, MaxCondition::new(params))
            .input(vec![7u32, 7, 7, 2])
            .executor(Executor::AsyncSharedMemory { seed: 7 });
        let report = scenario.clone().step_budget(1).run().unwrap();
        assert_eq!(report.async_report().unwrap().unfinished_count(), 4);
        assert_eq!(report.total_steps(), Some(1));
        // round_limit measures rounds, not steps: a mixed suite's sync
        // round limit must not strangle the async cells.
        let report = scenario.round_limit(1).run().unwrap();
        assert!(report.satisfies_all(), "{report}");
    }

    #[test]
    fn async_crash_victims_must_exist() {
        let params = LegalityParams::new(1, 1).unwrap();
        let err = Scenario::async_set_agreement(4, params, MaxCondition::new(params))
            .input(vec![7u32, 7, 7, 2])
            .pattern(AsyncCrashes::none().crash_after(ProcessId::new(7), 0))
            .executor(Executor::AsyncSharedMemory { seed: 0 })
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            ExperimentError::UnknownCrashVictim {
                victim: ProcessId::new(7),
                n: 4
            }
        );
        assert!(err.to_string().contains("only 4 processes"));
    }

    #[test]
    fn truncated_flood_set_reports_the_violation() {
        // The chain adversary defeats a t-round flood-set (t + 1 is the
        // consensus bound) — the Report shows the split honestly.
        let n = 5;
        let t = 3;
        let inputs: Vec<u32> = (0..n).map(|i| if i == 0 { 9 } else { 1 }).collect();
        let report = Scenario::flood_set_truncated(n, t, 1, t)
            .input(inputs)
            .pattern(FailurePattern::chain(n, t))
            .run()
            .unwrap();
        assert!(
            !report.satisfies_agreement(),
            "t rounds must split under the chain"
        );
    }

    #[test]
    fn missing_input_is_reported() {
        let err = Scenario::<u32>::flood_set(4, 2, 1).run().unwrap_err();
        assert_eq!(err, ExperimentError::MissingInput);
    }

    #[test]
    fn input_size_is_validated() {
        let cfg = config(6, 3, 2, 2, 1);
        let err = Scenario::condition_based(cfg, MaxCondition::new(cfg.legality()))
            .input(vec![1u32, 2])
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            ExperimentError::InputSizeMismatch {
                expected: 6,
                got: 2
            }
        );
    }

    #[test]
    fn crash_budget_is_validated() {
        let pattern =
            FailurePattern::initial(4, [ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)])
                .unwrap();
        let err = Scenario::flood_set(4, 2, 1)
            .input(vec![1u32, 2, 3, 4])
            .pattern(pattern)
            .run()
            .unwrap_err();
        assert_eq!(err, ExperimentError::TooManyCrashes { t: 2, scheduled: 3 });
    }

    #[test]
    fn oracle_params_are_validated() {
        let cfg = config(6, 3, 2, 2, 1); // requires (x, ℓ) = (1, 1)
        let wrong = MaxCondition::new(LegalityParams::new(2, 1).unwrap());
        let err = Scenario::condition_based(cfg, wrong)
            .input(vec![5u32, 5, 1, 2, 5, 5])
            .run()
            .unwrap_err();
        assert!(matches!(err, ExperimentError::OracleMismatch { .. }));
        assert!(err.to_string().contains("requires"));
    }

    #[test]
    fn unordered_adversary_runs_on_the_simulator_only() {
        let mut delivered = ProcessSet::empty(4);
        delivered.insert(ProcessId::new(2));
        let mut pattern = UnorderedFailurePattern::none(4);
        pattern
            .crash(
                ProcessId::new(0),
                setagree_sync::SubsetCrash::new(1, delivered),
            )
            .unwrap();

        let scenario = Scenario::flood_set(4, 2, 1)
            .input(vec![3u32, 9, 1, 4])
            .pattern(pattern);
        let report = scenario.run().unwrap();
        assert!(report.satisfies_termination());

        let err = scenario.executor(Executor::Threaded).run().unwrap_err();
        assert_eq!(
            err,
            ExperimentError::UnsupportedAdversary {
                executor: Executor::Threaded
            }
        );
    }

    #[test]
    fn zero_k_is_rejected_not_a_panic() {
        let err = Scenario::flood_set(4, 2, 0)
            .input(vec![1u32, 2, 3, 4])
            .run()
            .unwrap_err();
        assert_eq!(err, ExperimentError::ZeroK);
        let err = Scenario::early_deciding(4, 2, 0)
            .input(vec![1u32, 2, 3, 4])
            .run()
            .unwrap_err();
        assert_eq!(err, ExperimentError::ZeroK);
    }

    #[test]
    fn round_limit_override_is_honoured() {
        let err = Scenario::flood_set(4, 2, 1)
            .input(vec![3u32, 9, 1, 4])
            .round_limit(1)
            .run()
            .unwrap_err();
        assert_eq!(err, ExperimentError::RoundLimitExceeded { limit: 1 });
    }

    #[test]
    fn error_conversions_and_display() {
        let e: ExperimentError = EngineError::RoundLimitExceeded { limit: 5 }.into();
        assert_eq!(e, ExperimentError::RoundLimitExceeded { limit: 5 });
        let e: ExperimentError = ThreadedError::ProcessPanicked {
            process: ProcessId::new(1),
        }
        .into();
        assert!(e.to_string().contains("panicked"));
        assert!(ExperimentError::MissingInput.to_string().contains("input"));
        let timeout = ExperimentError::RoundTimeout {
            round: 3,
            peers: vec![ProcessId::new(1), ProcessId::new(4)],
        };
        assert_eq!(
            timeout.to_string(),
            "round 3 timed out waiting on unconfirmed peers: p2, p5"
        );
    }

    #[test]
    fn omission_adversary_runs_on_simulator_and_networked_loopback() {
        let plan = FaultPlan::new(4, 0xC0FFEE)
            .drop_rate(1500)
            .reorder_rate(3000);
        let mut crashes = FailurePattern::none(4);
        crashes
            .crash(ProcessId::new(3), CrashSpec::new(1, 1))
            .unwrap();
        let scenario = Scenario::flood_set(4, 2, 1)
            .input(vec![3u32, 9, 1, 4])
            .pattern(Adversary::Omission {
                plan: plan.clone(),
                crashes,
            })
            .round_limit(20);
        let simulated = scenario.run().unwrap();
        let networked = scenario
            .clone()
            .executor(Executor::Networked {
                transport: TransportKind::Loopback,
            })
            .run()
            .unwrap();
        assert_eq!(simulated.trace(), networked.trace());
        // Sharp Figure-2-style bounds assume reliable links, so omission
        // reports carry only the generic fallback prediction.
        assert_eq!(simulated.predicted_rounds(), Some(3));

        let err = scenario.executor(Executor::Threaded).run().unwrap_err();
        assert_eq!(
            err,
            ExperimentError::UnsupportedAdversary {
                executor: Executor::Threaded
            }
        );
    }

    #[test]
    fn benign_omission_plan_reproduces_the_crash_only_report() {
        let mut crashes = FailurePattern::none(4);
        crashes
            .crash(ProcessId::new(0), CrashSpec::new(1, 2))
            .unwrap();
        let base = Scenario::flood_set(4, 2, 1).input(vec![3u32, 9, 1, 4]);
        let plain = base.clone().pattern(crashes.clone()).run().unwrap();
        let benign = base
            .pattern(Adversary::Omission {
                plan: FaultPlan::none(4),
                crashes,
            })
            .run()
            .unwrap();
        assert_eq!(plain.trace(), benign.trace());
    }

    #[test]
    fn network_adversary_composes_unordered_crashes_with_link_faults() {
        let mut delivered = ProcessSet::empty(4);
        delivered.insert(ProcessId::new(2));
        let mut crashes = UnorderedFailurePattern::none(4);
        crashes
            .crash(
                ProcessId::new(0),
                setagree_sync::SubsetCrash::new(1, delivered),
            )
            .unwrap();
        let plan = FaultPlan::new(4, 7).drop_rate(2000).duplicate_rate(1000);
        let scenario = Scenario::flood_set(4, 2, 1)
            .input(vec![3u32, 9, 1, 4])
            .pattern(Adversary::Network { plan, crashes })
            .round_limit(20);
        let first = scenario.run().unwrap();
        let second = scenario.run().unwrap();
        assert_eq!(first.trace(), second.trace());
        assert!(first.satisfies_termination());
    }

    #[test]
    fn live_fault_plans_do_not_masquerade_as_failure_free_on_async_executors() {
        let cfg = config(6, 3, 2, 2, 1);
        let scenario = Scenario::condition_based(cfg, MaxCondition::new(cfg.legality()))
            .input(vec![5u32, 5, 1, 2, 5, 5])
            .executor(Executor::AsyncSharedMemory { seed: 1 });
        let benign = scenario
            .clone()
            .pattern(Adversary::Omission {
                plan: FaultPlan::none(6),
                crashes: FailurePattern::none(6),
            })
            .run()
            .unwrap();
        assert!(benign.satisfies_all());
        let err = scenario
            .pattern(Adversary::Omission {
                plan: FaultPlan::new(6, 3).drop_rate(1000),
                crashes: FailurePattern::none(6),
            })
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            ExperimentError::UnsupportedAdversary {
                executor: Executor::AsyncSharedMemory { seed: 1 }
            }
        );
    }
}
