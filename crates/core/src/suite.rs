//! Batched experiments: a [`ScenarioSuite`] expands the cartesian grid
//! *executors × specs × inputs × patterns* (plus any explicit
//! [`cases`](ScenarioSuite::cases)) and executes every cell across a
//! worker pool.
//!
//! Three ways to consume a suite:
//!
//! * [`ScenarioSuite::run`] — collect everything into one
//!   [`SuiteReport`] (the original batch interface, now a thin adapter
//!   over the streaming engine);
//! * [`ScenarioSuite::run_streaming`] — a callback receives each
//!   [`SuiteCase`] in deterministic grid order *as it completes*, so
//!   table binaries print rows while later cells are still running and
//!   memory stays bounded on huge sweeps;
//! * [`ScenarioSuite::stream`] — the underlying [`SuiteRun`] iterator,
//!   when you want to drive the consumption yourself.
//!
//! All three emit the identical cases in the identical order (pattern
//! fastest, then input, then spec, then executor, then explicit cases),
//! regardless of how the worker pool schedules them — a bounded reorder
//! buffer puts completions back into grid order, so a suite run stays
//! replayable data like a single [`Scenario`] run.
//!
//! Specs, inputs and patterns are held behind [`Arc`]s and shared with
//! the workers: expanding a thousand-cell grid out of one
//! `ExplicitOracle` spec copies the oracle zero times.
//!
//! Executors are a grid dimension like any other: add several (including
//! the asynchronous ones — seeds and all) and every spec × input ×
//! pattern combination runs on each. A grid can therefore mix
//! synchronous and asynchronous cells; use failure-free or
//! [`Adversary::Async`]-compatible patterns for the cells shared across
//! models (a crashing synchronous pattern on an async executor is a
//! positioned per-case error, not a panic). When a grid would cross
//! incompatible dimensions — say round-based specs × async executors —
//! use explicit [`cases`](ScenarioSuite::cases) instead of letting the
//! product manufacture deliberate `UnsupportedProtocol` cells.
//!
//! Attach a [`SuiteCache`] with [`ScenarioSuite::cache`] and warm cells
//! are served without re-execution; see [`crate::cache`] for the keying
//! and persistence story.
//!
//! ```
//! use setagree_conditions::MaxCondition;
//! use setagree_core::{ConditionBasedConfig, ProtocolSpec, ScenarioSuite};
//! use setagree_sync::FailurePattern;
//!
//! let config = ConditionBasedConfig::builder(6, 3, 2)
//!     .condition_degree(2)
//!     .ell(1)
//!     .build()?;
//! let suite = ScenarioSuite::new()
//!     .spec(ProtocolSpec::condition_based(config, MaxCondition::new(config.legality())))
//!     .spec(ProtocolSpec::flood_set(6, 3, 2))
//!     .input(vec![5u32, 5, 1, 2, 5, 5])
//!     .pattern(FailurePattern::none(6))
//!     .pattern(FailurePattern::staircase(6, 3, 2));
//! let outcome = suite.run();
//! assert_eq!(outcome.len(), 4); // 2 specs × 1 input × 2 patterns
//! assert!(outcome.all_satisfy_properties());
//!
//! // The same grid, streamed: cases arrive in the same order, as they
//! // complete, without buffering the whole grid.
//! let mut rows = 0;
//! suite.run_streaming(|case| {
//!     assert!(case.report().is_some());
//!     rows += 1;
//! });
//! assert_eq!(rows, 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::hash::Hash;
use std::num::NonZeroUsize;
use std::panic;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Instant;

use setagree_conditions::{ConditionOracle, MaxCondition};
use setagree_types::{InputVector, ProposalValue};

use crate::cache::{stable_pair, CacheKey, SuiteCache};
use crate::experiment::{Adversary, Executor, ExperimentError, ProtocolSpec, Scenario};
use crate::report::Report;

/// The coordinates of one cell: indices into the suite's component
/// lists (`None` pattern = implicit failure-free, `None` executor =
/// implicit default simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CellCoords {
    spec: usize,
    input: usize,
    pattern: Option<usize>,
    executor: Option<usize>,
}

/// One explicit (spec, input, pattern, executor) cell for
/// [`ScenarioSuite::cases`] — the escape hatch for heterogeneous sweeps
/// the cartesian product cannot express without deliberate error cells.
///
/// Build from tuples (`(spec, input, executor)` or
/// `(spec, input, pattern, executor)`), or with [`CaseSpec::new`] /
/// [`CaseSpec::shared`] plus the builder methods. `Arc`-shared
/// components are deduplicated inside the suite, so a thousand-case
/// seed sweep over one spec stores the spec once.
pub struct CaseSpec<V, O = MaxCondition> {
    spec: Arc<ProtocolSpec<V, O>>,
    input: Arc<InputVector<V>>,
    pattern: Option<Arc<Adversary>>,
    executor: Executor,
}

impl<V: fmt::Debug, O> fmt::Debug for CaseSpec<V, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CaseSpec")
            .field("spec", &self.spec)
            .field("input", &self.input)
            .field("pattern", &self.pattern)
            .field("executor", &self.executor)
            .finish()
    }
}

impl<V, O> CaseSpec<V, O> {
    /// A failure-free case of `spec` on `input` under `executor`.
    pub fn new(
        spec: ProtocolSpec<V, O>,
        input: impl Into<InputVector<V>>,
        executor: Executor,
    ) -> Self {
        CaseSpec::shared(Arc::new(spec), Arc::new(input.into()), executor)
    }

    /// As [`CaseSpec::new`], from shared components (no copies; the
    /// suite dedups `Arc`-identical components).
    pub fn shared(
        spec: Arc<ProtocolSpec<V, O>>,
        input: Arc<InputVector<V>>,
        executor: Executor,
    ) -> Self {
        CaseSpec {
            spec,
            input,
            pattern: None,
            executor,
        }
    }

    /// Sets the case's adversary.
    pub fn pattern(mut self, pattern: impl Into<Adversary>) -> Self {
        self.pattern = Some(Arc::new(pattern.into()));
        self
    }

    /// Sets an `Arc`-shared adversary.
    pub fn pattern_shared(mut self, pattern: Arc<Adversary>) -> Self {
        self.pattern = Some(pattern);
        self
    }
}

impl<V, O, I: Into<InputVector<V>>> From<(ProtocolSpec<V, O>, I, Executor)> for CaseSpec<V, O> {
    fn from((spec, input, executor): (ProtocolSpec<V, O>, I, Executor)) -> Self {
        CaseSpec::new(spec, input, executor)
    }
}

impl<V, O, I: Into<InputVector<V>>, A: Into<Adversary>> From<(ProtocolSpec<V, O>, I, A, Executor)>
    for CaseSpec<V, O>
{
    fn from((spec, input, pattern, executor): (ProtocolSpec<V, O>, I, A, Executor)) -> Self {
        CaseSpec::new(spec, input, executor).pattern(pattern)
    }
}

impl<V, O> From<(Arc<ProtocolSpec<V, O>>, Arc<InputVector<V>>, Executor)> for CaseSpec<V, O> {
    fn from(
        (spec, input, executor): (Arc<ProtocolSpec<V, O>>, Arc<InputVector<V>>, Executor),
    ) -> Self {
        CaseSpec::shared(spec, input, executor)
    }
}

impl<V, O, A: Into<Adversary>> From<(Arc<ProtocolSpec<V, O>>, Arc<InputVector<V>>, A, Executor)>
    for CaseSpec<V, O>
{
    fn from(
        (spec, input, pattern, executor): (
            Arc<ProtocolSpec<V, O>>,
            Arc<InputVector<V>>,
            A,
            Executor,
        ),
    ) -> Self {
        CaseSpec::shared(spec, input, executor).pattern(pattern)
    }
}

/// A shareable hasher of one grid component into a key-pair half.
type ComponentHasher<T> = Arc<dyn Fn(&T) -> (u64, u64) + Send + Sync>;

/// The cache attachment: the cache itself plus the component hashers,
/// constructed inside [`ScenarioSuite::cache`] where the `Hash` bounds
/// hold so the rest of the suite stays bound-free.
struct CacheBinding<V: Ord, O> {
    cache: Arc<SuiteCache<V>>,
    hash_spec: ComponentHasher<ProtocolSpec<V, O>>,
    hash_input: ComponentHasher<InputVector<V>>,
}

impl<V: Ord, O> Clone for CacheBinding<V, O> {
    fn clone(&self) -> Self {
        CacheBinding {
            cache: Arc::clone(&self.cache),
            hash_spec: Arc::clone(&self.hash_spec),
            hash_input: Arc::clone(&self.hash_input),
        }
    }
}

/// A cartesian batch of scenarios over one or more executors, plus any
/// explicit cases.
pub struct ScenarioSuite<V: Ord, O = MaxCondition> {
    specs: Vec<Arc<ProtocolSpec<V, O>>>,
    inputs: Vec<Arc<InputVector<V>>>,
    patterns: Vec<Arc<Adversary>>,
    executors: Vec<Executor>,
    // The component indices participating in the cartesian grid, in
    // insertion order. Explicit cases reference components outside
    // these lists, so the product never crosses them.
    grid_specs: Vec<usize>,
    grid_inputs: Vec<usize>,
    grid_patterns: Vec<usize>,
    grid_executors: Vec<usize>,
    explicit: Vec<CellCoords>,
    round_limit: Option<usize>,
    step_budget: Option<u64>,
    threads: Option<usize>,
    cache: Option<CacheBinding<V, O>>,
}

impl<V: Ord, O> Default for ScenarioSuite<V, O> {
    fn default() -> Self {
        ScenarioSuite {
            specs: Vec::new(),
            inputs: Vec::new(),
            patterns: Vec::new(),
            executors: Vec::new(),
            grid_specs: Vec::new(),
            grid_inputs: Vec::new(),
            grid_patterns: Vec::new(),
            grid_executors: Vec::new(),
            explicit: Vec::new(),
            round_limit: None,
            step_budget: None,
            threads: None,
            cache: None,
        }
    }
}

impl<V: Ord + fmt::Debug, O> fmt::Debug for ScenarioSuite<V, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScenarioSuite")
            .field("specs", &self.specs)
            .field("inputs", &self.inputs.len())
            .field("patterns", &self.patterns.len())
            .field("executors", &self.executors)
            .field("explicit_cases", &self.explicit.len())
            .field("cached", &self.cache.is_some())
            .finish()
    }
}

impl<V: Ord, O> ScenarioSuite<V, O> {
    /// An empty suite (simulator executor, parallel execution).
    pub fn new() -> Self {
        Self::default()
    }

    fn intern_spec(&mut self, spec: Arc<ProtocolSpec<V, O>>) -> usize {
        match self.specs.iter().position(|s| Arc::ptr_eq(s, &spec)) {
            Some(i) => i,
            None => {
                self.specs.push(spec);
                self.specs.len() - 1
            }
        }
    }

    fn intern_input(&mut self, input: Arc<InputVector<V>>) -> usize {
        match self.inputs.iter().position(|i| Arc::ptr_eq(i, &input)) {
            Some(i) => i,
            None => {
                self.inputs.push(input);
                self.inputs.len() - 1
            }
        }
    }

    fn intern_pattern(&mut self, pattern: Arc<Adversary>) -> usize {
        match self.patterns.iter().position(|p| Arc::ptr_eq(p, &pattern)) {
            Some(i) => i,
            None => {
                self.patterns.push(pattern);
                self.patterns.len() - 1
            }
        }
    }

    fn intern_executor(&mut self, executor: Executor) -> usize {
        match self.executors.iter().position(|e| *e == executor) {
            Some(i) => i,
            None => {
                self.executors.push(executor);
                self.executors.len() - 1
            }
        }
    }

    /// Adds one protocol spec to the grid.
    pub fn spec(mut self, spec: ProtocolSpec<V, O>) -> Self {
        self.specs.push(Arc::new(spec));
        self.grid_specs.push(self.specs.len() - 1);
        self
    }

    /// Adds an `Arc`-shared spec to the grid without copying it.
    pub fn spec_shared(mut self, spec: Arc<ProtocolSpec<V, O>>) -> Self {
        let idx = self.intern_spec(spec);
        self.grid_specs.push(idx);
        self
    }

    /// Adds several protocol specs.
    pub fn specs(mut self, specs: impl IntoIterator<Item = ProtocolSpec<V, O>>) -> Self {
        for spec in specs {
            self = self.spec(spec);
        }
        self
    }

    /// Adds one input vector to the grid.
    pub fn input(mut self, input: impl Into<InputVector<V>>) -> Self {
        self.inputs.push(Arc::new(input.into()));
        self.grid_inputs.push(self.inputs.len() - 1);
        self
    }

    /// Adds an `Arc`-shared input vector to the grid.
    pub fn input_shared(mut self, input: Arc<InputVector<V>>) -> Self {
        let idx = self.intern_input(input);
        self.grid_inputs.push(idx);
        self
    }

    /// Adds several input vectors.
    pub fn inputs(mut self, inputs: impl IntoIterator<Item = InputVector<V>>) -> Self {
        for input in inputs {
            self = self.input(input);
        }
        self
    }

    /// Adds one adversary to the grid. When a suite has no patterns at
    /// all, every spec runs failure-free.
    pub fn pattern(mut self, pattern: impl Into<Adversary>) -> Self {
        self.patterns.push(Arc::new(pattern.into()));
        self.grid_patterns.push(self.patterns.len() - 1);
        self
    }

    /// Adds an `Arc`-shared adversary to the grid.
    pub fn pattern_shared(mut self, pattern: Arc<Adversary>) -> Self {
        let idx = self.intern_pattern(pattern);
        self.grid_patterns.push(idx);
        self
    }

    /// Adds several adversaries.
    pub fn patterns(mut self, patterns: impl IntoIterator<Item = Adversary>) -> Self {
        for pattern in patterns {
            self = self.pattern(pattern);
        }
        self
    }

    /// Adds one executor to the grid. When a suite has no executors at
    /// all, every case runs on the default simulator; adding several
    /// expands the grid across them (the executors are the
    /// slowest-varying dimension), which is how a grid mixes synchronous
    /// and asynchronous cells — or sweeps adversary seeds, since the
    /// async executors carry their seed.
    pub fn executor(mut self, executor: Executor) -> Self {
        self.executors.push(executor);
        self.grid_executors.push(self.executors.len() - 1);
        self
    }

    /// Adds several executors.
    pub fn executors(mut self, executors: impl IntoIterator<Item = Executor>) -> Self {
        for executor in executors {
            self = self.executor(executor);
        }
        self
    }

    /// Appends one explicit case — see [`ScenarioSuite::cases`].
    pub fn case(mut self, case: impl Into<CaseSpec<V, O>>) -> Self {
        let case = case.into();
        let coords = CellCoords {
            spec: self.intern_spec(case.spec),
            input: self.intern_input(case.input),
            pattern: case.pattern.map(|p| self.intern_pattern(p)),
            executor: Some(self.intern_executor(case.executor)),
        };
        self.explicit.push(coords);
        self
    }

    /// Appends explicit (spec, input, \[pattern,\] executor) cases to the
    /// suite — the escape hatch for heterogeneous sweeps. The cartesian
    /// product crosses *every* spec with *every* executor, so a grid
    /// mixing round-based specs with async executors manufactures
    /// deliberate `UnsupportedProtocol` error cells; explicit cases pair
    /// each spec with exactly the executors (and adversaries) that can
    /// run it. Explicit cases run after the grid cells, in insertion
    /// order, and coexist with grid dimensions in one suite.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use setagree_conditions::{LegalityParams, MaxCondition};
    /// use setagree_core::{CaseSpec, Executor, ProtocolSpec, ScenarioSuite};
    ///
    /// let params = LegalityParams::new(1, 1)?;
    /// let async_spec = Arc::new(ProtocolSpec::async_set_agreement(
    ///     4,
    ///     params,
    ///     MaxCondition::new(params),
    /// ));
    /// let input = Arc::new(vec![7u32, 7, 7, 2].into());
    /// // A flood-set on the simulator next to an async seed sweep:
    /// // inexpressible as a product without error cells.
    /// let outcome = ScenarioSuite::new()
    ///     .case((
    ///         ProtocolSpec::flood_set(4, 2, 1),
    ///         vec![3u32, 9, 1, 4],
    ///         Executor::Simulator,
    ///     ))
    ///     .cases((0..4).map(|seed| {
    ///         CaseSpec::shared(
    ///             Arc::clone(&async_spec),
    ///             Arc::clone(&input),
    ///             Executor::AsyncSharedMemory { seed },
    ///         )
    ///     }))
    ///     .run();
    /// assert_eq!(outcome.len(), 5);
    /// assert!(outcome.all_ok(), "no UnsupportedProtocol cells");
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn cases<I>(mut self, cases: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<CaseSpec<V, O>>,
    {
        for case in cases {
            self = self.case(case);
        }
        self
    }

    /// Overrides the engine round limit for every round-based case
    /// (asynchronous cells keep their step budgets — the units differ;
    /// see [`ScenarioSuite::step_budget`]).
    pub fn round_limit(mut self, limit: usize) -> Self {
        self.round_limit = Some(limit);
        self
    }

    /// Overrides the global step/delivery budget for every asynchronous
    /// case (round-based cells keep their round limits).
    pub fn step_budget(mut self, budget: u64) -> Self {
        self.step_budget = Some(budget);
        self
    }

    /// Caps the suite's worker threads (`1` forces sequential execution;
    /// default: the machine's available parallelism). Note that when any
    /// grid executor is `Threaded`, the default worker count is divided
    /// by the largest system size so concurrent threaded cells cannot
    /// multiply OS threads past the machine — which also serializes the
    /// *other* cells of a mixed grid; set an explicit `.threads(...)`
    /// when a mostly-async grid carries a token threaded cell.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// The number of cases the suite expands to (grid product plus
    /// explicit cases).
    pub fn len(&self) -> usize {
        self.grid_len() + self.explicit.len()
    }

    fn grid_len(&self) -> usize {
        self.grid_specs.len()
            * self.grid_inputs.len()
            * self.grid_patterns.len().max(1)
            * self.grid_executors.len().max(1)
    }

    /// Whether the suite expands to no cases.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<V, O> ScenarioSuite<V, O>
where
    V: ProposalValue + Hash,
    O: Hash,
{
    /// Attaches a result cache: cells whose (spec, input, pattern,
    /// executor-including-seed, round-limit/step-budget) coordinates
    /// were already executed under this cache are served from it
    /// without re-running the protocol. The run's [`SuiteReport`] (or
    /// [`SuiteRunStats`]) exposes hit/miss counters; see
    /// [`crate::cache`] for keying and persistence.
    ///
    /// The `Hash` bounds live only here: uncached suites accept value
    /// and oracle types with no `Hash` at all.
    pub fn cache(mut self, cache: &Arc<SuiteCache<V>>) -> Self {
        self.cache = Some(CacheBinding {
            cache: Arc::clone(cache),
            hash_spec: Arc::new(|spec: &ProtocolSpec<V, O>| stable_pair(spec)),
            hash_input: Arc::new(|input: &InputVector<V>| stable_pair(input)),
        });
        self
    }
}

/// Per-run cache counters, shared between the workers and the consumer.
///
/// These stay per-run (table binaries and tests assert exact per-run
/// hit/miss numbers); when `setagree_obs` instrumentation is enabled
/// every increment is *also* mirrored into the process-cumulative
/// registry counters (`suite_cache_hits` / `suite_cache_misses`).
#[derive(Debug, Default)]
struct RunCounters {
    hits: AtomicU64,
    misses: AtomicU64,
}

/// The suite engine's registry handles, created once on first use.
struct SuiteMetrics {
    cell_latency_us: Arc<setagree_obs::Histogram>,
    queue_wait_us: Arc<setagree_obs::Histogram>,
    cache_hits: Arc<setagree_obs::Counter>,
    cache_misses: Arc<setagree_obs::Counter>,
}

fn suite_metrics() -> &'static SuiteMetrics {
    static METRICS: OnceLock<SuiteMetrics> = OnceLock::new();
    METRICS.get_or_init(|| SuiteMetrics {
        cell_latency_us: setagree_obs::histogram("suite_cell_latency_us", &[]),
        queue_wait_us: setagree_obs::histogram("suite_queue_wait_us", &[]),
        cache_hits: setagree_obs::counter("suite_cache_hits", &[]),
        cache_misses: setagree_obs::counter("suite_cache_misses", &[]),
    })
}

/// Gates how far workers may run ahead of the consumer's emission
/// frontier. Claims are sequential, so admitting only cases within
/// `window` of the frontier bounds the reorder buffer at `window`
/// cells — channel backpressure alone would not: a slow cell at the
/// front of grid order forces the consumer to drain every later
/// completion into the buffer, freeing channel slots and letting the
/// grid race arbitrarily far ahead.
#[derive(Debug, Default)]
struct ClaimWindow {
    /// (cases emitted so far, consumer hung up).
    frontier: Mutex<(usize, bool)>,
    advanced: Condvar,
}

impl ClaimWindow {
    /// Blocks until `case` is within `window` of the frontier; `false`
    /// means the consumer is gone and the worker should stop.
    ///
    /// No deadlock: the very next case the consumer needs was claimed
    /// before every later one and always satisfies
    /// `case < frontier + window`, so its holder is never blocked here.
    fn admit(&self, case: usize, window: usize) -> bool {
        let mut state = self.frontier.lock().expect("window lock poisoned");
        if !state.1 && case >= state.0 + window {
            // The worker is about to block at the window's edge — that
            // wait is the suite's queue-wait metric.
            let blocked_at = setagree_obs::enabled().then(Instant::now);
            while !state.1 && case >= state.0 + window {
                state = self.advanced.wait(state).expect("window lock poisoned");
            }
            if let Some(at) = blocked_at {
                let us = u64::try_from(at.elapsed().as_micros()).unwrap_or(u64::MAX);
                suite_metrics().queue_wait_us.record(us);
            }
        }
        !state.1
    }

    /// Records one emitted case, releasing workers waiting at the edge.
    fn advance(&self) {
        self.frontier.lock().expect("window lock poisoned").0 += 1;
        self.advanced.notify_all();
    }

    /// Marks the consumer gone, releasing every waiting worker.
    fn close(&self) {
        self.frontier.lock().expect("window lock poisoned").1 = true;
        self.advanced.notify_all();
    }
}

/// The cache view of one run: the cache plus the component hashes,
/// computed once per dimension entry instead of once per cell (an
/// `ExplicitOracle` spec can be large; its hash is reused by every cell
/// it participates in).
struct CachePlan<V: Ord> {
    cache: Arc<SuiteCache<V>>,
    spec_hashes: Vec<(u64, u64)>,
    input_hashes: Vec<(u64, u64)>,
    pattern_hashes: Vec<(u64, u64)>,
    settings_hash: (u64, u64),
}

impl<V: ProposalValue> CachePlan<V> {
    fn key(&self, coords: CellCoords, executor: Executor) -> CacheKey {
        let pattern = match coords.pattern {
            Some(p) => self.pattern_hashes[p],
            None => stable_pair(&"failure-free"),
        };
        CacheKey::combine(&[
            self.spec_hashes[coords.spec],
            self.input_hashes[coords.input],
            pattern,
            stable_pair(&executor),
            self.settings_hash,
        ])
    }
}

/// An immutable snapshot of a suite, shared by the run's workers.
struct GridPlan<V: Ord, O> {
    specs: Vec<Arc<ProtocolSpec<V, O>>>,
    inputs: Vec<Arc<InputVector<V>>>,
    patterns: Vec<Arc<Adversary>>,
    executors: Vec<Executor>,
    grid_specs: Vec<usize>,
    grid_inputs: Vec<usize>,
    grid_patterns: Vec<usize>,
    grid_executors: Vec<usize>,
    explicit: Vec<CellCoords>,
    round_limit: Option<usize>,
    step_budget: Option<u64>,
    total: usize,
    cache: Option<CachePlan<V>>,
    counters: Arc<RunCounters>,
}

impl<V: Ord, O> GridPlan<V, O> {
    fn coords(&self, case: usize) -> CellCoords {
        let pattern_count = self.grid_patterns.len().max(1);
        let input_count = self.grid_inputs.len();
        let spec_count = self.grid_specs.len();
        let grid_len = spec_count * input_count * pattern_count * self.grid_executors.len().max(1);
        if case >= grid_len {
            return self.explicit[case - grid_len];
        }
        let pattern_slot = case % pattern_count;
        let input_slot = (case / pattern_count) % input_count;
        let spec_slot = (case / (pattern_count * input_count)) % spec_count;
        let executor_slot = case / (pattern_count * input_count * spec_count);
        CellCoords {
            spec: self.grid_specs[spec_slot],
            input: self.grid_inputs[input_slot],
            pattern: self.grid_patterns.get(pattern_slot).copied(),
            executor: self.grid_executors.get(executor_slot).copied(),
        }
    }
}

impl<V, O> GridPlan<V, O>
where
    V: ProposalValue + Send + Sync + 'static,
    O: ConditionOracle<V> + Clone + Send + Sync + 'static,
{
    fn run_case(&self, case: usize) -> SuiteCase<V> {
        let coords = self.coords(case);
        let executor = coords
            .executor
            .map(|e| self.executors[e])
            .unwrap_or_default();
        let positioned = |result| SuiteCase {
            spec_index: coords.spec,
            input_index: coords.input,
            pattern_index: coords.pattern,
            executor_index: coords.executor,
            result,
        };

        let key = self.cache.as_ref().map(|plan| plan.key(coords, executor));
        if let (Some(plan), Some(key)) = (&self.cache, key) {
            if let Some(result) = plan.cache.lookup(&key) {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                if setagree_obs::enabled() {
                    suite_metrics().cache_hits.inc();
                }
                return positioned(result);
            }
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
            if setagree_obs::enabled() {
                suite_metrics().cache_misses.inc();
            }
        }

        let mut scenario = Scenario::from_shared(Arc::clone(&self.specs[coords.spec]))
            .input_shared(Arc::clone(&self.inputs[coords.input]))
            .executor(executor);
        if let Some(pattern) = coords.pattern {
            scenario = scenario.pattern_shared(Arc::clone(&self.patterns[pattern]));
        }
        if let Some(limit) = self.round_limit {
            scenario = scenario.round_limit(limit);
        }
        if let Some(budget) = self.step_budget {
            scenario = scenario.step_budget(budget);
        }
        // A panicking protocol/oracle must cost its own cell, not the
        // whole grid — mirroring how the threaded executor already
        // degrades (per-case ProcessPanicked).
        let _cell_span = setagree_obs::Span::start("suite", "cell")
            .with_histogram(Arc::clone(&suite_metrics().cell_latency_us))
            .with_detail(case as u64);
        let result = panic::catch_unwind(panic::AssertUnwindSafe(|| scenario.run()))
            .unwrap_or_else(|payload| {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".into());
                Err(ExperimentError::Internal {
                    message: format!("case panicked: {message}"),
                })
            });
        if let (Some(plan), Some(key)) = (&self.cache, key) {
            plan.cache.insert(key, result.clone());
        }
        positioned(result)
    }
}

impl<V, O> ScenarioSuite<V, O>
where
    V: ProposalValue + Send + Sync + 'static,
    O: ConditionOracle<V> + Clone + Send + Sync + 'static,
{
    fn worker_count(&self, total: usize) -> usize {
        self.threads
            .unwrap_or_else(|| {
                let parallelism = thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1);
                // Threaded and networked-loopback cases both spawn one
                // OS thread per process;
                // divide the worker pool by the largest system size so
                // the total thread count stays near the machine's
                // parallelism instead of multiplying with it. An
                // explicit `.threads(...)` overrides this.
                let any_threaded = self
                    .executors
                    .iter()
                    .any(|e| matches!(e, Executor::Threaded | Executor::Networked { .. }));
                if any_threaded {
                    let max_n = self.specs.iter().map(|s| s.n()).max().unwrap_or(1);
                    (parallelism / max_n.max(1)).max(1)
                } else {
                    parallelism
                }
            })
            .min(total.max(1))
    }

    fn plan(&self) -> GridPlan<V, O> {
        let cache = self.cache.as_ref().map(|binding| CachePlan {
            cache: Arc::clone(&binding.cache),
            spec_hashes: self.specs.iter().map(|s| (binding.hash_spec)(s)).collect(),
            input_hashes: self
                .inputs
                .iter()
                .map(|i| (binding.hash_input)(i))
                .collect(),
            pattern_hashes: self.patterns.iter().map(|p| stable_pair(&**p)).collect(),
            settings_hash: stable_pair(&(self.round_limit, self.step_budget)),
        });
        GridPlan {
            specs: self.specs.clone(),
            inputs: self.inputs.clone(),
            patterns: self.patterns.clone(),
            executors: self.executors.clone(),
            grid_specs: self.grid_specs.clone(),
            grid_inputs: self.grid_inputs.clone(),
            grid_patterns: self.grid_patterns.clone(),
            grid_executors: self.grid_executors.clone(),
            explicit: self.explicit.clone(),
            round_limit: self.round_limit,
            step_budget: self.step_budget,
            total: self.len(),
            cache,
            counters: Arc::new(RunCounters::default()),
        }
    }

    /// Starts executing the suite and returns the [`SuiteRun`] iterator
    /// over its cases, in deterministic grid order, as they complete.
    ///
    /// Cells execute on a worker pool (sized like
    /// [`ScenarioSuite::run`]'s); a bounded reorder buffer — at most
    /// `2 × workers` completed cells in flight — puts completions back
    /// into grid order, so memory stays bounded however large the sweep
    /// is. Dropping the iterator early stops the run: workers finish
    /// their in-progress cell and exit.
    pub fn stream(&self) -> SuiteRun<V> {
        let plan = Arc::new(self.plan());
        let total = plan.total;
        let counters = Arc::clone(&plan.counters);
        let worker_count = self.worker_count(total);
        let source = if worker_count <= 1 {
            let moved = plan;
            RunSource::Inline(Box::new(move |case| moved.run_case(case)))
        } else {
            // The claim window keeps every claimed-but-unemitted case
            // within `2 × workers` of the consumer's frontier, which
            // bounds the reorder buffer (and the channel occupancy) at
            // that window however the pool schedules.
            let window_size = worker_count * 2;
            let (tx, rx) = mpsc::sync_channel(window_size);
            let next = Arc::new(AtomicUsize::new(0));
            let window = Arc::new(ClaimWindow::default());
            let handles = (0..worker_count)
                .map(|_| {
                    let plan = Arc::clone(&plan);
                    let next = Arc::clone(&next);
                    let window = Arc::clone(&window);
                    let tx = tx.clone();
                    // Pooled: a sweep-heavy binary opening many suites
                    // back to back reuses the same OS threads instead of
                    // spawning `workers` fresh ones per suite.
                    setagree_runtime::pool::spawn(move || loop {
                        let case = next.fetch_add(1, Ordering::Relaxed);
                        if case >= plan.total {
                            break;
                        }
                        // Both exits mean the consumer hung up (dropped
                        // the iterator): stop claiming work.
                        if !window.admit(case, window_size) {
                            break;
                        }
                        if tx.send((case, plan.run_case(case))).is_err() {
                            break;
                        }
                    })
                })
                .collect();
            RunSource::Workers {
                rx: Some(rx),
                window,
                handles,
            }
        };
        SuiteRun {
            total,
            next_emit: 0,
            pending: BTreeMap::new(),
            source,
            counters,
        }
    }

    /// Expands the suite and runs every case in parallel, returning the
    /// outcomes in deterministic order (pattern fastest, then input,
    /// then spec, then executor, then explicit cases) — a thin
    /// collecting adapter over [`ScenarioSuite::stream`].
    ///
    /// A case whose protocol or oracle panics is contained as a
    /// positioned [`ExperimentError::Internal`]; note the process's
    /// panic hook still prints each caught panic to stderr (the suite
    /// deliberately does not swap the global hook, which would race
    /// with unrelated threads).
    pub fn run(&self) -> SuiteReport<V> {
        let mut stream = self.stream();
        let mut cases = Vec::with_capacity(stream.len());
        cases.extend(&mut stream);
        SuiteReport {
            cases,
            cache_hits: stream.cache_hits(),
            cache_misses: stream.cache_misses(),
        }
    }

    /// Runs the suite, handing each [`SuiteCase`] to `sink` in
    /// deterministic grid order as it completes — print a table row per
    /// case and a terabyte-scale sweep needs constant memory. Returns
    /// the run's totals.
    pub fn run_streaming(&self, mut sink: impl FnMut(SuiteCase<V>)) -> SuiteRunStats {
        let mut stream = self.stream();
        let mut cases = 0;
        for case in &mut stream {
            cases += 1;
            sink(case);
        }
        SuiteRunStats {
            cases,
            cache_hits: stream.cache_hits(),
            cache_misses: stream.cache_misses(),
        }
    }
}

/// Where a [`SuiteRun`] gets its cases from.
enum RunSource<V: Ord> {
    /// Sequential: cells run lazily on the consuming thread, one per
    /// `next()` call.
    Inline(Box<dyn FnMut(usize) -> SuiteCase<V> + Send>),
    /// Parallel: a worker pool sends completions through a bounded
    /// channel, gated by the claim window; the consumer reorders them.
    Workers {
        rx: Option<mpsc::Receiver<(usize, SuiteCase<V>)>>,
        window: Arc<ClaimWindow>,
        handles: Vec<setagree_runtime::PooledJoinHandle<()>>,
    },
}

/// A streaming suite execution: an iterator yielding every [`SuiteCase`]
/// in deterministic grid order as cells complete. Produced by
/// [`ScenarioSuite::stream`].
///
/// The iterator is exact-size; [`SuiteRun::cache_hits`] /
/// [`SuiteRun::cache_misses`] read the run's cache counters at any
/// point (they are final once the iterator is exhausted).
pub struct SuiteRun<V: Ord> {
    total: usize,
    next_emit: usize,
    pending: BTreeMap<usize, SuiteCase<V>>,
    source: RunSource<V>,
    counters: Arc<RunCounters>,
}

impl<V: ProposalValue> fmt::Debug for SuiteRun<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SuiteRun")
            .field("total", &self.total)
            .field("emitted", &self.next_emit)
            .field("buffered", &self.pending.len())
            .finish()
    }
}

impl<V: ProposalValue> SuiteRun<V> {
    /// Cache hits so far in this run (0 without an attached cache).
    pub fn cache_hits(&self) -> u64 {
        self.counters.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far in this run (0 without an attached cache).
    pub fn cache_misses(&self) -> u64 {
        self.counters.misses.load(Ordering::Relaxed)
    }
}

impl<V: ProposalValue> Iterator for SuiteRun<V> {
    type Item = SuiteCase<V>;

    fn next(&mut self) -> Option<SuiteCase<V>> {
        if self.next_emit >= self.total {
            return None;
        }
        let case = match &mut self.source {
            RunSource::Inline(run) => run(self.next_emit),
            RunSource::Workers { rx, window, .. } => {
                let case = loop {
                    if let Some(case) = self.pending.remove(&self.next_emit) {
                        break case;
                    }
                    let rx = rx.as_ref().expect("receiver lives until drop");
                    match rx.recv() {
                        Ok((index, case)) => {
                            self.pending.insert(index, case);
                        }
                        Err(_) => panic!(
                            "suite worker died before completing the grid \
                             (case {} of {} never arrived)",
                            self.next_emit, self.total
                        ),
                    }
                };
                window.advance();
                case
            }
        };
        self.next_emit += 1;
        Some(case)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.total - self.next_emit;
        (remaining, Some(remaining))
    }
}

impl<V: ProposalValue> ExactSizeIterator for SuiteRun<V> {}

impl<V: Ord> Drop for SuiteRun<V> {
    fn drop(&mut self) {
        if let RunSource::Workers {
            rx,
            window,
            handles,
        } = &mut self.source
        {
            // Hang up first — close the claim window and drop the
            // receiver — so both blocked waits fail fast, then reap the
            // workers (each finishes at most its in-progress cell).
            window.close();
            drop(rx.take());
            for handle in handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

/// The totals of a [`ScenarioSuite::run_streaming`] execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct SuiteRunStats {
    /// How many cases were emitted.
    pub cases: usize,
    /// Cache hits (0 without an attached cache).
    pub cache_hits: u64,
    /// Cache misses (0 without an attached cache).
    pub cache_misses: u64,
}

/// One grid cell of a suite run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteCase<V: Ord> {
    /// Index into the suite's specs.
    pub spec_index: usize,
    /// Index into the suite's inputs.
    pub input_index: usize,
    /// Index into the suite's patterns (`None` for the implicit
    /// failure-free run of a pattern-less suite or explicit case).
    pub pattern_index: Option<usize>,
    /// Index into the suite's executors (`None` for the implicit
    /// default-simulator run of an executor-less suite).
    pub executor_index: Option<usize>,
    /// The case's report, or why it could not run.
    pub result: Result<Report<V>, ExperimentError>,
}

impl<V: ProposalValue> SuiteCase<V> {
    /// The report, if the case ran.
    pub fn report(&self) -> Option<&Report<V>> {
        self.result.as_ref().ok()
    }
}

/// The outcome of a [`ScenarioSuite`] run: every case, in grid order,
/// plus the run's cache counters.
#[derive(Debug)]
pub struct SuiteReport<V: Ord> {
    cases: Vec<SuiteCase<V>>,
    cache_hits: u64,
    cache_misses: u64,
}

impl<V: ProposalValue> SuiteReport<V> {
    /// All cases, in grid order.
    pub fn cases(&self) -> &[SuiteCase<V>] {
        &self.cases
    }

    /// The number of cases.
    pub fn len(&self) -> usize {
        self.cases.len()
    }

    /// Whether the suite expanded to no cases.
    pub fn is_empty(&self) -> bool {
        self.cases.is_empty()
    }

    /// How many cells this run served from the attached [`SuiteCache`]
    /// (0 when the suite had none). A fully warm rerun has
    /// `cache_hits() == len()`: zero protocol executions happened.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// How many cells this run had to execute and fill into the cache
    /// (0 when the suite had none — uncached cells are not misses).
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// Looks one case up by its grid coordinates — the indices of the
    /// spec/input/pattern/executor as they were added to the suite
    /// (`None` for the implicit failure-free pattern or default
    /// executor) — replacing hand-computed flat grid indices in table
    /// binaries.
    pub fn find(
        &self,
        spec: usize,
        input: usize,
        pattern: Option<usize>,
        executor: Option<usize>,
    ) -> Option<&SuiteCase<V>> {
        self.cases.iter().find(|c| {
            c.spec_index == spec
                && c.input_index == input
                && c.pattern_index == pattern
                && c.executor_index == executor
        })
    }

    /// Iterates over the successful reports.
    pub fn reports(&self) -> impl Iterator<Item = &Report<V>> {
        self.cases.iter().filter_map(SuiteCase::report)
    }

    /// The errors of failed cases, with their grid position.
    pub fn failures(&self) -> impl Iterator<Item = (&SuiteCase<V>, &ExperimentError)> {
        self.cases
            .iter()
            .filter_map(|c| c.result.as_ref().err().map(|e| (c, e)))
    }

    /// Every case ran and satisfied termination, validity and agreement.
    /// False on an empty grid — zero cases verified nothing.
    pub fn all_satisfy_properties(&self) -> bool {
        !self.is_empty()
            && self
                .cases
                .iter()
                .all(|c| c.report().is_some_and(Report::satisfies_all))
    }

    /// Every case ran within its predicted round bound. False on an
    /// empty grid — zero cases verified nothing.
    pub fn all_within_bounds(&self) -> bool {
        !self.is_empty()
            && self
                .cases
                .iter()
                .all(|c| c.report().is_some_and(Report::within_predicted_rounds))
    }

    /// [`SuiteReport::all_satisfy_properties`] and
    /// [`SuiteReport::all_within_bounds`] at once — what the table
    /// binaries print as their verdict. Like its two components, false
    /// on an empty grid: a suite that accidentally expanded to zero
    /// cases (e.g. a forgotten `.input(...)`) must not read as a pass.
    pub fn all_ok(&self) -> bool {
        self.all_satisfy_properties() && self.all_within_bounds()
    }

    /// The worst measured decision round across all successful cases.
    pub fn worst_decision_round(&self) -> Option<usize> {
        self.reports().filter_map(Report::decision_round).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConditionBasedConfig;
    use setagree_sync::FailurePattern;

    fn config() -> ConditionBasedConfig {
        ConditionBasedConfig::builder(6, 3, 2)
            .condition_degree(2)
            .ell(1)
            .build()
            .unwrap()
    }

    fn suite() -> ScenarioSuite<u32> {
        let cfg = config();
        ScenarioSuite::new()
            .spec(ProtocolSpec::condition_based(
                cfg,
                MaxCondition::new(cfg.legality()),
            ))
            .spec(ProtocolSpec::flood_set(6, 3, 2))
            .spec(ProtocolSpec::early_deciding(6, 3, 2))
            .input(vec![5u32, 5, 1, 2, 5, 5])
            .input(vec![1u32, 2, 3, 4, 5, 6])
            .pattern(FailurePattern::none(6))
            .pattern(FailurePattern::staircase(6, 3, 2))
    }

    #[test]
    fn grid_order_is_deterministic() {
        let outcome = suite().run();
        assert_eq!(outcome.len(), 3 * 2 * 2);
        assert!(outcome.all_ok());
        for (i, case) in outcome.cases().iter().enumerate() {
            assert_eq!(case.pattern_index, Some(i % 2));
            assert_eq!(case.input_index, (i / 2) % 2);
            assert_eq!(case.spec_index, i / 4);
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let parallel = suite().run();
        let sequential = suite().threads(1).run();
        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.cases().iter().zip(sequential.cases()) {
            let (p, s) = (p.report().unwrap(), s.report().unwrap());
            assert_eq!(p.trace(), s.trace());
            assert_eq!(p.predicted_rounds(), s.predicted_rounds());
        }
    }

    #[test]
    fn streaming_emits_run_cases_in_order() {
        let batch = suite().run();
        let mut streamed = Vec::new();
        let stats = suite().run_streaming(|case| streamed.push(case));
        assert_eq!(stats.cases, batch.len());
        assert_eq!(stats.cache_hits, 0, "no cache attached");
        assert_eq!(streamed.as_slice(), batch.cases());
    }

    #[test]
    fn stream_iterator_is_exact_size_and_lazy_when_sequential() {
        let suite = suite().threads(1);
        let mut stream = suite.stream();
        assert_eq!(stream.len(), 12);
        let first = stream.next().unwrap();
        assert_eq!((first.spec_index, first.pattern_index), (0, Some(0)));
        assert_eq!(stream.len(), 11);
        // Dropping mid-run is fine (and, sequentially, runs nothing
        // more).
        drop(stream);
    }

    #[test]
    fn dropping_a_parallel_stream_mid_run_reaps_workers() {
        let suite = suite().threads(4);
        let mut stream = suite.stream();
        let _ = stream.next().unwrap();
        drop(stream); // must not hang or leak; workers unblock on the hangup
    }

    #[test]
    fn large_grids_stream_in_order_through_the_claim_window() {
        // 200 cells over 8 workers: the 16-cell claim window throttles
        // and releases repeatedly; a window bug shows up here as a
        // deadlock (test hangs) or an order violation.
        let suite = ScenarioSuite::<u32>::new()
            .spec(ProtocolSpec::flood_set(4, 2, 1))
            .inputs((0..200u32).map(|i| InputVector::new(vec![i, 1, 2, 3])))
            .threads(8);
        let mut seen = 0;
        let stats = suite.run_streaming(|case| {
            assert_eq!(case.input_index, seen, "grid order through the window");
            seen += 1;
        });
        assert_eq!(stats.cases, 200);
    }

    #[test]
    fn pattern_less_suites_run_failure_free() {
        let outcome = ScenarioSuite::<u32>::new()
            .spec(ProtocolSpec::flood_set(4, 2, 1))
            .input(vec![3u32, 9, 1, 4])
            .run();
        assert_eq!(outcome.len(), 1);
        assert_eq!(outcome.cases()[0].pattern_index, None);
        assert!(outcome.all_ok());
        assert_eq!(outcome.worst_decision_round(), Some(3));
    }

    #[test]
    fn failures_are_positioned_not_panicked() {
        let outcome = ScenarioSuite::<u32>::new()
            .spec(ProtocolSpec::flood_set(4, 2, 1))
            .input(vec![3u32, 9, 1]) // wrong arity
            .run();
        assert_eq!(outcome.failures().count(), 1);
        assert!(!outcome.all_satisfy_properties());
        let (case, err) = outcome.failures().next().unwrap();
        assert_eq!(case.spec_index, 0);
        assert_eq!(
            *err,
            ExperimentError::InputSizeMismatch {
                expected: 4,
                got: 3
            }
        );
    }

    #[test]
    fn empty_grids_are_not_ok() {
        let outcome = ScenarioSuite::<u32>::new()
            .spec(ProtocolSpec::flood_set(4, 2, 1))
            .pattern(FailurePattern::none(4))
            .run(); // no inputs: zero cases
        assert!(outcome.is_empty());
        assert!(
            !outcome.all_ok(),
            "a suite that ran nothing must not read as a pass"
        );
        assert!(!outcome.all_satisfy_properties());
        assert!(!outcome.all_within_bounds());
    }

    #[test]
    fn panicking_case_costs_its_cell_not_the_grid() {
        use setagree_conditions::{ConditionOracle, LegalityParams};
        use setagree_types::View;
        use std::collections::BTreeSet;

        /// Panics on inputs containing 13; behaves like nothing otherwise.
        #[derive(Debug, Clone, Copy)]
        struct Grenade;
        impl ConditionOracle<u32> for Grenade {
            fn params(&self) -> LegalityParams {
                LegalityParams::new(1, 1).unwrap()
            }
            fn matches(&self, view: &View<u32>) -> bool {
                assert!(!view.iter().flatten().any(|&v| v == 13), "oracle bug on 13");
                true
            }
            fn decode_view(&self, view: &View<u32>) -> Option<BTreeSet<u32>> {
                view.iter()
                    .flatten()
                    .max()
                    .map(|&v| [v].into_iter().collect())
            }
        }

        let cfg = ConditionBasedConfig::builder(4, 2, 1)
            .condition_degree(1)
            .ell(1)
            .build()
            .unwrap();
        let outcome = ScenarioSuite::new()
            .spec(ProtocolSpec::condition_based(cfg, Grenade))
            .input(vec![5u32, 5, 5, 5])
            .input(vec![13u32, 13, 13, 13]) // detonates
            .run();
        assert_eq!(outcome.len(), 2);
        assert!(
            outcome.cases()[0].report().is_some(),
            "healthy cell survives"
        );
        let (case, err) = outcome.failures().next().unwrap();
        assert_eq!(case.input_index, 1);
        assert!(
            matches!(err, ExperimentError::Internal { message } if message.contains("panicked"))
        );
        assert!(!outcome.all_ok());
    }

    #[test]
    fn threaded_executor_works_in_batch() {
        let outcome = ScenarioSuite::<u32>::new()
            .spec(ProtocolSpec::flood_set(4, 2, 1))
            .input(vec![3u32, 9, 1, 4])
            .executor(Executor::Threaded)
            .run();
        assert!(outcome.all_ok());
        let case = &outcome.cases()[0];
        assert_eq!(case.executor_index, Some(0));
        assert_eq!(case.report().unwrap().executor(), Executor::Threaded);
    }

    #[test]
    fn grids_mix_synchronous_and_asynchronous_executors() {
        // One condition-based spec, four executors: the same scenario in
        // the synchronous model (simulator and real threads) and in the
        // asynchronous model (shared memory and message passing, where
        // the condition solves ℓ-set agreement with x = t − d).
        let cfg = config();
        let outcome = ScenarioSuite::new()
            .spec(ProtocolSpec::condition_based(
                cfg,
                MaxCondition::new(cfg.legality()),
            ))
            .input(vec![5u32, 5, 1, 2, 5, 5])
            .executors([
                Executor::Simulator,
                Executor::Threaded,
                Executor::AsyncSharedMemory { seed: 9 },
                Executor::AsyncMessagePassing { seed: 9 },
            ])
            .run();
        assert_eq!(outcome.len(), 4);
        assert!(outcome.all_ok(), "every model satisfies its guarantees");
        for (i, case) in outcome.cases().iter().enumerate() {
            assert_eq!(case.executor_index, Some(i), "executor varies slowest");
        }
        let reports: Vec<_> = outcome.reports().collect();
        assert_eq!(reports[0].executor(), Executor::Simulator);
        assert_eq!(
            reports[2].executor(),
            Executor::AsyncSharedMemory { seed: 9 }
        );
        // Sync cells carry traces, async cells carry step reports.
        assert!(reports[1].trace().is_some() && reports[1].async_report().is_none());
        assert!(reports[3].trace().is_none() && reports[3].async_report().is_some());
        // The sync cells check k = 2, the async cells ℓ = 1.
        assert_eq!(reports[0].k(), 2);
        assert_eq!(reports[2].k(), 1);
    }

    #[test]
    fn executor_dimension_sweeps_adversary_seeds() {
        // The async executors carry their seed, so a grid over executors
        // is a grid over schedules — every cell must uphold agreement.
        let params = setagree_conditions::LegalityParams::new(2, 2).unwrap();
        let outcome = ScenarioSuite::new()
            .spec(ProtocolSpec::async_set_agreement(
                5,
                params,
                MaxCondition::new(params),
            ))
            .input(vec![9u32, 9, 8, 8, 1])
            .executors((0..8).map(|seed| Executor::AsyncSharedMemory { seed }))
            .run();
        assert_eq!(outcome.len(), 8);
        assert!(outcome.all_ok(), "ℓ-set agreement on every schedule");
    }

    #[test]
    fn incompatible_cells_fail_positioned_not_panicked() {
        // A flood-set spec cannot run on an async executor: that cell
        // becomes a positioned UnsupportedProtocol, the rest survive.
        // (Explicit cases() are the way to avoid such cells entirely.)
        let outcome = ScenarioSuite::<u32>::new()
            .spec(ProtocolSpec::flood_set(4, 2, 1))
            .input(vec![3u32, 9, 1, 4])
            .executors([Executor::Simulator, Executor::AsyncSharedMemory { seed: 1 }])
            .run();
        assert_eq!(outcome.len(), 2);
        assert!(outcome.cases()[0].report().is_some());
        let (case, err) = outcome.failures().next().unwrap();
        assert_eq!(case.executor_index, Some(1));
        assert!(matches!(err, ExperimentError::UnsupportedProtocol { .. }));
        assert!(!outcome.all_ok());
    }

    #[test]
    fn explicit_cases_express_heterogeneous_sweeps_without_error_cells() {
        // The same pairing as the previous test, minus the deliberate
        // error cell: flood-set on the simulator, the async spec on the
        // async executors.
        let params = setagree_conditions::LegalityParams::new(1, 1).unwrap();
        let async_spec = Arc::new(ProtocolSpec::async_set_agreement(
            4,
            params,
            MaxCondition::new(params),
        ));
        let async_input: Arc<InputVector<u32>> = Arc::new(vec![7u32, 7, 7, 2].into());
        let outcome = ScenarioSuite::new()
            .case((
                ProtocolSpec::flood_set(4, 2, 1),
                vec![3u32, 9, 1, 4],
                Executor::Simulator,
            ))
            .cases((0..3).map(|seed| {
                CaseSpec::shared(
                    Arc::clone(&async_spec),
                    Arc::clone(&async_input),
                    Executor::AsyncSharedMemory { seed },
                )
            }))
            .run();
        assert_eq!(outcome.len(), 4);
        assert!(outcome.all_ok(), "no manufactured UnsupportedProtocol");
        // Shared components are interned once: all async cases point at
        // the same spec/input indices, distinct executors.
        assert_eq!(outcome.cases()[1].spec_index, 1);
        assert_eq!(outcome.cases()[2].spec_index, 1);
        assert_eq!(outcome.cases()[1].input_index, 1);
        assert_ne!(
            outcome.cases()[1].executor_index,
            outcome.cases()[2].executor_index
        );
    }

    #[test]
    fn explicit_cases_coexist_with_a_grid() {
        let outcome = ScenarioSuite::<u32>::new()
            .spec(ProtocolSpec::flood_set(4, 2, 1))
            .input(vec![3u32, 9, 1, 4])
            .pattern(FailurePattern::none(4))
            .case((
                ProtocolSpec::early_deciding(4, 2, 1),
                vec![5u32, 5, 5, 5],
                FailurePattern::staircase(4, 2, 1),
                Executor::Simulator,
            ))
            .run();
        // 1 grid cell first, then the explicit case.
        assert_eq!(outcome.len(), 2);
        assert!(outcome.all_ok());
        assert_eq!(outcome.cases()[0].spec_index, 0);
        let explicit = &outcome.cases()[1];
        assert_eq!(explicit.spec_index, 1);
        assert_eq!(explicit.input_index, 1);
        assert_eq!(explicit.pattern_index, Some(1));
        assert_eq!(explicit.report().unwrap().executor(), Executor::Simulator);
    }

    #[test]
    fn find_locates_cases_by_coordinates() {
        let outcome = suite().executor(Executor::Simulator).run();
        let case = outcome.find(2, 1, Some(0), Some(0)).expect("present");
        assert_eq!(case.spec_index, 2);
        assert_eq!(case.input_index, 1);
        assert_eq!(case.pattern_index, Some(0));
        assert!(outcome.find(7, 0, None, None).is_none());
    }

    #[test]
    fn cached_suites_serve_warm_cells_without_reexecution() {
        let cache = Arc::new(SuiteCache::new());
        let cfg = config();
        let build = || {
            ScenarioSuite::new()
                .spec(ProtocolSpec::condition_based(
                    cfg,
                    MaxCondition::new(cfg.legality()),
                ))
                .input(vec![5u32, 5, 1, 2, 5, 5])
                .executors([Executor::Simulator, Executor::AsyncSharedMemory { seed: 9 }])
                .cache(&cache)
        };
        let cold = build().run();
        assert_eq!((cold.cache_hits(), cold.cache_misses()), (0, 2));
        let warm = build().run();
        assert_eq!(
            (warm.cache_hits(), warm.cache_misses()),
            (2, 0),
            "every cell served warm: zero executions"
        );
        assert_eq!(cold.cases(), warm.cases(), "identical report");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_keys_distinguish_coordinates() {
        // Same spec/input, different seed → different cells, both cold.
        let cache = Arc::new(SuiteCache::new());
        let params = setagree_conditions::LegalityParams::new(1, 1).unwrap();
        let run = |seed| {
            ScenarioSuite::new()
                .spec(ProtocolSpec::async_set_agreement(
                    4,
                    params,
                    MaxCondition::new(params),
                ))
                .input(vec![7u32, 7, 7, 2])
                .executor(Executor::AsyncSharedMemory { seed })
                .cache(&cache)
                .run()
        };
        assert_eq!(run(1).cache_misses(), 1);
        assert_eq!(run(2).cache_misses(), 1, "seed is part of the key");
        assert_eq!(run(1).cache_hits(), 1, "seed 1 is warm now");
        // A changed round limit must also miss.
        let limited = ScenarioSuite::<u32>::new()
            .spec(ProtocolSpec::flood_set(4, 2, 1))
            .input(vec![3u32, 9, 1, 4])
            .cache(&cache)
            .round_limit(9)
            .run();
        assert_eq!(limited.cache_misses(), 1);
    }

    #[test]
    fn cached_errors_replay_without_revalidation() {
        let cache = Arc::new(SuiteCache::new());
        let build = || {
            ScenarioSuite::<u32>::new()
                .spec(ProtocolSpec::flood_set(4, 2, 1))
                .input(vec![3u32, 9, 1]) // wrong arity: a deterministic error
                .cache(&cache)
        };
        let cold = build().run();
        let warm = build().run();
        assert_eq!(warm.cache_hits(), 1);
        assert_eq!(cold.cases(), warm.cases());
        assert!(matches!(
            warm.failures().next().unwrap().1,
            ExperimentError::InputSizeMismatch { .. }
        ));
    }
}
