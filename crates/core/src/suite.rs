//! Batched experiments: a [`ScenarioSuite`] runs the cartesian grid
//! *executors × specs × inputs × patterns* and returns one
//! [`SuiteReport`].
//!
//! Cases are independent, so the suite fans them out across OS threads
//! (work-stealing over a shared counter; `std::thread::scope`, no
//! external runtime). Results come back in deterministic grid order
//! regardless of scheduling, so a suite run is replayable data like a
//! single [`Scenario`] run.
//!
//! Executors are a grid dimension like any other: add several (including
//! the asynchronous ones — seeds and all) and every spec × input ×
//! pattern combination runs on each. A grid can therefore mix
//! synchronous and asynchronous cells; use failure-free or
//! [`Adversary::Async`]-compatible patterns for the cells shared across
//! models (a crashing synchronous pattern on an async executor is a
//! positioned per-case error, not a panic).
//!
//! ```
//! use setagree_conditions::MaxCondition;
//! use setagree_core::{ConditionBasedConfig, ProtocolSpec, ScenarioSuite};
//! use setagree_sync::FailurePattern;
//!
//! let config = ConditionBasedConfig::builder(6, 3, 2)
//!     .condition_degree(2)
//!     .ell(1)
//!     .build()?;
//! let suite = ScenarioSuite::new()
//!     .spec(ProtocolSpec::condition_based(config, MaxCondition::new(config.legality())))
//!     .spec(ProtocolSpec::flood_set(6, 3, 2))
//!     .input(vec![5u32, 5, 1, 2, 5, 5])
//!     .pattern(FailurePattern::none(6))
//!     .pattern(FailurePattern::staircase(6, 3, 2));
//! let outcome = suite.run();
//! assert_eq!(outcome.len(), 4); // 2 specs × 1 input × 2 patterns
//! assert!(outcome.all_satisfy_properties());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;
use std::num::NonZeroUsize;
use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use setagree_conditions::{ConditionOracle, MaxCondition};
use setagree_types::{InputVector, ProposalValue};

use crate::experiment::{Adversary, Executor, ExperimentError, ProtocolSpec, Scenario};
use crate::report::Report;

/// A cartesian batch of scenarios over one or more executors.
pub struct ScenarioSuite<V, O = MaxCondition> {
    specs: Vec<ProtocolSpec<V, O>>,
    inputs: Vec<InputVector<V>>,
    patterns: Vec<Adversary>,
    executors: Vec<Executor>,
    round_limit: Option<usize>,
    step_budget: Option<u64>,
    threads: Option<usize>,
}

impl<V, O> Default for ScenarioSuite<V, O> {
    fn default() -> Self {
        ScenarioSuite {
            specs: Vec::new(),
            inputs: Vec::new(),
            patterns: Vec::new(),
            executors: Vec::new(),
            round_limit: None,
            step_budget: None,
            threads: None,
        }
    }
}

impl<V: fmt::Debug, O> fmt::Debug for ScenarioSuite<V, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScenarioSuite")
            .field("specs", &self.specs)
            .field("inputs", &self.inputs.len())
            .field("patterns", &self.patterns.len())
            .field("executors", &self.executors)
            .finish()
    }
}

impl<V, O> ScenarioSuite<V, O> {
    /// An empty suite (simulator executor, parallel execution).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one protocol spec to the grid.
    pub fn spec(mut self, spec: ProtocolSpec<V, O>) -> Self {
        self.specs.push(spec);
        self
    }

    /// Adds several protocol specs.
    pub fn specs(mut self, specs: impl IntoIterator<Item = ProtocolSpec<V, O>>) -> Self {
        self.specs.extend(specs);
        self
    }

    /// Adds one input vector to the grid.
    pub fn input(mut self, input: impl Into<InputVector<V>>) -> Self {
        self.inputs.push(input.into());
        self
    }

    /// Adds several input vectors.
    pub fn inputs(mut self, inputs: impl IntoIterator<Item = InputVector<V>>) -> Self {
        self.inputs.extend(inputs);
        self
    }

    /// Adds one adversary to the grid. When a suite has no patterns at
    /// all, every spec runs failure-free.
    pub fn pattern(mut self, pattern: impl Into<Adversary>) -> Self {
        self.patterns.push(pattern.into());
        self
    }

    /// Adds several adversaries.
    pub fn patterns(mut self, patterns: impl IntoIterator<Item = Adversary>) -> Self {
        self.patterns.extend(patterns);
        self
    }

    /// Adds one executor to the grid. When a suite has no executors at
    /// all, every case runs on the default simulator; adding several
    /// expands the grid across them (the executors are the
    /// slowest-varying dimension), which is how a grid mixes synchronous
    /// and asynchronous cells — or sweeps adversary seeds, since the
    /// async executors carry their seed.
    pub fn executor(mut self, executor: Executor) -> Self {
        self.executors.push(executor);
        self
    }

    /// Adds several executors.
    pub fn executors(mut self, executors: impl IntoIterator<Item = Executor>) -> Self {
        self.executors.extend(executors);
        self
    }

    /// Overrides the engine round limit for every round-based case
    /// (asynchronous cells keep their step budgets — the units differ;
    /// see [`ScenarioSuite::step_budget`]).
    pub fn round_limit(mut self, limit: usize) -> Self {
        self.round_limit = Some(limit);
        self
    }

    /// Overrides the global step/delivery budget for every asynchronous
    /// case (round-based cells keep their round limits).
    pub fn step_budget(mut self, budget: u64) -> Self {
        self.step_budget = Some(budget);
        self
    }

    /// Caps the suite's worker threads (`1` forces sequential execution;
    /// default: the machine's available parallelism). Note that when any
    /// grid executor is `Threaded`, the default worker count is divided
    /// by the largest system size so concurrent threaded cells cannot
    /// multiply OS threads past the machine — which also serializes the
    /// *other* cells of a mixed grid; set an explicit `.threads(...)`
    /// when a mostly-async grid carries a token threaded cell.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// The number of cases the grid expands to.
    pub fn len(&self) -> usize {
        self.specs.len()
            * self.inputs.len()
            * self.patterns.len().max(1)
            * self.executors.len().max(1)
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<V, O> ScenarioSuite<V, O>
where
    V: ProposalValue + Send + Sync + 'static,
    O: ConditionOracle<V> + Clone + Send + Sync + 'static,
{
    /// Expands the grid and runs every case, in parallel, returning the
    /// outcomes in grid order (pattern fastest, then input, then spec,
    /// then executor).
    ///
    /// A case whose protocol or oracle panics is contained as a
    /// positioned [`ExperimentError::Internal`]; note the process's
    /// panic hook still prints each caught panic to stderr (the suite
    /// deliberately does not swap the global hook, which would race
    /// with unrelated threads).
    pub fn run(&self) -> SuiteReport<V> {
        let pattern_count = self.patterns.len().max(1);
        let input_count = self.inputs.len();
        let spec_count = self.specs.len();
        let total = self.len();
        let worker_count = self
            .threads
            .unwrap_or_else(|| {
                let parallelism = thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1);
                // Each threaded case spawns one OS thread per process;
                // divide the worker pool by the largest system size so
                // the total thread count stays near the machine's
                // parallelism instead of multiplying with it. An
                // explicit `.threads(...)` overrides this.
                let any_threaded = self
                    .executors
                    .iter()
                    .any(|e| matches!(e, Executor::Threaded));
                if any_threaded {
                    let max_n = self.specs.iter().map(ProtocolSpec::n).max().unwrap_or(1);
                    (parallelism / max_n.max(1)).max(1)
                } else {
                    parallelism
                }
            })
            .min(total.max(1));

        let run_case = |case: usize| -> SuiteCase<V> {
            let pattern_index = case % pattern_count;
            let input_index = (case / pattern_count) % input_count;
            let spec_index = (case / (pattern_count * input_count)) % spec_count;
            let executor_index = case / (pattern_count * input_count * spec_count);
            let executor = self
                .executors
                .get(executor_index)
                .copied()
                .unwrap_or_default();
            let mut scenario = Scenario::new(self.specs[spec_index].clone())
                .input(self.inputs[input_index].clone())
                .executor(executor);
            if let Some(pattern) = self.patterns.get(pattern_index) {
                scenario = scenario.pattern(pattern.clone());
            }
            if let Some(limit) = self.round_limit {
                scenario = scenario.round_limit(limit);
            }
            if let Some(budget) = self.step_budget {
                scenario = scenario.step_budget(budget);
            }
            // A panicking protocol/oracle must cost its own cell, not the
            // whole grid — mirroring how the threaded executor already
            // degrades (per-case ProcessPanicked).
            let result = panic::catch_unwind(panic::AssertUnwindSafe(|| scenario.run()))
                .unwrap_or_else(|payload| {
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "opaque panic payload".into());
                    Err(ExperimentError::Internal {
                        message: format!("case panicked: {message}"),
                    })
                });
            SuiteCase {
                spec_index,
                input_index,
                pattern_index: self.patterns.get(pattern_index).map(|_| pattern_index),
                executor_index: self.executors.get(executor_index).map(|_| executor_index),
                result,
            }
        };

        let mut cases: Vec<Option<SuiteCase<V>>> = (0..total).map(|_| None).collect();
        if worker_count <= 1 {
            for (case, slot) in cases.iter_mut().enumerate() {
                *slot = Some(run_case(case));
            }
        } else {
            let next = AtomicUsize::new(0);
            thread::scope(|scope| {
                let handles: Vec<_> = (0..worker_count)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                let case = next.fetch_add(1, Ordering::Relaxed);
                                if case >= total {
                                    break;
                                }
                                local.push((case, run_case(case)));
                            }
                            local
                        })
                    })
                    .collect();
                for handle in handles {
                    for (case, outcome) in handle.join().expect("suite worker panicked") {
                        cases[case] = Some(outcome);
                    }
                }
            });
        }
        SuiteReport {
            cases: cases
                .into_iter()
                .map(|c| c.expect("every case ran"))
                .collect(),
        }
    }
}

/// One grid cell of a suite run.
#[derive(Debug)]
pub struct SuiteCase<V: Ord> {
    /// Index into the suite's specs.
    pub spec_index: usize,
    /// Index into the suite's inputs.
    pub input_index: usize,
    /// Index into the suite's patterns (`None` for the implicit
    /// failure-free run of a pattern-less suite).
    pub pattern_index: Option<usize>,
    /// Index into the suite's executors (`None` for the implicit
    /// default-simulator run of an executor-less suite).
    pub executor_index: Option<usize>,
    /// The case's report, or why it could not run.
    pub result: Result<Report<V>, ExperimentError>,
}

impl<V: ProposalValue> SuiteCase<V> {
    /// The report, if the case ran.
    pub fn report(&self) -> Option<&Report<V>> {
        self.result.as_ref().ok()
    }
}

/// The outcome of a [`ScenarioSuite`] run: every case, in grid order.
#[derive(Debug)]
pub struct SuiteReport<V: Ord> {
    cases: Vec<SuiteCase<V>>,
}

impl<V: ProposalValue> SuiteReport<V> {
    /// All cases, in grid order.
    pub fn cases(&self) -> &[SuiteCase<V>] {
        &self.cases
    }

    /// The number of cases.
    pub fn len(&self) -> usize {
        self.cases.len()
    }

    /// Whether the suite expanded to no cases.
    pub fn is_empty(&self) -> bool {
        self.cases.is_empty()
    }

    /// Iterates over the successful reports.
    pub fn reports(&self) -> impl Iterator<Item = &Report<V>> {
        self.cases.iter().filter_map(SuiteCase::report)
    }

    /// The errors of failed cases, with their grid position.
    pub fn failures(&self) -> impl Iterator<Item = (&SuiteCase<V>, &ExperimentError)> {
        self.cases
            .iter()
            .filter_map(|c| c.result.as_ref().err().map(|e| (c, e)))
    }

    /// Every case ran and satisfied termination, validity and agreement.
    /// False on an empty grid — zero cases verified nothing.
    pub fn all_satisfy_properties(&self) -> bool {
        !self.is_empty()
            && self
                .cases
                .iter()
                .all(|c| c.report().is_some_and(Report::satisfies_all))
    }

    /// Every case ran within its predicted round bound. False on an
    /// empty grid — zero cases verified nothing.
    pub fn all_within_bounds(&self) -> bool {
        !self.is_empty()
            && self
                .cases
                .iter()
                .all(|c| c.report().is_some_and(Report::within_predicted_rounds))
    }

    /// [`SuiteReport::all_satisfy_properties`] and
    /// [`SuiteReport::all_within_bounds`] at once — what the table
    /// binaries print as their verdict. Like its two components, false
    /// on an empty grid: a suite that accidentally expanded to zero
    /// cases (e.g. a forgotten `.input(...)`) must not read as a pass.
    pub fn all_ok(&self) -> bool {
        self.all_satisfy_properties() && self.all_within_bounds()
    }

    /// The worst measured decision round across all successful cases.
    pub fn worst_decision_round(&self) -> Option<usize> {
        self.reports().filter_map(Report::decision_round).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConditionBasedConfig;
    use setagree_sync::FailurePattern;

    fn config() -> ConditionBasedConfig {
        ConditionBasedConfig::builder(6, 3, 2)
            .condition_degree(2)
            .ell(1)
            .build()
            .unwrap()
    }

    fn suite() -> ScenarioSuite<u32> {
        let cfg = config();
        ScenarioSuite::new()
            .spec(ProtocolSpec::condition_based(
                cfg,
                MaxCondition::new(cfg.legality()),
            ))
            .spec(ProtocolSpec::flood_set(6, 3, 2))
            .spec(ProtocolSpec::early_deciding(6, 3, 2))
            .input(vec![5u32, 5, 1, 2, 5, 5])
            .input(vec![1u32, 2, 3, 4, 5, 6])
            .pattern(FailurePattern::none(6))
            .pattern(FailurePattern::staircase(6, 3, 2))
    }

    #[test]
    fn grid_order_is_deterministic() {
        let outcome = suite().run();
        assert_eq!(outcome.len(), 3 * 2 * 2);
        assert!(outcome.all_ok());
        for (i, case) in outcome.cases().iter().enumerate() {
            assert_eq!(case.pattern_index, Some(i % 2));
            assert_eq!(case.input_index, (i / 2) % 2);
            assert_eq!(case.spec_index, i / 4);
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let parallel = suite().run();
        let sequential = suite().threads(1).run();
        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.cases().iter().zip(sequential.cases()) {
            let (p, s) = (p.report().unwrap(), s.report().unwrap());
            assert_eq!(p.trace(), s.trace());
            assert_eq!(p.predicted_rounds(), s.predicted_rounds());
        }
    }

    #[test]
    fn pattern_less_suites_run_failure_free() {
        let outcome = ScenarioSuite::<u32>::new()
            .spec(ProtocolSpec::flood_set(4, 2, 1))
            .input(vec![3u32, 9, 1, 4])
            .run();
        assert_eq!(outcome.len(), 1);
        assert_eq!(outcome.cases()[0].pattern_index, None);
        assert!(outcome.all_ok());
        assert_eq!(outcome.worst_decision_round(), Some(3));
    }

    #[test]
    fn failures_are_positioned_not_panicked() {
        let outcome = ScenarioSuite::<u32>::new()
            .spec(ProtocolSpec::flood_set(4, 2, 1))
            .input(vec![3u32, 9, 1]) // wrong arity
            .run();
        assert_eq!(outcome.failures().count(), 1);
        assert!(!outcome.all_satisfy_properties());
        let (case, err) = outcome.failures().next().unwrap();
        assert_eq!(case.spec_index, 0);
        assert_eq!(
            *err,
            ExperimentError::InputSizeMismatch {
                expected: 4,
                got: 3
            }
        );
    }

    #[test]
    fn empty_grids_are_not_ok() {
        let outcome = ScenarioSuite::<u32>::new()
            .spec(ProtocolSpec::flood_set(4, 2, 1))
            .pattern(FailurePattern::none(4))
            .run(); // no inputs: zero cases
        assert!(outcome.is_empty());
        assert!(
            !outcome.all_ok(),
            "a suite that ran nothing must not read as a pass"
        );
        assert!(!outcome.all_satisfy_properties());
        assert!(!outcome.all_within_bounds());
    }

    #[test]
    fn panicking_case_costs_its_cell_not_the_grid() {
        use setagree_conditions::{ConditionOracle, LegalityParams};
        use setagree_types::View;
        use std::collections::BTreeSet;

        /// Panics on inputs containing 13; behaves like nothing otherwise.
        #[derive(Debug, Clone, Copy)]
        struct Grenade;
        impl ConditionOracle<u32> for Grenade {
            fn params(&self) -> LegalityParams {
                LegalityParams::new(1, 1).unwrap()
            }
            fn matches(&self, view: &View<u32>) -> bool {
                assert!(!view.iter().flatten().any(|&v| v == 13), "oracle bug on 13");
                true
            }
            fn decode_view(&self, view: &View<u32>) -> Option<BTreeSet<u32>> {
                view.iter()
                    .flatten()
                    .max()
                    .map(|&v| [v].into_iter().collect())
            }
        }

        let cfg = ConditionBasedConfig::builder(4, 2, 1)
            .condition_degree(1)
            .ell(1)
            .build()
            .unwrap();
        let outcome = ScenarioSuite::new()
            .spec(ProtocolSpec::condition_based(cfg, Grenade))
            .input(vec![5u32, 5, 5, 5])
            .input(vec![13u32, 13, 13, 13]) // detonates
            .run();
        assert_eq!(outcome.len(), 2);
        assert!(
            outcome.cases()[0].report().is_some(),
            "healthy cell survives"
        );
        let (case, err) = outcome.failures().next().unwrap();
        assert_eq!(case.input_index, 1);
        assert!(
            matches!(err, ExperimentError::Internal { message } if message.contains("panicked"))
        );
        assert!(!outcome.all_ok());
    }

    #[test]
    fn threaded_executor_works_in_batch() {
        let outcome = ScenarioSuite::<u32>::new()
            .spec(ProtocolSpec::flood_set(4, 2, 1))
            .input(vec![3u32, 9, 1, 4])
            .executor(Executor::Threaded)
            .run();
        assert!(outcome.all_ok());
        let case = &outcome.cases()[0];
        assert_eq!(case.executor_index, Some(0));
        assert_eq!(case.report().unwrap().executor(), Executor::Threaded);
    }

    #[test]
    fn grids_mix_synchronous_and_asynchronous_executors() {
        // One condition-based spec, four executors: the same scenario in
        // the synchronous model (simulator and real threads) and in the
        // asynchronous model (shared memory and message passing, where
        // the condition solves ℓ-set agreement with x = t − d).
        let cfg = config();
        let outcome = ScenarioSuite::new()
            .spec(ProtocolSpec::condition_based(
                cfg,
                MaxCondition::new(cfg.legality()),
            ))
            .input(vec![5u32, 5, 1, 2, 5, 5])
            .executors([
                Executor::Simulator,
                Executor::Threaded,
                Executor::AsyncSharedMemory { seed: 9 },
                Executor::AsyncMessagePassing { seed: 9 },
            ])
            .run();
        assert_eq!(outcome.len(), 4);
        assert!(outcome.all_ok(), "every model satisfies its guarantees");
        for (i, case) in outcome.cases().iter().enumerate() {
            assert_eq!(case.executor_index, Some(i), "executor varies slowest");
        }
        let reports: Vec<_> = outcome.reports().collect();
        assert_eq!(reports[0].executor(), Executor::Simulator);
        assert_eq!(
            reports[2].executor(),
            Executor::AsyncSharedMemory { seed: 9 }
        );
        // Sync cells carry traces, async cells carry step reports.
        assert!(reports[1].trace().is_some() && reports[1].async_report().is_none());
        assert!(reports[3].trace().is_none() && reports[3].async_report().is_some());
        // The sync cells check k = 2, the async cells ℓ = 1.
        assert_eq!(reports[0].k(), 2);
        assert_eq!(reports[2].k(), 1);
    }

    #[test]
    fn executor_dimension_sweeps_adversary_seeds() {
        // The async executors carry their seed, so a grid over executors
        // is a grid over schedules — every cell must uphold agreement.
        let params = setagree_conditions::LegalityParams::new(2, 2).unwrap();
        let outcome = ScenarioSuite::new()
            .spec(ProtocolSpec::async_set_agreement(
                5,
                params,
                MaxCondition::new(params),
            ))
            .input(vec![9u32, 9, 8, 8, 1])
            .executors((0..8).map(|seed| Executor::AsyncSharedMemory { seed }))
            .run();
        assert_eq!(outcome.len(), 8);
        assert!(outcome.all_ok(), "ℓ-set agreement on every schedule");
    }

    #[test]
    fn incompatible_cells_fail_positioned_not_panicked() {
        // A flood-set spec cannot run on an async executor: that cell
        // becomes a positioned UnsupportedProtocol, the rest survive.
        let outcome = ScenarioSuite::<u32>::new()
            .spec(ProtocolSpec::flood_set(4, 2, 1))
            .input(vec![3u32, 9, 1, 4])
            .executors([Executor::Simulator, Executor::AsyncSharedMemory { seed: 1 }])
            .run();
        assert_eq!(outcome.len(), 2);
        assert!(outcome.cases()[0].report().is_some());
        let (case, err) = outcome.failures().next().unwrap();
        assert_eq!(case.executor_index, Some(1));
        assert!(matches!(err, ExperimentError::UnsupportedProtocol { .. }));
        assert!(!outcome.all_ok());
    }
}
