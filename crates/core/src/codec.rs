//! Binary wire codec for the full experiment vocabulary: [`Report`]s in
//! both execution shapes (round [`Trace`]s and asynchronous step
//! reports), every [`ExperimentError`] variant, and the
//! `(key, result)` records the [`SuiteCache`](crate::SuiteCache)
//! persists and journals.
//!
//! Built on `setagree-codec`'s [`Writer`]/[`Reader`] primitives, so it
//! inherits the wire tier's discipline: fixed-width little-endian
//! fields, decoding that **never panics** on arbitrary bytes, and
//! length/count vetting *before* any allocation. The encoding is
//! canonical — no optional or variable representations — so
//! encode → decode → encode is byte-identical, the property the
//! `tests/journal_roundtrip.rs` proptest battery pins across every
//! protocol family, executor, outcome and error variant.
//!
//! Layout, in encode order (all integers little-endian; `usize` fields
//! travel as `u64`):
//!
//! ```text
//! record   := key.hi u64 | key.lo u64 | result
//! result   := 0 | report            — a successful run
//!           | 1 | error             — a positioned experiment error
//! report   := shape | k u64 | protocol u8 | executor | input
//! shape    := 0 | predicted u64 | rounds u64 | msgs u64 | outcomes
//!           | 1 | total_steps u64 | async-outcomes
//! input    := count u64 (≥ 1) | value …
//! ```
//!
//! Values travel through [`CacheableValue::encode_wire`], implemented
//! for the integer types the experiments propose.

use std::sync::Arc;

use setagree_async::{AsyncOutcome, AsyncReport};
use setagree_codec::{DecodeError, Reader, Writer};
use setagree_conditions::LegalityParams;
use setagree_sync::{Outcome, Trace};
use setagree_types::{InputVector, ProcessId};

use crate::cache::{CacheKey, CacheableValue, CachedResult};
use crate::experiment::{Executor, ExperimentError, ProtocolKind, TransportKind};
use crate::report::{Execution, Report};

fn invalid(what: &'static str) -> DecodeError {
    DecodeError::Invalid { what }
}

/// Encodes one cache/journal record: the cell's key followed by its
/// result.
pub fn encode_record<V: CacheableValue>(key: &CacheKey, result: &CachedResult<V>) -> Vec<u8> {
    let mut out = Writer::new();
    let (hi, lo) = key.parts();
    out.u64(hi);
    out.u64(lo);
    encode_result(result, &mut out);
    out.into_vec()
}

/// Decodes one record produced by [`encode_record`], demanding that the
/// input holds exactly one record.
///
/// # Errors
///
/// Any [`DecodeError`] — never a panic — on malformed input, including
/// trailing bytes after a complete record.
pub fn decode_record<V: CacheableValue>(
    bytes: &[u8],
) -> Result<(CacheKey, CachedResult<V>), DecodeError> {
    let mut r = Reader::new(bytes);
    let hi = r.u64()?;
    let lo = r.u64()?;
    let result = decode_result(&mut r)?;
    r.finish()?;
    Ok((CacheKey::from_parts(hi, lo), result))
}

/// Encodes a cell result: a successful [`Report`] or its
/// [`ExperimentError`].
pub fn encode_result<V: CacheableValue>(result: &CachedResult<V>, out: &mut Writer) {
    match result {
        Ok(report) => {
            out.u8(0);
            encode_report(report, out);
        }
        Err(error) => {
            out.u8(1);
            encode_error(error, out);
        }
    }
}

/// Decodes a result written by [`encode_result`].
///
/// # Errors
///
/// Any [`DecodeError`] on malformed input; never panics.
pub fn decode_result<V: CacheableValue>(
    r: &mut Reader<'_>,
) -> Result<CachedResult<V>, DecodeError> {
    match r.u8()? {
        0 => Ok(Ok(decode_report(r)?)),
        1 => Ok(Err(decode_error(r)?)),
        _ => Err(invalid("result tag")),
    }
}

/// Encodes a full [`Report`]: execution record (either shape), `k`,
/// protocol, executor (seed included) and the input vector.
pub fn encode_report<V: CacheableValue>(report: &Report<V>, out: &mut Writer) {
    match report.execution() {
        Execution::Rounds {
            trace,
            predicted_rounds,
        } => {
            out.u8(0);
            out.usize(*predicted_rounds);
            out.usize(trace.rounds_executed());
            out.u64(trace.messages_delivered());
            out.usize(trace.outcomes().len());
            for outcome in trace.outcomes() {
                match outcome {
                    Outcome::Decided { value, round } => {
                        out.u8(0);
                        value.encode_wire(out);
                        out.usize(*round);
                    }
                    Outcome::Crashed { round } => {
                        out.u8(1);
                        out.usize(*round);
                    }
                    Outcome::Undecided => out.u8(2),
                }
            }
        }
        Execution::Steps(steps) => {
            out.u8(1);
            out.u64(steps.total_steps());
            out.usize(steps.outcomes().len());
            for outcome in steps.outcomes() {
                match outcome {
                    AsyncOutcome::Decided { value, steps } => {
                        out.u8(0);
                        value.encode_wire(out);
                        out.u64(*steps);
                    }
                    AsyncOutcome::Crashed => out.u8(1),
                    AsyncOutcome::Blocked => out.u8(2),
                    AsyncOutcome::Unfinished => out.u8(3),
                }
            }
        }
    }
    out.usize(report.k());
    encode_protocol(report.protocol(), out);
    encode_executor(report.executor(), out);
    out.usize(report.input().len());
    for value in report.input().iter() {
        value.encode_wire(out);
    }
}

/// Decodes a report written by [`encode_report`].
///
/// # Errors
///
/// Any [`DecodeError`] on malformed input (including an empty input
/// vector, which no run can produce); never panics.
pub fn decode_report<V: CacheableValue>(r: &mut Reader<'_>) -> Result<Report<V>, DecodeError> {
    let execution = match r.u8()? {
        0 => {
            let predicted_rounds = r.usize()?;
            let rounds_executed = r.usize()?;
            let messages_delivered = r.u64()?;
            let count = r.count(1)?;
            let mut outcomes = Vec::with_capacity(count);
            for _ in 0..count {
                outcomes.push(match r.u8()? {
                    0 => Outcome::Decided {
                        value: V::decode_wire(r)?,
                        round: r.usize()?,
                    },
                    1 => Outcome::Crashed { round: r.usize()? },
                    2 => Outcome::Undecided,
                    _ => return Err(invalid("round outcome tag")),
                });
            }
            Execution::Rounds {
                trace: Trace::from_parts(outcomes, rounds_executed, messages_delivered),
                predicted_rounds,
            }
        }
        1 => {
            let total_steps = r.u64()?;
            let count = r.count(1)?;
            let mut outcomes = Vec::with_capacity(count);
            for _ in 0..count {
                outcomes.push(match r.u8()? {
                    0 => AsyncOutcome::Decided {
                        value: V::decode_wire(r)?,
                        steps: r.u64()?,
                    },
                    1 => AsyncOutcome::Crashed,
                    2 => AsyncOutcome::Blocked,
                    3 => AsyncOutcome::Unfinished,
                    _ => return Err(invalid("async outcome tag")),
                });
            }
            Execution::Steps(AsyncReport::from_parts(outcomes, total_steps))
        }
        _ => return Err(invalid("execution shape tag")),
    };
    let k = r.usize()?;
    let protocol = decode_protocol(r)?;
    let executor = decode_executor(r)?;
    let len = r.count(1)?;
    if len == 0 {
        return Err(invalid("empty input vector"));
    }
    let mut entries = Vec::with_capacity(len);
    for _ in 0..len {
        entries.push(V::decode_wire(r)?);
    }
    let input = Arc::new(InputVector::new(entries));
    Ok(match execution {
        Execution::Rounds {
            trace,
            predicted_rounds,
        } => Report::new(trace, input, k, predicted_rounds, protocol, executor),
        Execution::Steps(steps) => Report::new_async(steps, input, k, protocol, executor),
    })
}

fn encode_protocol(protocol: ProtocolKind, out: &mut Writer) {
    out.u8(match protocol {
        ProtocolKind::ConditionBased => 0,
        ProtocolKind::EarlyConditionBased => 1,
        ProtocolKind::EarlyDeciding => 2,
        ProtocolKind::FloodSet => 3,
        ProtocolKind::AsyncSetAgreement => 4,
    });
}

fn decode_protocol(r: &mut Reader<'_>) -> Result<ProtocolKind, DecodeError> {
    Ok(match r.u8()? {
        0 => ProtocolKind::ConditionBased,
        1 => ProtocolKind::EarlyConditionBased,
        2 => ProtocolKind::EarlyDeciding,
        3 => ProtocolKind::FloodSet,
        4 => ProtocolKind::AsyncSetAgreement,
        _ => return Err(invalid("protocol tag")),
    })
}

fn encode_executor(executor: Executor, out: &mut Writer) {
    match executor {
        Executor::Simulator => out.u8(0),
        Executor::Threaded => out.u8(1),
        Executor::AsyncSharedMemory { seed } => {
            out.u8(2);
            out.u64(seed);
        }
        Executor::AsyncMessagePassing { seed } => {
            out.u8(3);
            out.u64(seed);
        }
        Executor::Networked { transport } => {
            out.u8(4);
            encode_transport(transport, out);
        }
    }
}

fn decode_executor(r: &mut Reader<'_>) -> Result<Executor, DecodeError> {
    Ok(match r.u8()? {
        0 => Executor::Simulator,
        1 => Executor::Threaded,
        2 => Executor::AsyncSharedMemory { seed: r.u64()? },
        3 => Executor::AsyncMessagePassing { seed: r.u64()? },
        4 => Executor::Networked {
            transport: decode_transport(r)?,
        },
        _ => return Err(invalid("executor tag")),
    })
}

fn encode_transport(transport: TransportKind, out: &mut Writer) {
    out.u8(match transport {
        TransportKind::Loopback => 0,
        TransportKind::Tcp => 1,
    });
}

fn decode_transport(r: &mut Reader<'_>) -> Result<TransportKind, DecodeError> {
    Ok(match r.u8()? {
        0 => TransportKind::Loopback,
        1 => TransportKind::Tcp,
        _ => return Err(invalid("transport tag")),
    })
}

/// Encodes an [`ExperimentError`] — every variant, so warm reruns
/// reproduce validation failures without re-validating.
pub fn encode_error(error: &ExperimentError, out: &mut Writer) {
    match error {
        ExperimentError::MissingInput => out.u8(0),
        ExperimentError::InputSizeMismatch { expected, got } => {
            out.u8(1);
            out.usize(*expected);
            out.usize(*got);
        }
        ExperimentError::ZeroK => out.u8(2),
        ExperimentError::TooManyCrashes { t, scheduled } => {
            out.u8(3);
            out.usize(*t);
            out.usize(*scheduled);
        }
        ExperimentError::OracleMismatch { expected, got } => {
            out.u8(4);
            out.usize(expected.x());
            out.usize(expected.ell());
            out.usize(got.x());
            out.usize(got.ell());
        }
        ExperimentError::RoundLimitExceeded { limit } => {
            out.u8(5);
            out.usize(*limit);
        }
        ExperimentError::SystemSizeMismatch { processes, pattern } => {
            out.u8(6);
            out.usize(*processes);
            out.usize(*pattern);
        }
        ExperimentError::ProcessPanicked { process } => {
            out.u8(7);
            out.usize(process.index());
        }
        ExperimentError::UnsupportedAdversary { executor } => {
            out.u8(8);
            encode_executor(*executor, out);
        }
        ExperimentError::UnknownCrashVictim { victim, n } => {
            out.u8(9);
            out.usize(victim.index());
            out.usize(*n);
        }
        ExperimentError::UnsupportedProtocol { executor, protocol } => {
            out.u8(10);
            encode_executor(*executor, out);
            encode_protocol(*protocol, out);
        }
        ExperimentError::UnsupportedTransport { transport } => {
            out.u8(11);
            encode_transport(*transport, out);
        }
        ExperimentError::Internal { message } => {
            out.u8(12);
            out.str(message);
        }
        ExperimentError::RoundTimeout { round, peers } => {
            out.u8(13);
            out.usize(*round);
            out.usize(peers.len());
            for peer in peers {
                out.usize(peer.index());
            }
        }
    }
}

/// Decodes an error written by [`encode_error`].
///
/// # Errors
///
/// Any [`DecodeError`] on malformed input (unknown tags, legality
/// parameters no [`LegalityParams::new`] would accept, bad UTF-8);
/// never panics.
pub fn decode_error(r: &mut Reader<'_>) -> Result<ExperimentError, DecodeError> {
    let params = |x, ell| LegalityParams::new(x, ell).map_err(|_| invalid("legality params"));
    Ok(match r.u8()? {
        0 => ExperimentError::MissingInput,
        1 => ExperimentError::InputSizeMismatch {
            expected: r.usize()?,
            got: r.usize()?,
        },
        2 => ExperimentError::ZeroK,
        3 => ExperimentError::TooManyCrashes {
            t: r.usize()?,
            scheduled: r.usize()?,
        },
        4 => ExperimentError::OracleMismatch {
            expected: params(r.usize()?, r.usize()?)?,
            got: params(r.usize()?, r.usize()?)?,
        },
        5 => ExperimentError::RoundLimitExceeded { limit: r.usize()? },
        6 => ExperimentError::SystemSizeMismatch {
            processes: r.usize()?,
            pattern: r.usize()?,
        },
        7 => ExperimentError::ProcessPanicked {
            process: ProcessId::new(r.usize()?),
        },
        8 => ExperimentError::UnsupportedAdversary {
            executor: decode_executor(r)?,
        },
        9 => ExperimentError::UnknownCrashVictim {
            victim: ProcessId::new(r.usize()?),
            n: r.usize()?,
        },
        10 => ExperimentError::UnsupportedProtocol {
            executor: decode_executor(r)?,
            protocol: decode_protocol(r)?,
        },
        11 => ExperimentError::UnsupportedTransport {
            transport: decode_transport(r)?,
        },
        12 => ExperimentError::Internal {
            message: r.str()?.to_owned(),
        },
        13 => ExperimentError::RoundTimeout {
            round: r.usize()?,
            peers: {
                let count = r.count(1)?;
                let mut peers = Vec::with_capacity(count);
                for _ in 0..count {
                    peers.push(ProcessId::new(r.usize()?));
                }
                peers
            },
        },
        _ => return Err(invalid("error tag")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::stable_pair;

    fn all_errors() -> Vec<ExperimentError> {
        let params = |x, ell| LegalityParams::new(x, ell).unwrap();
        vec![
            ExperimentError::MissingInput,
            ExperimentError::InputSizeMismatch {
                expected: 4,
                got: 6,
            },
            ExperimentError::ZeroK,
            ExperimentError::TooManyCrashes { t: 2, scheduled: 3 },
            ExperimentError::OracleMismatch {
                expected: params(1, 1),
                got: params(3, 2),
            },
            ExperimentError::RoundLimitExceeded { limit: 12 },
            ExperimentError::SystemSizeMismatch {
                processes: 8,
                pattern: 6,
            },
            ExperimentError::ProcessPanicked {
                process: ProcessId::new(3),
            },
            ExperimentError::UnsupportedAdversary {
                executor: Executor::AsyncSharedMemory { seed: 9 },
            },
            ExperimentError::UnknownCrashVictim {
                victim: ProcessId::new(7),
                n: 4,
            },
            ExperimentError::UnsupportedProtocol {
                executor: Executor::Networked {
                    transport: TransportKind::Tcp,
                },
                protocol: ProtocolKind::AsyncSetAgreement,
            },
            ExperimentError::UnsupportedTransport {
                transport: TransportKind::Tcp,
            },
            ExperimentError::Internal {
                message: "spaces, %, é → ∞, and\nnewlines".into(),
            },
            ExperimentError::RoundTimeout {
                round: 3,
                peers: vec![ProcessId::new(1), ProcessId::new(4)],
            },
        ]
    }

    #[test]
    fn every_error_variant_round_trips_byte_identically() {
        for error in all_errors() {
            let key = CacheKey::combine(&[stable_pair(&format!("{error:?}"))]);
            let bytes = encode_record::<u32>(&key, &Err(error.clone()));
            let (back_key, back) = decode_record::<u32>(&bytes).expect("round trip");
            assert_eq!(back_key, key);
            assert_eq!(back, Err(error));
            assert_eq!(
                encode_record::<u32>(&back_key, &back),
                bytes,
                "canonical re-encode"
            );
        }
    }

    #[test]
    fn reports_in_both_shapes_round_trip() {
        let input = Arc::new(InputVector::new(vec![7u32, 7, 2, 9]));
        let rounds: Report<u32> = Report::new(
            Trace::from_parts(
                vec![
                    Outcome::Decided { value: 7, round: 2 },
                    Outcome::Crashed { round: 1 },
                    Outcome::Undecided,
                    Outcome::Decided { value: 9, round: 3 },
                ],
                3,
                42,
            ),
            Arc::clone(&input),
            2,
            3,
            ProtocolKind::ConditionBased,
            Executor::Threaded,
        );
        let steps: Report<u32> = Report::new_async(
            AsyncReport::from_parts(
                vec![
                    AsyncOutcome::Decided {
                        value: 7,
                        steps: 11,
                    },
                    AsyncOutcome::Crashed,
                    AsyncOutcome::Blocked,
                    AsyncOutcome::Unfinished,
                ],
                99,
            ),
            input,
            1,
            ProtocolKind::AsyncSetAgreement,
            Executor::AsyncMessagePassing { seed: 5 },
        );
        for report in [rounds, steps] {
            let mut out = Writer::new();
            encode_result(&Ok(report.clone()), &mut out);
            let bytes = out.into_vec();
            let mut r = Reader::new(&bytes);
            let back = decode_result::<u32>(&mut r).expect("round trip");
            r.finish().expect("nothing trailing");
            assert_eq!(back, Ok(report));
            let mut again = Writer::new();
            encode_result(&back, &mut again);
            assert_eq!(again.into_vec(), bytes, "canonical re-encode");
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_and_never_decode_trailing_garbage() {
        // A deterministic pseudo-random probe; the real fuzz battery
        // lives in tests/journal_roundtrip.rs.
        let mut state = 0x2545F491_4F6CDD1Du64;
        for len in 0..256usize {
            let mut bytes = Vec::with_capacity(len);
            for _ in 0..len {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                bytes.push(state as u8);
            }
            let _ = decode_record::<u32>(&bytes);
        }
        // A valid record plus one trailing byte is malformed, not valid.
        let key = CacheKey::combine(&[stable_pair(&1u8)]);
        let mut bytes = encode_record::<u32>(&key, &Err(ExperimentError::ZeroK));
        bytes.push(0);
        assert_eq!(
            decode_record::<u32>(&bytes),
            Err(DecodeError::Invalid {
                what: "trailing bytes"
            })
        );
    }

    #[test]
    fn hostile_outcome_counts_are_rejected_before_allocating() {
        let mut out = Writer::new();
        out.u64(1); // key hi
        out.u64(2); // key lo
        out.u8(0); // ok
        out.u8(0); // rounds shape
        out.usize(1); // predicted
        out.usize(1); // executed
        out.u64(0); // messages
        out.u64(u64::MAX); // outcome count: hostile
        let bytes = out.into_vec();
        assert_eq!(
            decode_record::<u32>(&bytes),
            Err(DecodeError::Oversized { claimed: u64::MAX })
        );
    }
}
