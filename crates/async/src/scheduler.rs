//! The asynchronous **shared-memory adversary**: a seeded scheduler
//! interleaving process steps, with crash injection.
//!
//! # Adversary model
//!
//! Asynchrony is modelled as an adversary choosing, at every tick, which
//! process performs its next linearized memory operation (one register
//! write or one atomic snapshot per tick). The [`Scheduler`] draws that
//! choice uniformly from the runnable processes using a seeded RNG, so
//! an execution is an arbitrary-but-replayable interleaving: processes
//! can be starved for long stretches, overtaken arbitrarily often, and
//! crashed mid-protocol via an [`AsyncCrashes`] schedule (a process with
//! a step budget of `b` halts forever once it has taken `b` steps; `0`
//! is the asynchronous analogue of an initial crash). A global step
//! budget bounds the run — processes still waiting when it runs out are
//! reported as [`AsyncOutcome::Unfinished`](crate::AsyncOutcome), which
//! is how over-budget crash schedules (more than `x` crashes) surface
//! the impossibility frontier instead of hanging.
//!
//! # Seeding and determinism
//!
//! The same `(seed, input, crashes, budget)` quadruple replays the
//! byte-identical execution — that is what makes an asynchronous run a
//! [`Scenario`](../../setagree_core/experiment/struct.Scenario.html) in
//! the unified experiment API: inert, replayable data. The seed lives in the
//! executor (`Executor::AsyncSharedMemory { seed }`), not in the spec.
//! Which *outcome distribution* a range of seeds produces depends on the
//! RNG stream, so tests should assert the model's guarantees across
//! seeds (agreement, termination under ≤ x crashes) rather than exact
//! per-seed outcomes.
//!
//! # Example
//!
//! Drive the algorithm through the unified experiment API:
//!
//! ```
//! use setagree_conditions::{LegalityParams, MaxCondition};
//! use setagree_core::{Executor, Scenario};
//!
//! let params = LegalityParams::new(1, 1)?; // (x, ℓ): consensus despite 1 crash
//! let report = Scenario::async_set_agreement(4, params, MaxCondition::new(params))
//!     .input(vec![7u32, 7, 7, 2]) // top value covers > x entries: in C_max
//!     .executor(Executor::AsyncSharedMemory { seed: 42 })
//!     .run()?;
//! assert!(report.satisfies_all());
//! assert_eq!(report.executor(), Executor::AsyncSharedMemory { seed: 42 });
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use setagree_conditions::ConditionOracle;
use setagree_types::{InputVector, ProcessId, ProposalValue};

use crate::memory::SharedMemory;
use crate::process::CondSetAgreement;
use crate::report::{AsyncOutcome, AsyncReport};

/// Which processes crash, and after how many of their own steps.
///
/// A budget of `0` steps crashes the process before it writes its proposal
/// (the asynchronous analogue of an initial crash).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct AsyncCrashes {
    crashes: BTreeMap<ProcessId, u64>,
}

impl AsyncCrashes {
    /// No crashes.
    pub fn none() -> Self {
        AsyncCrashes::default()
    }

    /// Crashes `id` after it has taken `steps` steps.
    pub fn crash_after(mut self, id: ProcessId, steps: u64) -> Self {
        self.crashes.insert(id, steps);
        self
    }

    /// The number of faulty processes.
    pub fn fault_count(&self) -> usize {
        self.crashes.len()
    }

    /// The step budget after which `id` crashes, if it is faulty.
    pub fn budget(&self, id: ProcessId) -> Option<u64> {
        self.crashes.get(&id).copied()
    }

    /// The scheduled victims, in process order — lets callers validate a
    /// schedule against their system size (the engines silently ignore
    /// out-of-range victims, since a schedule does not fix `n`).
    pub fn victims(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.crashes.keys().copied()
    }
}

/// A seeded, adversarial interleaving of process steps.
///
/// Each scheduler tick picks a uniformly random runnable process and lets
/// it perform one linearized memory operation. Determinism: the same seed,
/// crashes and inputs replay the same execution.
#[derive(Debug)]
pub struct Scheduler {
    rng: SmallRng,
    max_steps: u64,
}

impl Scheduler {
    /// A scheduler with the given seed and a global step budget (the run
    /// stops once the budget is exhausted; still-running processes are
    /// reported as blocked-by-scheduler via [`AsyncOutcome::Unfinished`]).
    pub fn new(seed: u64, max_steps: u64) -> Self {
        Scheduler {
            rng: SmallRng::seed_from_u64(seed),
            max_steps,
        }
    }

    /// Runs the processes to completion (or budget exhaustion).
    pub fn run<V, O>(
        &mut self,
        mut processes: Vec<CondSetAgreement<V, O>>,
        memory: &mut SharedMemory<V>,
        crashes: &AsyncCrashes,
    ) -> AsyncReport<V>
    where
        V: ProposalValue,
        O: ConditionOracle<V>,
    {
        let n = processes.len();
        let mut crashed = vec![false; n];
        let mut total_steps: u64 = 0;

        loop {
            let runnable: Vec<usize> = (0..n)
                .filter(|&i| !crashed[i] && !processes[i].is_settled())
                .collect();
            if runnable.is_empty() || total_steps >= self.max_steps {
                break;
            }
            let idx = runnable[self.rng.gen_range(0..runnable.len())];
            let id = ProcessId::new(idx);
            // Crash check: a process with an exhausted budget stops now.
            if let Some(budget) = crashes.budget(id) {
                if processes[idx].steps_taken() >= budget {
                    crashed[idx] = true;
                    continue;
                }
            }
            processes[idx].step(memory);
            total_steps += 1;
        }

        let outcomes = processes
            .iter()
            .enumerate()
            .map(|(i, p)| {
                if crashed[i] {
                    AsyncOutcome::Crashed
                } else {
                    match p.decision() {
                        Some(v) => AsyncOutcome::Decided {
                            value: v.clone(),
                            steps: p.steps_taken(),
                        },
                        None if p.is_settled() => AsyncOutcome::Blocked,
                        None => AsyncOutcome::Unfinished,
                    }
                }
            })
            .collect();
        AsyncReport::new(outcomes, total_steps)
    }
}

/// The default global step budget for an `n`-process run: each process
/// needs 2 steps plus retries while waiting for slow writers; `n² × 16`
/// covers every schedule comfortably.
pub fn default_step_budget(n: usize) -> u64 {
    (n as u64).pow(2) * 16 + 64
}

/// The shared-memory engine entry point: builds the processes from an
/// input vector and runs them under the seeded scheduler with an explicit
/// global step budget.
///
/// `x` is the crash tolerance the oracle's condition is designed for; the
/// schedule in `crashes` may exceed it (the function does not enforce the
/// bound — over-budget schedules are how the tests probe the
/// impossibility frontier, and stranded processes surface honestly as
/// [`AsyncOutcome::Unfinished`](crate::AsyncOutcome)).
///
/// This is the backend behind `Executor::AsyncSharedMemory { seed }` in
/// `setagree-core`; experiments should go through that API rather than
/// call this directly.
pub fn execute_shared_memory<V, O>(
    oracle: &O,
    x: usize,
    input: &InputVector<V>,
    crashes: &AsyncCrashes,
    seed: u64,
    max_steps: u64,
) -> AsyncReport<V>
where
    V: ProposalValue,
    O: ConditionOracle<V> + Clone,
{
    let n = input.len();
    let mut memory = SharedMemory::new(n);
    let processes: Vec<CondSetAgreement<V, O>> = ProcessId::all(n)
        .map(|id| CondSetAgreement::new(id, x, input.get(id).clone(), oracle.clone()))
        .collect();
    Scheduler::new(seed, max_steps).run(processes, &mut memory, crashes)
}

/// One-call helper: [`execute_shared_memory`] with the default budget.
///
/// # Errors
///
/// Infallible; the unified entry point reports failures through
/// `ExperimentError` instead.
#[deprecated(
    since = "0.2.0",
    note = "use `Scenario::async_set_agreement(n, params, oracle).input(input)\
            .pattern(crashes).executor(Executor::AsyncSharedMemory { seed }).run()`"
)]
pub fn run_async<V, O>(
    oracle: &O,
    x: usize,
    input: &InputVector<V>,
    crashes: &AsyncCrashes,
    seed: u64,
) -> AsyncReport<V>
where
    V: ProposalValue,
    O: ConditionOracle<V> + Clone,
{
    execute_shared_memory(
        oracle,
        x,
        input,
        crashes,
        seed,
        default_step_budget(input.len()),
    )
}

#[cfg(test)]
// The tests drive the deprecated `run_async` shim on purpose: it must
// keep replaying the engine's executions byte-for-byte until it is
// removed, so exercising it here keeps its budget wiring covered.
#[allow(deprecated)]
mod tests {
    use super::*;
    use setagree_conditions::{LegalityParams, MaxCondition};

    fn oracle(x: usize, ell: usize) -> MaxCondition {
        MaxCondition::new(LegalityParams::new(x, ell).unwrap())
    }

    fn input(entries: &[u32]) -> InputVector<u32> {
        InputVector::new(entries.to_vec())
    }

    #[test]
    fn failure_free_in_condition_terminates_with_ell_values() {
        // (x, ℓ) = (2, 2); input's top-2 {8, 9} occupy 4 > 2 entries: in C.
        let inp = input(&[9, 9, 8, 8, 1]);
        for seed in 0..30 {
            let report = run_async(&oracle(2, 2), 2, &inp, &AsyncCrashes::none(), seed);
            assert!(report.all_settled_or_crashed(), "seed {seed}");
            assert!(report.decided_values().len() <= 2, "seed {seed}");
            for v in report.decided_values() {
                assert!(inp.distinct_values().contains(&v), "seed {seed}");
            }
            assert_eq!(report.crashed_count(), 0);
            assert_eq!(report.blocked_count(), 0);
        }
    }

    #[test]
    fn terminates_despite_x_crashes() {
        let inp = input(&[9, 9, 9, 2, 3]);
        let crashes = AsyncCrashes::none()
            .crash_after(ProcessId::new(3), 0)
            .crash_after(ProcessId::new(4), 1);
        for seed in 0..30 {
            let report = run_async(&oracle(2, 1), 2, &inp, &crashes, seed);
            assert!(report.all_settled_or_crashed(), "seed {seed}: {report}");
            // Model guarantee, not a seed artefact: a budgeted process
            // stays runnable until scheduled past its budget, and the run
            // cannot end while it is runnable — so both crashes land on
            // every schedule.
            assert_eq!(report.crashed_count(), 2);
            // ℓ = 1: consensus-grade agreement among survivors.
            assert!(report.decided_values().len() <= 1, "seed {seed}");
        }
    }

    #[test]
    fn blocks_outside_condition() {
        // All values distinct: outside C_max(1,1). A process whose
        // snapshot refutes the condition blocks — the honest price of the
        // condition-based approach. A process whose early n − x snapshot
        // is still *compatible* with C may decide optimistically;
        // agreement must hold among those regardless. The last writer
        // always snapshots the full vector, so at least one process
        // blocks on every schedule.
        let inp = input(&[1, 2, 3, 4]);
        let mut fully_blocked = 0;
        for seed in 0..30 {
            let report = run_async(&oracle(1, 1), 1, &inp, &AsyncCrashes::none(), seed);
            assert!(report.all_settled_or_crashed(), "seed {seed}: {report}");
            assert!(
                report.blocked_count() >= 1,
                "seed {seed}: full snapshot must refute C"
            );
            assert!(report.decided_values().len() <= 1, "seed {seed}: agreement");
            if report.blocked_count() == 4 {
                fully_blocked += 1;
            }
        }
        assert!(fully_blocked > 0, "some schedule must block every process");
    }

    #[test]
    fn too_many_crashes_strand_the_survivor_on_every_schedule() {
        // x = 1 condition but 3 initial crashes: the lone survivor can
        // only ever see its own entry, one short of the n − x = 3 it
        // waits for. That is a model guarantee — no initial crasher ever
        // writes — so it holds on *every* schedule, not just one seed.
        let inp = input(&[5, 5, 1, 2]);
        let crashes = AsyncCrashes::none()
            .crash_after(ProcessId::new(0), 0)
            .crash_after(ProcessId::new(1), 0)
            .crash_after(ProcessId::new(2), 0);
        for seed in 0..30 {
            let report = run_async(&oracle(1, 1), 1, &inp, &crashes, seed);
            assert_eq!(report.crashed_count(), 3, "seed {seed}");
            assert_eq!(report.unfinished_count(), 1, "seed {seed}: {report}");
            assert!(!report.all_settled_or_crashed(), "seed {seed}");
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let inp = input(&[9, 9, 8, 8, 1]);
        let crashes = AsyncCrashes::none().crash_after(ProcessId::new(2), 1);
        let a = run_async(&oracle(2, 2), 2, &inp, &crashes, 99);
        let b = run_async(&oracle(2, 2), 2, &inp, &crashes, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn crash_accounting() {
        let c = AsyncCrashes::none()
            .crash_after(ProcessId::new(0), 0)
            .crash_after(ProcessId::new(1), 2);
        assert_eq!(c.fault_count(), 2);
        assert_eq!(AsyncCrashes::none().fault_count(), 0);
    }
}
