//! The asynchronous **message-passing** substrate and the condition-based
//! ℓ-set agreement algorithm on top of it.
//!
//! Section 4's condition-based approach works in both asynchronous models
//! the literature uses: shared memory (see [`memory`](crate::memory)) and
//! reliable message passing (the FLP setting of \[10\]). This module
//! implements the latter: point-to-point channels with unbounded,
//! adversarially-chosen delays, no loss, no duplication.
//!
//! The algorithm is the message-passing rendering of the same idea:
//!
//! 1. broadcast your proposal (reliable broadcast is trivial with
//!    reliable channels and crash faults — the sender either reaches
//!    everyone or is allowed to have its echoes missing);
//! 2. collect proposals until `n − x` distinct senders are represented;
//! 3. decide `max(h_ℓ(J))` from the assembled view `J` when `P(J)` holds.
//!
//! # Guarantees — and an honest limitation
//!
//! Unlike the snapshot-based version, two processes' views here are **not**
//! ordered by containment: the adversary can deliver different subsets.
//! What still holds is Definition 4's *monotonicity*: every view `J ≤ I`
//! decodes to `h_ℓ(J) ⊆ h_ℓ(I)`. Hence, **when the input vector is in the
//! condition**, every decided value lies in `h_ℓ(I)` — at most ℓ distinct
//! values — and termination follows with at most `x` crashes. Deciders
//! also re-broadcast their locked-in views, which speeds late deciders up.
//!
//! **Outside the condition no guarantee survives**: incomparable partial
//! views can decode through *different completions* and split (the
//! `out_of_condition_safety_is_not_guaranteed` test exhibits it). This is
//! not sloppiness but the known gap between the models: \[20\]'s
//! message-passing protocol closes it by emulating registers over majority
//! quorums (ABD), which re-linearizes the views — i.e. it reduces to the
//! shared-memory substrate in [`memory`](crate::memory). The paper's
//! Section 4 claims (solvability *under the condition*) are what this
//! module reproduces natively in the message-passing model.
//!
//! # Adversary model and seeding
//!
//! The adversary controls *delivery order*: at every tick it picks any
//! in-flight message and delivers it (reliable channels — no loss, no
//! duplication, unbounded reordering). The seeded runner draws that pick
//! from a `u64`-seeded RNG, so the same `(seed, input, crashes, budget)`
//! replays the byte-identical execution; the seed lives in the executor
//! (`Executor::AsyncMessagePassing { seed }`) of the unified experiment
//! API. Crashes *silence* a process once enough messages have been
//! delivered to it (its earlier sends may still arrive: crash faults,
//! not omission faults); a zero budget cancels even its initial
//! broadcast. A global delivery budget bounds the run, and processes
//! still waiting at exhaustion are reported as
//! [`AsyncOutcome::Unfinished`](crate::AsyncOutcome). As with the
//! shared-memory scheduler, outcome *distributions* over seed ranges
//! depend on the RNG stream — assert model guarantees across seeds, not
//! exact per-seed outcomes.
//!
//! # Example
//!
//! ```
//! use setagree_conditions::{LegalityParams, MaxCondition};
//! use setagree_core::{Executor, Scenario};
//!
//! let params = LegalityParams::new(1, 1)?;
//! let report = Scenario::async_set_agreement(4, params, MaxCondition::new(params))
//!     .input(vec![5u32, 5, 5, 2])
//!     .executor(Executor::AsyncMessagePassing { seed: 42 })
//!     .run()?;
//! assert!(report.satisfies_all());
//! assert!(report.decided_values().len() <= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use setagree_conditions::ConditionOracle;
use setagree_types::{InputVector, ProcessId, ProposalValue, View};

use crate::report::{AsyncOutcome, AsyncReport};

/// A message of the asynchronous message-passing algorithm: a (partial)
/// view of the input vector. Initial broadcasts carry the single-entry
/// view holding the sender's proposal; decider re-broadcasts carry the
/// full view the decider locked in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MpMessage<V> {
    /// The observed entries being gossiped.
    pub view: View<V>,
}

/// The state of one message-passing process.
#[derive(Debug)]
struct MpProcess<V> {
    view: View<V>,
    decided: Option<V>,
    blocked: bool,
    steps: u64,
}

/// An in-flight message.
#[derive(Debug, Clone)]
struct InFlight<V> {
    to: usize,
    msg: MpMessage<V>,
}

/// The asynchronous message-passing system: `n` processes, reliable
/// channels, a seeded adversary choosing which in-flight message is
/// delivered next, and crash injection by *silencing* a process (its
/// undelivered messages may still arrive — crash faults, not omission).
///
/// # Example
///
/// ```
/// use setagree_async::message_passing::{default_delivery_budget, execute_message_passing};
/// use setagree_async::AsyncCrashes;
/// use setagree_conditions::{LegalityParams, MaxCondition};
/// use setagree_types::InputVector;
///
/// let params = LegalityParams::new(1, 1).unwrap();
/// let oracle = MaxCondition::new(params);
/// let input = InputVector::new(vec![5u32, 5, 5, 2]);
/// let report = execute_message_passing(
///     &oracle, 1, &input, &AsyncCrashes::none(), 42, default_delivery_budget(4));
/// assert!(report.all_correct_decided());
/// assert!(report.decided_values().len() <= 1);
/// ```
#[derive(Debug)]
pub struct MessagePassingSystem<V, O> {
    oracle: O,
    x: usize,
    processes: Vec<MpProcess<V>>,
    in_flight: VecDeque<InFlight<V>>,
    crashed: Vec<bool>,
    delivered: u64,
}

impl<V: ProposalValue, O: ConditionOracle<V>> MessagePassingSystem<V, O> {
    /// Creates the system with every proposal already broadcast (the
    /// algorithm's step 1): `n·(n−1)` single-entry view messages start in
    /// flight.
    pub fn new(oracle: O, x: usize, input: &InputVector<V>) -> Self {
        let n = input.len();
        let mut processes = Vec::with_capacity(n);
        let mut in_flight = VecDeque::new();
        for id in ProcessId::all(n) {
            let mut view = View::all_bottom(n);
            view.set(id, input.get(id).clone());
            processes.push(MpProcess {
                view: view.clone(),
                decided: None,
                blocked: false,
                steps: 0,
            });
            for to in 0..n {
                if to != id.index() {
                    in_flight.push_back(InFlight {
                        to,
                        msg: MpMessage { view: view.clone() },
                    });
                }
            }
        }
        MessagePassingSystem {
            oracle,
            x,
            processes,
            in_flight,
            crashed: vec![false; n],
            delivered: 0,
        }
    }

    /// Crashes a process: it stops reacting, though its already-sent
    /// messages may still be delivered (crash ≠ omission).
    pub fn crash(&mut self, id: ProcessId) {
        self.crashed[id.index()] = true;
    }

    /// Number of messages still in flight.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Delivers the `choice`-th in-flight message (adversary's pick);
    /// returns `false` when nothing is in flight.
    pub fn deliver_nth(&mut self, choice: usize) -> bool {
        let Some(flight) = remove_nth(&mut self.in_flight, choice) else {
            return false;
        };
        self.delivered += 1;
        let to = flight.to;
        if self.crashed[to] {
            return true; // delivered into the void
        }
        let n = self.processes.len();
        let (decided_before, view_after) = {
            let proc = &mut self.processes[to];
            proc.steps += 1;
            // Merge the gossiped view into ours: the union keeps every
            // observed entry.
            proc.view.merge_from(&flight.msg.view);
            (proc.decided.is_some() || proc.blocked, proc.view.clone())
        };
        if decided_before {
            return true;
        }
        let visible = view_after.len() - view_after.count_bottom();
        if visible + self.x < n {
            return true; // below the n − x threshold, keep collecting
        }
        match self.oracle.decode_view(&view_after) {
            Some(decoded) => {
                let value = decoded
                    .into_iter()
                    .max()
                    .expect("Theorem 1: non-empty for ≤ x missing entries");
                self.processes[to].decided = Some(value);
                // Re-broadcast the locked-in view: late processes reach
                // their threshold faster (a liveness boost, not a safety
                // mechanism — see the module-level limitation note).
                for other in 0..n {
                    if other != to {
                        self.in_flight.push_back(InFlight {
                            to: other,
                            msg: MpMessage {
                                view: view_after.clone(),
                            },
                        });
                    }
                }
            }
            None => {
                self.processes[to].blocked = true;
            }
        }
        true
    }

    /// Wraps up into a report.
    pub fn into_report(self) -> AsyncReport<V> {
        let outcomes = self
            .processes
            .iter()
            .enumerate()
            .map(|(i, p)| {
                if self.crashed[i] {
                    AsyncOutcome::Crashed
                } else {
                    match &p.decided {
                        Some(v) => AsyncOutcome::Decided {
                            value: v.clone(),
                            steps: p.steps,
                        },
                        None if p.blocked => AsyncOutcome::Blocked,
                        None => AsyncOutcome::Unfinished,
                    }
                }
            })
            .collect();
        AsyncReport::new(outcomes, self.delivered)
    }
}

fn remove_nth<T>(queue: &mut VecDeque<T>, n: usize) -> Option<T> {
    if queue.is_empty() {
        return None;
    }
    let idx = n % queue.len();
    queue.remove(idx)
}

/// The default global delivery budget for an `n`-process run: `n·(n−1)`
/// initial broadcasts plus decider re-broadcasts and waiting slack;
/// `n² × 32` covers every schedule comfortably.
pub fn default_delivery_budget(n: usize) -> u64 {
    (n as u64).pow(2) * 32 + 128
}

/// The message-passing engine entry point, mirroring
/// [`execute_shared_memory`](crate::scheduler::execute_shared_memory):
/// runs the algorithm under a seeded delivery adversary with an explicit
/// delivery budget.
///
/// `crashes` uses the same schedule type as the shared-memory runner; a
/// process is silenced once `steps` of its messages have been delivered
/// *to* it (crash timing in an async message-passing system is only
/// meaningful relative to deliveries).
///
/// This is the backend behind `Executor::AsyncMessagePassing { seed }` in
/// `setagree-core`; experiments should go through that API rather than
/// call this directly.
pub fn execute_message_passing<V, O>(
    oracle: &O,
    x: usize,
    input: &InputVector<V>,
    crashes: &crate::scheduler::AsyncCrashes,
    seed: u64,
    max_deliveries: u64,
) -> AsyncReport<V>
where
    V: ProposalValue,
    O: ConditionOracle<V> + Clone,
{
    let n = input.len();
    let mut system = MessagePassingSystem::new(oracle.clone(), x, input);
    // Apply zero-step crashes up front (the process never participates
    // beyond its initial broadcast — which, for an initial crash, we
    // cancel by dropping its outgoing messages).
    let mut initial: Vec<ProcessId> = Vec::new();
    for id in ProcessId::all(n) {
        if crashes.budget(id) == Some(0) {
            system.crash(id);
            initial.push(id);
        }
    }
    if !initial.is_empty() {
        // Remove the initial crashers' broadcasts: they "took no step".
        system.in_flight.retain(|flight| {
            let j = &flight.msg.view;
            !initial
                .iter()
                .any(|id| j.get(*id).is_some() && j.count_bottom() == n - 1)
        });
    }

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut steps = 0u64;
    while steps < max_deliveries && system.in_flight_count() > 0 {
        // Late crashes: silence processes whose delivery budget ran out.
        for id in ProcessId::all(n) {
            if let Some(b) = crashes.budget(id) {
                if b > 0 && system.processes[id.index()].steps >= b {
                    system.crash(id);
                }
            }
        }
        let choice = rng.gen_range(0..usize::MAX);
        system.deliver_nth(choice);
        steps += 1;
    }
    system.into_report()
}

/// One-call helper: [`execute_message_passing`] with the default budget.
///
/// # Errors
///
/// Infallible; the unified entry point reports failures through
/// `ExperimentError` instead.
#[deprecated(
    since = "0.2.0",
    note = "use `Scenario::async_set_agreement(n, params, oracle).input(input)\
            .pattern(crashes).executor(Executor::AsyncMessagePassing { seed }).run()`"
)]
pub fn run_message_passing<V, O>(
    oracle: &O,
    x: usize,
    input: &InputVector<V>,
    crashes: &crate::scheduler::AsyncCrashes,
    seed: u64,
) -> AsyncReport<V>
where
    V: ProposalValue,
    O: ConditionOracle<V> + Clone,
{
    execute_message_passing(
        oracle,
        x,
        input,
        crashes,
        seed,
        default_delivery_budget(input.len()),
    )
}

#[cfg(test)]
// The tests drive the deprecated `run_message_passing` shim on purpose:
// it must keep replaying the engine's executions byte-for-byte until it
// is removed, so exercising it here keeps its budget wiring covered.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::scheduler::AsyncCrashes;
    use setagree_conditions::{LegalityParams, MaxCondition};

    fn oracle(x: usize, ell: usize) -> MaxCondition {
        MaxCondition::new(LegalityParams::new(x, ell).unwrap())
    }

    fn input(entries: &[u32]) -> InputVector<u32> {
        InputVector::new(entries.to_vec())
    }

    #[test]
    fn failure_free_terminates_with_ell_values() {
        let inp = input(&[9, 9, 8, 8, 1]);
        for seed in 0..40 {
            let report = run_message_passing(&oracle(2, 2), 2, &inp, &AsyncCrashes::none(), seed);
            assert!(report.all_correct_decided(), "seed {seed}: {report}");
            assert!(
                report.decided_values().len() <= 2,
                "seed {seed}: {:?}",
                report.decided_values()
            );
            for v in report.decided_values() {
                assert!(inp.distinct_values().contains(&v), "seed {seed}");
            }
        }
    }

    #[test]
    fn consensus_grade_agreement() {
        let inp = input(&[7, 7, 7, 2, 3, 7]);
        for seed in 0..40 {
            let report = run_message_passing(&oracle(2, 1), 2, &inp, &AsyncCrashes::none(), seed);
            assert!(report.all_correct_decided(), "seed {seed}");
            assert!(report.decided_values().len() <= 1, "seed {seed}");
        }
    }

    #[test]
    fn terminates_despite_x_initial_crashes() {
        let inp = input(&[9, 9, 9, 2, 3]);
        let crashes = AsyncCrashes::none()
            .crash_after(ProcessId::new(3), 0)
            .crash_after(ProcessId::new(4), 0);
        for seed in 0..30 {
            let report = run_message_passing(&oracle(2, 1), 2, &inp, &crashes, seed);
            assert_eq!(report.crashed_count(), 2, "seed {seed}");
            assert!(report.all_correct_decided(), "seed {seed}: {report}");
            assert!(report.decided_values().len() <= 1, "seed {seed}");
        }
    }

    /// The documented limitation, exhibited: outside the condition the
    /// raw message-passing collect is **unsafe** — incomparable partial
    /// views decode through different completions and split. ([20]'s
    /// message-passing protocol avoids this by emulating registers over
    /// majority quorums, i.e. by reducing to the shared-memory substrate,
    /// which our `scheduler::run_async` keeps safe unconditionally.)
    #[test]
    fn out_of_condition_safety_is_not_guaranteed() {
        let inp = input(&[1, 2, 3, 4]);
        let mut blocked_total = 0;
        let mut max_decided = 0;
        for seed in 0..40 {
            let report = run_message_passing(&oracle(1, 1), 1, &inp, &AsyncCrashes::none(), seed);
            max_decided = max_decided.max(report.decided_values().len());
            blocked_total += report.blocked_count();
        }
        assert!(blocked_total > 0, "full views must prove non-membership");
        // Existence claim over a seed *range*, not an exact per-seed
        // outcome: the split only needs to be reachable somewhere in the
        // sweep, which survives changes to the RNG stream far better
        // than pinning the seed that exhibits it.
        assert!(
            max_decided > 1,
            "the split must be reachable — otherwise the limitation is stale"
        );
        // Contrast: the shared-memory substrate stays safe on the same
        // out-of-condition input under every schedule.
        for seed in 0..40 {
            let sm =
                crate::scheduler::run_async(&oracle(1, 1), 1, &inp, &AsyncCrashes::none(), seed);
            assert!(
                sm.decided_values().len() <= 1,
                "seed {seed}: snapshots keep MP-safety"
            );
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let inp = input(&[9, 9, 8, 8, 1]);
        let a = run_message_passing(&oracle(2, 2), 2, &inp, &AsyncCrashes::none(), 77);
        let b = run_message_passing(&oracle(2, 2), 2, &inp, &AsyncCrashes::none(), 77);
        assert_eq!(a, b);
    }

    #[test]
    fn shared_memory_and_message_passing_agree_on_guarantees() {
        // Same oracle, same input: both substrates terminate with ≤ ℓ
        // values (the decided values themselves may differ — different
        // adversaries).
        let inp = input(&[6, 6, 5, 5, 1, 6]);
        let o = oracle(2, 2);
        for seed in 0..20 {
            let mp = run_message_passing(&o, 2, &inp, &AsyncCrashes::none(), seed);
            let sm = crate::scheduler::run_async(&o, 2, &inp, &AsyncCrashes::none(), seed);
            for r in [&mp, &sm] {
                assert!(r.all_correct_decided(), "seed {seed}");
                assert!(r.decided_values().len() <= 2, "seed {seed}");
            }
        }
    }
}
