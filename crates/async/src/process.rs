//! The condition-based asynchronous ℓ-set agreement protocol (Section 4),
//! generalizing the x-legal consensus algorithm of \[20\].

use std::collections::BTreeSet;
use std::fmt;

use setagree_conditions::ConditionOracle;
use setagree_types::{ProcessId, ProposalValue};

use crate::memory::SharedMemory;

/// Where a process is in its protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsyncPhase<V> {
    /// Has not yet written its proposal.
    Writing,
    /// Writing done; snapshotting until `n − x` entries are visible.
    Snapshotting,
    /// Decided the value.
    Decided(V),
    /// Saw a full-enough snapshot incompatible with the condition: the
    /// input vector is outside `C` and the algorithm may never decide.
    Blocked,
}

/// One process of the asynchronous condition-based ℓ-set agreement
/// protocol.
///
/// Drive it with [`step`](CondSetAgreement::step), one linearized memory
/// operation per call (the [`Scheduler`](crate::Scheduler) does this under
/// an adversarial interleaving).
pub struct CondSetAgreement<V, O> {
    me: ProcessId,
    x: usize,
    proposal: V,
    oracle: O,
    phase: AsyncPhase<V>,
    steps: u64,
}

impl<V: ProposalValue, O: ConditionOracle<V>> CondSetAgreement<V, O> {
    /// Creates process `me` proposing `proposal`, tolerating `x` crashes
    /// with the given (x, ℓ)-condition oracle.
    pub fn new(me: ProcessId, x: usize, proposal: V, oracle: O) -> Self {
        CondSetAgreement {
            me,
            x,
            proposal,
            oracle,
            phase: AsyncPhase::Writing,
            steps: 0,
        }
    }

    /// The process identity.
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// The current phase.
    pub fn phase(&self) -> &AsyncPhase<V> {
        &self.phase
    }

    /// The number of steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }

    /// Returns `true` once the process has decided or blocked (no further
    /// steps change its state).
    pub fn is_settled(&self) -> bool {
        matches!(self.phase, AsyncPhase::Decided(_) | AsyncPhase::Blocked)
    }

    /// The decided value, if any.
    pub fn decision(&self) -> Option<&V> {
        match &self.phase {
            AsyncPhase::Decided(v) => Some(v),
            _ => None,
        }
    }

    /// Performs one linearized memory operation:
    ///
    /// * `Writing` → write the proposal, move to `Snapshotting`;
    /// * `Snapshotting` → take one snapshot; if it shows at least `n − x`
    ///   proposals, decide `max(h_ℓ(J))` when `P(J)` holds, or block when
    ///   it proves the input is outside the condition.
    ///
    /// Settled processes ignore further steps.
    pub fn step(&mut self, memory: &mut SharedMemory<V>) {
        if self.is_settled() {
            return;
        }
        self.steps += 1;
        match self.phase {
            AsyncPhase::Writing => {
                memory.write(self.me, self.proposal.clone());
                self.phase = AsyncPhase::Snapshotting;
            }
            AsyncPhase::Snapshotting => {
                let snap = memory.snapshot();
                let visible = snap.len() - snap.count_bottom();
                if visible + self.x < snap.len() {
                    return; // fewer than n − x proposals yet; keep waiting
                }
                match self.oracle.decode_view(&snap) {
                    Some(decoded) => {
                        let value = pick(decoded).unwrap_or_else(|| self.proposal.clone());
                        self.phase = AsyncPhase::Decided(value);
                    }
                    None => {
                        // P(J) is false: J has a ⊥-count ≤ x and no
                        // completion in C, so the input vector is provably
                        // outside the condition. The basic condition-based
                        // algorithm offers no termination in this case.
                        self.phase = AsyncPhase::Blocked;
                    }
                }
            }
            AsyncPhase::Decided(_) | AsyncPhase::Blocked => unreachable!("settled"),
        }
    }
}

/// The deterministic extraction the paper uses: the greatest decodable
/// value. (`None` only for an ill-formed oracle on an all-⊥ view, which
/// the protocol never produces: a process snapshots after writing.)
fn pick<V: Ord>(decoded: BTreeSet<V>) -> Option<V> {
    decoded.into_iter().max()
}

impl<V: fmt::Debug + Ord, O> fmt::Debug for CondSetAgreement<V, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CondSetAgreement")
            .field("me", &self.me)
            .field("x", &self.x)
            .field("phase", &self.phase)
            .field("steps", &self.steps)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setagree_conditions::{LegalityParams, MaxCondition};

    fn oracle(x: usize, ell: usize) -> MaxCondition {
        MaxCondition::new(LegalityParams::new(x, ell).unwrap())
    }

    #[test]
    fn solo_run_writes_then_decides() {
        // n = 3, x = 2: a single process can decide alone once n − x = 1
        // entry (its own) is visible — wait-free for x = n − 1.
        let mut mem = SharedMemory::<u32>::new(3);
        let mut p = CondSetAgreement::new(ProcessId::new(0), 2, 7, oracle(2, 3));
        assert_eq!(*p.phase(), AsyncPhase::Writing);
        p.step(&mut mem);
        assert_eq!(*p.phase(), AsyncPhase::Snapshotting);
        p.step(&mut mem);
        // (2,3) admits all vectors (ℓ > x): decide own value.
        assert_eq!(p.decision(), Some(&7));
        assert_eq!(p.steps_taken(), 2);
    }

    #[test]
    fn waits_for_n_minus_x_entries() {
        let mut mem = SharedMemory::<u32>::new(3);
        let mut p = CondSetAgreement::new(ProcessId::new(0), 1, 5, oracle(1, 1));
        p.step(&mut mem); // write
        p.step(&mut mem); // snapshot: only 1 of required 2 entries
        assert_eq!(*p.phase(), AsyncPhase::Snapshotting);
        mem.write(ProcessId::new(1), 5);
        p.step(&mut mem); // snapshot: 2 entries, J = (5, 5, ⊥) matches C_max(1,1)
        assert_eq!(p.decision(), Some(&5));
    }

    #[test]
    fn blocks_when_input_outside_condition() {
        let mut mem = SharedMemory::<u32>::new(3);
        mem.write(ProcessId::new(1), 1);
        mem.write(ProcessId::new(2), 2);
        let mut p = CondSetAgreement::new(ProcessId::new(0), 1, 3, oracle(1, 1));
        p.step(&mut mem); // write 3
        p.step(&mut mem); // full snapshot (3,1,2): no value twice → P false
        assert_eq!(*p.phase(), AsyncPhase::Blocked);
        assert!(p.is_settled());
        assert_eq!(p.decision(), None);
        // Further steps are no-ops.
        let snaps = mem.snapshot_count();
        p.step(&mut mem);
        assert_eq!(mem.snapshot_count(), snaps);
    }

    #[test]
    fn debug_shows_phase() {
        let p = CondSetAgreement::new(ProcessId::new(1), 1, 5u32, oracle(1, 1));
        assert!(format!("{p:?}").contains("Writing"));
    }
}
