//! The asynchronous side of the paper (Section 4): a simulated
//! linearizable shared memory with atomic snapshots, and the
//! condition-based **ℓ-set agreement** algorithm that generalizes the
//! consensus protocol of Mostefaoui–Rajsbaum–Raynal \[20\] to
//! (x, ℓ)-legal conditions.
//!
//! In an asynchronous system prone to `x` crashes, ℓ-set agreement is
//! unsolvable when `ℓ ≤ x` — unless the inputs are restricted. With an
//! (x, ℓ)-legal condition the algorithm is simple:
//!
//! 1. write your proposal into your single-writer register;
//! 2. repeatedly take atomic snapshots until at least `n − x` entries are
//!    non-`⊥` (with at most `x` crashes this terminates);
//! 3. if the snapshot `J` is compatible with the condition (`P(J)`),
//!    decide `max(h_ℓ(J))` — Theorem 1 guarantees `h_ℓ(J)` is non-empty
//!    and, because snapshots are totally ordered by containment, at most ℓ
//!    distinct values are decided system-wide.
//!
//! When the input vector is **outside** the condition the algorithm may
//! block — that is the price the condition-based approach pays for
//! circumventing the impossibility, and the executions report it honestly
//! as [`AsyncOutcome::Blocked`].
//!
//! The substrate ([`SharedMemory`]) is a single-writer multi-reader
//! register array with an atomic snapshot operation, after Afek et al.;
//! the simulation schedules process steps sequentially (each step is one
//! linearized memory operation), so linearizability holds by construction
//! while the seeded [`Scheduler`] adversary controls interleaving and
//! crashes.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod memory;
pub mod message_passing;
pub mod process;
pub mod report;
pub mod scheduler;

pub use memory::SharedMemory;
pub use message_passing::{run_message_passing, MessagePassingSystem, MpMessage};
pub use process::{AsyncPhase, CondSetAgreement};
pub use report::{AsyncOutcome, AsyncReport};
pub use scheduler::{run_async, AsyncCrashes, Scheduler};
