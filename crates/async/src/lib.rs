//! The asynchronous side of the paper (Section 4): a simulated
//! linearizable shared memory with atomic snapshots, and the
//! condition-based **ℓ-set agreement** algorithm that generalizes the
//! consensus protocol of Mostefaoui–Rajsbaum–Raynal \[20\] to
//! (x, ℓ)-legal conditions.
//!
//! In an asynchronous system prone to `x` crashes, ℓ-set agreement is
//! unsolvable when `ℓ ≤ x` — unless the inputs are restricted. With an
//! (x, ℓ)-legal condition the algorithm is simple:
//!
//! 1. write your proposal into your single-writer register;
//! 2. repeatedly take atomic snapshots until at least `n − x` entries are
//!    non-`⊥` (with at most `x` crashes this terminates);
//! 3. if the snapshot `J` is compatible with the condition (`P(J)`),
//!    decide `max(h_ℓ(J))` — Theorem 1 guarantees `h_ℓ(J)` is non-empty
//!    and, because snapshots are totally ordered by containment, at most ℓ
//!    distinct values are decided system-wide.
//!
//! When the input vector is **outside** the condition the algorithm may
//! block — that is the price the condition-based approach pays for
//! circumventing the impossibility, and the executions report it honestly
//! as [`AsyncOutcome::Blocked`].
//!
//! The substrate ([`SharedMemory`]) is a single-writer multi-reader
//! register array with an atomic snapshot operation, after Afek et al.;
//! the simulation schedules process steps sequentially (each step is one
//! linearized memory operation), so linearizability holds by construction
//! while the seeded [`Scheduler`] adversary controls interleaving and
//! crashes.
//!
//! # Driving the asynchronous protocols
//!
//! Experiments run through the unified `Scenario`/`Executor` API of
//! `setagree-core`: the two asynchronous runtimes are the
//! `Executor::AsyncSharedMemory { seed }` and
//! `Executor::AsyncMessagePassing { seed }` executors, crash schedules
//! are [`AsyncCrashes`] adversaries, and results come back as the same
//! unified `Report` the synchronous protocols produce (with the raw
//! [`AsyncReport`] still reachable through it). The seed is executor
//! state — the spec and input stay inert, replayable data:
//!
//! ```
//! use setagree_async::AsyncCrashes;
//! use setagree_conditions::{LegalityParams, MaxCondition};
//! use setagree_core::{Executor, Scenario};
//! use setagree_types::ProcessId;
//!
//! let params = LegalityParams::new(2, 2)?; // tolerate x = 2 crashes, decide ≤ ℓ = 2 values
//! let report = Scenario::async_set_agreement(5, params, MaxCondition::new(params))
//!     .input(vec![9u32, 9, 8, 8, 1]) // top-2 {9, 8} cover > x entries: in C_max
//!     .pattern(AsyncCrashes::none().crash_after(ProcessId::new(4), 1))
//!     .executor(Executor::AsyncSharedMemory { seed: 7 })
//!     .run()?;
//! assert!(report.satisfies_all());
//! assert!(report.decided_values().len() <= 2);
//! let raw = report.async_report().expect("asynchronous execution");
//! assert_eq!(raw.crashed_count(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The former one-call helpers `run_async` / `run_message_passing` remain
//! as deprecated shims over the same engines ([`execute_shared_memory`],
//! [`execute_message_passing`]) and replay identical executions for
//! identical seeds.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod memory;
pub mod message_passing;
pub mod process;
pub mod report;
pub mod scheduler;

pub use memory::SharedMemory;
#[allow(deprecated)]
pub use message_passing::run_message_passing;
pub use message_passing::{
    default_delivery_budget, execute_message_passing, MessagePassingSystem, MpMessage,
};
pub use process::{AsyncPhase, CondSetAgreement};
pub use report::{AsyncOutcome, AsyncReport};
#[allow(deprecated)]
pub use scheduler::run_async;
pub use scheduler::{default_step_budget, execute_shared_memory, AsyncCrashes, Scheduler};
