//! The shared-memory substrate: a single-writer multi-reader register
//! array with atomic snapshots (after Afek–Attiya–Dolev–Gafni–Merritt–
//! Shavit).
//!
//! The simulation linearizes every operation (each scheduler step performs
//! exactly one), so `snapshot` is trivially atomic and — because each
//! process writes its register at most once in the set-agreement protocol —
//! any two snapshots are ordered by containment, the property Theorem 1
//! feeds on.

use setagree_types::{ProcessId, ProposalValue, View};

/// An array of `n` single-writer registers with an atomic snapshot.
///
/// # Example
///
/// ```
/// use setagree_async::SharedMemory;
/// use setagree_types::ProcessId;
///
/// let mut mem = SharedMemory::<u32>::new(3);
/// mem.write(ProcessId::new(1), 7);
/// let snap = mem.snapshot();
/// assert_eq!(snap.get(ProcessId::new(1)), Some(&7));
/// assert_eq!(snap.count_bottom(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedMemory<V> {
    registers: Vec<Option<V>>,
    writes: u64,
    snapshots: u64,
}

impl<V: ProposalValue> SharedMemory<V> {
    /// Creates `n` empty registers.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a system needs at least one process");
        SharedMemory {
            registers: vec![None; n],
            writes: 0,
            snapshots: 0,
        }
    }

    /// The number of registers.
    pub fn len(&self) -> usize {
        self.registers.len()
    }

    /// Always `false`: there is at least one register.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Writes `value` into `owner`'s register (single-writer: the protocol
    /// guarantees each process only writes its own slot).
    ///
    /// # Panics
    ///
    /// Panics if `owner` is out of range.
    pub fn write(&mut self, owner: ProcessId, value: V) {
        self.registers[owner.index()] = Some(value);
        self.writes += 1;
    }

    /// An atomic snapshot of all registers.
    pub fn snapshot(&mut self) -> View<V> {
        self.snapshots += 1;
        View::from_options(self.registers.clone())
    }

    /// Reads a single register without snapshotting.
    pub fn read(&self, owner: ProcessId) -> Option<&V> {
        self.registers[owner.index()].as_ref()
    }

    /// Total writes performed (operation accounting for benches).
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Total snapshots performed.
    pub fn snapshot_count(&self) -> u64 {
        self.snapshots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_become_visible_in_snapshots() {
        let mut mem = SharedMemory::<u32>::new(2);
        assert_eq!(mem.snapshot().count_bottom(), 2);
        mem.write(ProcessId::new(0), 4);
        let snap = mem.snapshot();
        assert_eq!(snap.get(ProcessId::new(0)), Some(&4));
        assert_eq!(snap.get(ProcessId::new(1)), None);
    }

    #[test]
    fn snapshots_grow_by_containment() {
        let mut mem = SharedMemory::<u32>::new(3);
        mem.write(ProcessId::new(0), 1);
        let s1 = mem.snapshot();
        mem.write(ProcessId::new(2), 3);
        let s2 = mem.snapshot();
        assert!(s1.is_contained_in(&s2));
        assert!(!s2.is_contained_in(&s1));
    }

    #[test]
    fn read_views_one_register() {
        let mut mem = SharedMemory::<u32>::new(2);
        mem.write(ProcessId::new(1), 9);
        assert_eq!(mem.read(ProcessId::new(1)), Some(&9));
        assert_eq!(mem.read(ProcessId::new(0)), None);
    }

    #[test]
    fn operation_counters() {
        let mut mem = SharedMemory::<u32>::new(2);
        mem.write(ProcessId::new(0), 1);
        mem.write(ProcessId::new(1), 2);
        let _ = mem.snapshot();
        assert_eq!(mem.write_count(), 2);
        assert_eq!(mem.snapshot_count(), 1);
        assert_eq!(mem.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_registers_rejected() {
        let _ = SharedMemory::<u32>::new(0);
    }
}
