//! Reports for asynchronous executions.

use std::collections::BTreeSet;
use std::fmt;

use setagree_types::{ProcessId, ProposalValue};

/// The fate of one process in an asynchronous execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsyncOutcome<V> {
    /// Decided `value` after `steps` of its own steps.
    Decided {
        /// The decided value.
        value: V,
        /// The process's own step count at decision.
        steps: u64,
    },
    /// Crashed before settling.
    Crashed,
    /// Settled without a decision: its snapshot proved the input vector is
    /// outside the condition.
    Blocked,
    /// Still running when the scheduler's step budget ran out (e.g.
    /// waiting for `n − x` entries that will never come because more than
    /// `x` processes crashed).
    Unfinished,
}

impl<V> AsyncOutcome<V> {
    /// The decided value, if any.
    pub fn decided_value(&self) -> Option<&V> {
        match self {
            AsyncOutcome::Decided { value, .. } => Some(value),
            _ => None,
        }
    }
}

/// The result of one asynchronous execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsyncReport<V> {
    outcomes: Vec<AsyncOutcome<V>>,
    total_steps: u64,
}

impl<V: ProposalValue> AsyncReport<V> {
    pub(crate) fn new(outcomes: Vec<AsyncOutcome<V>>, total_steps: u64) -> Self {
        AsyncReport {
            outcomes,
            total_steps,
        }
    }

    /// Assembles a report from parts. Intended for callers that
    /// reconstruct a recorded execution — e.g. a suite result cache
    /// deserializing a warm cell — mirroring `Trace::from_parts` in
    /// `setagree-sync`; such reports compare equal to the
    /// engine-produced originals.
    pub fn from_parts(outcomes: Vec<AsyncOutcome<V>>, total_steps: u64) -> Self {
        AsyncReport::new(outcomes, total_steps)
    }

    /// Per-process outcomes, indexed by process.
    pub fn outcomes(&self) -> &[AsyncOutcome<V>] {
        &self.outcomes
    }

    /// One process's outcome.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn outcome(&self, id: ProcessId) -> &AsyncOutcome<V> {
        &self.outcomes[id.index()]
    }

    /// Total scheduler steps consumed.
    pub fn total_steps(&self) -> u64 {
        self.total_steps
    }

    /// The set of distinct decided values.
    pub fn decided_values(&self) -> BTreeSet<V> {
        self.outcomes
            .iter()
            .filter_map(|o| o.decided_value().cloned())
            .collect()
    }

    /// How many processes decided.
    pub fn decided_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.decided_value().is_some())
            .count()
    }

    /// How many crashed.
    pub fn crashed_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, AsyncOutcome::Crashed))
            .count()
    }

    /// How many settled as blocked (input provably outside the condition).
    pub fn blocked_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, AsyncOutcome::Blocked))
            .count()
    }

    /// How many were still running at budget exhaustion.
    pub fn unfinished_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, AsyncOutcome::Unfinished))
            .count()
    }

    /// `true` when no process was cut off by the step budget: every
    /// process decided, blocked, or crashed.
    pub fn all_settled_or_crashed(&self) -> bool {
        self.unfinished_count() == 0
    }

    /// Termination in the condition-based sense: every non-crashed process
    /// decided.
    pub fn all_correct_decided(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| !matches!(o, AsyncOutcome::Blocked | AsyncOutcome::Unfinished))
    }
}

impl<V: ProposalValue> fmt::Display for AsyncReport<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "async run: {} steps, {} decided / {} crashed / {} blocked / {} unfinished",
            self.total_steps,
            self.decided_count(),
            self.crashed_count(),
            self.blocked_count(),
            self.unfinished_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> AsyncReport<u32> {
        AsyncReport::new(
            vec![
                AsyncOutcome::Decided { value: 4, steps: 3 },
                AsyncOutcome::Crashed,
                AsyncOutcome::Blocked,
                AsyncOutcome::Unfinished,
                AsyncOutcome::Decided { value: 4, steps: 5 },
            ],
            20,
        )
    }

    #[test]
    fn counters() {
        let r = report();
        assert_eq!(r.decided_count(), 2);
        assert_eq!(r.crashed_count(), 1);
        assert_eq!(r.blocked_count(), 1);
        assert_eq!(r.unfinished_count(), 1);
        assert_eq!(r.total_steps(), 20);
        assert_eq!(r.decided_values(), [4].into_iter().collect());
        assert!(!r.all_settled_or_crashed());
        assert!(!r.all_correct_decided());
    }

    #[test]
    fn accessors() {
        let r = report();
        assert_eq!(r.outcome(ProcessId::new(0)).decided_value(), Some(&4));
        assert_eq!(r.outcome(ProcessId::new(1)).decided_value(), None);
        assert_eq!(r.outcomes().len(), 5);
    }

    #[test]
    fn display_summarizes() {
        let s = report().to_string();
        assert!(s.contains("2 decided"));
        assert!(s.contains("1 blocked"));
    }
}
