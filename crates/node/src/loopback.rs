//! The in-process loopback transport: real node tasks, channel links,
//! and a kill-tolerant round gate.
//!
//! Message movement is the shared
//! [`delivery`](setagree_runtime::delivery) mesh — the same
//! `Arc`-envelope fan-out the threaded runtime uses — so a loopback
//! execution is trace-equivalent to the simulator by construction: same
//! ordered-send prefixes, same settled-recipient skipping, same delivery
//! counting, same sender-ordered inboxes.
//!
//! What distinguishes this tier from `run_threaded` is the crash model:
//! a victim is *killed*. Its task leaves the round structure mid-round
//! and its endpoint (the receiving channel) is dropped, instead of the
//! thread lingering and silently crossing barriers until the execution
//! winds down. A `std::sync::Barrier` cannot survive that — its
//! membership is fixed — so rounds are synchronized by a [`RoundGate`]:
//! a generation-counted gate whose membership shrinks when a node is
//! killed, releasing any generation the departure completes.

use std::convert::Infallible;
use std::sync::{Arc, Condvar, Mutex};

use setagree_runtime::delivery::{mesh, Endpoint, MeshStats};
use setagree_types::ProcessId;

use crate::transport::Transport;

/// A reusable synchronization gate with dynamic membership.
///
/// Like `std::sync::Barrier`, [`wait`](RoundGate::wait) blocks until the
/// current generation's membership has all arrived; unlike it, a member
/// can [`leave`](RoundGate::leave) permanently — the kill-based crash —
/// shrinking every future generation and completing the current one if
/// the leaver was the last arrival outstanding.
#[derive(Debug)]
pub struct RoundGate {
    state: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Debug)]
struct GateState {
    members: usize,
    arrived: usize,
    generation: u64,
}

impl RoundGate {
    /// A gate over `members` participants.
    pub fn new(members: usize) -> RoundGate {
        RoundGate {
            state: Mutex::new(GateState {
                members,
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until every current member has arrived at this generation.
    pub fn wait(&self) {
        let mut s = self.state.lock().expect("gate poisoned");
        s.arrived += 1;
        if s.arrived >= s.members {
            s.arrived = 0;
            s.generation += 1;
            self.cv.notify_all();
            return;
        }
        let generation = s.generation;
        while s.generation == generation {
            s = self.cv.wait(s).expect("gate poisoned");
        }
    }

    /// Permanently removes one member (a killed node). If the departure
    /// makes the current generation complete, its waiters are released.
    pub fn leave(&self) {
        let mut s = self.state.lock().expect("gate poisoned");
        s.members = s.members.saturating_sub(1);
        if s.members > 0 && s.arrived >= s.members {
            s.arrived = 0;
            s.generation += 1;
            self.cv.notify_all();
        }
    }
}

/// One node's loopback transport: a [`delivery`](setagree_runtime::delivery)
/// endpoint plus the shared round gate.
#[derive(Debug)]
pub struct LoopbackTransport<M> {
    endpoint: Endpoint<M>,
    gate: Arc<RoundGate>,
}

/// Builds the transports for an `n`-node loopback system (index order),
/// plus the shared delivery counters.
pub fn loopback_mesh<M>(n: usize) -> (Vec<LoopbackTransport<M>>, MeshStats) {
    let gate = Arc::new(RoundGate::new(n));
    let (endpoints, stats) = mesh::<M>(n);
    let transports = endpoints
        .into_iter()
        .map(|endpoint| LoopbackTransport {
            endpoint,
            gate: Arc::clone(&gate),
        })
        .collect();
    (transports, stats)
}

impl<M> Transport for LoopbackTransport<M> {
    type Msg = M;
    // The sender's own allocation, shared: zero-copy delivery, exactly
    // like the threaded runtime.
    type Letter = Arc<M>;
    type Error = Infallible;

    fn n(&self) -> usize {
        self.endpoint.n()
    }

    fn me(&self) -> ProcessId {
        self.endpoint.me()
    }

    fn broadcast(&mut self, round: usize, msg: M, reach: usize) -> Result<(), Infallible> {
        self.endpoint.broadcast(round, msg, reach);
        Ok(())
    }

    fn sends_done(&mut self, _round: usize) -> Result<(), Infallible> {
        self.gate.wait();
        Ok(())
    }

    fn collect(&mut self, round: usize) -> Result<Vec<(ProcessId, Arc<M>)>, Infallible> {
        Ok(self
            .endpoint
            .drain_round(round)
            .into_iter()
            .map(|env| (env.from, env.msg))
            .collect())
    }

    fn settle(&mut self, _round: usize) -> Result<(), Infallible> {
        self.endpoint.settle();
        Ok(())
    }

    fn round_done(&mut self, _round: usize, _settled: bool) -> Result<bool, Infallible> {
        self.gate.wait();
        Ok(self.endpoint.all_settled())
    }

    fn depart(&mut self, _round: usize) {
        // The kill: settle (future broadcasts skip this node — the flag
        // flips after the sends-done gate, so the current round's send
        // phase already read it as live, same discipline as the threaded
        // runtime), then leave the round structure for good. The caller
        // drops the transport, closing the inbound channel.
        self.endpoint.settle();
        self.gate.leave();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn gate_synchronizes_generations() {
        let gate = Arc::new(RoundGate::new(3));
        let counter = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let gate = Arc::clone(&gate);
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    for _ in 0..5 {
                        *counter.lock().unwrap() += 1;
                        gate.wait();
                        // Between generations every thread observes a
                        // multiple of the membership.
                        assert_eq!(*counter.lock().unwrap() % 3, 0);
                        gate.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock().unwrap(), 15);
    }

    #[test]
    fn leaving_completes_a_stalled_generation() {
        let gate = Arc::new(RoundGate::new(2));
        let waiter = {
            let gate = Arc::clone(&gate);
            thread::spawn(move || gate.wait())
        };
        // Give the waiter time to arrive, then depart instead of arriving.
        thread::sleep(std::time::Duration::from_millis(20));
        gate.leave();
        waiter.join().expect("waiter released by the departure");
    }

    #[test]
    fn transports_share_one_delivery_mesh() {
        let (mut transports, stats) = loopback_mesh::<u32>(2);
        transports[0].broadcast(1, 7, 2).unwrap();
        transports[1].broadcast(1, 9, 1).unwrap();
        let inbox = transports[0].collect(1).unwrap();
        assert_eq!(inbox.len(), 2);
        assert_eq!(*inbox[0].1, 7);
        assert_eq!(*inbox[1].1, 9);
        assert_eq!(stats.messages_delivered(), 3);
    }
}
