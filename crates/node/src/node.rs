//! The node: one protocol instance driven over one [`Transport`].
//!
//! [`drive`] is the round loop every networked tier shares — loopback
//! tasks and TCP node processes run the identical control flow, so the
//! semantics of a round (ordered-send prefix, crash-before-compute,
//! sender-ordered receive, decide-then-settle) live here exactly once.
//! [`run_loopback`] spawns one task per process over the loopback
//! transport and assembles the familiar [`Trace`], mirroring
//! `setagree_runtime::run_threaded` — except that crashed and panicked
//! nodes are genuinely *killed*: their task departs the round structure
//! and their channel closes.

use std::borrow::Borrow;
use std::error::Error;
use std::fmt;
use std::panic;
use std::thread;

use setagree_sync::{CrashSpec, FailurePattern, Outcome, Step, SyncProtocol, Trace};
use setagree_types::ProcessId;

use crate::loopback::loopback_mesh;
use crate::transport::Transport;

/// Why one node's drive loop stopped abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriveError<E> {
    /// The transport failed.
    Transport(E),
    /// The protocol implementation panicked; the node departed like a
    /// killed process.
    Panicked,
}

impl<E: fmt::Display> fmt::Display for DriveError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriveError::Transport(e) => write!(f, "transport failed: {e}"),
            DriveError::Panicked => write!(f, "protocol implementation panicked"),
        }
    }
}

impl<E: fmt::Debug + fmt::Display> Error for DriveError<E> {}

/// Drives `proto` through up to `max_rounds` rounds over `transport`,
/// injecting `crash` (this node's entry in the failure pattern) by
/// *leaving*: after its prefix of sends in the crash round, the node
/// departs the round structure for good.
///
/// Returns the node's [`Outcome`]; [`Outcome::Undecided`] means the round
/// limit elapsed first.
///
/// # Errors
///
/// [`DriveError::Transport`] if the transport fails;
/// [`DriveError::Panicked`] if the protocol panics (the node departs
/// first, so peers keep running).
pub fn drive<P, T>(
    mut proto: P,
    mut transport: T,
    crash: Option<CrashSpec>,
    max_rounds: usize,
) -> Result<Outcome<P::Output>, DriveError<T::Error>>
where
    P: SyncProtocol,
    T: Transport<Msg = P::Msg>,
{
    let n = transport.n();
    let mut outcome: Option<Outcome<P::Output>> = None;
    // One registry lookup per drive, one relaxed load per round when
    // instrumentation is off.
    let round_hist =
        setagree_obs::enabled().then(|| setagree_obs::histogram("node_round_duration_us", &[]));
    for round in 1..=max_rounds {
        let active = outcome.is_none();
        let mut panicked = false;
        let _round_span = round_hist.as_ref().map(|h| {
            setagree_obs::Span::start("node", "round")
                .with_histogram(std::sync::Arc::clone(h))
                .with_detail(round as u64)
        });

        // Send phase: broadcast in the predetermined p_1 … p_n order,
        // truncated to the crash prefix if this is the crash round.
        if active {
            let reach = match crash {
                Some(s) if s.round == round => s.after_sends,
                _ => n,
            };
            match panic::catch_unwind(panic::AssertUnwindSafe(|| proto.message(round))) {
                Ok(msg) => transport
                    .broadcast(round, msg, reach)
                    .map_err(DriveError::Transport)?,
                Err(_) => panicked = true,
            }
        }
        transport.sends_done(round).map_err(DriveError::Transport)?;

        if active {
            if panicked {
                transport.depart(round);
                return Err(DriveError::Panicked);
            }
            if crash.map(|s| s.round == round).unwrap_or(false) {
                // The kill takes effect before local computation: no
                // receives, no compute — the node is gone.
                transport.depart(round);
                return Ok(Outcome::Crashed { round });
            }
            // Receive phase (sender order), then compute.
            let letters = transport.collect(round).map_err(DriveError::Transport)?;
            let step = panic::catch_unwind(panic::AssertUnwindSafe(|| {
                for (from, letter) in &letters {
                    proto.receive(round, *from, letter.borrow());
                }
                proto.compute(round)
            }));
            match step {
                Ok(Step::Decide(value)) => {
                    outcome = Some(Outcome::Decided { value, round });
                    transport.settle(round).map_err(DriveError::Transport)?;
                }
                Ok(Step::Continue) => {}
                Err(_) => {
                    transport.depart(round);
                    return Err(DriveError::Panicked);
                }
            }
        }
        if transport
            .round_done(round, outcome.is_some())
            .map_err(DriveError::Transport)?
        {
            break;
        }
    }
    Ok(outcome.unwrap_or(Outcome::Undecided))
}

/// Error running a loopback-node execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NodeError {
    /// Some node neither decided nor was killed within the round limit.
    RoundLimitExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// Process count and failure-pattern system size differ.
    SystemSizeMismatch {
        /// Protocol instances supplied.
        processes: usize,
        /// Pattern system size.
        pattern: usize,
    },
    /// A node's protocol implementation panicked.
    ProcessPanicked {
        /// The panicking node.
        process: ProcessId,
    },
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::RoundLimitExceeded { limit } => write!(
                f,
                "execution exceeded the {limit}-round limit without termination"
            ),
            NodeError::SystemSizeMismatch { processes, pattern } => write!(
                f,
                "{processes} protocol instances but the failure pattern is over {pattern} processes"
            ),
            NodeError::ProcessPanicked { process } => {
                write!(f, "node {process} panicked")
            }
        }
    }
}

impl Error for NodeError {}

/// Runs the protocol instances as loopback nodes — one task per process
/// over the shared delivery mesh — under the failure pattern, killing
/// each victim's task at its crash point.
///
/// Observationally identical to the simulator and the threaded runtime;
/// the integration suite compares whole [`Trace`]s.
///
/// # Errors
///
/// Mirrors `run_threaded`: size mismatches, round-limit violations, and
/// [`NodeError::ProcessPanicked`] if a protocol implementation panics.
pub fn run_loopback<P>(
    processes: Vec<P>,
    pattern: &FailurePattern,
    max_rounds: usize,
) -> Result<Trace<P::Output>, NodeError>
where
    P: SyncProtocol + Send + 'static,
    P::Msg: Send + Sync + 'static,
    P::Output: Send,
{
    let n = processes.len();
    if n != pattern.system_size() {
        return Err(NodeError::SystemSizeMismatch {
            processes: n,
            pattern: pattern.system_size(),
        });
    }

    let (transports, stats) = loopback_mesh::<P::Msg>(n);
    let mut handles = Vec::with_capacity(n);
    for (transport, proto) in transports.into_iter().zip(processes) {
        let crash = pattern.spec(transport.me());
        handles.push(thread::spawn(move || {
            drive(proto, transport, crash, max_rounds)
        }));
    }

    let mut outcomes = Vec::with_capacity(n);
    for (i, handle) in handles.into_iter().enumerate() {
        match handle.join() {
            Ok(Ok(outcome)) => outcomes.push(outcome),
            Ok(Err(DriveError::Panicked)) | Err(_) => {
                return Err(NodeError::ProcessPanicked {
                    process: ProcessId::new(i),
                })
            }
            Ok(Err(DriveError::Transport(infallible))) => match infallible {},
        }
    }
    if outcomes.iter().any(|o| matches!(o, Outcome::Undecided)) {
        return Err(NodeError::RoundLimitExceeded { limit: max_rounds });
    }
    let rounds_executed = outcomes
        .iter()
        .map(|o| match o {
            Outcome::Decided { round, .. } | Outcome::Crashed { round } => *round,
            Outcome::Undecided => 0,
        })
        .max()
        .unwrap_or(0);
    Ok(Trace::from_parts(
        outcomes,
        rounds_executed,
        stats.messages_delivered(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use setagree_sync::run_protocol;

    /// A local max-flooding protocol (this crate cannot dev-depend on
    /// `setagree-core`'s `FloodSet` — core depends on this crate for the
    /// `Executor::Networked` backend).
    #[derive(Debug)]
    struct MaxFlood {
        rounds: usize,
        best: u32,
    }

    impl SyncProtocol for MaxFlood {
        type Msg = u32;
        type Output = u32;
        fn message(&mut self, _round: usize) -> u32 {
            self.best
        }
        fn receive(&mut self, _round: usize, _from: ProcessId, msg: &u32) {
            self.best = self.best.max(*msg);
        }
        fn compute(&mut self, round: usize) -> Step<u32> {
            if round >= self.rounds {
                Step::Decide(self.best)
            } else {
                Step::Continue
            }
        }
    }

    fn floods(t: usize, k: usize, inputs: &[u32]) -> Vec<MaxFlood> {
        let rounds = t / k + 1;
        inputs
            .iter()
            .map(|&v| MaxFlood { rounds, best: v })
            .collect()
    }

    #[test]
    fn failure_free_matches_simulator() {
        let inputs = [3u32, 9, 1, 4];
        let pattern = FailurePattern::none(4);
        let nodes = run_loopback(floods(2, 1, &inputs), &pattern, 10).unwrap();
        let simulated = run_protocol(floods(2, 1, &inputs), &pattern, 10).unwrap();
        assert_eq!(nodes, simulated);
    }

    #[test]
    fn killed_nodes_match_simulated_crashes() {
        let inputs = [9u32, 1, 1, 1, 1];
        let mut pattern = FailurePattern::none(5);
        pattern
            .crash(ProcessId::new(0), CrashSpec::new(1, 2))
            .unwrap();
        pattern
            .crash(ProcessId::new(4), CrashSpec::new(2, 0))
            .unwrap();
        let nodes = run_loopback(floods(2, 1, &inputs), &pattern, 10).unwrap();
        let simulated = run_protocol(floods(2, 1, &inputs), &pattern, 10).unwrap();
        assert_eq!(nodes, simulated);
        assert_eq!(nodes.crashed_count(), 2);
    }

    #[test]
    fn a_panicking_node_is_killed_not_deadlocked() {
        #[derive(Debug)]
        struct Volatile {
            explode: bool,
        }
        impl SyncProtocol for Volatile {
            type Msg = ();
            type Output = u32;
            fn message(&mut self, _round: usize) {}
            fn receive(&mut self, _round: usize, _from: ProcessId, _msg: &()) {}
            fn compute(&mut self, _round: usize) -> Step<u32> {
                if self.explode {
                    panic!("protocol bug");
                }
                Step::Decide(7)
            }
        }
        let procs = vec![
            Volatile { explode: false },
            Volatile { explode: true },
            Volatile { explode: false },
        ];
        let err = run_loopback(procs, &FailurePattern::none(3), 5).unwrap_err();
        assert_eq!(
            err,
            NodeError::ProcessPanicked {
                process: ProcessId::new(1)
            }
        );
    }

    #[test]
    fn size_mismatch_is_reported() {
        let err = run_loopback(floods(1, 1, &[1, 2]), &FailurePattern::none(3), 5).unwrap_err();
        assert_eq!(
            err,
            NodeError::SystemSizeMismatch {
                processes: 2,
                pattern: 3
            }
        );
    }

    #[test]
    fn round_limit_is_reported() {
        #[derive(Debug)]
        struct Stubborn;
        impl SyncProtocol for Stubborn {
            type Msg = ();
            type Output = u32;
            fn message(&mut self, _round: usize) {}
            fn receive(&mut self, _round: usize, _from: ProcessId, _msg: &()) {}
            fn compute(&mut self, _round: usize) -> Step<u32> {
                Step::Continue
            }
        }
        let err = run_loopback(vec![Stubborn, Stubborn], &FailurePattern::none(2), 3).unwrap_err();
        assert_eq!(err, NodeError::RoundLimitExceeded { limit: 3 });
    }
}
