//! [`FaultyTransport`]: a [`FaultPlan`] applied at the transport
//! boundary.
//!
//! Wraps any [`Transport`] whose letters are cloneable and runs every
//! collected inbox through the *same* [`FaultInbox`] assembly the
//! simulator engine uses — so an identical plan drives the simulator,
//! the loopback mesh, and (via `Typed`) a byte transport, with
//! byte-identical traces between the first two (pinned by
//! `tests/fault_equivalence.rs`).
//!
//! Faults apply receiver-side, after the inner transport's own
//! synchronization: a dropped letter was genuinely sent (the loopback
//! round gate and a TCP `collect` complete normally), then discarded at
//! the boundary — which is exactly how the simulator's faulty engine
//! counts it, and why neither tier can deadlock on an injected drop.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::thread;

use setagree_sync::{FailurePattern, FaultInbox, FaultPlan, Outcome, SyncProtocol, Trace};
use setagree_types::ProcessId;

use crate::loopback::loopback_mesh;
use crate::node::{drive, DriveError, NodeError};
use crate::transport::Transport;

/// A transport with a [`FaultPlan`] injected at its collect boundary.
#[derive(Debug)]
pub struct FaultyTransport<T: Transport>
where
    T::Letter: Clone,
{
    inner: T,
    inbox: FaultInbox<T::Letter>,
    adjust: Arc<AtomicI64>,
}

impl<T: Transport> FaultyTransport<T>
where
    T::Letter: Clone,
{
    /// Wraps `inner`, faulting its inbound letters under `plan`.
    ///
    /// `adjust` accumulates the delivered-count adjustment (−1 per
    /// drop, +1 per duplicate) so a harness that counts deliveries at
    /// broadcast time — the mesh's discipline — can correct its total
    /// to post-fault reality; share one counter across the system's
    /// wrappers.
    pub fn new(inner: T, plan: FaultPlan, adjust: Arc<AtomicI64>) -> FaultyTransport<T> {
        let me = inner.me();
        FaultyTransport {
            inner,
            inbox: FaultInbox::new(plan, me),
            adjust,
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: Transport> Transport for FaultyTransport<T>
where
    T::Letter: Clone,
{
    type Msg = T::Msg;
    type Letter = T::Letter;
    type Error = T::Error;

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn me(&self) -> ProcessId {
        self.inner.me()
    }

    fn broadcast(&mut self, round: usize, msg: T::Msg, reach: usize) -> Result<(), T::Error> {
        self.inner.broadcast(round, msg, reach)
    }

    fn sends_done(&mut self, round: usize) -> Result<(), T::Error> {
        self.inner.sends_done(round)
    }

    fn collect(&mut self, round: usize) -> Result<Vec<(ProcessId, T::Letter)>, T::Error> {
        let arrivals = self.inner.collect(round)?;
        let (inbox, adjust) = self.inbox.assemble(round, arrivals);
        if adjust != 0 {
            self.adjust.fetch_add(adjust, Ordering::Relaxed);
        }
        Ok(inbox)
    }

    fn settle(&mut self, round: usize) -> Result<(), T::Error> {
        self.inner.settle(round)
    }

    fn round_done(&mut self, round: usize, settled: bool) -> Result<bool, T::Error> {
        self.inner.round_done(round, settled)
    }

    fn depart(&mut self, round: usize) {
        self.inner.depart(round)
    }
}

/// [`run_loopback`](crate::run_loopback) with a [`FaultPlan`] wrapped
/// around every node's transport: one task per process over the shared
/// delivery mesh, crash victims killed at their scheduled point, link
/// faults injected at each receiver's collect boundary.
///
/// The trace's delivered count is the mesh's broadcast-accept total
/// corrected by the wrappers' shared adjustment — the same discipline
/// the faulty simulator engine uses, so for any plan the two traces are
/// byte-identical.
///
/// # Errors
///
/// As [`run_loopback`](crate::run_loopback), plus
/// [`NodeError::SystemSizeMismatch`] if the plan's system size differs.
pub fn run_loopback_faulty<P>(
    processes: Vec<P>,
    pattern: &FailurePattern,
    plan: &FaultPlan,
    max_rounds: usize,
) -> Result<Trace<P::Output>, NodeError>
where
    P: SyncProtocol + Send + 'static,
    P::Msg: Send + Sync + 'static,
    P::Output: Send,
{
    let n = processes.len();
    if n != pattern.system_size() {
        return Err(NodeError::SystemSizeMismatch {
            processes: n,
            pattern: pattern.system_size(),
        });
    }
    if n != plan.n() {
        return Err(NodeError::SystemSizeMismatch {
            processes: n,
            pattern: plan.n(),
        });
    }

    let adjust = Arc::new(AtomicI64::new(0));
    let (transports, stats) = loopback_mesh::<P::Msg>(n);
    let mut handles = Vec::with_capacity(n);
    for (transport, proto) in transports.into_iter().zip(processes) {
        let crash = pattern.spec(transport.me());
        let faulty = FaultyTransport::new(transport, plan.clone(), Arc::clone(&adjust));
        handles.push(thread::spawn(move || {
            drive(proto, faulty, crash, max_rounds)
        }));
    }

    let mut outcomes = Vec::with_capacity(n);
    for (i, handle) in handles.into_iter().enumerate() {
        match handle.join() {
            Ok(Ok(outcome)) => outcomes.push(outcome),
            Ok(Err(DriveError::Panicked)) | Err(_) => {
                return Err(NodeError::ProcessPanicked {
                    process: ProcessId::new(i),
                })
            }
            Ok(Err(DriveError::Transport(infallible))) => match infallible {},
        }
    }
    if outcomes.iter().any(|o| matches!(o, Outcome::Undecided)) {
        return Err(NodeError::RoundLimitExceeded { limit: max_rounds });
    }
    let rounds_executed = outcomes
        .iter()
        .map(|o| match o {
            Outcome::Decided { round, .. } | Outcome::Crashed { round } => *round,
            Outcome::Undecided => 0,
        })
        .max()
        .unwrap_or(0);
    let delivered = stats.messages_delivered() as i64 + adjust.load(Ordering::Relaxed);
    debug_assert!(delivered >= 0, "drops only subtract accepted deliveries");
    Ok(Trace::from_parts(
        outcomes,
        rounds_executed,
        delivered.max(0) as u64,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_loopback;
    use setagree_sync::{run_protocol_faulty, CrashSpec, Step, RATE_SCALE};

    #[derive(Debug)]
    struct MaxFlood {
        rounds: usize,
        best: u32,
    }

    impl SyncProtocol for MaxFlood {
        type Msg = u32;
        type Output = u32;
        fn message(&mut self, _round: usize) -> u32 {
            self.best
        }
        fn receive(&mut self, _round: usize, _from: ProcessId, msg: &u32) {
            self.best = self.best.max(*msg);
        }
        fn compute(&mut self, round: usize) -> Step<u32> {
            if round >= self.rounds {
                Step::Decide(self.best)
            } else {
                Step::Continue
            }
        }
    }

    fn floods(rounds: usize, inputs: &[u32]) -> Vec<MaxFlood> {
        inputs
            .iter()
            .map(|&best| MaxFlood { rounds, best })
            .collect()
    }

    #[test]
    fn benign_plan_matches_the_plain_loopback_path() {
        let inputs = [3u32, 9, 1, 4];
        let mut pattern = FailurePattern::none(4);
        pattern
            .crash(ProcessId::new(0), CrashSpec::new(1, 2))
            .unwrap();
        let plain = run_loopback(floods(3, &inputs), &pattern, 10).unwrap();
        let faulty =
            run_loopback_faulty(floods(3, &inputs), &pattern, &FaultPlan::none(4), 10).unwrap();
        assert_eq!(plain, faulty);
    }

    #[test]
    fn faulty_loopback_matches_the_faulty_simulator() {
        let inputs = [3u32, 9, 1, 4, 7];
        let plan = FaultPlan::new(5, 0xFA17)
            .drop_rate(2000)
            .delay_rate(2000, 2)
            .duplicate_rate(1500)
            .reorder_rate(4000);
        let mut pattern = FailurePattern::none(5);
        pattern
            .crash(ProcessId::new(2), CrashSpec::new(2, 3))
            .unwrap();
        let nodes = run_loopback_faulty(floods(4, &inputs), &pattern, &plan, 10).unwrap();
        let simulated = run_protocol_faulty(floods(4, &inputs), &pattern, &plan, 10).unwrap();
        assert_eq!(nodes, simulated);
    }

    #[test]
    fn all_links_dropped_leaves_every_node_with_its_own_input() {
        let inputs = [3u32, 9, 1];
        let plan = FaultPlan::new(3, 1).drop_rate(RATE_SCALE);
        let trace =
            run_loopback_faulty(floods(1, &inputs), &FailurePattern::none(3), &plan, 5).unwrap();
        let decided: Vec<u32> = trace
            .outcomes()
            .iter()
            .map(|o| *o.decided_value().unwrap())
            .collect();
        assert_eq!(decided, inputs);
        assert_eq!(trace.messages_delivered(), 3);
    }

    #[test]
    fn plan_size_mismatch_is_reported() {
        let err = run_loopback_faulty(
            floods(1, &[1, 2]),
            &FailurePattern::none(2),
            &FaultPlan::none(3),
            5,
        )
        .unwrap_err();
        assert_eq!(
            err,
            NodeError::SystemSizeMismatch {
                processes: 2,
                pattern: 3
            }
        );
    }
}
