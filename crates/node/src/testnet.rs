//! The testnet harness: spawns `n` real node processes, injects crashes
//! by killing victims, and collects the survivors' reports into a
//! [`Trace`].
//!
//! Each node is one OS process running the `setagree-node` binary's
//! `run` subcommand over TCP. A victim is handed its `CrashSpec` and
//! *aborts itself* at the scheduled point — immediately after its
//! ordered-send prefix, before any receive — so the kernel closes its
//! sockets and peers observe the death as end-of-stream, exactly the
//! paper's crash model made physical. Killed nodes print nothing; the
//! harness fills in their [`Outcome::Crashed`] entries from the pattern
//! it injected.
//!
//! Survivors print two machine-readable lines on stdout:
//!
//! ```text
//! OUTCOME decided <value> <round>
//! RECEIVED <letters-collected>
//! ```
//!
//! The trace's delivery count is the sum of the survivors' collected
//! letters — what the network observably delivered (a killed node's
//! pre-crash receptions die with it, unlike in the in-process tiers
//! where the shared counter survives).
//!
//! A node whose round times out on a *connected but silent* peer prints
//! a third line form instead — `TIMEOUT <round> <peers>` — which the
//! harness surfaces as [`TestnetError::RoundTimeout`] rather than
//! fabricating a crash nobody injected.
//!
//! With [`TestnetConfig::metrics`] set, every child runs with its
//! observability registry enabled and additionally prints `METRIC`
//! machine lines (see `setagree_obs::Snapshot::to_lines`); the harness
//! folds them into one system-wide [`Snapshot`] — snapshots merge
//! commutatively, so the fold order does not matter.

use std::error::Error;
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

use setagree_obs::Snapshot;
use setagree_sync::{FailurePattern, Outcome, Trace};
use setagree_types::ProcessId;

use crate::config::localhost_peers;

/// A testnet run: system parameters plus the node binary to spawn.
#[derive(Debug, Clone)]
pub struct TestnetConfig {
    /// The `setagree-node` binary (usually `std::env::current_exe()`).
    pub binary: PathBuf,
    /// Crash resilience `t` (sets the FloodSet round bound `⌊t/k⌋ + 1`).
    pub t: usize,
    /// Agreement degree `k`.
    pub k: usize,
    /// One proposal per node; its length is the system size.
    pub input: Vec<u32>,
    /// Which nodes to kill, and when.
    pub pattern: FailurePattern,
    /// Node `i` listens on `127.0.0.1:(port_base + i)`.
    pub port_base: u16,
    /// Per-round wait before a silent peer is declared dead.
    pub round_timeout: Duration,
    /// Injected link faults forwarded to every node as `--faults`:
    /// `(seed, drop rate in parts per 10,000)`.
    pub faults: Option<(u64, u32)>,
    /// Scheduled partitions forwarded to every node as `--partition`:
    /// `(members, from_round, to_round)`.
    pub partitions: Vec<(Vec<usize>, usize, usize)>,
    /// Run every child with metrics enabled (`--metrics -`) and fold
    /// the per-child `METRIC` lines into one aggregated [`Snapshot`].
    pub metrics: bool,
}

impl TestnetConfig {
    /// The system size.
    pub fn n(&self) -> usize {
        self.input.len()
    }
}

/// A testnet failure (distinct from a *node* crash, which is the point).
#[derive(Debug)]
#[non_exhaustive]
pub enum TestnetError {
    /// Input length and failure-pattern system size differ.
    SystemSizeMismatch {
        /// Proposals supplied.
        processes: usize,
        /// Pattern system size.
        pattern: usize,
    },
    /// A node process could not be spawned or awaited.
    Io {
        /// The node.
        id: usize,
        /// The underlying error.
        source: io::Error,
    },
    /// A node that was not scheduled to crash exited without reporting
    /// an outcome.
    NodeFailed {
        /// The node.
        id: usize,
        /// What it left behind (exit status and stdout).
        detail: String,
    },
    /// A node's round stalled on peers that stayed connected but silent
    /// — a liveness anomaly the transport refuses to mislabel as a
    /// crash (see `TcpError::RoundTimeout`).
    RoundTimeout {
        /// The node that timed out.
        id: usize,
        /// The round that stalled.
        round: usize,
        /// The silent peers, as the node printed them (`p2,p5`).
        peers: String,
    },
}

impl fmt::Display for TestnetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestnetError::SystemSizeMismatch { processes, pattern } => write!(
                f,
                "{processes} proposals but the failure pattern is over {pattern} processes"
            ),
            TestnetError::Io { id, source } => write!(f, "node {id}: {source}"),
            TestnetError::NodeFailed { id, detail } => {
                write!(f, "node {id} failed without a crash scheduled: {detail}")
            }
            TestnetError::RoundTimeout { id, round, peers } => {
                write!(
                    f,
                    "node {id}: round {round} timed out waiting on unconfirmed peers: {peers}"
                )
            }
        }
    }
}

impl Error for TestnetError {}

/// Spawns the testnet, waits for every node, and assembles the trace.
///
/// # Errors
///
/// [`TestnetError`] on spawn failures, size mismatches, or a node dying
/// *without* a scheduled kill. Scheduled kills are not errors — they are
/// the adversary.
pub fn run_testnet(config: &TestnetConfig) -> Result<Trace<u32>, TestnetError> {
    run_testnet_observed(config).map(|(trace, _)| trace)
}

/// [`run_testnet`], also returning the system-wide metrics [`Snapshot`]
/// folded from every child's `METRIC` lines (empty unless
/// [`TestnetConfig::metrics`] is set).
///
/// # Errors
///
/// As [`run_testnet`].
pub fn run_testnet_observed(
    config: &TestnetConfig,
) -> Result<(Trace<u32>, Snapshot), TestnetError> {
    let n = config.n();
    if n != config.pattern.system_size() {
        return Err(TestnetError::SystemSizeMismatch {
            processes: n,
            pattern: config.pattern.system_size(),
        });
    }
    let peers = localhost_peers(n, config.port_base)
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let input = config
        .input
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",");

    let mut children = Vec::with_capacity(n);
    for id in 0..n {
        let mut cmd = Command::new(&config.binary);
        cmd.arg("run")
            .args(["--id", &id.to_string()])
            .args(["--peers", &peers])
            .args(["--t", &config.t.to_string()])
            .args(["--k", &config.k.to_string()])
            .args(["--input", &input])
            .args([
                "--round-timeout-ms",
                &config.round_timeout.as_millis().to_string(),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        if let Some(spec) = config.pattern.spec(ProcessId::new(id)) {
            cmd.args(["--crash", &format!("{}:{}", spec.round, spec.after_sends)]);
        }
        if let Some((seed, rate)) = config.faults {
            cmd.args(["--faults", &format!("{seed}:{rate}")]);
        }
        for (members, from_round, to_round) in &config.partitions {
            let ids = members
                .iter()
                .map(|m| m.to_string())
                .collect::<Vec<_>>()
                .join(",");
            cmd.args(["--partition", &format!("{ids}:{from_round}:{to_round}")]);
        }
        if config.metrics {
            cmd.args(["--metrics", "-"]);
        }
        children.push(
            cmd.spawn()
                .map_err(|source| TestnetError::Io { id, source })?,
        );
    }

    let mut outcomes = Vec::with_capacity(n);
    let mut delivered = 0u64;
    let mut metrics = Snapshot::new();
    for (id, child) in children.into_iter().enumerate() {
        let output = child
            .wait_with_output()
            .map_err(|source| TestnetError::Io { id, source })?;
        let stdout = String::from_utf8_lossy(&output.stdout);
        if let Some(spec) = config.pattern.spec(ProcessId::new(id)) {
            // The victim was killed; whatever it printed is void.
            outcomes.push(Outcome::Crashed { round: spec.round });
            continue;
        }
        let mut outcome = None;
        for line in stdout.lines() {
            let fields: Vec<&str> = line.split_whitespace().collect();
            match fields.as_slice() {
                ["OUTCOME", "decided", value, round] => {
                    if let (Ok(value), Ok(round)) = (value.parse(), round.parse()) {
                        outcome = Some(Outcome::Decided { value, round });
                    }
                }
                ["RECEIVED", count] => {
                    delivered += count.parse::<u64>().unwrap_or(0);
                }
                ["TIMEOUT", round, peers] => {
                    return Err(TestnetError::RoundTimeout {
                        id,
                        round: round.parse().unwrap_or(0),
                        peers: (*peers).to_string(),
                    });
                }
                ["METRIC", ..] => {
                    if let Some(entry) = Snapshot::parse_line(line) {
                        metrics.add_entry(entry);
                    }
                }
                _ => {}
            }
        }
        match outcome {
            Some(o) => outcomes.push(o),
            None => {
                return Err(TestnetError::NodeFailed {
                    id,
                    detail: format!("exit {:?}, stdout {stdout:?}", output.status.code()),
                })
            }
        }
    }

    let rounds_executed = outcomes
        .iter()
        .filter_map(|o| match o {
            Outcome::Decided { round, .. } | Outcome::Crashed { round } => Some(*round),
            Outcome::Undecided => None,
        })
        .max()
        .unwrap_or(0);
    Ok((
        Trace::from_parts(outcomes, rounds_executed, delivered),
        metrics,
    ))
}
