//! The TCP transport: real sockets between node processes, framed with
//! the length-prefixed [`Frame`] codec.
//!
//! A node establishes a full mesh at startup — it dials every lower id
//! (retrying until the connect deadline, so start order does not matter)
//! and accepts a [`FrameKind::Hello`]-identified connection from every
//! higher id. One reader thread per peer feeds a single event channel,
//! preserving each peer's frame order.
//!
//! There is no barrier over TCP: lock-step rounds emerge from
//! [`collect`](Transport::collect), which blocks until every live,
//! unsettled peer has contributed its frame for the round (early frames
//! from fast peers are buffered per round). A deciding node announces
//! [`FrameKind::Settled`] so peers distinguish a clean exit from a kill.
//!
//! # Self-healing
//!
//! An anomaly is not instantly a death. A round that stalls escalates
//! through **suspicion**: the node rebroadcasts [`FrameKind::Resend`]
//! requests, and any peer answers with [`FrameKind::Relay`] copies of
//! the round's broadcasts it has seen (including a crashed sender's
//! delivered prefix — relays propagate it to peers the prefix missed).
//! A *closed* stream starts a bounded-exponential-backoff redial
//! campaign (for peers this node dials) or an acceptance window on the
//! persistent listener (for peers that dial this node); a successful
//! re-handshake resumes at the current round by replaying the sender's
//! recent frames. Only when the reconnect budget is exhausted does the
//! transport fall back to the old kill-detection and confirm the peer
//! dead. A peer that stays *connected but silent* past `round_timeout`
//! is **not** declared crashed — that would fabricate a paper-model
//! failure the adversary never scheduled — and surfaces as
//! [`TcpError::RoundTimeout`] instead.
//!
//! # Injected faults
//!
//! An optional [`FaultPlan`] (see [`NodeConfig::fault_plan`]) filters
//! **first-arrival [`FrameKind::Msg`] frames** at the receive boundary
//! with the same per-`(round, sender, receiver)` decisions the
//! simulator uses. Recovery frames ([`FrameKind::Relay`]) are exempt:
//! the plan models loss of the original transmission, and recovery is
//! recovery. Consequences of real sockets:
//!
//! * a **drop** (or a partition cut) loses the original frame; the
//!   round then heals through resend/relay, so the verdict survives;
//! * a **delay** stashes the original for a later round's inbox while
//!   the current round heals through relay — over TCP a delay behaves
//!   like a drop-with-recovery plus a stale duplicate;
//! * a **duplicate** is absorbed by the sender-keyed round inbox;
//! * a **reorder** is absorbed by the ordered collect.
//!
//! Strict byte-level trace equality under a plan is a simulator ↔
//! loopback property (`tests/fault_equivalence.rs`); the TCP tier's
//! contract is to *survive* the plan with a correct verdict.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::{mpsc, Arc, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use setagree_obs::Counter;
use setagree_sync::{FaultPlan, LinkFault};
use setagree_types::ProcessId;

use crate::config::NodeConfig;
use crate::frame::{Frame, FrameError, FrameKind};
use crate::transport::Transport;

/// How many past rounds of broadcasts are retained for relay service.
const RELAY_KEEP: usize = 4;

/// Poll granularity of the collect loop: how often suspicion deadlines,
/// reconnect windows and the round deadline are re-checked while
/// blocked on the event channel.
const COLLECT_TICK: Duration = Duration::from_millis(25);

/// Every frame kind, in tag order — drives the per-kind counter arrays.
const FRAME_KINDS: [FrameKind; 5] = [
    FrameKind::Hello,
    FrameKind::Msg,
    FrameKind::Settled,
    FrameKind::Resend,
    FrameKind::Relay,
];

/// The `kind` label value for a frame-kind counter.
fn kind_label(kind: FrameKind) -> &'static str {
    match kind {
        FrameKind::Hello => "hello",
        FrameKind::Msg => "msg",
        FrameKind::Settled => "settled",
        FrameKind::Resend => "resend",
        FrameKind::Relay => "relay",
    }
}

/// Index of `kind` into a [`FRAME_KINDS`]-ordered counter array.
fn kind_index(kind: FrameKind) -> usize {
    match kind {
        FrameKind::Hello => 0,
        FrameKind::Msg => 1,
        FrameKind::Settled => 2,
        FrameKind::Resend => 3,
        FrameKind::Relay => 4,
    }
}

/// Registry handles for the transport counters, resolved once per
/// process so the per-frame cost is one relaxed load plus one atomic
/// add. `tcp_frames_sent`/`tcp_frames_received` are labeled by frame
/// kind; the recovery counters (`tcp_frames_resent`,
/// `tcp_relays_served`, `tcp_redial_*`, `tcp_peers_confirmed_down`,
/// `tcp_round_timeouts`) expose how hard the self-healing machinery is
/// working.
struct TcpMetrics {
    frames_sent: [Arc<Counter>; 5],
    frames_received: [Arc<Counter>; 5],
    frames_resent: Arc<Counter>,
    relays_served: Arc<Counter>,
    redial_attempts: Arc<Counter>,
    redials_ok: Arc<Counter>,
    redials_failed: Arc<Counter>,
    peers_confirmed_down: Arc<Counter>,
    round_timeouts: Arc<Counter>,
}

fn tcp_metrics() -> &'static TcpMetrics {
    static METRICS: OnceLock<TcpMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let per_kind = |name: &'static str| {
            FRAME_KINDS.map(|kind| setagree_obs::counter(name, &[("kind", kind_label(kind))]))
        };
        TcpMetrics {
            frames_sent: per_kind("tcp_frames_sent"),
            frames_received: per_kind("tcp_frames_received"),
            frames_resent: setagree_obs::counter("tcp_frames_resent", &[]),
            relays_served: setagree_obs::counter("tcp_relays_served", &[]),
            redial_attempts: setagree_obs::counter("tcp_redial_attempts", &[]),
            redials_ok: setagree_obs::counter("tcp_redials_ok", &[]),
            redials_failed: setagree_obs::counter("tcp_redials_failed", &[]),
            peers_confirmed_down: setagree_obs::counter("tcp_peers_confirmed_down", &[]),
            round_timeouts: setagree_obs::counter("tcp_round_timeouts", &[]),
        }
    })
}

/// A TCP transport failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum TcpError {
    /// An I/O operation failed.
    Io {
        /// What the transport was doing.
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// A handshake frame was malformed.
    Frame(FrameError),
    /// A peer's first frame was not a valid, expected `Hello`.
    BadHello,
    /// Not every peer connected before the deadline.
    HandshakeTimeout,
    /// A round stalled past `round_timeout` on peers that are still
    /// *connected* — suspected, resent to, but neither heard from nor
    /// confirmed dead. Treating them as crashed would mislabel a slow
    /// node as a paper-model failure, so the round fails loudly
    /// instead.
    RoundTimeout {
        /// The round that stalled.
        round: usize,
        /// The suspected-but-unconfirmed peers.
        peers: Vec<ProcessId>,
    },
}

impl TcpError {
    fn io(context: &str, source: io::Error) -> TcpError {
        TcpError::Io {
            context: context.to_string(),
            source,
        }
    }
}

impl fmt::Display for TcpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TcpError::Io { context, source } => write!(f, "{context}: {source}"),
            TcpError::Frame(e) => write!(f, "malformed handshake: {e}"),
            TcpError::BadHello => write!(f, "peer's first frame was not a valid hello"),
            TcpError::HandshakeTimeout => {
                write!(f, "full mesh did not form before the connect deadline")
            }
            TcpError::RoundTimeout { round, peers } => {
                write!(f, "round {round} timed out waiting on unconfirmed peers")?;
                for (i, peer) in peers.iter().enumerate() {
                    write!(f, "{} {peer}", if i == 0 { ":" } else { "," })?;
                }
                Ok(())
            }
        }
    }
}

impl Error for TcpError {}

#[derive(Debug)]
enum PeerEvent {
    Frame(Frame),
    Closed,
    /// A (re)connected, hello-identified stream for this peer — from the
    /// persistent listener (peer redialled us) or from one of our redial
    /// campaigns (we reached the peer again).
    Reconnected(TcpStream),
    /// A redial campaign exhausted its backoff budget.
    GaveUp,
}

/// What this node knows about one peer.
#[derive(Debug, Clone, Copy)]
struct PeerState {
    /// The round after which the peer (cleanly) stopped participating.
    settled_at: Option<usize>,
    /// Confirmed dead: stream closed *and* the reconnect budget ran out.
    down: bool,
    /// The peer's stream closed; recovery is in progress.
    suspect: bool,
    /// When the stream closed (drives the inbound reconnect window).
    closed_at: Option<Instant>,
    /// Redial campaigns left before a closed outbound link is final.
    redials_left: u32,
}

impl PeerState {
    fn fresh(redials: u32) -> PeerState {
        PeerState {
            settled_at: None,
            down: false,
            suspect: false,
            closed_at: None,
            redials_left: redials,
        }
    }
}

/// One node's TCP connection to the rest of the system.
#[derive(Debug)]
pub struct TcpTransport {
    me: ProcessId,
    n: usize,
    writers: Vec<Option<TcpStream>>,
    events: mpsc::Receiver<(usize, PeerEvent)>,
    /// Kept for redial campaigns and adopted-stream reader threads; also
    /// guarantees `events` never observes a disconnect.
    event_tx: mpsc::Sender<(usize, PeerEvent)>,
    peer_addrs: Vec<SocketAddr>,
    peers: Vec<PeerState>,
    /// Frames that arrived for rounds we have not collected yet,
    /// `round → sender → payload`.
    pending: BTreeMap<usize, BTreeMap<usize, Vec<u8>>>,
    /// This node's own broadcast, looped back locally (the model: a
    /// process receives its own message when its send prefix reaches it).
    self_letter: Option<(usize, Vec<u8>)>,
    /// This node's recent broadcasts, `round → payload` — replayed on
    /// reconnect and served to `Resend` requests.
    sent_log: BTreeMap<usize, Vec<u8>>,
    /// Recent broadcasts *accepted* from others, `round → sender →
    /// payload` — the relay pool answering peers' `Resend` requests.
    relay_store: BTreeMap<usize, BTreeMap<usize, Vec<u8>>>,
    /// Fault-delayed originals waiting for their due round,
    /// `due round → [(sender, payload)]`.
    delayed: BTreeMap<usize, Vec<(usize, Vec<u8>)>>,
    received: u64,
    current_round: usize,
    settled_round: Option<usize>,
    round_timeout: Duration,
    reconnect_attempts: u32,
    reconnect_base_delay: Duration,
    reconnect_window: Duration,
    fault_plan: Option<FaultPlan>,
}

impl TcpTransport {
    /// Establishes the full mesh for `config`, blocking until every peer
    /// is connected and identified (or the connect deadline passes). The
    /// listener then stays alive for the node's lifetime, accepting
    /// re-handshakes from peers recovering a broken link.
    ///
    /// # Errors
    ///
    /// [`TcpError`] if the listener cannot bind, a dial or handshake
    /// fails permanently, or the mesh does not form before the deadline.
    pub fn establish(config: &NodeConfig) -> Result<TcpTransport, TcpError> {
        let me = config.me;
        let n = config.n();
        let deadline = Instant::now() + config.connect_timeout;
        let listener =
            TcpListener::bind(config.my_addr()).map_err(|e| TcpError::io("bind listener", e))?;

        let (event_tx, events) = mpsc::channel();

        // Inbound half of the mesh: every higher id dials us. After the
        // initial mesh forms, the same listener keeps accepting —
        // re-handshakes from peers healing a broken link arrive as
        // identified `Reconnected` events.
        let expected_inbound = n - 1 - me.index();
        let (accept_tx, accept_rx) = mpsc::channel();
        let reconnect_tx = event_tx.clone();
        thread::spawn(move || {
            for _ in 0..expected_inbound {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if accept_tx.send(stream).is_err() {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            }
            drop(accept_tx);
            loop {
                let Ok((mut stream, _)) = listener.accept() else {
                    return;
                };
                let _ = stream.set_nodelay(true);
                // Identify inline, but never let a silent dialer wedge
                // the listener.
                let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                let hello = Frame::read_from(&mut stream);
                let _ = stream.set_read_timeout(None);
                let peer = match hello {
                    Ok(Some(f)) if f.kind == FrameKind::Hello => f.from.index(),
                    _ => continue,
                };
                if reconnect_tx
                    .send((peer, PeerEvent::Reconnected(stream)))
                    .is_err()
                {
                    return;
                }
            }
        });

        let mut writers: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();

        // Outbound half: dial every lower id, retrying until the
        // deadline so nodes may start in any order.
        for (peer, &addr) in config.peers.iter().enumerate().take(me.index()) {
            let stream = loop {
                match TcpStream::connect(addr) {
                    Ok(s) => break s,
                    Err(e) => {
                        if Instant::now() >= deadline {
                            return Err(TcpError::io(&format!("connect to {addr}"), e));
                        }
                        thread::sleep(Duration::from_millis(25));
                    }
                }
            };
            let _ = stream.set_nodelay(true);
            let mut hello_half = stream
                .try_clone()
                .map_err(|e| TcpError::io("clone stream", e))?;
            Frame::hello(me)
                .write_to(&mut hello_half)
                .map_err(|e| TcpError::io("send hello", e))?;
            writers[peer] = Some(stream);
        }

        // Identify the inbound connections by their hello frames.
        for _ in 0..expected_inbound {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let mut stream = accept_rx
                .recv_timeout(remaining)
                .map_err(|_| TcpError::HandshakeTimeout)?;
            let _ = stream.set_nodelay(true);
            let hello = Frame::read_from(&mut stream).map_err(TcpError::Frame)?;
            let peer = match hello {
                Some(f) if f.kind == FrameKind::Hello => f.from.index(),
                _ => return Err(TcpError::BadHello),
            };
            if peer <= me.index() || peer >= n || writers[peer].is_some() {
                return Err(TcpError::BadHello);
            }
            writers[peer] = Some(stream);
        }

        // One reader thread per peer, all feeding one ordered channel.
        for (peer, writer) in writers.iter().enumerate() {
            let Some(writer) = writer else { continue };
            let reader = writer
                .try_clone()
                .map_err(|e| TcpError::io("clone stream", e))?;
            spawn_reader(peer, reader, event_tx.clone());
        }

        Ok(TcpTransport {
            me,
            n,
            writers,
            events,
            event_tx,
            peer_addrs: config.peers.clone(),
            peers: vec![PeerState::fresh(config.reconnect_attempts); n],
            pending: BTreeMap::new(),
            self_letter: None,
            sent_log: BTreeMap::new(),
            relay_store: BTreeMap::new(),
            delayed: BTreeMap::new(),
            received: 0,
            current_round: 0,
            settled_round: None,
            round_timeout: config.round_timeout,
            reconnect_attempts: config.reconnect_attempts,
            reconnect_base_delay: config.reconnect_base_delay,
            reconnect_window: config.reconnect_window,
            fault_plan: config.fault_plan.clone(),
        })
    }

    /// Total letters this node has collected — its contribution to a
    /// testnet-wide delivery count.
    pub fn received_total(&self) -> u64 {
        self.received
    }

    /// Whether the round loop still expects a frame from `peer` in
    /// `round`. Suspects are expected: they may heal.
    fn expects(&self, peer: usize, round: usize) -> bool {
        let state = self.peers[peer];
        !state.down && state.settled_at.is_none_or(|r| r >= round)
    }

    /// Confirms a peer dead: its stream is gone and its reconnect budget
    /// is spent. The old instant-death path, now the last resort.
    fn mark_down(&mut self, peer: usize) {
        if !self.peers[peer].down && setagree_obs::enabled() {
            tcp_metrics().peers_confirmed_down.inc();
        }
        self.peers[peer].down = true;
        self.peers[peer].suspect = false;
        if let Some(w) = self.writers[peer].take() {
            let _ = w.shutdown(Shutdown::Both);
        }
    }

    /// A peer's stream broke (EOF, read error or write failure): mark it
    /// suspect and start recovery — a redial campaign if we are the
    /// dialing side, otherwise the listener's reconnect window.
    fn note_closed(&mut self, peer: usize) {
        if self.peers[peer].down {
            return;
        }
        if let Some(w) = self.writers[peer].take() {
            let _ = w.shutdown(Shutdown::Both);
        }
        let state = &mut self.peers[peer];
        state.suspect = true;
        state.closed_at = Some(Instant::now());
        if peer < self.me.index() && state.redials_left > 0 {
            state.redials_left -= 1;
            spawn_redial(
                self.me,
                peer,
                self.peer_addrs[peer],
                self.reconnect_attempts,
                self.reconnect_base_delay,
                self.event_tx.clone(),
            );
        }
    }

    /// Adopts a freshly (re)identified stream for `peer` and resumes at
    /// the current round: replay our recent broadcasts (the originals
    /// may have died with the old socket) and our settlement, then pull
    /// whatever we missed.
    fn adopt_stream(&mut self, peer: usize, stream: TcpStream) {
        if peer >= self.n || peer == self.me.index() || self.peers[peer].down {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        if !self.peers[peer].suspect && self.writers[peer].is_some() {
            // The link is healthy; a spurious extra handshake (hostile
            // or raced) must not hijack it.
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        let Ok(reader) = stream.try_clone() else {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        };
        self.writers[peer] = Some(stream);
        spawn_reader(peer, reader, self.event_tx.clone());
        let state = &mut self.peers[peer];
        state.suspect = false;
        state.closed_at = None;

        // Resume: recent broadcasts as ordinary first-arrival Msg frames
        // (an injected plan judges them exactly once, deterministically),
        // plus our settlement notice, plus a pull for the stalled round.
        let replay: Vec<Frame> = self
            .sent_log
            .iter()
            .map(|(&round, payload)| Frame::msg(self.me, round, payload.clone()))
            .collect();
        for frame in replay {
            self.write_frame(peer, &frame);
        }
        if let Some(round) = self.settled_round {
            self.write_frame(peer, &Frame::settled(self.me, round));
        }
        let round = self.current_round;
        if round > 0 {
            self.write_frame(peer, &Frame::resend(self.me, round));
        }
    }

    /// Writes one frame to `peer`, converting a write failure into a
    /// closed-stream observation.
    fn write_frame(&mut self, peer: usize, frame: &Frame) {
        let wrote = self.writers[peer]
            .as_mut()
            .map(|w| frame.write_to(w).is_ok());
        match wrote {
            Some(true) if setagree_obs::enabled() => {
                tcp_metrics().frames_sent[kind_index(frame.kind)].inc();
            }
            Some(false) => self.note_closed(peer),
            _ => {}
        }
    }

    /// Asks every reachable peer to relay what it has seen of `round`.
    fn send_resends(&mut self, round: usize) {
        let obs_on = setagree_obs::enabled();
        for peer in 0..self.n {
            if peer == self.me.index() || self.writers[peer].is_none() {
                continue;
            }
            if obs_on {
                tcp_metrics().frames_resent.inc();
            }
            self.write_frame(peer, &Frame::resend(self.me, round));
        }
    }

    /// Answers a peer's `Resend` for `round` with relays of everything
    /// this node has: its own broadcast and the accepted broadcasts of
    /// others (which is how a crashed sender's delivered prefix still
    /// propagates to peers the prefix missed).
    fn serve_resend(&mut self, peer: usize, round: usize) {
        let mut relays = Vec::new();
        if let Some(payload) = self.sent_log.get(&round) {
            relays.push(Frame::relay(self.me, self.me, round, payload));
        }
        if let Some(seen) = self.relay_store.get(&round) {
            for (&orig, payload) in seen {
                if orig != peer {
                    relays.push(Frame::relay(self.me, ProcessId::new(orig), round, payload));
                }
            }
        }
        if setagree_obs::enabled() {
            tcp_metrics().relays_served.add(relays.len() as u64);
        }
        for frame in relays {
            self.write_frame(peer, &frame);
        }
    }

    /// The injected-fault verdict for a first-arrival `Msg` frame.
    fn filter(&self, round: usize, from: usize) -> LinkFault {
        match &self.fault_plan {
            Some(plan) => plan.decide(round, ProcessId::new(from), self.me),
            None => LinkFault::Deliver,
        }
    }

    /// Stores an accepted broadcast in the relay pool.
    fn remember(&mut self, round: usize, from: usize, payload: &[u8]) {
        self.relay_store
            .entry(round)
            .or_default()
            .entry(from)
            .or_insert_with(|| payload.to_vec());
    }

    fn note_frame(
        &mut self,
        peer: usize,
        frame: Frame,
        round: usize,
        got: &mut BTreeMap<usize, Vec<u8>>,
    ) {
        let obs_on = setagree_obs::enabled();
        if obs_on {
            tcp_metrics().frames_received[kind_index(frame.kind)].inc();
        }
        match frame.kind {
            FrameKind::Msg if frame.round >= round => {
                match self.filter(frame.round, peer) {
                    LinkFault::Drop => {
                        // Same counter names the simulator's fault inbox
                        // uses, so a fault plan's footprint aggregates
                        // across tiers.
                        if obs_on {
                            setagree_obs::counter("fault_messages_dropped", &[]).inc();
                        }
                        return;
                    }
                    LinkFault::Delay(by) => {
                        if obs_on {
                            setagree_obs::counter("fault_messages_delayed", &[]).inc();
                        }
                        self.delayed
                            .entry(frame.round + by)
                            .or_default()
                            .push((peer, frame.payload));
                        return;
                    }
                    // The sender-keyed round inbox absorbs duplicates.
                    LinkFault::Deliver | LinkFault::Duplicate => {}
                }
                self.remember(frame.round, peer, &frame.payload);
                if frame.round == round {
                    got.entry(peer).or_insert(frame.payload);
                } else {
                    self.pending
                        .entry(frame.round)
                        .or_default()
                        .entry(peer)
                        .or_insert(frame.payload);
                }
            }
            // Stale rounds (we gave up on the sender) and stray hellos
            // are dropped.
            FrameKind::Msg | FrameKind::Hello => {}
            FrameKind::Settled => {
                self.peers[peer].settled_at = Some(frame.round);
            }
            FrameKind::Resend => {
                self.serve_resend(peer, frame.round);
            }
            FrameKind::Relay => {
                // Recovery data: exempt from the fault filter, deduped by
                // the sender-keyed maps. A malformed relay is dropped.
                let Some((orig, payload)) = frame.relay_parts() else {
                    return;
                };
                let (orig, payload) = (orig.index(), payload.to_vec());
                if orig >= self.n || orig == self.me.index() {
                    return;
                }
                if frame.round >= round {
                    self.remember(frame.round, orig, &payload);
                    if frame.round == round {
                        if self.expects(orig, round) {
                            got.entry(orig).or_insert(payload);
                        }
                    } else {
                        self.pending
                            .entry(frame.round)
                            .or_default()
                            .entry(orig)
                            .or_insert(payload);
                    }
                }
            }
        }
    }

    fn handle_event(
        &mut self,
        peer: usize,
        event: PeerEvent,
        round: usize,
        got: &mut BTreeMap<usize, Vec<u8>>,
    ) {
        if peer >= self.n {
            return;
        }
        match event {
            PeerEvent::Frame(frame) => self.note_frame(peer, frame, round, got),
            PeerEvent::Closed => self.note_closed(peer),
            PeerEvent::Reconnected(stream) => self.adopt_stream(peer, stream),
            PeerEvent::GaveUp => {
                // The campaign failed; if the link healed through the
                // listener in the meantime, the give-up is stale.
                if self.peers[peer].suspect {
                    self.mark_down(peer);
                }
            }
        }
    }

    /// Drops relay/broadcast history too old to be useful.
    fn prune(&mut self, round: usize) {
        let floor = round.saturating_sub(RELAY_KEEP);
        self.sent_log = self.sent_log.split_off(&floor);
        self.relay_store = self.relay_store.split_off(&floor);
    }
}

fn spawn_reader(peer: usize, mut reader: TcpStream, tx: mpsc::Sender<(usize, PeerEvent)>) {
    thread::spawn(move || loop {
        match Frame::read_from(&mut reader) {
            Ok(Some(frame)) => {
                if tx.send((peer, PeerEvent::Frame(frame))).is_err() {
                    return;
                }
            }
            Ok(None) | Err(_) => {
                let _ = tx.send((peer, PeerEvent::Closed));
                return;
            }
        }
    });
}

/// One redial campaign: bounded exponential backoff, then give up.
fn spawn_redial(
    me: ProcessId,
    peer: usize,
    addr: SocketAddr,
    attempts: u32,
    base_delay: Duration,
    tx: mpsc::Sender<(usize, PeerEvent)>,
) {
    thread::spawn(move || {
        let obs_on = setagree_obs::enabled();
        let mut delay = base_delay;
        for _ in 0..attempts.max(1) {
            if obs_on {
                tcp_metrics().redial_attempts.inc();
            }
            if let Ok(mut stream) = TcpStream::connect(addr) {
                let _ = stream.set_nodelay(true);
                if Frame::hello(me).write_to(&mut stream).is_ok() {
                    if obs_on {
                        tcp_metrics().redials_ok.inc();
                    }
                    let _ = tx.send((peer, PeerEvent::Reconnected(stream)));
                    return;
                }
            }
            thread::sleep(delay);
            delay = delay.saturating_mul(2);
        }
        if obs_on {
            tcp_metrics().redials_failed.inc();
        }
        let _ = tx.send((peer, PeerEvent::GaveUp));
    });
}

impl Transport for TcpTransport {
    type Msg = Vec<u8>;
    type Letter = Vec<u8>;
    type Error = TcpError;

    fn n(&self) -> usize {
        self.n
    }

    fn me(&self) -> ProcessId {
        self.me
    }

    fn broadcast(&mut self, round: usize, payload: Vec<u8>, reach: usize) -> Result<(), TcpError> {
        self.current_round = round;
        self.sent_log.insert(round, payload.clone());
        for recipient in 0..reach.min(self.n) {
            if recipient == self.me.index() {
                self.self_letter = Some((round, payload.clone()));
                continue;
            }
            if !self.expects(recipient, round) {
                continue;
            }
            let frame = Frame::msg(self.me, round, payload.clone());
            self.write_frame(recipient, &frame);
        }
        Ok(())
    }

    fn sends_done(&mut self, _round: usize) -> Result<(), TcpError> {
        // Writes are unbuffered (`write_all` + TCP_NODELAY): nothing to
        // flush, and rounds need no barrier — `collect` blocks until the
        // round's frames arrive.
        Ok(())
    }

    fn collect(&mut self, round: usize) -> Result<Vec<(ProcessId, Vec<u8>)>, TcpError> {
        self.current_round = round;
        self.prune(round);

        // Fault-delayed originals whose due round has come: delivered
        // first, like the simulator's inbox (stale metadata and all).
        let mut late = Vec::new();
        while let Some((&due, _)) = self.delayed.first_key_value() {
            if due > round {
                break;
            }
            let (_, batch) = self.delayed.pop_first().expect("checked non-empty");
            late.extend(batch);
        }

        let mut got: BTreeMap<usize, Vec<u8>> = self.pending.remove(&round).unwrap_or_default();
        if let Some((r, payload)) = self.self_letter.take() {
            if r == round {
                got.insert(self.me.index(), payload);
            }
        }
        let deadline = Instant::now() + self.round_timeout;
        // Suspicion cadence: a stalled round asks for relays well before
        // the deadline, and keeps asking.
        let resend_interval =
            (self.round_timeout / 10).clamp(Duration::from_millis(50), Duration::from_secs(1));
        let mut next_resend = Instant::now() + resend_interval;
        loop {
            let missing: Vec<usize> = (0..self.n)
                .filter(|&p| {
                    p != self.me.index() && self.expects(p, round) && !got.contains_key(&p)
                })
                .collect();
            if missing.is_empty() {
                break;
            }
            let now = Instant::now();
            // A closed peer that did not re-handshake within the window
            // has spent its reconnect budget: confirmed dead.
            for &p in &missing {
                let state = self.peers[p];
                if let (true, Some(at)) = (state.suspect, state.closed_at) {
                    if now >= at + self.reconnect_window {
                        self.mark_down(p);
                    }
                }
            }
            if now >= deadline {
                let mut silent = Vec::new();
                for &p in &missing {
                    let state = self.peers[p];
                    if state.down {
                        continue;
                    }
                    if state.suspect {
                        // Stream gone and the deadline beat the window:
                        // the budget is spent either way.
                        self.mark_down(p);
                    } else {
                        silent.push(ProcessId::new(p));
                    }
                }
                if silent.is_empty() {
                    break;
                }
                if setagree_obs::enabled() {
                    tcp_metrics().round_timeouts.inc();
                }
                return Err(TcpError::RoundTimeout {
                    round,
                    peers: silent,
                });
            }
            if now >= next_resend {
                self.send_resends(round);
                for &p in &missing {
                    if !self.peers[p].down {
                        self.peers[p].suspect = true;
                    }
                }
                next_resend = now + resend_interval;
            }
            let wait = COLLECT_TICK
                .min(deadline.saturating_duration_since(now))
                .min(next_resend.saturating_duration_since(now))
                .max(Duration::from_millis(1));
            // A timeout tick just re-checks the deadlines; `event_tx`
            // lives in self, so the channel can never disconnect.
            if let Ok((peer, event)) = self.events.recv_timeout(wait) {
                self.handle_event(peer, event, round, &mut got);
            }
        }
        self.received += (late.len() + got.len()) as u64;
        let mut letters: Vec<(ProcessId, Vec<u8>)> = late
            .into_iter()
            .map(|(peer, payload)| (ProcessId::new(peer), payload))
            .collect();
        letters.extend(
            got.into_iter()
                .map(|(peer, payload)| (ProcessId::new(peer), payload)),
        );
        Ok(letters)
    }

    fn settle(&mut self, round: usize) -> Result<(), TcpError> {
        self.settled_round = Some(round);
        for recipient in 0..self.n {
            if recipient == self.me.index() {
                continue;
            }
            let frame = Frame::settled(self.me, round);
            self.write_frame(recipient, &frame);
        }
        Ok(())
    }

    fn round_done(&mut self, _round: usize, settled: bool) -> Result<bool, TcpError> {
        // A settled node leaves immediately: peers were told via the
        // `Settled` frame and stop waiting for it, so there is nothing
        // left to synchronize with.
        Ok(settled)
    }

    fn depart(&mut self, _round: usize) {
        // The kill: slam every socket shut without a goodbye. Peers see
        // end-of-stream after exactly the frames already written — the
        // ordered-send prefix. (When the node binary injects a crash it
        // additionally aborts the whole process.)
        for writer in &mut self.writers {
            if let Some(w) = writer.take() {
                let _ = w.shutdown(Shutdown::Both);
            }
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Unblock this node's reader threads and send FIN to peers; by
        // now they either saw our `Settled` or treat the close as a
        // crash, which is the honest reading.
        for writer in &mut self.writers {
            if let Some(w) = writer.take() {
                let _ = w.shutdown(Shutdown::Both);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::localhost_peers;
    use crate::drive;
    use crate::transport::{MsgCodec, Typed, U32Codec};
    use setagree_sync::{CrashSpec, Outcome, Partition, Step, SyncProtocol};
    use setagree_types::ProcessSet;

    /// Max-flood over real sockets (in-process: one thread per node).
    #[derive(Debug)]
    struct MaxFlood {
        rounds: usize,
        best: u32,
    }

    impl SyncProtocol for MaxFlood {
        type Msg = u32;
        type Output = u32;
        fn message(&mut self, _round: usize) -> u32 {
            self.best
        }
        fn receive(&mut self, _round: usize, _from: ProcessId, msg: &u32) {
            self.best = self.best.max(*msg);
        }
        fn compute(&mut self, round: usize) -> Step<u32> {
            if round >= self.rounds {
                Step::Decide(self.best)
            } else {
                Step::Continue
            }
        }
    }

    fn tcp_system_with(
        port_base: u16,
        inputs: &[u32],
        crash: Option<(usize, CrashSpec)>,
        plan: Option<FaultPlan>,
        round_timeout: Duration,
    ) -> Vec<Option<Outcome<u32>>> {
        let n = inputs.len();
        let peers = localhost_peers(n, port_base);
        let handles: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(i, &best)| {
                let peers = peers.clone();
                let plan = plan.clone();
                let spec = crash.and_then(|(victim, s)| (victim == i).then_some(s));
                thread::spawn(move || {
                    let mut config = NodeConfig::new(ProcessId::new(i), peers)
                        .expect("valid config")
                        .with_round_timeout(round_timeout);
                    if let Some(plan) = plan {
                        config = config.with_fault_plan(plan);
                    }
                    let tcp = TcpTransport::establish(&config).expect("mesh forms");
                    let transport = Typed::new(tcp, U32Codec);
                    drive(MaxFlood { rounds: 3, best }, transport, spec, 10).ok()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("node thread"))
            .collect()
    }

    fn tcp_system(
        port_base: u16,
        inputs: &[u32],
        crash: Option<(usize, CrashSpec)>,
    ) -> Vec<Option<Outcome<u32>>> {
        tcp_system_with(port_base, inputs, crash, None, Duration::from_secs(5))
    }

    #[test]
    fn failure_free_mesh_floods_the_maximum() {
        let outcomes = tcp_system(42110, &[3, 9, 1, 4], None);
        for outcome in outcomes {
            assert_eq!(outcome, Some(Outcome::Decided { value: 9, round: 3 }));
        }
    }

    #[test]
    fn a_killed_node_delivers_only_its_prefix() {
        // Node 0 holds the maximum and dies in round 1 after reaching
        // only itself and node 1; node 1 floods 9 onward, so everyone
        // still converges on 9 — via the survivor.
        let outcomes = tcp_system(42120, &[9, 1, 1, 1], Some((0, CrashSpec::new(1, 2))));
        assert_eq!(outcomes[0], Some(Outcome::Crashed { round: 1 }));
        for outcome in &outcomes[1..] {
            assert_eq!(*outcome, Some(Outcome::Decided { value: 9, round: 3 }));
        }
    }

    #[test]
    fn dropped_links_heal_through_relays() {
        // A plan that cuts node 0 off from everyone for rounds 1–2 (its
        // original frames in both directions). Resend/relay recovery
        // restores the lost broadcasts, so every node still floods the
        // maximum held by node 0.
        let mut side = ProcessSet::empty(3);
        side.insert(ProcessId::new(0));
        let plan = FaultPlan::new(3, 0xD1A1).partition(Partition::new(side, 1, 2));
        let outcomes = tcp_system_with(42130, &[9, 1, 4], None, Some(plan), Duration::from_secs(5));
        for outcome in outcomes {
            assert_eq!(outcome, Some(Outcome::Decided { value: 9, round: 3 }));
        }
    }

    #[test]
    fn a_broken_link_reconnects_and_resumes() {
        // Two nodes run three manual rounds; between rounds 1 and 2 node
        // 1 slams its socket to node 0 (a transient link failure, not a
        // kill — both processes keep running). The redial campaign plus
        // the persistent listener re-form the link and the remaining
        // rounds complete with full inboxes; nobody is declared dead.
        let peers = localhost_peers(2, 42140);
        let run = |i: usize, sabotage: bool| {
            let peers = peers.clone();
            thread::spawn(move || {
                let config = NodeConfig::new(ProcessId::new(i), peers)
                    .expect("valid config")
                    .with_round_timeout(Duration::from_secs(5))
                    // The default 3×3 redial budget and 500 ms window are
                    // marginal when the whole suite's meshes run in
                    // parallel; the property under test is that the link
                    // heals, not that it heals on a shoestring.
                    .with_reconnect(5, Duration::from_millis(25))
                    .with_reconnect_window(Duration::from_secs(5));
                let mut tcp = TcpTransport::establish(&config).expect("mesh forms");
                let mut counts = Vec::new();
                for round in 1..=3 {
                    tcp.broadcast(round, vec![i as u8, round as u8], 2)
                        .expect("broadcast");
                    let letters = tcp.collect(round).expect("collect");
                    counts.push(letters.len());
                    if sabotage && round == 1 {
                        if let Some(w) = &tcp.writers[0] {
                            let _ = w.shutdown(Shutdown::Both);
                        }
                    }
                }
                assert!(!tcp.peers[1 - i].down, "peer wrongly confirmed dead");
                counts
            })
        };
        let a = run(0, false);
        let b = run(1, true);
        assert_eq!(a.join().expect("node 0"), vec![2, 2, 2]);
        assert_eq!(b.join().expect("node 1"), vec![2, 2, 2]);
    }

    /// A hostile peer speaks the frame protocol badly on purpose:
    /// duplicated round frames, future rounds out of order, a malformed
    /// relay, a stray resend, and finally a truncated frame that kills
    /// the stream mid-conversation. The real nodes never panic, absorb
    /// the noise (sender-keyed inboxes dedup, pending buffers reorder,
    /// malformed relays drop), and still reach their verdict.
    #[test]
    fn hostile_frames_mid_round_never_panic_the_readers() {
        use std::io::Write;

        let peers = localhost_peers(3, 42160);
        let real = |i: usize| {
            let peers = peers.clone();
            thread::spawn(move || {
                let config = NodeConfig::new(ProcessId::new(i), peers)
                    .expect("valid config")
                    .with_round_timeout(Duration::from_secs(5));
                let tcp = TcpTransport::establish(&config).expect("mesh forms");
                let transport = Typed::new(tcp, U32Codec);
                drive(
                    MaxFlood {
                        rounds: 3,
                        best: (i + 1) as u32,
                    },
                    transport,
                    None,
                    10,
                )
                .expect("hostile peer must not break the drive loop")
            })
        };
        let a = real(0);
        let b = real(1);

        let targets: Vec<_> = peers[..2].to_vec();
        let hostile = thread::spawn(move || {
            let codec = U32Codec;
            let me = ProcessId::new(2);
            for addr in targets {
                let mut s = loop {
                    match TcpStream::connect(addr) {
                        Ok(s) => break s,
                        Err(_) => thread::sleep(Duration::from_millis(10)),
                    }
                };
                Frame::hello(me).write_to(&mut s).expect("hello");
                let msg = |r: usize| Frame::msg(me, r, codec.encode(&9));
                // The round-1 frame, three times over.
                for _ in 0..3 {
                    msg(1).write_to(&mut s).expect("dup");
                }
                // Rounds 3 and 2, reordered.
                msg(3).write_to(&mut s).expect("future");
                msg(2).write_to(&mut s).expect("reordered");
                // A relay whose payload is shorter than its own header.
                Frame {
                    kind: FrameKind::Relay,
                    from: me,
                    round: 2,
                    payload: vec![1, 2],
                }
                .write_to(&mut s)
                .expect("malformed relay");
                // A resend for a round nobody has run.
                Frame::resend(me, 7).write_to(&mut s).expect("stray resend");
                Frame::settled(me, 3).write_to(&mut s).expect("settled");
                // A truncated frame: a length header promising far more
                // bytes than ever arrive, then a slammed socket.
                s.write_all(&[200, 0, 0, 0, 1]).expect("truncated header");
                let _ = s.shutdown(Shutdown::Both);
            }
        });

        hostile.join().expect("hostile thread");
        // The hostile peer's value 9 arrived through ordinary (if noisy)
        // Msg frames, so the flood still converges on it.
        for handle in [a, b] {
            assert_eq!(
                handle.join().expect("node thread"),
                Outcome::Decided { value: 9, round: 3 }
            );
        }
    }

    #[test]
    fn u32_codec_round_trips() {
        let codec = U32Codec;
        let bytes = codec.encode(&0xDEAD_BEEF);
        assert_eq!(codec.decode(&bytes), Some(0xDEAD_BEEF));
        assert_eq!(codec.decode(&bytes[..3]), None);
    }
}
