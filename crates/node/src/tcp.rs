//! The TCP transport: real sockets between node processes, framed with
//! the length-prefixed [`Frame`] codec.
//!
//! A node establishes a full mesh at startup — it dials every lower id
//! (retrying until the connect deadline, so start order does not matter)
//! and accepts a [`FrameKind::Hello`]-identified connection from every
//! higher id. One reader thread per peer feeds a single event channel,
//! preserving each peer's frame order.
//!
//! There is no barrier over TCP: lock-step rounds emerge from
//! [`collect`](Transport::collect), which blocks until every live,
//! unsettled peer has contributed its frame for the round (early frames
//! from fast peers are buffered per round). Crash detection is the real
//! thing — a killed node's kernel closes its sockets, peers observe
//! end-of-stream and stop waiting for it; a round timeout backstops
//! pathological hangs. A deciding node announces [`FrameKind::Settled`]
//! so peers distinguish a clean exit from a kill.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::io;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use setagree_types::ProcessId;

use crate::config::NodeConfig;
use crate::frame::{Frame, FrameError, FrameKind};
use crate::transport::Transport;

/// A TCP transport failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum TcpError {
    /// An I/O operation failed.
    Io {
        /// What the transport was doing.
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// A handshake frame was malformed.
    Frame(FrameError),
    /// A peer's first frame was not a valid, expected `Hello`.
    BadHello,
    /// Not every peer connected before the deadline.
    HandshakeTimeout,
}

impl TcpError {
    fn io(context: &str, source: io::Error) -> TcpError {
        TcpError::Io {
            context: context.to_string(),
            source,
        }
    }
}

impl fmt::Display for TcpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TcpError::Io { context, source } => write!(f, "{context}: {source}"),
            TcpError::Frame(e) => write!(f, "malformed handshake: {e}"),
            TcpError::BadHello => write!(f, "peer's first frame was not a valid hello"),
            TcpError::HandshakeTimeout => {
                write!(f, "full mesh did not form before the connect deadline")
            }
        }
    }
}

impl Error for TcpError {}

#[derive(Debug)]
enum PeerEvent {
    Frame(Frame),
    Closed,
}

/// What this node knows about one peer.
#[derive(Debug, Clone, Copy, Default)]
struct PeerState {
    /// The round after which the peer (cleanly) stopped participating.
    settled_at: Option<usize>,
    /// The peer's stream closed — over TCP, how a kill looks.
    down: bool,
}

/// One node's TCP connection to the rest of the system.
#[derive(Debug)]
pub struct TcpTransport {
    me: ProcessId,
    n: usize,
    writers: Vec<Option<TcpStream>>,
    events: mpsc::Receiver<(usize, PeerEvent)>,
    peers: Vec<PeerState>,
    /// Frames that arrived for rounds we have not collected yet,
    /// `round → sender → payload`.
    pending: BTreeMap<usize, BTreeMap<usize, Vec<u8>>>,
    /// This node's own broadcast, looped back locally (the model: a
    /// process receives its own message when its send prefix reaches it).
    self_letter: Option<(usize, Vec<u8>)>,
    received: u64,
    round_timeout: Duration,
}

impl TcpTransport {
    /// Establishes the full mesh for `config`, blocking until every peer
    /// is connected and identified (or the connect deadline passes).
    ///
    /// # Errors
    ///
    /// [`TcpError`] if the listener cannot bind, a dial or handshake
    /// fails permanently, or the mesh does not form before the deadline.
    pub fn establish(config: &NodeConfig) -> Result<TcpTransport, TcpError> {
        let me = config.me;
        let n = config.n();
        let deadline = Instant::now() + config.connect_timeout;
        let listener =
            TcpListener::bind(config.my_addr()).map_err(|e| TcpError::io("bind listener", e))?;

        // Inbound half of the mesh: every higher id dials us.
        let expected_inbound = n - 1 - me.index();
        let (accept_tx, accept_rx) = mpsc::channel();
        thread::spawn(move || {
            for _ in 0..expected_inbound {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if accept_tx.send(stream).is_err() {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            }
        });

        let mut writers: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();

        // Outbound half: dial every lower id, retrying until the
        // deadline so nodes may start in any order.
        for (peer, &addr) in config.peers.iter().enumerate().take(me.index()) {
            let stream = loop {
                match TcpStream::connect(addr) {
                    Ok(s) => break s,
                    Err(e) => {
                        if Instant::now() >= deadline {
                            return Err(TcpError::io(&format!("connect to {addr}"), e));
                        }
                        thread::sleep(Duration::from_millis(25));
                    }
                }
            };
            let _ = stream.set_nodelay(true);
            let mut hello_half = stream
                .try_clone()
                .map_err(|e| TcpError::io("clone stream", e))?;
            Frame::hello(me)
                .write_to(&mut hello_half)
                .map_err(|e| TcpError::io("send hello", e))?;
            writers[peer] = Some(stream);
        }

        // Identify the inbound connections by their hello frames.
        for _ in 0..expected_inbound {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let mut stream = accept_rx
                .recv_timeout(remaining)
                .map_err(|_| TcpError::HandshakeTimeout)?;
            let _ = stream.set_nodelay(true);
            let hello = Frame::read_from(&mut stream).map_err(TcpError::Frame)?;
            let peer = match hello {
                Some(f) if f.kind == FrameKind::Hello => f.from.index(),
                _ => return Err(TcpError::BadHello),
            };
            if peer <= me.index() || peer >= n || writers[peer].is_some() {
                return Err(TcpError::BadHello);
            }
            writers[peer] = Some(stream);
        }

        // One reader thread per peer, all feeding one ordered channel.
        let (event_tx, events) = mpsc::channel();
        for (peer, writer) in writers.iter().enumerate() {
            let Some(writer) = writer else { continue };
            let mut reader = writer
                .try_clone()
                .map_err(|e| TcpError::io("clone stream", e))?;
            let tx = event_tx.clone();
            thread::spawn(move || loop {
                match Frame::read_from(&mut reader) {
                    Ok(Some(frame)) => {
                        if tx.send((peer, PeerEvent::Frame(frame))).is_err() {
                            return;
                        }
                    }
                    Ok(None) | Err(_) => {
                        let _ = tx.send((peer, PeerEvent::Closed));
                        return;
                    }
                }
            });
        }

        Ok(TcpTransport {
            me,
            n,
            writers,
            events,
            peers: vec![PeerState::default(); n],
            pending: BTreeMap::new(),
            self_letter: None,
            received: 0,
            round_timeout: config.round_timeout,
        })
    }

    /// Total letters this node has collected — its contribution to a
    /// testnet-wide delivery count.
    pub fn received_total(&self) -> u64 {
        self.received
    }

    /// Whether the round loop still expects a frame from `peer` in
    /// `round`.
    fn expects(&self, peer: usize, round: usize) -> bool {
        let state = self.peers[peer];
        !state.down && state.settled_at.is_none_or(|r| r >= round)
    }

    fn mark_down(&mut self, peer: usize) {
        self.peers[peer].down = true;
        if let Some(w) = self.writers[peer].take() {
            let _ = w.shutdown(Shutdown::Both);
        }
    }

    fn note_frame(
        &mut self,
        peer: usize,
        frame: Frame,
        round: usize,
        got: &mut BTreeMap<usize, Vec<u8>>,
    ) {
        match frame.kind {
            FrameKind::Msg if frame.round == round => {
                got.insert(peer, frame.payload);
            }
            FrameKind::Msg if frame.round > round => {
                self.pending
                    .entry(frame.round)
                    .or_default()
                    .insert(peer, frame.payload);
            }
            // Stale rounds (we gave up on the sender) and stray hellos
            // are dropped.
            FrameKind::Msg | FrameKind::Hello => {}
            FrameKind::Settled => {
                self.peers[peer].settled_at = Some(frame.round);
            }
        }
    }
}

impl Transport for TcpTransport {
    type Msg = Vec<u8>;
    type Letter = Vec<u8>;
    type Error = TcpError;

    fn n(&self) -> usize {
        self.n
    }

    fn me(&self) -> ProcessId {
        self.me
    }

    fn broadcast(&mut self, round: usize, payload: Vec<u8>, reach: usize) -> Result<(), TcpError> {
        for recipient in 0..reach.min(self.n) {
            if recipient == self.me.index() {
                self.self_letter = Some((round, payload.clone()));
                continue;
            }
            if !self.expects(recipient, round) {
                continue;
            }
            let frame = Frame::msg(self.me, round, payload.clone());
            let gone = match &mut self.writers[recipient] {
                Some(w) => frame.write_to(w).is_err(),
                // A write failure means the recipient died; over TCP
                // that is a crash observation, not a transport error.
                None => false,
            };
            if gone {
                self.mark_down(recipient);
            }
        }
        Ok(())
    }

    fn sends_done(&mut self, _round: usize) -> Result<(), TcpError> {
        // Writes are unbuffered (`write_all` + TCP_NODELAY): nothing to
        // flush, and rounds need no barrier — `collect` blocks until the
        // round's frames arrive.
        Ok(())
    }

    fn collect(&mut self, round: usize) -> Result<Vec<(ProcessId, Vec<u8>)>, TcpError> {
        let mut got: BTreeMap<usize, Vec<u8>> = self.pending.remove(&round).unwrap_or_default();
        if let Some((r, payload)) = self.self_letter.take() {
            if r == round {
                got.insert(self.me.index(), payload);
            }
        }
        let deadline = Instant::now() + self.round_timeout;
        loop {
            let missing: Vec<usize> = (0..self.n)
                .filter(|&p| {
                    p != self.me.index() && self.expects(p, round) && !got.contains_key(&p)
                })
                .collect();
            if missing.is_empty() {
                break;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            let event = if remaining.is_zero() {
                Err(mpsc::RecvTimeoutError::Timeout)
            } else {
                self.events.recv_timeout(remaining)
            };
            match event {
                Ok((peer, PeerEvent::Frame(frame))) => {
                    self.note_frame(peer, frame, round, &mut got)
                }
                Ok((peer, PeerEvent::Closed)) => self.mark_down(peer),
                // The timeout backstop: whoever is still missing is
                // declared dead, exactly like an observed close.
                Err(_) => {
                    for peer in missing {
                        self.mark_down(peer);
                    }
                    break;
                }
            }
        }
        self.received += got.len() as u64;
        Ok(got
            .into_iter()
            .map(|(peer, payload)| (ProcessId::new(peer), payload))
            .collect())
    }

    fn settle(&mut self, round: usize) -> Result<(), TcpError> {
        for recipient in 0..self.n {
            if recipient == self.me.index() {
                continue;
            }
            let frame = Frame::settled(self.me, round);
            let gone = match &mut self.writers[recipient] {
                Some(w) => frame.write_to(w).is_err(),
                None => false,
            };
            if gone {
                self.mark_down(recipient);
            }
        }
        Ok(())
    }

    fn round_done(&mut self, _round: usize, settled: bool) -> Result<bool, TcpError> {
        // A settled node leaves immediately: peers were told via the
        // `Settled` frame and stop waiting for it, so there is nothing
        // left to synchronize with.
        Ok(settled)
    }

    fn depart(&mut self, _round: usize) {
        // The kill: slam every socket shut without a goodbye. Peers see
        // end-of-stream after exactly the frames already written — the
        // ordered-send prefix. (When the node binary injects a crash it
        // additionally aborts the whole process.)
        for writer in &mut self.writers {
            if let Some(w) = writer.take() {
                let _ = w.shutdown(Shutdown::Both);
            }
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Unblock this node's reader threads and send FIN to peers; by
        // now they either saw our `Settled` or treat the close as a
        // crash, which is the honest reading.
        for writer in &mut self.writers {
            if let Some(w) = writer.take() {
                let _ = w.shutdown(Shutdown::Both);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::localhost_peers;
    use crate::drive;
    use crate::transport::{MsgCodec, Typed, U32Codec};
    use setagree_sync::{CrashSpec, Outcome, Step, SyncProtocol};

    /// Max-flood over real sockets (in-process: one thread per node).
    #[derive(Debug)]
    struct MaxFlood {
        rounds: usize,
        best: u32,
    }

    impl SyncProtocol for MaxFlood {
        type Msg = u32;
        type Output = u32;
        fn message(&mut self, _round: usize) -> u32 {
            self.best
        }
        fn receive(&mut self, _round: usize, _from: ProcessId, msg: &u32) {
            self.best = self.best.max(*msg);
        }
        fn compute(&mut self, round: usize) -> Step<u32> {
            if round >= self.rounds {
                Step::Decide(self.best)
            } else {
                Step::Continue
            }
        }
    }

    fn tcp_system(
        port_base: u16,
        inputs: &[u32],
        crash: Option<(usize, CrashSpec)>,
    ) -> Vec<Option<Outcome<u32>>> {
        let n = inputs.len();
        let peers = localhost_peers(n, port_base);
        let handles: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(i, &best)| {
                let peers = peers.clone();
                let spec = crash.and_then(|(victim, s)| (victim == i).then_some(s));
                thread::spawn(move || {
                    let config = NodeConfig::new(ProcessId::new(i), peers)
                        .expect("valid config")
                        .with_round_timeout(Duration::from_secs(5));
                    let tcp = TcpTransport::establish(&config).expect("mesh forms");
                    let transport = Typed::new(tcp, U32Codec);
                    drive(MaxFlood { rounds: 3, best }, transport, spec, 10).ok()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("node thread"))
            .collect()
    }

    #[test]
    fn failure_free_mesh_floods_the_maximum() {
        let outcomes = tcp_system(42110, &[3, 9, 1, 4], None);
        for outcome in outcomes {
            assert_eq!(outcome, Some(Outcome::Decided { value: 9, round: 3 }));
        }
    }

    #[test]
    fn a_killed_node_delivers_only_its_prefix() {
        // Node 0 holds the maximum and dies in round 1 after reaching
        // only itself and node 1; node 1 floods 9 onward, so everyone
        // still converges on 9 — via the survivor.
        let outcomes = tcp_system(42120, &[9, 1, 1, 1], Some((0, CrashSpec::new(1, 2))));
        assert_eq!(outcomes[0], Some(Outcome::Crashed { round: 1 }));
        for outcome in &outcomes[1..] {
            assert_eq!(*outcome, Some(Outcome::Decided { value: 9, round: 3 }));
        }
    }

    #[test]
    fn u32_codec_round_trips() {
        let codec = U32Codec;
        let bytes = codec.encode(&0xDEAD_BEEF);
        assert_eq!(codec.decode(&bytes), Some(0xDEAD_BEEF));
        assert_eq!(codec.decode(&bytes[..3]), None);
    }
}
