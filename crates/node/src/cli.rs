//! Argument parsing for the `setagree-node` binary.
//!
//! Parsing lives in the library so it is unit-testable and so the
//! testnet harness and the binary cannot drift apart on flag names. The
//! binary itself (in the facade crate, which can see `setagree-core`'s
//! protocols) maps these plain values onto protocol instances.

use std::error::Error;
use std::fmt;
use std::net::SocketAddr;

use crate::config::parse_peers;
use crate::transport::TransportKind;

/// Usage text for the binary.
pub const USAGE: &str = "\
setagree-node — networked condition-based k-set agreement nodes

USAGE:
    setagree-node run --id <I> --peers <A,B,…> --input <V,V,…> \
[--t <T>] [--k <K>] [--crash <ROUND>:<AFTER_SENDS>] [--round-timeout-ms <MS>]
        One TCP node: joins the mesh, runs FloodSet over its proposal,
        prints `OUTCOME`/`RECEIVED` lines. With --crash, aborts itself
        at the scheduled point (the kill-based adversary).

    setagree-node testnet --input <V,V,…> [--t <T>] [--k <K>] \
[--crash <ID>:<ROUND>:<AFTER_SENDS> …] [--port-base <P>] \
[--transport tcp|loopback] [--round-timeout-ms <MS>]
        Spawns one node per proposal (TCP: real processes on localhost;
        loopback: in-process tasks), kills the scheduled victims, and
        prints the collected Report.";

/// What the binary was asked to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeCommand {
    /// `run`: be one TCP node.
    Run(RunArgs),
    /// `testnet`: orchestrate a whole system.
    Testnet(TestnetArgs),
}

/// Arguments of the `run` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunArgs {
    /// This node's id.
    pub id: usize,
    /// Listen address of every node, indexed by id.
    pub peers: Vec<SocketAddr>,
    /// Crash resilience `t`.
    pub t: usize,
    /// Agreement degree `k`.
    pub k: usize,
    /// One proposal per node.
    pub input: Vec<u32>,
    /// Kill self in round `.0` after `.1` sends.
    pub crash: Option<(usize, usize)>,
    /// Per-round wait for silent peers, in milliseconds.
    pub round_timeout_ms: u64,
}

/// Arguments of the `testnet` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestnetArgs {
    /// Crash resilience `t`.
    pub t: usize,
    /// Agreement degree `k`.
    pub k: usize,
    /// One proposal per node.
    pub input: Vec<u32>,
    /// Victims: `(id, round, after_sends)`.
    pub crashes: Vec<(usize, usize, usize)>,
    /// Node `i` listens on `port_base + i` (TCP only).
    pub port_base: u16,
    /// Which transport to run the system on.
    pub transport: TransportKind,
    /// Per-round wait for silent peers, in milliseconds (TCP only).
    pub round_timeout_ms: u64,
}

/// A bad command line.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CliError {
    /// No subcommand given.
    NoCommand,
    /// An unrecognized subcommand.
    UnknownCommand {
        /// The offending word.
        name: String,
    },
    /// An unrecognized flag.
    UnknownFlag {
        /// The offending flag.
        flag: String,
    },
    /// A flag without its value.
    MissingValue {
        /// The flag.
        flag: String,
    },
    /// A required flag was not given.
    MissingFlag {
        /// The flag.
        flag: String,
    },
    /// A value that does not parse.
    InvalidValue {
        /// The flag.
        flag: String,
        /// The unparsable text.
        value: String,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::NoCommand => write!(f, "expected a subcommand: run or testnet"),
            CliError::UnknownCommand { name } => {
                write!(f, "unknown subcommand {name:?} (expected run or testnet)")
            }
            CliError::UnknownFlag { flag } => write!(f, "unknown flag {flag}"),
            CliError::MissingValue { flag } => write!(f, "flag {flag} needs a value"),
            CliError::MissingFlag { flag } => write!(f, "required flag {flag} missing"),
            CliError::InvalidValue { flag, value } => {
                write!(f, "invalid value {value:?} for {flag}")
            }
        }
    }
}

impl Error for CliError {}

fn parse_u32_list(flag: &str, value: &str) -> Result<Vec<u32>, CliError> {
    value
        .split(',')
        .map(|v| {
            v.trim().parse().map_err(|_| CliError::InvalidValue {
                flag: flag.to_string(),
                value: v.to_string(),
            })
        })
        .collect()
}

fn parse_colon_tuple<const N: usize>(flag: &str, value: &str) -> Result<[usize; N], CliError> {
    let invalid = || CliError::InvalidValue {
        flag: flag.to_string(),
        value: value.to_string(),
    };
    let parts: Vec<usize> = value
        .split(':')
        .map(|p| p.trim().parse().map_err(|_| invalid()))
        .collect::<Result<_, _>>()?;
    parts.try_into().map_err(|_| invalid())
}

/// Parses the command line (without the program name).
///
/// # Errors
///
/// [`CliError`] describing the first problem found.
pub fn parse_command(args: impl IntoIterator<Item = String>) -> Result<NodeCommand, CliError> {
    let mut args = args.into_iter();
    let command = args.next().ok_or(CliError::NoCommand)?;
    let mut flags: Vec<(String, String)> = Vec::new();
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        if !flag.starts_with("--") {
            return Err(CliError::UnknownFlag { flag });
        }
        let value = args
            .next()
            .ok_or_else(|| CliError::MissingValue { flag: flag.clone() })?;
        flags.push((flag, value));
    }

    let take = |name: &str| -> Vec<String> {
        flags
            .iter()
            .filter(|(flag, _)| flag == name)
            .map(|(_, value)| value.clone())
            .collect()
    };
    let known = |allowed: &[&str]| -> Result<(), CliError> {
        for (flag, _) in &flags {
            if !allowed.contains(&flag.as_str()) {
                return Err(CliError::UnknownFlag { flag: flag.clone() });
            }
        }
        Ok(())
    };
    let single = |name: &str| -> Result<Option<String>, CliError> { Ok(take(name).pop()) };
    let required = |name: &str| -> Result<String, CliError> {
        single(name)?.ok_or(CliError::MissingFlag {
            flag: name.to_string(),
        })
    };
    let parse_num = |name: &str, value: &str| -> Result<usize, CliError> {
        value.parse().map_err(|_| CliError::InvalidValue {
            flag: name.to_string(),
            value: value.to_string(),
        })
    };

    match command.as_str() {
        "run" => {
            known(&[
                "--id",
                "--peers",
                "--t",
                "--k",
                "--input",
                "--crash",
                "--round-timeout-ms",
            ])?;
            let peers_text = required("--peers")?;
            let peers = parse_peers(&peers_text).map_err(|_| CliError::InvalidValue {
                flag: "--peers".to_string(),
                value: peers_text.clone(),
            })?;
            let input = parse_u32_list("--input", &required("--input")?)?;
            let crash = match single("--crash")? {
                Some(v) => {
                    let [round, after_sends] = parse_colon_tuple("--crash", &v)?;
                    Some((round, after_sends))
                }
                None => None,
            };
            Ok(NodeCommand::Run(RunArgs {
                id: parse_num("--id", &required("--id")?)?,
                peers,
                t: match single("--t")? {
                    Some(v) => parse_num("--t", &v)?,
                    None => 1,
                },
                k: match single("--k")? {
                    Some(v) => parse_num("--k", &v)?,
                    None => 1,
                },
                input,
                crash,
                round_timeout_ms: match single("--round-timeout-ms")? {
                    Some(v) => parse_num("--round-timeout-ms", &v)? as u64,
                    None => 10_000,
                },
            }))
        }
        "testnet" => {
            known(&[
                "--t",
                "--k",
                "--input",
                "--crash",
                "--port-base",
                "--transport",
                "--round-timeout-ms",
            ])?;
            let input = parse_u32_list("--input", &required("--input")?)?;
            let crashes = take("--crash")
                .iter()
                .map(|v| {
                    let [id, round, after_sends] = parse_colon_tuple("--crash", v)?;
                    Ok((id, round, after_sends))
                })
                .collect::<Result<Vec<_>, CliError>>()?;
            let transport = match single("--transport")? {
                Some(v) => v.parse().map_err(|_| CliError::InvalidValue {
                    flag: "--transport".to_string(),
                    value: v.clone(),
                })?,
                None => TransportKind::Tcp,
            };
            Ok(NodeCommand::Testnet(TestnetArgs {
                t: match single("--t")? {
                    Some(v) => parse_num("--t", &v)?,
                    None => 1,
                },
                k: match single("--k")? {
                    Some(v) => parse_num("--k", &v)?,
                    None => 1,
                },
                input,
                crashes,
                port_base: match single("--port-base")? {
                    Some(v) => v.parse().map_err(|_| CliError::InvalidValue {
                        flag: "--port-base".to_string(),
                        value: v.clone(),
                    })?,
                    None => 45_800,
                },
                transport,
                round_timeout_ms: match single("--round-timeout-ms")? {
                    Some(v) => parse_num("--round-timeout-ms", &v)? as u64,
                    None => 10_000,
                },
            }))
        }
        other => Err(CliError::UnknownCommand {
            name: other.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::localhost_peers;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_a_full_run_command() {
        let cmd = parse_command(strings(&[
            "run",
            "--id",
            "2",
            "--peers",
            "127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002",
            "--t",
            "1",
            "--k",
            "1",
            "--input",
            "3,9,1",
            "--crash",
            "1:2",
            "--round-timeout-ms",
            "500",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            NodeCommand::Run(RunArgs {
                id: 2,
                peers: localhost_peers(3, 7000),
                t: 1,
                k: 1,
                input: vec![3, 9, 1],
                crash: Some((1, 2)),
                round_timeout_ms: 500,
            })
        );
    }

    #[test]
    fn testnet_defaults_and_repeated_crashes() {
        let cmd = parse_command(strings(&[
            "testnet",
            "--input",
            "3,9,1,4,7",
            "--crash",
            "1:1:2",
            "--crash",
            "4:2:0",
        ]))
        .unwrap();
        let NodeCommand::Testnet(args) = cmd else {
            panic!("expected testnet");
        };
        assert_eq!(args.input.len(), 5);
        assert_eq!(args.crashes, vec![(1, 1, 2), (4, 2, 0)]);
        assert_eq!(args.transport, TransportKind::Tcp);
        assert_eq!(args.port_base, 45_800);
        assert_eq!((args.t, args.k), (1, 1));
    }

    #[test]
    fn loopback_transport_is_selectable() {
        let cmd = parse_command(strings(&[
            "testnet",
            "--input",
            "1,2",
            "--transport",
            "loopback",
        ]))
        .unwrap();
        let NodeCommand::Testnet(args) = cmd else {
            panic!("expected testnet");
        };
        assert_eq!(args.transport, TransportKind::Loopback);
    }

    #[test]
    fn errors_name_the_problem() {
        assert_eq!(parse_command(strings(&[])), Err(CliError::NoCommand));
        assert_eq!(
            parse_command(strings(&["serve"])),
            Err(CliError::UnknownCommand {
                name: "serve".to_string()
            })
        );
        assert_eq!(
            parse_command(strings(&[
                "run",
                "--peers",
                "127.0.0.1:7000,127.0.0.1:7001"
            ])),
            Err(CliError::MissingFlag {
                flag: "--input".to_string()
            })
        );
        assert_eq!(
            parse_command(strings(&["testnet", "--input", "1,2", "--crash", "1:2"])),
            Err(CliError::InvalidValue {
                flag: "--crash".to_string(),
                value: "1:2".to_string()
            })
        );
        assert_eq!(
            parse_command(strings(&["testnet", "--input", "1,2", "--fast", "yes"])),
            Err(CliError::UnknownFlag {
                flag: "--fast".to_string()
            })
        );
    }
}
