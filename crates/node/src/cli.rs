//! Argument parsing for the `setagree-node` binary.
//!
//! Parsing lives in the library so it is unit-testable and so the
//! testnet harness and the binary cannot drift apart on flag names. The
//! binary itself (in the facade crate, which can see `setagree-core`'s
//! protocols) maps these plain values onto protocol instances.

use std::error::Error;
use std::fmt;
use std::net::SocketAddr;

use setagree_sync::{FaultPlan, Partition};
use setagree_types::{ProcessId, ProcessSet};

use crate::config::{parse_peers, DEFAULT_ROUND_TIMEOUT};
use crate::transport::TransportKind;

/// Usage text for the binary.
pub const USAGE: &str = "\
setagree-node — networked condition-based k-set agreement nodes

USAGE:
    setagree-node run --id <I> --peers <A,B,…> --input <V,V,…> \
[--t <T>] [--k <K>] [--crash <ROUND>:<AFTER_SENDS>] [--round-timeout-ms <MS>] \
[--faults <SEED>:<DROP_RATE>] [--partition <ID,ID,…>:<FROM>:<TO> …] \
[--metrics <PATH|->]
        One TCP node: joins the mesh, runs FloodSet over its proposal,
        prints `OUTCOME`/`RECEIVED` lines. With --crash, aborts itself
        at the scheduled point (the kill-based adversary). --faults and
        --partition install the seeded link-fault plan (identical flags
        on every node yield the identical plan). --metrics enables the
        observability registry: machine-readable `METRIC` lines go to
        stdout (for the testnet harness) and a rendered snapshot to
        PATH, or stderr for `-`.

    setagree-node testnet --input <V,V,…> [--t <T>] [--k <K>] \
[--crash <ID>:<ROUND>:<AFTER_SENDS> …] [--port-base <P>] \
[--transport tcp|loopback] [--round-timeout-ms <MS>] \
[--faults <SEED>:<DROP_RATE>] [--partition <ID,ID,…>:<FROM>:<TO> …] \
[--metrics <PATH|->]
        Spawns one node per proposal (TCP: real processes on localhost;
        loopback: in-process tasks), kills the scheduled victims, and
        prints the collected Report. Fault flags are forwarded to every
        node; DROP_RATE is parts per 10,000 per link per round.
        --metrics aggregates every node's snapshot into one system-wide
        report written to PATH (stderr for `-`).";

/// What the binary was asked to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeCommand {
    /// `run`: be one TCP node.
    Run(RunArgs),
    /// `testnet`: orchestrate a whole system.
    Testnet(TestnetArgs),
}

/// Arguments of the `run` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunArgs {
    /// This node's id.
    pub id: usize,
    /// Listen address of every node, indexed by id.
    pub peers: Vec<SocketAddr>,
    /// Crash resilience `t`.
    pub t: usize,
    /// Agreement degree `k`.
    pub k: usize,
    /// One proposal per node.
    pub input: Vec<u32>,
    /// Kill self in round `.0` after `.1` sends.
    pub crash: Option<(usize, usize)>,
    /// Per-round wait for silent peers, in milliseconds.
    pub round_timeout_ms: u64,
    /// Injected link faults: `(seed, drop rate in parts per 10,000)`.
    pub faults: Option<(u64, u32)>,
    /// Scheduled partitions: `(members, from_round, to_round)`.
    pub partitions: Vec<(Vec<usize>, usize, usize)>,
    /// Metrics dump target (`-` for stderr); `None` leaves the
    /// observability layer disabled.
    pub metrics: Option<String>,
}

/// Arguments of the `testnet` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestnetArgs {
    /// Crash resilience `t`.
    pub t: usize,
    /// Agreement degree `k`.
    pub k: usize,
    /// One proposal per node.
    pub input: Vec<u32>,
    /// Victims: `(id, round, after_sends)`.
    pub crashes: Vec<(usize, usize, usize)>,
    /// Node `i` listens on `port_base + i` (TCP only).
    pub port_base: u16,
    /// Which transport to run the system on.
    pub transport: TransportKind,
    /// Per-round wait for silent peers, in milliseconds (TCP only).
    pub round_timeout_ms: u64,
    /// Injected link faults: `(seed, drop rate in parts per 10,000)`.
    pub faults: Option<(u64, u32)>,
    /// Scheduled partitions: `(members, from_round, to_round)`.
    pub partitions: Vec<(Vec<usize>, usize, usize)>,
    /// Metrics dump target (`-` for stderr); `None` leaves the
    /// observability layer disabled.
    pub metrics: Option<String>,
}

/// Builds the [`FaultPlan`] the fault flags describe, or `None` when no
/// fault flag was given. Every node passes the same flags, so every
/// node derives the identical plan — the seeded decisions are a pure
/// function of `(seed, round, sender, receiver)`.
///
/// # Errors
///
/// [`CliError::InvalidValue`] when a partition member is out of range
/// for the system size `n`.
pub fn fault_plan(
    n: usize,
    faults: Option<(u64, u32)>,
    partitions: &[(Vec<usize>, usize, usize)],
) -> Result<Option<FaultPlan>, CliError> {
    if faults.is_none() && partitions.is_empty() {
        return Ok(None);
    }
    let (seed, rate) = faults.unwrap_or((0, 0));
    let mut plan = FaultPlan::new(n, seed).drop_rate(rate);
    for (members, from_round, to_round) in partitions {
        let mut side = ProcessSet::empty(n);
        for &id in members {
            if id >= n {
                return Err(CliError::InvalidValue {
                    flag: "--partition".to_string(),
                    value: id.to_string(),
                });
            }
            side.insert(ProcessId::new(id));
        }
        plan = plan.partition(Partition::new(side, *from_round, *to_round));
    }
    Ok(Some(plan))
}

/// A bad command line.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CliError {
    /// No subcommand given.
    NoCommand,
    /// An unrecognized subcommand.
    UnknownCommand {
        /// The offending word.
        name: String,
    },
    /// An unrecognized flag.
    UnknownFlag {
        /// The offending flag.
        flag: String,
    },
    /// A flag without its value.
    MissingValue {
        /// The flag.
        flag: String,
    },
    /// A required flag was not given.
    MissingFlag {
        /// The flag.
        flag: String,
    },
    /// A value that does not parse.
    InvalidValue {
        /// The flag.
        flag: String,
        /// The unparsable text.
        value: String,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::NoCommand => write!(f, "expected a subcommand: run or testnet"),
            CliError::UnknownCommand { name } => {
                write!(f, "unknown subcommand {name:?} (expected run or testnet)")
            }
            CliError::UnknownFlag { flag } => write!(f, "unknown flag {flag}"),
            CliError::MissingValue { flag } => write!(f, "flag {flag} needs a value"),
            CliError::MissingFlag { flag } => write!(f, "required flag {flag} missing"),
            CliError::InvalidValue { flag, value } => {
                write!(f, "invalid value {value:?} for {flag}")
            }
        }
    }
}

impl Error for CliError {}

fn parse_u32_list(flag: &str, value: &str) -> Result<Vec<u32>, CliError> {
    value
        .split(',')
        .map(|v| {
            v.trim().parse().map_err(|_| CliError::InvalidValue {
                flag: flag.to_string(),
                value: v.to_string(),
            })
        })
        .collect()
}

fn parse_faults(value: &str) -> Result<(u64, u32), CliError> {
    let invalid = || CliError::InvalidValue {
        flag: "--faults".to_string(),
        value: value.to_string(),
    };
    let (seed, rate) = value.split_once(':').ok_or_else(invalid)?;
    Ok((
        seed.trim().parse().map_err(|_| invalid())?,
        rate.trim().parse().map_err(|_| invalid())?,
    ))
}

fn parse_partition(value: &str) -> Result<(Vec<usize>, usize, usize), CliError> {
    let invalid = || CliError::InvalidValue {
        flag: "--partition".to_string(),
        value: value.to_string(),
    };
    let parts: Vec<&str> = value.split(':').collect();
    let [ids, from_round, to_round] = parts.as_slice() else {
        return Err(invalid());
    };
    let members = ids
        .split(',')
        .map(|v| v.trim().parse().map_err(|_| invalid()))
        .collect::<Result<Vec<usize>, CliError>>()?;
    Ok((
        members,
        from_round.trim().parse().map_err(|_| invalid())?,
        to_round.trim().parse().map_err(|_| invalid())?,
    ))
}

fn parse_colon_tuple<const N: usize>(flag: &str, value: &str) -> Result<[usize; N], CliError> {
    let invalid = || CliError::InvalidValue {
        flag: flag.to_string(),
        value: value.to_string(),
    };
    let parts: Vec<usize> = value
        .split(':')
        .map(|p| p.trim().parse().map_err(|_| invalid()))
        .collect::<Result<_, _>>()?;
    parts.try_into().map_err(|_| invalid())
}

/// Parses the command line (without the program name).
///
/// # Errors
///
/// [`CliError`] describing the first problem found.
pub fn parse_command(args: impl IntoIterator<Item = String>) -> Result<NodeCommand, CliError> {
    let mut args = args.into_iter();
    let command = args.next().ok_or(CliError::NoCommand)?;
    let mut flags: Vec<(String, String)> = Vec::new();
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        if !flag.starts_with("--") {
            return Err(CliError::UnknownFlag { flag });
        }
        let value = args
            .next()
            .ok_or_else(|| CliError::MissingValue { flag: flag.clone() })?;
        flags.push((flag, value));
    }

    let take = |name: &str| -> Vec<String> {
        flags
            .iter()
            .filter(|(flag, _)| flag == name)
            .map(|(_, value)| value.clone())
            .collect()
    };
    let known = |allowed: &[&str]| -> Result<(), CliError> {
        for (flag, _) in &flags {
            if !allowed.contains(&flag.as_str()) {
                return Err(CliError::UnknownFlag { flag: flag.clone() });
            }
        }
        Ok(())
    };
    let single = |name: &str| -> Result<Option<String>, CliError> { Ok(take(name).pop()) };
    let required = |name: &str| -> Result<String, CliError> {
        single(name)?.ok_or(CliError::MissingFlag {
            flag: name.to_string(),
        })
    };
    let parse_num = |name: &str, value: &str| -> Result<usize, CliError> {
        value.parse().map_err(|_| CliError::InvalidValue {
            flag: name.to_string(),
            value: value.to_string(),
        })
    };

    match command.as_str() {
        "run" => {
            known(&[
                "--id",
                "--peers",
                "--t",
                "--k",
                "--input",
                "--crash",
                "--round-timeout-ms",
                "--faults",
                "--partition",
                "--metrics",
            ])?;
            let peers_text = required("--peers")?;
            let peers = parse_peers(&peers_text).map_err(|_| CliError::InvalidValue {
                flag: "--peers".to_string(),
                value: peers_text.clone(),
            })?;
            let input = parse_u32_list("--input", &required("--input")?)?;
            let crash = match single("--crash")? {
                Some(v) => {
                    let [round, after_sends] = parse_colon_tuple("--crash", &v)?;
                    Some((round, after_sends))
                }
                None => None,
            };
            Ok(NodeCommand::Run(RunArgs {
                id: parse_num("--id", &required("--id")?)?,
                peers,
                t: match single("--t")? {
                    Some(v) => parse_num("--t", &v)?,
                    None => 1,
                },
                k: match single("--k")? {
                    Some(v) => parse_num("--k", &v)?,
                    None => 1,
                },
                input,
                crash,
                round_timeout_ms: match single("--round-timeout-ms")? {
                    Some(v) => parse_num("--round-timeout-ms", &v)? as u64,
                    None => DEFAULT_ROUND_TIMEOUT.as_millis() as u64,
                },
                faults: single("--faults")?
                    .as_deref()
                    .map(parse_faults)
                    .transpose()?,
                partitions: take("--partition")
                    .iter()
                    .map(|v| parse_partition(v))
                    .collect::<Result<_, _>>()?,
                metrics: single("--metrics")?,
            }))
        }
        "testnet" => {
            known(&[
                "--t",
                "--k",
                "--input",
                "--crash",
                "--port-base",
                "--transport",
                "--round-timeout-ms",
                "--faults",
                "--partition",
                "--metrics",
            ])?;
            let input = parse_u32_list("--input", &required("--input")?)?;
            let crashes = take("--crash")
                .iter()
                .map(|v| {
                    let [id, round, after_sends] = parse_colon_tuple("--crash", v)?;
                    Ok((id, round, after_sends))
                })
                .collect::<Result<Vec<_>, CliError>>()?;
            let transport = match single("--transport")? {
                Some(v) => v.parse().map_err(|_| CliError::InvalidValue {
                    flag: "--transport".to_string(),
                    value: v.clone(),
                })?,
                None => TransportKind::Tcp,
            };
            Ok(NodeCommand::Testnet(TestnetArgs {
                t: match single("--t")? {
                    Some(v) => parse_num("--t", &v)?,
                    None => 1,
                },
                k: match single("--k")? {
                    Some(v) => parse_num("--k", &v)?,
                    None => 1,
                },
                input,
                crashes,
                port_base: match single("--port-base")? {
                    Some(v) => v.parse().map_err(|_| CliError::InvalidValue {
                        flag: "--port-base".to_string(),
                        value: v.clone(),
                    })?,
                    None => 45_800,
                },
                transport,
                round_timeout_ms: match single("--round-timeout-ms")? {
                    Some(v) => parse_num("--round-timeout-ms", &v)? as u64,
                    None => DEFAULT_ROUND_TIMEOUT.as_millis() as u64,
                },
                faults: single("--faults")?
                    .as_deref()
                    .map(parse_faults)
                    .transpose()?,
                partitions: take("--partition")
                    .iter()
                    .map(|v| parse_partition(v))
                    .collect::<Result<_, _>>()?,
                metrics: single("--metrics")?,
            }))
        }
        other => Err(CliError::UnknownCommand {
            name: other.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{localhost_peers, NodeConfig};

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_a_full_run_command() {
        let cmd = parse_command(strings(&[
            "run",
            "--id",
            "2",
            "--peers",
            "127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002",
            "--t",
            "1",
            "--k",
            "1",
            "--input",
            "3,9,1",
            "--crash",
            "1:2",
            "--round-timeout-ms",
            "500",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            NodeCommand::Run(RunArgs {
                id: 2,
                peers: localhost_peers(3, 7000),
                t: 1,
                k: 1,
                input: vec![3, 9, 1],
                crash: Some((1, 2)),
                round_timeout_ms: 500,
                faults: None,
                partitions: vec![],
                metrics: None,
            })
        );
    }

    #[test]
    fn metrics_flag_takes_a_dump_target() {
        let cmd = parse_command(strings(&["testnet", "--input", "1,2", "--metrics", "-"])).unwrap();
        let NodeCommand::Testnet(args) = cmd else {
            panic!("expected testnet");
        };
        assert_eq!(args.metrics.as_deref(), Some("-"));
    }

    #[test]
    fn fault_flags_build_the_same_plan_on_every_node() {
        let cmd = parse_command(strings(&[
            "testnet",
            "--input",
            "1,2,3,4,5",
            "--faults",
            "7:2500",
            "--partition",
            "0,1:1:2",
            "--partition",
            "4:3:3",
        ]))
        .unwrap();
        let NodeCommand::Testnet(args) = cmd else {
            panic!("expected testnet");
        };
        assert_eq!(args.faults, Some((7, 2500)));
        assert_eq!(args.partitions, vec![(vec![0, 1], 1, 2), (vec![4], 3, 3)]);
        let plan = fault_plan(5, args.faults, &args.partitions)
            .unwrap()
            .expect("fault flags present");
        assert_eq!(plan.seed(), 7);
        assert_eq!(plan.partitions().len(), 2);
        // The plan is a pure function of the flags: re-deriving it (as
        // every node process does independently) yields the same plan.
        assert_eq!(
            Some(plan),
            fault_plan(5, args.faults, &args.partitions).unwrap()
        );
        assert_eq!(fault_plan(5, None, &[]).unwrap(), None);
        assert_eq!(
            fault_plan(3, None, &[(vec![3], 1, 2)]),
            Err(CliError::InvalidValue {
                flag: "--partition".to_string(),
                value: "3".to_string(),
            })
        );
    }

    #[test]
    fn cli_round_timeout_default_matches_the_node_config_default() {
        // Satellite of the robustness issue: the CLI's default must be
        // *derived from* NodeConfig's, not a second hard-coded copy.
        let cmd = parse_command(strings(&["testnet", "--input", "1,2"])).unwrap();
        let NodeCommand::Testnet(args) = cmd else {
            panic!("expected testnet");
        };
        let config = NodeConfig::new(ProcessId::new(0), localhost_peers(2, 7000)).unwrap();
        assert_eq!(
            u128::from(args.round_timeout_ms),
            config.round_timeout.as_millis()
        );
        assert_eq!(config.round_timeout, DEFAULT_ROUND_TIMEOUT);
    }

    #[test]
    fn testnet_defaults_and_repeated_crashes() {
        let cmd = parse_command(strings(&[
            "testnet",
            "--input",
            "3,9,1,4,7",
            "--crash",
            "1:1:2",
            "--crash",
            "4:2:0",
        ]))
        .unwrap();
        let NodeCommand::Testnet(args) = cmd else {
            panic!("expected testnet");
        };
        assert_eq!(args.input.len(), 5);
        assert_eq!(args.crashes, vec![(1, 1, 2), (4, 2, 0)]);
        assert_eq!(args.transport, TransportKind::Tcp);
        assert_eq!(args.port_base, 45_800);
        assert_eq!((args.t, args.k), (1, 1));
    }

    #[test]
    fn loopback_transport_is_selectable() {
        let cmd = parse_command(strings(&[
            "testnet",
            "--input",
            "1,2",
            "--transport",
            "loopback",
        ]))
        .unwrap();
        let NodeCommand::Testnet(args) = cmd else {
            panic!("expected testnet");
        };
        assert_eq!(args.transport, TransportKind::Loopback);
    }

    #[test]
    fn errors_name_the_problem() {
        assert_eq!(parse_command(strings(&[])), Err(CliError::NoCommand));
        assert_eq!(
            parse_command(strings(&["serve"])),
            Err(CliError::UnknownCommand {
                name: "serve".to_string()
            })
        );
        assert_eq!(
            parse_command(strings(&[
                "run",
                "--peers",
                "127.0.0.1:7000,127.0.0.1:7001"
            ])),
            Err(CliError::MissingFlag {
                flag: "--input".to_string()
            })
        );
        assert_eq!(
            parse_command(strings(&["testnet", "--input", "1,2", "--crash", "1:2"])),
            Err(CliError::InvalidValue {
                flag: "--crash".to_string(),
                value: "1:2".to_string()
            })
        );
        assert_eq!(
            parse_command(strings(&["testnet", "--input", "1,2", "--fast", "yes"])),
            Err(CliError::UnknownFlag {
                flag: "--fast".to_string()
            })
        );
    }
}
