//! Peer configuration for a TCP node: who is in the system, where each
//! node listens, and how patient the transport is.

use std::error::Error;
use std::fmt;
use std::net::SocketAddr;
use std::time::Duration;

use setagree_types::ProcessId;

/// Configuration of one node in an `n`-node TCP system.
///
/// Node `i` listens on `peers[i]`; the full peer list is the system
/// membership, identical on every node (the synchronous model's known,
/// fixed membership).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeConfig {
    /// This node's identity.
    pub me: ProcessId,
    /// Listen address of every node, indexed by process.
    pub peers: Vec<SocketAddr>,
    /// How long to keep retrying the initial full-mesh connection.
    pub connect_timeout: Duration,
    /// How long one round may wait for missing peers before they are
    /// declared dead.
    pub round_timeout: Duration,
}

impl NodeConfig {
    /// A configuration with default timeouts (10 s connect, 10 s round).
    ///
    /// # Errors
    ///
    /// [`ConfigError::IdOutOfRange`] if `me` is not an index into
    /// `peers`; [`ConfigError::TooFewPeers`] for systems under two nodes.
    pub fn new(me: ProcessId, peers: Vec<SocketAddr>) -> Result<NodeConfig, ConfigError> {
        if peers.len() < 2 {
            return Err(ConfigError::TooFewPeers { count: peers.len() });
        }
        if me.index() >= peers.len() {
            return Err(ConfigError::IdOutOfRange {
                id: me.index(),
                n: peers.len(),
            });
        }
        Ok(NodeConfig {
            me,
            peers,
            connect_timeout: Duration::from_secs(10),
            round_timeout: Duration::from_secs(10),
        })
    }

    /// The system size.
    pub fn n(&self) -> usize {
        self.peers.len()
    }

    /// The address this node listens on.
    pub fn my_addr(&self) -> SocketAddr {
        self.peers[self.me.index()]
    }

    /// Overrides the connection-establishment timeout.
    pub fn with_connect_timeout(mut self, timeout: Duration) -> NodeConfig {
        self.connect_timeout = timeout;
        self
    }

    /// Overrides the per-round wait for missing peers.
    pub fn with_round_timeout(mut self, timeout: Duration) -> NodeConfig {
        self.round_timeout = timeout;
        self
    }
}

/// A localhost peer list for an `n`-node testnet: node `i` listens on
/// `127.0.0.1:(port_base + i)`.
pub fn localhost_peers(n: usize, port_base: u16) -> Vec<SocketAddr> {
    (0..n)
        .map(|i| {
            SocketAddr::from((
                [127, 0, 0, 1],
                port_base + u16::try_from(i).unwrap_or(u16::MAX),
            ))
        })
        .collect()
}

/// Parses a comma-separated peer list (`"127.0.0.1:7000,127.0.0.1:7001"`).
///
/// # Errors
///
/// [`ConfigError::BadAddr`] on any entry that is not a socket address.
pub fn parse_peers(list: &str) -> Result<Vec<SocketAddr>, ConfigError> {
    list.split(',')
        .map(|entry| {
            let entry = entry.trim();
            entry.parse().map_err(|_| ConfigError::BadAddr {
                text: entry.to_string(),
            })
        })
        .collect()
}

/// An invalid node configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A peer entry is not a socket address.
    BadAddr {
        /// The unparsable text.
        text: String,
    },
    /// The node's own id is not an index into the peer list.
    IdOutOfRange {
        /// The claimed id.
        id: usize,
        /// The system size.
        n: usize,
    },
    /// A networked system needs at least two nodes.
    TooFewPeers {
        /// The peer count supplied.
        count: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadAddr { text } => write!(f, "invalid peer address {text:?}"),
            ConfigError::IdOutOfRange { id, n } => {
                write!(f, "node id {id} out of range for {n} peers")
            }
            ConfigError::TooFewPeers { count } => {
                write!(f, "need at least two peers, got {count}")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn localhost_peer_lists_count_up_from_the_base_port() {
        let peers = localhost_peers(3, 7000);
        assert_eq!(peers.len(), 3);
        assert_eq!(peers[0].port(), 7000);
        assert_eq!(peers[2].port(), 7002);
        assert!(peers.iter().all(|a| a.ip().is_loopback()));
    }

    #[test]
    fn parse_peers_round_trips_and_rejects_garbage() {
        let peers = parse_peers("127.0.0.1:7000, 127.0.0.1:7001").unwrap();
        assert_eq!(peers, localhost_peers(2, 7000));
        assert_eq!(
            parse_peers("127.0.0.1:7000,nonsense"),
            Err(ConfigError::BadAddr {
                text: "nonsense".to_string()
            })
        );
    }

    #[test]
    fn config_validates_identity_and_size() {
        let peers = localhost_peers(3, 7000);
        let config = NodeConfig::new(ProcessId::new(1), peers.clone()).unwrap();
        assert_eq!(config.n(), 3);
        assert_eq!(config.my_addr(), peers[1]);
        assert_eq!(
            NodeConfig::new(ProcessId::new(3), peers.clone()),
            Err(ConfigError::IdOutOfRange { id: 3, n: 3 })
        );
        assert_eq!(
            NodeConfig::new(ProcessId::new(0), vec![peers[0]]),
            Err(ConfigError::TooFewPeers { count: 1 })
        );
    }
}
