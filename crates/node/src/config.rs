//! Peer configuration for a TCP node: who is in the system, where each
//! node listens, and how patient the transport is.

use std::error::Error;
use std::fmt;
use std::net::SocketAddr;
use std::time::Duration;

use setagree_sync::FaultPlan;
use setagree_types::ProcessId;

/// Default for [`NodeConfig::connect_timeout`] — the single source the
/// CLI default derives from.
pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// Default for [`NodeConfig::round_timeout`] — the single source the
/// CLI default derives from.
pub const DEFAULT_ROUND_TIMEOUT: Duration = Duration::from_secs(10);

/// Default for [`NodeConfig::reconnect_attempts`].
pub const DEFAULT_RECONNECT_ATTEMPTS: u32 = 3;

/// Default for [`NodeConfig::reconnect_base_delay`].
pub const DEFAULT_RECONNECT_BASE_DELAY: Duration = Duration::from_millis(25);

/// Default for [`NodeConfig::reconnect_window`].
pub const DEFAULT_RECONNECT_WINDOW: Duration = Duration::from_millis(500);

/// Configuration of one node in an `n`-node TCP system.
///
/// Node `i` listens on `peers[i]`; the full peer list is the system
/// membership, identical on every node (the synchronous model's known,
/// fixed membership).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeConfig {
    /// This node's identity.
    pub me: ProcessId,
    /// Listen address of every node, indexed by process.
    pub peers: Vec<SocketAddr>,
    /// How long to keep retrying the initial full-mesh connection.
    pub connect_timeout: Duration,
    /// How long one round may wait for missing peers before the
    /// transport gives up: peers whose stream closed are then confirmed
    /// dead, and still-connected silent peers surface as a round
    /// timeout rather than a fabricated crash.
    pub round_timeout: Duration,
    /// How many redial campaigns a broken outbound link gets before the
    /// peer is confirmed dead (each campaign retries with bounded
    /// exponential backoff from [`NodeConfig::reconnect_base_delay`]).
    pub reconnect_attempts: u32,
    /// First retry delay of a redial campaign; doubles per attempt.
    pub reconnect_base_delay: Duration,
    /// How long a peer whose stream closed may take to re-handshake
    /// before it is confirmed dead (the inbound-side reconnect budget —
    /// the closed peer must redial us within this window).
    pub reconnect_window: Duration,
    /// An injected link-fault plan, applied to first-arrival `Msg`
    /// frames at this node's receive boundary (recovery frames are
    /// exempt — they model recovery, not fresh transmissions).
    pub fault_plan: Option<FaultPlan>,
}

impl NodeConfig {
    /// A configuration with default timeouts
    /// ([`DEFAULT_CONNECT_TIMEOUT`], [`DEFAULT_ROUND_TIMEOUT`]), default
    /// reconnect budgets and no fault plan.
    ///
    /// # Errors
    ///
    /// [`ConfigError::IdOutOfRange`] if `me` is not an index into
    /// `peers`; [`ConfigError::TooFewPeers`] for systems under two nodes.
    pub fn new(me: ProcessId, peers: Vec<SocketAddr>) -> Result<NodeConfig, ConfigError> {
        if peers.len() < 2 {
            return Err(ConfigError::TooFewPeers { count: peers.len() });
        }
        if me.index() >= peers.len() {
            return Err(ConfigError::IdOutOfRange {
                id: me.index(),
                n: peers.len(),
            });
        }
        Ok(NodeConfig {
            me,
            peers,
            connect_timeout: DEFAULT_CONNECT_TIMEOUT,
            round_timeout: DEFAULT_ROUND_TIMEOUT,
            reconnect_attempts: DEFAULT_RECONNECT_ATTEMPTS,
            reconnect_base_delay: DEFAULT_RECONNECT_BASE_DELAY,
            reconnect_window: DEFAULT_RECONNECT_WINDOW,
            fault_plan: None,
        })
    }

    /// The system size.
    pub fn n(&self) -> usize {
        self.peers.len()
    }

    /// The address this node listens on.
    pub fn my_addr(&self) -> SocketAddr {
        self.peers[self.me.index()]
    }

    /// Overrides the connection-establishment timeout.
    pub fn with_connect_timeout(mut self, timeout: Duration) -> NodeConfig {
        self.connect_timeout = timeout;
        self
    }

    /// Overrides the per-round wait for missing peers.
    pub fn with_round_timeout(mut self, timeout: Duration) -> NodeConfig {
        self.round_timeout = timeout;
        self
    }

    /// Overrides the reconnect budget (campaigns and backoff base).
    pub fn with_reconnect(mut self, attempts: u32, base_delay: Duration) -> NodeConfig {
        self.reconnect_attempts = attempts;
        self.reconnect_base_delay = base_delay;
        self
    }

    /// Overrides the inbound-side reconnect window.
    pub fn with_reconnect_window(mut self, window: Duration) -> NodeConfig {
        self.reconnect_window = window;
        self
    }

    /// Installs an injected link-fault plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> NodeConfig {
        self.fault_plan = Some(plan);
        self
    }
}

/// A localhost peer list for an `n`-node testnet: node `i` listens on
/// `127.0.0.1:(port_base + i)`.
pub fn localhost_peers(n: usize, port_base: u16) -> Vec<SocketAddr> {
    (0..n)
        .map(|i| {
            SocketAddr::from((
                [127, 0, 0, 1],
                port_base + u16::try_from(i).unwrap_or(u16::MAX),
            ))
        })
        .collect()
}

/// Parses a comma-separated peer list (`"127.0.0.1:7000,127.0.0.1:7001"`).
///
/// # Errors
///
/// [`ConfigError::BadAddr`] on any entry that is not a socket address.
pub fn parse_peers(list: &str) -> Result<Vec<SocketAddr>, ConfigError> {
    list.split(',')
        .map(|entry| {
            let entry = entry.trim();
            entry.parse().map_err(|_| ConfigError::BadAddr {
                text: entry.to_string(),
            })
        })
        .collect()
}

/// An invalid node configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A peer entry is not a socket address.
    BadAddr {
        /// The unparsable text.
        text: String,
    },
    /// The node's own id is not an index into the peer list.
    IdOutOfRange {
        /// The claimed id.
        id: usize,
        /// The system size.
        n: usize,
    },
    /// A networked system needs at least two nodes.
    TooFewPeers {
        /// The peer count supplied.
        count: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadAddr { text } => write!(f, "invalid peer address {text:?}"),
            ConfigError::IdOutOfRange { id, n } => {
                write!(f, "node id {id} out of range for {n} peers")
            }
            ConfigError::TooFewPeers { count } => {
                write!(f, "need at least two peers, got {count}")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn localhost_peer_lists_count_up_from_the_base_port() {
        let peers = localhost_peers(3, 7000);
        assert_eq!(peers.len(), 3);
        assert_eq!(peers[0].port(), 7000);
        assert_eq!(peers[2].port(), 7002);
        assert!(peers.iter().all(|a| a.ip().is_loopback()));
    }

    #[test]
    fn parse_peers_round_trips_and_rejects_garbage() {
        let peers = parse_peers("127.0.0.1:7000, 127.0.0.1:7001").unwrap();
        assert_eq!(peers, localhost_peers(2, 7000));
        assert_eq!(
            parse_peers("127.0.0.1:7000,nonsense"),
            Err(ConfigError::BadAddr {
                text: "nonsense".to_string()
            })
        );
    }

    #[test]
    fn config_validates_identity_and_size() {
        let peers = localhost_peers(3, 7000);
        let config = NodeConfig::new(ProcessId::new(1), peers.clone()).unwrap();
        assert_eq!(config.n(), 3);
        assert_eq!(config.my_addr(), peers[1]);
        assert_eq!(
            NodeConfig::new(ProcessId::new(3), peers.clone()),
            Err(ConfigError::IdOutOfRange { id: 3, n: 3 })
        );
        assert_eq!(
            NodeConfig::new(ProcessId::new(0), vec![peers[0]]),
            Err(ConfigError::TooFewPeers { count: 1 })
        );
    }
}
