//! The transport abstraction: how a node's round broadcasts reach its
//! peers.
//!
//! The networked tier separates *protocol driving* (the generic round
//! loop in [`drive`](crate::drive)) from *message movement* (this trait).
//! Two implementations ship:
//!
//! * [`LoopbackTransport`](crate::LoopbackTransport) — in-process tasks
//!   over the shared [`delivery`](setagree_runtime::delivery) mesh,
//!   trace-equivalent to the simulator;
//! * [`TcpTransport`](crate::TcpTransport) — real sockets with
//!   length-prefixed [`Frame`](crate::Frame)s, where a peer's death is
//!   observed as end-of-stream.

use std::borrow::Borrow;
use std::fmt;
use std::str::FromStr;

use setagree_types::ProcessId;

/// Which transport a networked execution runs on. The payload of
/// `Executor::Networked` in `setagree-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TransportKind {
    /// In-process tasks over channels; trace-equivalent to the simulator.
    #[default]
    Loopback,
    /// Real TCP sockets between node processes (via the testnet harness
    /// and the `setagree-node` binary).
    Tcp,
}

impl fmt::Display for TransportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportKind::Loopback => write!(f, "loopback"),
            TransportKind::Tcp => write!(f, "tcp"),
        }
    }
}

impl FromStr for TransportKind {
    type Err = UnknownTransport;

    fn from_str(s: &str) -> Result<TransportKind, UnknownTransport> {
        match s {
            "loopback" => Ok(TransportKind::Loopback),
            "tcp" => Ok(TransportKind::Tcp),
            other => Err(UnknownTransport {
                name: other.to_string(),
            }),
        }
    }
}

/// An unrecognized transport name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownTransport {
    /// The offending name.
    pub name: String,
}

impl fmt::Display for UnknownTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown transport {:?} (expected loopback or tcp)",
            self.name
        )
    }
}

impl std::error::Error for UnknownTransport {}

/// One node's connection to the rest of the system, for one execution.
///
/// The [`drive`](crate::drive) loop calls, per round and in order:
/// [`broadcast`](Transport::broadcast), [`sends_done`](Transport::sends_done),
/// then either [`collect`](Transport::collect) +
/// (optionally) [`settle`](Transport::settle) followed by
/// [`round_done`](Transport::round_done), or — when the node crashes or
/// its protocol panics mid-round — [`depart`](Transport::depart).
///
/// `Letter` lets each transport pick its natural delivery representation
/// without copies: the loopback hands out the sender's `Arc<Msg>`, a
/// byte transport hands out decoded owned values.
pub trait Transport {
    /// The broadcast payload type.
    type Msg;
    /// What a delivery dereferences to — anything that borrows as `Msg`.
    type Letter: Borrow<Self::Msg>;
    /// Transport-level failure.
    type Error: fmt::Debug + fmt::Display;

    /// The system size.
    fn n(&self) -> usize;

    /// The process this transport belongs to.
    fn me(&self) -> ProcessId;

    /// Broadcasts `msg` to recipients `p_1 … p_reach` in the predetermined
    /// order — the paper's ordered-send model, where `reach < n` realizes
    /// a crash that delivered only a prefix.
    fn broadcast(&mut self, round: usize, msg: Self::Msg, reach: usize) -> Result<(), Self::Error>;

    /// Marks the end of this node's send phase for `round` (loopback:
    /// a gate crossing; TCP: a flush). After it returns, all of the
    /// round's deliveries to this node are determined.
    fn sends_done(&mut self, round: usize) -> Result<(), Self::Error>;

    /// This round's inbox, sorted by sender.
    fn collect(&mut self, round: usize) -> Result<Vec<(ProcessId, Self::Letter)>, Self::Error>;

    /// Announces that this node settled (decided) at the end of `round`:
    /// peers stop delivering to it and stop waiting for it after that
    /// round.
    fn settle(&mut self, round: usize) -> Result<(), Self::Error>;

    /// End-of-round synchronization. `settled` is whether this node has
    /// settled; returns `true` when the execution is over for this node
    /// and the round loop should stop.
    fn round_done(&mut self, round: usize, settled: bool) -> Result<bool, Self::Error>;

    /// Abrupt, kill-style departure mid-round: used both for injected
    /// crashes and for panic bail-out. The node leaves the round
    /// structure immediately; peers observe the death through the
    /// transport (settled flag + closed channel, or end-of-stream).
    fn depart(&mut self, round: usize);
}

/// A mutable reference drives like the transport itself — so a caller
/// (e.g. the node binary) can lend its transport to
/// [`drive`](crate::drive) and still read its counters afterwards.
impl<T: Transport> Transport for &mut T {
    type Msg = T::Msg;
    type Letter = T::Letter;
    type Error = T::Error;

    fn n(&self) -> usize {
        (**self).n()
    }

    fn me(&self) -> ProcessId {
        (**self).me()
    }

    fn broadcast(&mut self, round: usize, msg: T::Msg, reach: usize) -> Result<(), T::Error> {
        (**self).broadcast(round, msg, reach)
    }

    fn sends_done(&mut self, round: usize) -> Result<(), T::Error> {
        (**self).sends_done(round)
    }

    fn collect(&mut self, round: usize) -> Result<Vec<(ProcessId, T::Letter)>, T::Error> {
        (**self).collect(round)
    }

    fn settle(&mut self, round: usize) -> Result<(), T::Error> {
        (**self).settle(round)
    }

    fn round_done(&mut self, round: usize, settled: bool) -> Result<bool, T::Error> {
        (**self).round_done(round, settled)
    }

    fn depart(&mut self, round: usize) {
        (**self).depart(round)
    }
}

/// Encodes one protocol's messages for a byte transport.
///
/// The vendored `serde` is a no-op shim, so typed messages cross the
/// wire through explicit codecs — the same approach the suite cache
/// takes with its token codec.
pub trait MsgCodec {
    /// The typed message.
    type Msg;

    /// The message's wire bytes.
    fn encode(&self, msg: &Self::Msg) -> Vec<u8>;

    /// Decodes wire bytes; `None` marks a malformed payload.
    fn decode(&self, bytes: &[u8]) -> Option<Self::Msg>;
}

/// The codec for `u32` payloads (e.g. `FloodSet<u32>` messages): four
/// little-endian bytes.
#[derive(Debug, Clone, Copy, Default)]
pub struct U32Codec;

impl MsgCodec for U32Codec {
    type Msg = u32;

    fn encode(&self, msg: &u32) -> Vec<u8> {
        msg.to_le_bytes().to_vec()
    }

    fn decode(&self, bytes: &[u8]) -> Option<u32> {
        Some(u32::from_le_bytes(bytes.try_into().ok()?))
    }
}

/// The codec for interned view payloads
/// ([`DenseView`](setagree_types::DenseView) messages — view-flood
/// protocols on real sockets): the flat id-slot wire form of
/// [`setagree_codec::encode_dense_view`], with every decode re-validated
/// against the declared domain before a view is built.
#[derive(Debug, Clone, Copy, Default)]
pub struct DenseViewCodec;

impl MsgCodec for DenseViewCodec {
    type Msg = setagree_types::DenseView;

    fn encode(&self, msg: &Self::Msg) -> Vec<u8> {
        let mut w = setagree_codec::Writer::new();
        setagree_codec::encode_dense_view(&mut w, msg);
        w.into_vec()
    }

    fn decode(&self, bytes: &[u8]) -> Option<Self::Msg> {
        let mut r = setagree_codec::Reader::new(bytes);
        let view = setagree_codec::decode_dense_view(&mut r).ok()?;
        r.finish().ok()?;
        Some(view)
    }
}

/// Lifts a byte transport (`Msg = Vec<u8>`) to a typed one through a
/// [`MsgCodec`].
#[derive(Debug)]
pub struct Typed<T, C> {
    inner: T,
    codec: C,
}

impl<T, C> Typed<T, C> {
    /// Wraps `inner`, moving messages through `codec`.
    pub fn new(inner: T, codec: C) -> Typed<T, C> {
        Typed { inner, codec }
    }

    /// The wrapped byte transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

/// A typed-transport failure: the underlying transport failed, or a peer
/// sent undecodable bytes.
#[derive(Debug)]
pub enum TypedError<E> {
    /// The byte transport failed.
    Transport(E),
    /// A payload did not decode.
    Codec {
        /// The sender of the malformed payload.
        from: ProcessId,
        /// The round it arrived in.
        round: usize,
    },
}

impl<E: fmt::Display> fmt::Display for TypedError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypedError::Transport(e) => write!(f, "{e}"),
            TypedError::Codec { from, round } => {
                write!(f, "undecodable payload from {from} in round {round}")
            }
        }
    }
}

impl<E: fmt::Debug + fmt::Display> std::error::Error for TypedError<E> {}

impl<T, C> Transport for Typed<T, C>
where
    T: Transport<Msg = Vec<u8>>,
    C: MsgCodec,
{
    type Msg = C::Msg;
    type Letter = C::Msg;
    type Error = TypedError<T::Error>;

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn me(&self) -> ProcessId {
        self.inner.me()
    }

    fn broadcast(&mut self, round: usize, msg: C::Msg, reach: usize) -> Result<(), Self::Error> {
        self.inner
            .broadcast(round, self.codec.encode(&msg), reach)
            .map_err(TypedError::Transport)
    }

    fn sends_done(&mut self, round: usize) -> Result<(), Self::Error> {
        self.inner.sends_done(round).map_err(TypedError::Transport)
    }

    fn collect(&mut self, round: usize) -> Result<Vec<(ProcessId, C::Msg)>, Self::Error> {
        self.inner
            .collect(round)
            .map_err(TypedError::Transport)?
            .into_iter()
            .map(|(from, letter)| {
                let msg = self
                    .codec
                    .decode(letter.borrow())
                    .ok_or(TypedError::Codec { from, round })?;
                Ok((from, msg))
            })
            .collect()
    }

    fn settle(&mut self, round: usize) -> Result<(), Self::Error> {
        self.inner.settle(round).map_err(TypedError::Transport)
    }

    fn round_done(&mut self, round: usize, settled: bool) -> Result<bool, Self::Error> {
        self.inner
            .round_done(round, settled)
            .map_err(TypedError::Transport)
    }

    fn depart(&mut self, round: usize) {
        self.inner.depart(round);
    }
}
