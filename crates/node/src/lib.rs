//! # setagree-node — the networked execution tier
//!
//! The paper's processes (Bonnet & Raynal, ICDCS 2008) are
//! message-passing programs; this crate runs them as *real nodes*. Each
//! node drives one [`SyncProtocol`](setagree_sync::SyncProtocol)
//! instance through the shared round loop ([`drive`]) over a
//! [`Transport`]:
//!
//! * [`LoopbackTransport`] — in-process node tasks over the same
//!   [`delivery`](setagree_runtime::delivery) mesh the threaded runtime
//!   uses. Trace-equivalent to the deterministic simulator (pinned by
//!   the `tests/node_equivalence.rs` property suite); the backend of
//!   `Executor::Networked { transport: TransportKind::Loopback }` in
//!   `setagree-core`.
//! * [`TcpTransport`] — real sockets between node processes, framed
//!   with the self-contained length-prefixed [`Frame`] codec (the
//!   vendored `serde` is a no-op shim, so the wire format is explicit).
//!
//! Crash injection is **kill-based** in both: a victim *leaves* at its
//! scheduled point — after its ordered-send prefix — instead of
//! lingering silently. A loopback victim's task exits and its channel
//! closes; a TCP victim's process aborts and peers observe end-of-stream.
//! The [`testnet`] harness orchestrates the multi-process version:
//! spawn `n` node binaries, kill the victims, collect the survivors'
//! outcomes into a [`Trace`](setagree_sync::Trace).
//!
//! # Example: four loopback nodes, one killed
//!
//! ```
//! use setagree_node::run_loopback;
//! use setagree_sync::{CrashSpec, FailurePattern, Step, SyncProtocol};
//! use setagree_types::ProcessId;
//!
//! /// A three-round max-flood: decides the largest input it heard.
//! struct MaxFlood { best: u32 }
//! impl SyncProtocol for MaxFlood {
//!     type Msg = u32;
//!     type Output = u32;
//!     fn message(&mut self, _round: usize) -> u32 { self.best }
//!     fn receive(&mut self, _round: usize, _from: ProcessId, msg: &u32) {
//!         self.best = self.best.max(*msg);
//!     }
//!     fn compute(&mut self, round: usize) -> Step<u32> {
//!         if round >= 3 { Step::Decide(self.best) } else { Step::Continue }
//!     }
//! }
//!
//! let procs: Vec<_> = [3u32, 9, 1, 4].into_iter().map(|best| MaxFlood { best }).collect();
//! let mut pattern = FailurePattern::none(4);
//! pattern.crash(ProcessId::new(2), CrashSpec::new(1, 0))?;
//! let trace = run_loopback(procs, &pattern, 10)?;
//! assert_eq!(trace.decided_values(), [9].into_iter().collect());
//! assert_eq!(trace.crashed_count(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod cli;
pub mod config;
pub mod faulty;
pub mod loopback;
pub mod node;
pub mod tcp;
pub mod testnet;
pub mod transport;

pub use cli::{fault_plan, parse_command, CliError, NodeCommand, RunArgs, TestnetArgs, USAGE};
pub use config::{localhost_peers, parse_peers, ConfigError, NodeConfig};
// The frame codec moved to the shared `setagree-codec` wire tier; both
// the module path and the flat re-exports keep working from here.
pub use faulty::{run_loopback_faulty, FaultyTransport};
pub use loopback::{loopback_mesh, LoopbackTransport, RoundGate};
pub use node::{drive, run_loopback, DriveError, NodeError};
pub use setagree_codec::frame;
pub use setagree_codec::{Frame, FrameError, FrameKind, MAX_FRAME_LEN};
pub use tcp::{TcpError, TcpTransport};
pub use testnet::{run_testnet, run_testnet_observed, TestnetConfig, TestnetError};
pub use transport::{
    DenseViewCodec, MsgCodec, Transport, TransportKind, Typed, TypedError, U32Codec,
    UnknownTransport,
};
