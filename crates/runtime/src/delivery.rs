//! Shared broadcast delivery: the `Arc`-envelope fan-out used by every
//! in-process execution tier.
//!
//! Both the threaded runtime ([`run_threaded`](crate::run_threaded)) and
//! the loopback transport of `setagree-node` realize the paper's
//! broadcast-based synchronous rounds the same way: one owned message per
//! sender per round, fanned out as `n` `Arc` bumps through per-process
//! channels, with settled processes (decided or crashed) dropped from the
//! recipient set. This module is that mechanism, in exactly one place —
//! an [`Endpoint`] per process, wired into a full [`mesh`] — so the two
//! tiers cannot drift apart in delivery semantics.
//!
//! The discipline that makes executions trace-equivalent to the
//! simulator:
//!
//! * a broadcast walks recipients in the predetermined `p_1 … p_n` order,
//!   truncated to the sender's crash prefix;
//! * a delivery to a settled recipient is skipped and **not** counted;
//! * the settled flag of a process flips only in the compute half of a
//!   round, strictly synchronization-separated from the send half that
//!   reads it (the caller's barrier or gate enforces the separation);
//! * each round's inbox is drained in sender order.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

use setagree_types::ProcessId;

/// A round-`r` message from `from`.
///
/// The payload is behind an [`Arc`]: a broadcast allocates the message
/// once and fans it out as `n` reference bumps, so the channel layer adds
/// zero deep clones to a round (which is why messages need `Sync` in the
/// threaded tiers — every recipient borrows the same allocation).
#[derive(Debug)]
pub struct Envelope<M> {
    /// The (1-based) round the message belongs to.
    pub round: usize,
    /// The sender.
    pub from: ProcessId,
    /// The shared payload.
    pub msg: Arc<M>,
}

/// Counters shared by a [`mesh`], observable after the endpoints have been
/// moved into their processes.
#[derive(Debug, Clone)]
pub struct MeshStats {
    delivered: Arc<AtomicU64>,
}

impl MeshStats {
    /// Total message deliveries so far (skipped settled recipients are not
    /// counted) — the `messages_delivered` of the eventual trace.
    pub fn messages_delivered(&self) -> u64 {
        self.delivered.load(Ordering::SeqCst)
    }
}

/// Builds a fully connected `n`-process delivery mesh, returning one
/// [`Endpoint`] per process (index order) plus the shared [`MeshStats`].
pub fn mesh<M>(n: usize) -> (Vec<Endpoint<M>>, MeshStats) {
    type Links<M> = (Vec<Sender<Envelope<M>>>, Vec<Receiver<Envelope<M>>>);
    let (senders, receivers): Links<M> = (0..n).map(|_| unbounded()).unzip();
    let senders = Arc::new(senders);
    // Settled processes (decided or crashed) stop receiving; the flag flips
    // only in the compute half of a round, strictly barrier-separated from
    // the send half that reads it.
    let settled: Arc<Vec<AtomicBool>> = Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());
    let settled_count = Arc::new(AtomicU64::new(0));
    let delivered = Arc::new(AtomicU64::new(0));
    let stats = MeshStats {
        delivered: Arc::clone(&delivered),
    };
    let endpoints = receivers
        .into_iter()
        .enumerate()
        .map(|(i, rx)| Endpoint {
            me: ProcessId::new(i),
            senders: Arc::clone(&senders),
            rx,
            settled: Arc::clone(&settled),
            settled_count: Arc::clone(&settled_count),
            delivered: Arc::clone(&delivered),
        })
        .collect();
    (endpoints, stats)
}

/// One process's handle into the delivery mesh: its inbound channel plus
/// the shared outbound fan-out and settlement state.
#[derive(Debug)]
pub struct Endpoint<M> {
    me: ProcessId,
    senders: Arc<Vec<Sender<Envelope<M>>>>,
    rx: Receiver<Envelope<M>>,
    settled: Arc<Vec<AtomicBool>>,
    settled_count: Arc<AtomicU64>,
    delivered: Arc<AtomicU64>,
}

impl<M> Endpoint<M> {
    /// The process this endpoint belongs to.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The system size.
    pub fn n(&self) -> usize {
        self.senders.len()
    }

    /// Broadcasts `msg` to recipients `p_1 … p_reach` in the predetermined
    /// order (the ordered-send crash model: a crash mid-broadcast delivers
    /// only a prefix). Settled recipients are skipped and not counted; a
    /// recipient whose endpoint is already gone (a killed loopback node)
    /// is likewise not counted.
    pub fn broadcast(&self, round: usize, msg: M, reach: usize) {
        // One owned message per sender per round; the fan-out below is at
        // most n `Arc` bumps, zero deep clones.
        let msg = Arc::new(msg);
        for recipient in 0..reach.min(self.n()) {
            if self.settled[recipient].load(Ordering::SeqCst) {
                continue;
            }
            let env = Envelope {
                round,
                from: self.me,
                msg: Arc::clone(&msg),
            };
            if self.senders[recipient].send(env).is_ok() {
                self.delivered.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    /// Drains this round's inbox, sorted by sender — the paper's
    /// deterministic delivery order.
    pub fn drain_round(&self, round: usize) -> Vec<Envelope<M>> {
        let mut inbox: Vec<Envelope<M>> = self.rx.try_iter().collect();
        debug_assert!(inbox.iter().all(|e| e.round == round));
        let _ = round;
        inbox.sort_by_key(|e| e.from);
        inbox
    }

    /// Marks this process settled (decided, crashed, or panicked): future
    /// broadcasts skip it. Idempotent. Call only in the compute half of a
    /// round, synchronization-separated from any concurrent send half.
    pub fn settle(&self) {
        if !self.settled[self.me.index()].swap(true, Ordering::SeqCst) {
            self.settled_count.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Returns `true` once every process in the mesh has settled — the
    /// whole execution is over.
    pub fn all_settled(&self) -> bool {
        self.settled_count.load(Ordering::SeqCst) as usize == self.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_counts_only_unsettled_recipients() {
        let (endpoints, stats) = mesh::<u32>(3);
        endpoints[1].settle();
        endpoints[0].broadcast(1, 42, 3);
        assert_eq!(stats.messages_delivered(), 2);
        let inbox = endpoints[2].drain_round(1);
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].from, ProcessId::new(0));
        assert_eq!(*inbox[0].msg, 42);
        assert!(endpoints[1].drain_round(1).is_empty());
    }

    #[test]
    fn broadcast_respects_the_prefix_order() {
        let (endpoints, stats) = mesh::<u32>(4);
        endpoints[3].broadcast(1, 7, 2); // reaches p1, p2 only
        assert_eq!(stats.messages_delivered(), 2);
        assert_eq!(endpoints[0].drain_round(1).len(), 1);
        assert_eq!(endpoints[1].drain_round(1).len(), 1);
        assert!(endpoints[2].drain_round(1).is_empty());
        assert!(endpoints[3].drain_round(1).is_empty());
    }

    #[test]
    fn drain_sorts_by_sender() {
        let (endpoints, _) = mesh::<u32>(3);
        endpoints[2].broadcast(1, 20, 3);
        endpoints[0].broadcast(1, 0, 3);
        endpoints[1].broadcast(1, 10, 3);
        let froms: Vec<usize> = endpoints[0]
            .drain_round(1)
            .iter()
            .map(|e| e.from.index())
            .collect();
        assert_eq!(froms, vec![0, 1, 2]);
    }

    #[test]
    fn settle_is_idempotent_and_all_settled_detects_completion() {
        let (endpoints, _) = mesh::<u32>(2);
        endpoints[0].settle();
        endpoints[0].settle();
        assert!(!endpoints[0].all_settled());
        endpoints[1].settle();
        assert!(endpoints[0].all_settled());
        assert!(endpoints[1].all_settled());
    }

    #[test]
    fn sends_to_a_dropped_endpoint_are_not_counted() {
        let (mut endpoints, stats) = mesh::<u32>(3);
        let victim = endpoints.remove(2);
        victim.settle();
        drop(victim); // a killed loopback node: settled, channel gone
        endpoints[0].broadcast(1, 5, 3);
        assert_eq!(stats.messages_delivered(), 2);
    }
}
