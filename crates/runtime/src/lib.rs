//! A real-thread synchronous runtime: one OS thread per process, crossbeam
//! channels as links, and a barrier realizing the round structure.
//!
//! This crate runs the *same* [`SyncProtocol`] implementations as the
//! deterministic simulator in `setagree-sync`, on actual concurrency:
//! each process is a thread, each link a channel, and each round a pair of
//! barrier crossings (sends happen before the first crossing, receives and
//! local computation between the two). Crash injection honours the same
//! [`FailurePattern`] — including ordered-send prefixes — so an execution
//! here is observationally identical to the simulator's, which the
//! integration tests assert by comparing whole [`Trace`]s.
//!
//! Use the simulator for experiments (faster, no thread overhead); use
//! this runtime to demonstrate the protocols really are message-passing
//! programs and not artifacts of a sequential executor. Most callers
//! should not invoke [`run_threaded`] directly: select
//! `Executor::Threaded` on a `setagree_core` `Scenario` instead.
//!
//! # Example
//!
//! ```
//! use setagree_runtime::run_threaded;
//! use setagree_sync::{FailurePattern, Step, SyncProtocol};
//! use setagree_types::ProcessId;
//!
//! /// A three-round max-flood: decides the largest input it heard.
//! struct MaxFlood { best: u32 }
//! impl SyncProtocol for MaxFlood {
//!     type Msg = u32;
//!     type Output = u32;
//!     fn message(&mut self, _round: usize) -> u32 { self.best }
//!     fn receive(&mut self, _round: usize, _from: ProcessId, msg: &u32) {
//!         self.best = self.best.max(*msg);
//!     }
//!     fn compute(&mut self, round: usize) -> Step<u32> {
//!         if round >= 3 { Step::Decide(self.best) } else { Step::Continue }
//!     }
//! }
//!
//! let procs: Vec<_> = [3u32, 9, 1, 4].into_iter().map(|best| MaxFlood { best }).collect();
//! let trace = run_threaded(procs, &FailurePattern::none(4), 10)?;
//! assert_eq!(trace.decided_values(), [9].into_iter().collect());
//! # Ok::<(), setagree_runtime::ThreadedError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::error::Error;
use std::fmt;
use std::panic;
use std::sync::{Arc, Barrier};

use setagree_sync::{FailurePattern, Outcome, Step, SyncProtocol, Trace};
use setagree_types::ProcessId;

pub mod delivery;
pub mod pool;

pub use pool::PooledJoinHandle;

/// Error running a threaded execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ThreadedError {
    /// Some process neither decided nor crashed within the round limit.
    RoundLimitExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// Process count and failure-pattern system size differ.
    SystemSizeMismatch {
        /// Protocol instances supplied.
        processes: usize,
        /// Pattern system size.
        pattern: usize,
    },
    /// A process thread panicked.
    ProcessPanicked {
        /// The panicking process.
        process: ProcessId,
    },
}

impl fmt::Display for ThreadedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreadedError::RoundLimitExceeded { limit } => {
                write!(
                    f,
                    "execution exceeded the {limit}-round limit without termination"
                )
            }
            ThreadedError::SystemSizeMismatch { processes, pattern } => write!(
                f,
                "{processes} protocol instances but the failure pattern is over {pattern} processes"
            ),
            ThreadedError::ProcessPanicked { process } => {
                write!(f, "thread of {process} panicked")
            }
        }
    }
}

impl Error for ThreadedError {}

/// Runs the protocol instances on one thread each, rounds realized by a
/// barrier, links by [`delivery`] channels, under the failure pattern.
///
/// # Errors
///
/// Mirrors the simulator: size mismatches and round-limit violations, plus
/// [`ThreadedError::ProcessPanicked`] if a protocol implementation panics.
pub fn run_threaded<P>(
    processes: Vec<P>,
    pattern: &FailurePattern,
    max_rounds: usize,
) -> Result<Trace<P::Output>, ThreadedError>
where
    P: SyncProtocol + Send + 'static,
    P::Msg: Send + Sync,
    P::Output: Send,
{
    let n = processes.len();
    if n != pattern.system_size() {
        return Err(ThreadedError::SystemSizeMismatch {
            processes: n,
            pattern: pattern.system_size(),
        });
    }

    let (endpoints, stats) = delivery::mesh::<P::Msg>(n);
    let barrier = Arc::new(Barrier::new(n));

    let mut handles = Vec::with_capacity(n);
    for (endpoint, mut proto) in endpoints.into_iter().zip(processes) {
        let me = endpoint.me();
        let spec = pattern.spec(me);
        let barrier = Arc::clone(&barrier);

        // A panicking protocol must not deadlock the barrier: every
        // protocol call is wrapped in `catch_unwind`, and a panicked
        // worker keeps crossing barriers (silent, like a crashed process)
        // until the execution winds down, then reports `Err`. Processes
        // run on pooled threads — the pool's spawn guarantees each task
        // its own thread, so the barrier discipline is unchanged, but a
        // suite sweeping thousands of runs reuses threads instead of
        // recreating `n` of them per run.
        handles.push(pool::spawn(move || -> Result<Outcome<P::Output>, ()> {
            let mut outcome: Option<Outcome<P::Output>> = None;
            let mut panicked = false;
            for round in 1..=max_rounds {
                let active = outcome.is_none() && !panicked;

                // Send phase: broadcast in the predetermined p_1 … p_n
                // order, truncated to the crash prefix if this is the
                // crash round.
                if active {
                    let reach = match spec {
                        Some(s) if s.round == round => s.after_sends,
                        _ => n,
                    };
                    let sent = panic::catch_unwind(panic::AssertUnwindSafe(|| {
                        let msg = proto.message(round);
                        endpoint.broadcast(round, msg, reach);
                    }));
                    panicked = sent.is_err();
                }
                barrier.wait(); // all sends of this round are in flight

                if active {
                    if panicked {
                        // The settled flag flips only in this compute
                        // half, barrier-separated from the send half that
                        // reads it — same discipline as a crash.
                        endpoint.settle();
                    } else if spec.map(|s| s.round == round).unwrap_or(false) {
                        // Crash takes effect before local computation.
                        outcome = Some(Outcome::Crashed { round });
                        endpoint.settle();
                    } else {
                        // Receive phase: drain in sender order (the
                        // paper's deterministic delivery), then compute.
                        let step = panic::catch_unwind(panic::AssertUnwindSafe(|| {
                            for env in endpoint.drain_round(round) {
                                proto.receive(env.round, env.from, &env.msg);
                            }
                            proto.compute(round)
                        }));
                        match step {
                            Ok(Step::Decide(value)) => {
                                outcome = Some(Outcome::Decided { value, round });
                                endpoint.settle();
                            }
                            Ok(Step::Continue) => {}
                            Err(_) => {
                                panicked = true;
                                endpoint.settle();
                            }
                        }
                    }
                }
                barrier.wait(); // all compute phases (and settled flags) done

                if endpoint.all_settled() {
                    break;
                }
            }
            if panicked {
                Err(())
            } else {
                Ok(outcome.unwrap_or(Outcome::Undecided))
            }
        }));
    }

    let mut outcomes = Vec::with_capacity(n);
    for (i, handle) in handles.into_iter().enumerate() {
        match handle.join() {
            Ok(Ok(outcome)) => outcomes.push(outcome),
            Ok(Err(())) | Err(_) => {
                return Err(ThreadedError::ProcessPanicked {
                    process: ProcessId::new(i),
                })
            }
        }
    }
    if outcomes.iter().any(|o| matches!(o, Outcome::Undecided)) {
        return Err(ThreadedError::RoundLimitExceeded { limit: max_rounds });
    }
    let rounds_executed = outcomes
        .iter()
        .map(|o| match o {
            Outcome::Decided { round, .. } | Outcome::Crashed { round } => *round,
            Outcome::Undecided => 0,
        })
        .max()
        .unwrap_or(0);
    Ok(Trace::from_parts(
        outcomes,
        rounds_executed,
        stats.messages_delivered(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use setagree_sync::{run_protocol, CrashSpec};

    /// A local max-flooding protocol (the crate cannot dev-depend on
    /// `setagree-core`'s `FloodSet` — core depends on this crate for the
    /// `Executor::Threaded` backend). Floods the best value seen and
    /// decides it after `rounds` rounds.
    #[derive(Debug)]
    struct MaxFlood {
        rounds: usize,
        best: u32,
    }

    impl SyncProtocol for MaxFlood {
        type Msg = u32;
        type Output = u32;
        fn message(&mut self, _round: usize) -> u32 {
            self.best
        }
        fn receive(&mut self, _round: usize, _from: ProcessId, msg: &u32) {
            self.best = self.best.max(*msg);
        }
        fn compute(&mut self, round: usize) -> Step<u32> {
            if round >= self.rounds {
                Step::Decide(self.best)
            } else {
                Step::Continue
            }
        }
    }

    fn floods(t: usize, k: usize, inputs: &[u32]) -> Vec<MaxFlood> {
        let rounds = t / k + 1;
        inputs
            .iter()
            .map(|&v| MaxFlood { rounds, best: v })
            .collect()
    }

    #[test]
    fn failure_free_matches_simulator() {
        let inputs = [3u32, 9, 1, 4];
        let pattern = FailurePattern::none(4);
        let threaded = run_threaded(floods(2, 1, &inputs), &pattern, 10).unwrap();
        let simulated = run_protocol(floods(2, 1, &inputs), &pattern, 10).unwrap();
        assert_eq!(threaded, simulated);
    }

    #[test]
    fn prefix_crashes_match_simulator() {
        let inputs = [9u32, 1, 1, 1, 1];
        let mut pattern = FailurePattern::none(5);
        pattern
            .crash(ProcessId::new(0), CrashSpec::new(1, 2))
            .unwrap();
        pattern
            .crash(ProcessId::new(4), CrashSpec::new(2, 0))
            .unwrap();
        let threaded = run_threaded(floods(2, 1, &inputs), &pattern, 10).unwrap();
        let simulated = run_protocol(floods(2, 1, &inputs), &pattern, 10).unwrap();
        assert_eq!(threaded, simulated);
    }

    #[test]
    fn panicking_process_reports_instead_of_deadlocking() {
        /// Panics in compute on the second process, decides elsewhere.
        #[derive(Debug)]
        struct Volatile {
            explode: bool,
        }
        impl SyncProtocol for Volatile {
            type Msg = ();
            type Output = u32;
            fn message(&mut self, _round: usize) {}
            fn receive(&mut self, _round: usize, _from: ProcessId, _msg: &()) {}
            fn compute(&mut self, _round: usize) -> Step<u32> {
                if self.explode {
                    panic!("protocol bug");
                }
                Step::Decide(7)
            }
        }
        let procs = vec![
            Volatile { explode: false },
            Volatile { explode: true },
            Volatile { explode: false },
        ];
        let err = run_threaded(procs, &FailurePattern::none(3), 5).unwrap_err();
        assert_eq!(
            err,
            ThreadedError::ProcessPanicked {
                process: ProcessId::new(1)
            }
        );
    }

    #[test]
    fn size_mismatch_is_reported() {
        let err = run_threaded(floods(1, 1, &[1, 2]), &FailurePattern::none(3), 5).unwrap_err();
        assert_eq!(
            err,
            ThreadedError::SystemSizeMismatch {
                processes: 2,
                pattern: 3
            }
        );
    }

    #[test]
    fn round_limit_is_reported() {
        #[derive(Debug)]
        struct Stubborn;
        impl SyncProtocol for Stubborn {
            type Msg = ();
            type Output = u32;
            fn message(&mut self, _round: usize) {}
            fn receive(&mut self, _round: usize, _from: ProcessId, _msg: &()) {}
            fn compute(&mut self, _round: usize) -> Step<u32> {
                Step::Continue
            }
        }
        let err = run_threaded(vec![Stubborn, Stubborn], &FailurePattern::none(2), 3).unwrap_err();
        assert_eq!(err, ThreadedError::RoundLimitExceeded { limit: 3 });
    }
}
