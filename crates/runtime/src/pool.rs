//! A long-lived worker pool with `thread::spawn` semantics.
//!
//! The threaded runtime spawns one OS thread per process and the suite
//! engine one per worker — for a sweep of thousands of short runs that
//! is thousands of `clone(2)` calls doing identical setup. This pool
//! keeps finished workers parked for a grace period and hands them the
//! next task instead.
//!
//! The design constraint is that pooled tasks *block on each other*:
//! the runtime's process tasks rendezvous on a [`Barrier`](std::sync::Barrier)
//! every round, and suite workers block in `ClaimWindow` admission. A
//! fixed-size pool with a shared queue would deadlock the moment a
//! cohort of mutually-waiting tasks exceeds the pool size, so this pool
//! is *cached*, not fixed: [`spawn`] hands the task to a parked idle
//! worker if one exists and **starts a fresh thread otherwise** — every
//! task is running on its own thread by the time `spawn` returns, the
//! exact liveness guarantee of `thread::spawn`. Parked workers expire
//! after [`idle_expiry`] (default [`IDLE_EXPIRY`], overridable via
//! `SETAGREE_POOL_IDLE_MS`) so an idle program holds no threads.
//!
//! Each idle worker parks on its own slot (a `Mutex<Option<Task>>` +
//! `Condvar` pair) and the global idle list is a stack, so hand-off is
//! one lock, one move, one wake — there is no shared run queue to
//! starve. Panics in a task are caught and surface through
//! [`PooledJoinHandle::join`] as the familiar `Err(payload)`, and the
//! worker survives to serve the next task.
//!
//! When `setagree_obs` instrumentation is enabled, the pool reports
//! `pool_workers_spawned` / `pool_workers_reused` / `pool_workers_expired`
//! counters and a `pool_handoff_wait_us` histogram (how long a parked
//! worker waited before its next task arrived).

use std::any::Any;
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

/// The default idle grace period (see [`idle_expiry`]).
pub const IDLE_EXPIRY: Duration = Duration::from_secs(2);

/// How long a finished worker stays parked waiting for its next task
/// before exiting: `SETAGREE_POOL_IDLE_MS` when set to a valid
/// millisecond count, [`IDLE_EXPIRY`] otherwise. Read once, at the
/// first park.
pub fn idle_expiry() -> Duration {
    static EXPIRY: OnceLock<Duration> = OnceLock::new();
    *EXPIRY.get_or_init(|| {
        std::env::var("SETAGREE_POOL_IDLE_MS")
            .ok()
            .and_then(|ms| ms.trim().parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or(IDLE_EXPIRY)
    })
}

/// The pool's metric handles, registered once on first use.
struct PoolMetrics {
    spawned: Arc<setagree_obs::Counter>,
    reused: Arc<setagree_obs::Counter>,
    expired: Arc<setagree_obs::Counter>,
    handoff_wait_us: Arc<setagree_obs::Histogram>,
}

fn metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        spawned: setagree_obs::counter("pool_workers_spawned", &[]),
        reused: setagree_obs::counter("pool_workers_reused", &[]),
        expired: setagree_obs::counter("pool_workers_expired", &[]),
        handoff_wait_us: setagree_obs::histogram("pool_handoff_wait_us", &[]),
    })
}

type Task = Box<dyn FnOnce() + Send + 'static>;

/// One parked worker's mailbox: the spawner moves a task in and rings
/// the bell; the worker moves it out or expires.
struct Slot {
    task: Mutex<Option<Task>>,
    bell: Condvar,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            task: Mutex::new(None),
            bell: Condvar::new(),
        }
    }
}

/// The global idle-worker stack. Lock order: this list first, then a
/// slot's mutex — both the spawner's hand-off and a worker's expiry
/// path honour it, which is what makes expiry race-free.
fn idle() -> &'static Mutex<Vec<Arc<Slot>>> {
    static IDLE: OnceLock<Mutex<Vec<Arc<Slot>>>> = OnceLock::new();
    IDLE.get_or_init(|| Mutex::new(Vec::new()))
}

/// A handle to a pooled task, joining like a
/// [`thread::JoinHandle`]: the task's return value, or `Err` with the
/// panic payload if the task panicked.
#[derive(Debug)]
pub struct PooledJoinHandle<T> {
    result: mpsc::Receiver<thread::Result<T>>,
}

impl<T> PooledJoinHandle<T> {
    /// Waits for the task to finish.
    ///
    /// # Errors
    ///
    /// Returns the panic payload if the task panicked, exactly like
    /// [`thread::JoinHandle::join`].
    pub fn join(self) -> thread::Result<T> {
        self.result.recv().unwrap_or_else(|_| {
            // The worker thread vanished without reporting — only
            // possible if the process is tearing down; surface it as a
            // panic-shaped error rather than hanging.
            Err(Box::new("pool worker terminated without a result") as Box<dyn Any + Send>)
        })
    }
}

/// Runs `f` on a pool worker — a parked idle thread when one is
/// available, a freshly spawned one otherwise. In both cases `f` is
/// running on its own dedicated thread when `spawn` returns, so tasks
/// may freely block on one another (barriers, channels) exactly as with
/// [`thread::spawn`].
pub fn spawn<T, F>(f: F) -> PooledJoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    let task: Task = Box::new(move || {
        let result = panic::catch_unwind(AssertUnwindSafe(f));
        // The receiver may have been dropped (nobody joins); that is
        // fine, the result is simply discarded.
        let _ = tx.send(result);
    });

    let parked = idle().lock().expect("pool idle list poisoned").pop();
    match parked {
        Some(slot) => {
            if setagree_obs::enabled() {
                metrics().reused.inc();
            }
            let mut mailbox = slot.task.lock().expect("pool slot poisoned");
            debug_assert!(mailbox.is_none(), "idle worker already has a task");
            *mailbox = Some(task);
            slot.bell.notify_one();
        }
        None => {
            if setagree_obs::enabled() {
                metrics().spawned.inc();
            }
            thread::Builder::new()
                .name("setagree-pool".into())
                .spawn(move || worker_main(task))
                .expect("failed to spawn pool worker");
        }
    }
    PooledJoinHandle { result: rx }
}

/// The number of currently parked idle workers (for tests and
/// diagnostics).
pub fn idle_workers() -> usize {
    idle().lock().expect("pool idle list poisoned").len()
}

fn worker_main(first: Task) {
    let mut task = first;
    loop {
        task();
        match park_for_next() {
            Some(next) => task = next,
            None => return,
        }
    }
}

/// Parks the calling worker on a fresh slot until a task is handed to
/// it or the idle grace period elapses. `None` means expiry: the slot
/// has been unlinked and the worker should exit.
fn park_for_next() -> Option<Task> {
    let parked_at = setagree_obs::enabled().then(Instant::now);
    let handed_off = |at: Option<Instant>| {
        if let Some(at) = at {
            let us = u64::try_from(at.elapsed().as_micros()).unwrap_or(u64::MAX);
            metrics().handoff_wait_us.record(us);
        }
    };
    let slot = Arc::new(Slot::new());
    idle()
        .lock()
        .expect("pool idle list poisoned")
        .push(Arc::clone(&slot));

    let deadline = Instant::now() + idle_expiry();
    let mut mailbox = slot.task.lock().expect("pool slot poisoned");
    loop {
        if let Some(task) = mailbox.take() {
            handed_off(parked_at);
            return Some(task);
        }
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let (guard, _timeout) = slot
            .bell
            .wait_timeout(mailbox, deadline - now)
            .expect("pool slot poisoned");
        mailbox = guard;
    }
    // Expired with an empty mailbox. Re-acquire in list-then-slot order
    // (the spawner's order) and decide atomically: a spawner that
    // already popped this slot from the list is committed to filling
    // it, so the mailbox check below cannot miss a hand-off.
    drop(mailbox);
    let mut list = idle().lock().expect("pool idle list poisoned");
    let mut mailbox = slot.task.lock().expect("pool slot poisoned");
    if let Some(task) = mailbox.take() {
        handed_off(parked_at);
        return Some(task);
    }
    list.retain(|s| !Arc::ptr_eq(s, &slot));
    if setagree_obs::enabled() {
        metrics().expired.inc();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn returns_the_task_result() {
        let handle = spawn(|| 6 * 7);
        assert_eq!(handle.join().unwrap(), 42);
    }

    #[test]
    fn propagates_panics_like_thread_join() {
        let handle = spawn(|| -> u32 { panic!("task bug") });
        let payload = handle.join().unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"task bug"));
        // The worker survived the panic and can serve another task.
        assert_eq!(spawn(|| 1u32).join().unwrap(), 1);
    }

    #[test]
    fn reuses_parked_workers() {
        // Run one task to completion, give the worker a moment to park,
        // then check the next spawn drains the idle list instead of
        // growing it.
        spawn(|| ()).join().unwrap();
        let deadline = Instant::now() + Duration::from_secs(1);
        while idle_workers() == 0 && Instant::now() < deadline {
            thread::yield_now();
        }
        let parked = idle_workers();
        assert!(parked > 0, "finished worker did not park");
        let ids: &'static Mutex<Vec<thread::ThreadId>> = Box::leak(Box::default());
        spawn(move || ids.lock().unwrap().push(thread::current().id()))
            .join()
            .unwrap();
        assert_eq!(ids.lock().unwrap().len(), 1);
    }

    #[test]
    fn mutually_blocking_tasks_all_run() {
        // The liveness property the runtime depends on: a cohort larger
        // than any plausible idle pool, all meeting on one barrier.
        // With a fixed-size queueing pool this deadlocks; here every
        // spawn gets its own thread.
        const COHORT: usize = 48;
        let barrier = Arc::new(Barrier::new(COHORT));
        let met = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..COHORT)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let met = Arc::clone(&met);
                spawn(move || {
                    barrier.wait();
                    met.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(met.load(Ordering::SeqCst), COHORT);
    }

    #[test]
    fn dropped_handle_discards_the_result() {
        let ran = Arc::new(AtomicUsize::new(0));
        let flag = Arc::clone(&ran);
        drop(spawn(move || {
            flag.fetch_add(1, Ordering::SeqCst);
        }));
        let deadline = Instant::now() + Duration::from_secs(1);
        while ran.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
            thread::yield_now();
        }
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }
}
