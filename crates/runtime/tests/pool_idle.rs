//! The configurable idle expiry (`SETAGREE_POOL_IDLE_MS`), confirmed
//! through the pool's own metrics: a parked worker must expire after
//! the configured grace period, counted by `pool_workers_expired`.
//!
//! Lives in its own integration-test binary because the expiry period
//! is read once per process — the env var must be set before the pool's
//! first park, which an in-crate unit test sharing the process with the
//! other pool tests could not guarantee.

use std::time::{Duration, Instant};

use setagree_runtime::pool;

#[test]
fn configured_idle_expiry_is_honoured_and_counted() {
    std::env::set_var("SETAGREE_POOL_IDLE_MS", "100");
    setagree_obs::set_enabled(true);
    assert_eq!(pool::idle_expiry(), Duration::from_millis(100));

    let expired = setagree_obs::counter("pool_workers_expired", &[]);
    let spawned = setagree_obs::counter("pool_workers_spawned", &[]);
    pool::spawn(|| ()).join().unwrap();
    assert!(spawned.get() >= 1, "fresh worker not counted as spawned");

    // The worker parks after finishing; within the 100 ms grace period
    // it must still be reusable, and well after it must have expired.
    let deadline = Instant::now() + Duration::from_secs(1);
    while pool::idle_workers() == 0 && Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert!(pool::idle_workers() > 0, "finished worker did not park");

    let deadline = Instant::now() + Duration::from_secs(5);
    while pool::idle_workers() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(pool::idle_workers(), 0, "worker outlived the 100 ms expiry");
    assert!(expired.get() >= 1, "expiry not counted by pool metrics");
}
