//! Property-based tests for the legality framework: structural laws that
//! hold for arbitrary conditions and recognizing functions.

use proptest::prelude::*;

use setagree_conditions::{
    legality, Condition, ConditionOracle, ExplicitOracle, LegalityParams, MaxCondition, MaxEll,
};
use setagree_types::{InputVector, View};

fn arbitrary_condition(n: usize, max_vectors: usize) -> impl Strategy<Value = Condition<u32>> {
    proptest::collection::btree_set(proptest::collection::vec(0u32..4, n), 1..=max_vectors)
        .prop_map(|set| {
            Condition::from_vectors(set.into_iter().map(InputVector::new).collect::<Vec<_>>())
                .expect("uniform length")
        })
}

fn arbitrary_view(n: usize) -> impl Strategy<Value = View<u32>> {
    proptest::collection::vec(proptest::option::of(0u32..4), n).prop_map(View::from_options)
}

fn params() -> impl Strategy<Value = LegalityParams> {
    (0usize..=3, 1usize..=3).prop_map(|(x, ell)| LegalityParams::new(x, ell).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Legality is downward closed: every subset of a legal condition is
    /// legal (with the restricted recognizing function). The protocols and
    /// witness constructions rely on this.
    #[test]
    fn legality_is_downward_closed(cond in arbitrary_condition(4, 6), p in params()) {
        let h = MaxEll::new(p.ell());
        prop_assume!(legality::check(&cond, &h, p).is_ok());
        // Drop one vector at a time.
        for drop in cond.iter() {
            let rest: Vec<InputVector<u32>> =
                cond.iter().filter(|v| *v != drop).cloned().collect();
            if rest.is_empty() {
                continue;
            }
            let sub = Condition::from_vectors(rest).unwrap();
            prop_assert!(
                legality::check(&sub, &h, p).is_ok(),
                "subset of a legal condition must be legal"
            );
        }
    }

    /// decode_view is always within val(J), within ℓ… and within the
    /// decoded set of every completion.
    #[test]
    fn decode_view_soundness(cond in arbitrary_condition(4, 6), j in arbitrary_view(4), p in params()) {
        let h = MaxEll::new(p.ell());
        match legality::decode_view(&cond, &h, &j) {
            None => {
                // No completion: matches_view must agree.
                prop_assert!(!cond.matches_view(&j));
            }
            Some(decoded) => {
                prop_assert!(cond.matches_view(&j));
                prop_assert!(decoded.len() <= p.ell().min(j.distinct_count()));
                let observed = j.distinct_values();
                prop_assert!(decoded.iter().all(|v| observed.contains(v)));
                for completion in cond.completions_of(&j) {
                    let hi = setagree_conditions::RecognizingFn::decode(&h, completion);
                    prop_assert!(decoded.is_subset(&hi));
                }
            }
        }
    }

    /// The analytic max-condition membership agrees with the predicate on
    /// full views, and enumeration agrees with membership.
    #[test]
    fn max_condition_membership_consistency(
        entries in proptest::collection::vec(1u32..4, 4),
        p in params(),
    ) {
        let c = MaxCondition::new(p);
        let i = InputVector::new(entries);
        let full: View<u32> = i.clone().into();
        // A full view matches iff filling nothing still leaves a member…
        // which for b = 0 is exactly membership.
        prop_assert_eq!(c.contains(&i), c.matches(&full));
        if c.contains(&i) {
            let decoded = c.decode_view(&full).expect("member matches");
            prop_assert_eq!(decoded, i.greatest_distinct(p.ell()));
        }
    }

    /// The explicit oracle never disagrees with raw Definition 4.
    #[test]
    fn explicit_oracle_is_definition_4(
        cond in arbitrary_condition(4, 6),
        j in arbitrary_view(4),
        p in params(),
    ) {
        let oracle = ExplicitOracle::new(cond.clone(), MaxEll::new(p.ell()), p);
        prop_assert_eq!(oracle.matches(&j), cond.matches_view(&j));
        prop_assert_eq!(
            oracle.decode_view(&j),
            legality::decode_view(&cond, &MaxEll::new(p.ell()), &j)
        );
    }

    /// Serde round-trips for the data types that cross process boundaries
    /// in downstream deployments.
    #[test]
    fn serde_round_trips(cond in arbitrary_condition(3, 4), p in params()) {
        let json = serde_json_like(&cond);
        prop_assert!(json.contains("vectors") || cond.is_empty());
        // LegalityParams round-trips through its accessors.
        let rebuilt = LegalityParams::new(p.x(), p.ell()).unwrap();
        prop_assert_eq!(p, rebuilt);
    }
}

/// Poor-man's serialization probe: Debug formatting (serde_json is not an
/// allowed dependency; the derive implementations are exercised by the
/// report types in setagree-core).
fn serde_json_like(c: &Condition<u32>) -> String {
    format!("{c:?}")
}

/// Theorem 2 as a property over random sub-palettes: the max_ℓ condition
/// enumerated over any palette is legal.
#[test]
fn theorem_2_over_random_palettes() {
    for (x, ell) in [(1usize, 1usize), (2, 2), (1, 2)] {
        let p = LegalityParams::new(x, ell).unwrap();
        for palette in [vec![1u32, 5, 9], vec![2, 3], vec![10, 20, 30, 40]] {
            let cond = MaxCondition::new(p).enumerate_over(4, &palette);
            assert!(
                legality::check(&cond, &MaxEll::new(ell), p).is_ok(),
                "{p} over palette {palette:?}"
            );
        }
    }
}
