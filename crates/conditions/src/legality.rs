//! The (x, ℓ)-legality checker (Definition 2) and the extension of `h_ℓ`
//! to views (Theorem 1 / Definition 4).
//!
//! A condition `C` is *(x, ℓ)-legal* with respect to a recognizing function
//! `h_ℓ` when three properties hold:
//!
//! 1. **Validity** — `∀ I ∈ C`: `h_ℓ(I) ⊆ val(I)` and
//!    `1 ≤ |h_ℓ(I)| ≤ min(ℓ, |val(I)|)`;
//! 2. **Density** — `∀ I ∈ C`: `Σ_{v ∈ h_ℓ(I)} #_v(I) > x` (the decodable
//!    values survive `x` crashes);
//! 3. **Distance** — for every finite subset `{I_1, …, I_z} ⊆ C` with
//!    `d_G(I_1, …, I_z) ≤ x`, the intersecting vector `⋂_{1..z} I_j`
//!    contains **more than** `x − d_G(I_1, …, I_z)` entries whose value lies
//!    in `⋂_{1..z} h_ℓ(I_j)`.
//!
//! (Density is the `z = 1` instance of distance, per the paper's footnote 4;
//! the checker treats it separately to report sharper violations. For
//! `ℓ = 1` the three properties reduce to the *x-legality* of
//! Mostefaoui–Rajsbaum–Raynal \[20\]: two vectors decoding to different
//! values must be at Hamming distance greater than `x`.)
//!
//! Checking the distance property naively enumerates every subset of `C`;
//! [`check`] prunes the enumeration by the monotonicity of `d_G` (adding a
//! vector never decreases it), which makes exhaustive verification practical
//! for the condition sizes used in tests and in the paper's examples.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use setagree_types::{InputVector, ProposalValue, View};

use crate::condition::Condition;
use crate::error::ParamsError;
use crate::recognizing::RecognizingFn;

/// The pair `(x, ℓ)` parameterizing legality: `x` is the number of missing
/// entries (crashes) to tolerate, ℓ the maximum number of values an input
/// vector may encode.
///
/// # Example
///
/// ```
/// use setagree_conditions::LegalityParams;
///
/// let p = LegalityParams::new(2, 1)?;
/// assert_eq!(p.x(), 2);
/// assert_eq!(p.ell(), 1);
/// assert!(LegalityParams::new(2, 0).is_err(), "ℓ = 0 is meaningless");
/// # Ok::<(), setagree_conditions::ParamsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LegalityParams {
    x: usize,
    ell: usize,
}

impl LegalityParams {
    /// Creates the pair `(x, ℓ)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError::ZeroEll`] if `ell == 0`.
    pub fn new(x: usize, ell: usize) -> Result<Self, ParamsError> {
        if ell == 0 {
            return Err(ParamsError::ZeroEll);
        }
        Ok(LegalityParams { x, ell })
    }

    /// The crash tolerance `x`.
    pub const fn x(&self) -> usize {
        self.x
    }

    /// The agreement width ℓ.
    pub const fn ell(&self) -> usize {
        self.ell
    }

    /// Theorems 8 and 9: the condition containing **all** input vectors is
    /// (x, ℓ)-legal iff `ℓ > x`. When this returns `true` the condition
    /// carries no information and cannot speed up an algorithm.
    pub const fn admits_all_vectors(&self) -> bool {
        self.ell > self.x
    }
}

impl fmt::Display for LegalityParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(x = {}, ℓ = {})", self.x, self.ell)
    }
}

/// A witnessed violation of one of the three legality properties.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LegalityViolation<V> {
    /// `h_ℓ(I)` decoded a value that `I` does not propose.
    ValueNotProposed {
        /// The offending vector.
        vector: InputVector<V>,
        /// The decoded value absent from the vector.
        value: V,
    },
    /// `h_ℓ(I)` is empty or larger than `min(ℓ, |val(I)|)`.
    WrongDecodeSize {
        /// The offending vector.
        vector: InputVector<V>,
        /// `|h_ℓ(I)|`.
        got: usize,
        /// `min(ℓ, |val(I)|)`.
        max_allowed: usize,
    },
    /// `Σ_{v ∈ h_ℓ(I)} #_v(I) ≤ x`: the decodable values do not survive `x`
    /// crashes.
    Density {
        /// The offending vector.
        vector: InputVector<V>,
        /// The achieved count.
        count: usize,
        /// The required strict lower bound (`x`).
        bound: usize,
    },
    /// A subset of vectors with `d_G ≤ x` whose intersecting vector holds
    /// too few commonly-decodable values.
    Distance {
        /// The offending subset.
        vectors: Vec<InputVector<V>>,
        /// `d_G` of the subset.
        dg: usize,
        /// The achieved count of `⋂ h_ℓ(I_j)` values in the intersecting
        /// vector.
        count: usize,
        /// The required strict lower bound (`x − d_G`).
        bound: usize,
    },
}

impl<V: fmt::Debug> fmt::Display for LegalityViolation<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LegalityViolation::ValueNotProposed { vector, value } => {
                write!(f, "decoded value {value:?} is not proposed in {vector:?}")
            }
            LegalityViolation::WrongDecodeSize { vector, got, max_allowed } => write!(
                f,
                "decoded set of {vector:?} has {got} values, expected between 1 and {max_allowed}"
            ),
            LegalityViolation::Density { vector, count, bound } => write!(
                f,
                "density violated on {vector:?}: decodable values occupy {count} entries, need more than {bound}"
            ),
            LegalityViolation::Distance { vectors, dg, count, bound } => write!(
                f,
                "distance violated on a subset of {} vectors (d_G = {dg}): common decodable values occupy {count} intersecting entries, need more than {bound}",
                vectors.len()
            ),
        }
    }
}

impl<V: fmt::Debug> std::error::Error for LegalityViolation<V> {}

/// Checks validity and density of a single vector (the per-vector half of
/// Definition 2).
///
/// # Errors
///
/// Returns the first violated property.
pub fn check_vector<V: ProposalValue>(
    vector: &InputVector<V>,
    h: &impl RecognizingFn<V>,
    params: LegalityParams,
) -> Result<BTreeSet<V>, LegalityViolation<V>> {
    let decoded = h.decode(vector);
    let distinct = vector.distinct_count();
    let max_allowed = params.ell().min(distinct);
    if decoded.is_empty() || decoded.len() > max_allowed {
        return Err(LegalityViolation::WrongDecodeSize {
            vector: vector.clone(),
            got: decoded.len(),
            max_allowed,
        });
    }
    if let Some(bad) = decoded.iter().find(|v| vector.count_of(v) == 0) {
        return Err(LegalityViolation::ValueNotProposed {
            vector: vector.clone(),
            value: bad.clone(),
        });
    }
    let count = vector.count_in(&decoded);
    if count <= params.x() {
        return Err(LegalityViolation::Density {
            vector: vector.clone(),
            count,
            bound: params.x(),
        });
    }
    Ok(decoded)
}

/// Exhaustively checks that `condition` is (x, ℓ)-legal with respect to the
/// recognizing function `h` (Definition 2).
///
/// The distance property is checked over **every** subset of the condition
/// whose generalized distance is at most `x`; subsets beyond that bound are
/// pruned (adding a vector never decreases `d_G`), which keeps exhaustive
/// checking tractable for explicitly enumerated conditions.
///
/// # Errors
///
/// Returns the first violation found, with the offending vector(s).
///
/// # Example
///
/// ```
/// use setagree_conditions::{legality, Condition, LegalityParams, MaxEll};
/// use setagree_types::InputVector;
///
/// // Both vectors repeat their maximum twice: (1,1)-legal under max_1.
/// let c = Condition::from_vectors(vec![
///     InputVector::new(vec![2, 2, 1]),
///     InputVector::new(vec![3, 3, 1]),
/// ]).unwrap();
/// let params = LegalityParams::new(1, 1)?;
/// assert!(legality::check(&c, &MaxEll::new(1), params).is_ok());
/// # Ok::<(), setagree_conditions::ParamsError>(())
/// ```
pub fn check<V: ProposalValue>(
    condition: &Condition<V>,
    h: &impl RecognizingFn<V>,
    params: LegalityParams,
) -> Result<(), LegalityViolation<V>> {
    let vectors: Vec<&InputVector<V>> = condition.iter().collect();
    let mut decoded: Vec<BTreeSet<V>> = Vec::with_capacity(vectors.len());
    for v in &vectors {
        decoded.push(check_vector(v, h, params)?);
    }

    // Distance over subsets of size ≥ 2, with d_G pruning. The running
    // state of a branch is (intersecting view, ⋂ h_ℓ) of the chosen subset.
    let n = condition.system_size();
    for start in 0..vectors.len() {
        let seed_view: View<V> = vectors[start].to_view();
        explore_subsets(
            &vectors,
            &decoded,
            params,
            n,
            start,
            &mut vec![start],
            seed_view,
            decoded[start].clone(),
        )?;
    }
    Ok(())
}

/// Convenience wrapper around [`check`] returning a boolean.
pub fn is_legal<V: ProposalValue>(
    condition: &Condition<V>,
    h: &impl RecognizingFn<V>,
    params: LegalityParams,
) -> bool {
    check(condition, h, params).is_ok()
}

#[allow(clippy::too_many_arguments)]
fn explore_subsets<V: ProposalValue>(
    vectors: &[&InputVector<V>],
    decoded: &[BTreeSet<V>],
    params: LegalityParams,
    n: usize,
    last: usize,
    chosen: &mut Vec<usize>,
    inter: View<V>,
    common_h: BTreeSet<V>,
) -> Result<(), LegalityViolation<V>> {
    for next in (last + 1)..vectors.len() {
        // Extend the intersecting view with the candidate vector.
        let candidate = vectors[next];
        let new_inter = View::from_options(
            inter
                .iter()
                .zip(candidate.iter())
                .map(|(kept, v)| match kept {
                    Some(k) if k == v => Some(k.clone()),
                    _ => None,
                })
                .collect(),
        );
        let dg = n - (new_inter.len() - new_inter.count_bottom());
        if dg > params.x() {
            // d_G only grows along a branch: every superset that includes
            // this candidate via this branch is exempt from the property.
            continue;
        }
        let new_common: BTreeSet<V> = common_h.intersection(&decoded[next]).cloned().collect();
        let count = new_inter.count_in(&new_common);
        let bound = params.x() - dg;
        chosen.push(next);
        if count <= bound {
            let offenders = chosen.iter().map(|&i| vectors[i].clone()).collect();
            return Err(LegalityViolation::Distance {
                vectors: offenders,
                dg,
                count,
                bound,
            });
        }
        explore_subsets(
            vectors, decoded, params, n, next, chosen, new_inter, new_common,
        )?;
        chosen.pop();
    }
    Ok(())
}

/// The Definition-4 extension of `h_ℓ` to views: for a view `J`,
///
/// ```text
/// h_ℓ(J) = ⋂_{I ∈ C, J ≤ I} h_ℓ(I)  ∩  val(J)
/// ```
///
/// Returns `None` when no vector of the condition contains `J` (i.e. the
/// predicate `P(J)` of Figure 2 is false), in which case `h_ℓ(J)` is left
/// undefined by the paper.
///
/// Theorem 1 guarantees that for an (x, ℓ)-legal condition and a view with
/// `#_⊥(J) ≤ x`, the result is non-empty and has at most ℓ values.
pub fn decode_view<V: ProposalValue>(
    condition: &Condition<V>,
    h: &impl RecognizingFn<V>,
    view: &View<V>,
) -> Option<BTreeSet<V>> {
    let observed = view.distinct_values();
    let mut acc: Option<BTreeSet<V>> = None;
    for i in condition.completions_of(view) {
        let hi = h.decode(i);
        acc = Some(match acc {
            None => hi.intersection(&observed).cloned().collect(),
            Some(prev) => prev.intersection(&hi).cloned().collect(),
        });
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recognizing::{MaxEll, TableFn};

    fn v(entries: &[u32]) -> InputVector<u32> {
        InputVector::new(entries.to_vec())
    }

    fn p(x: usize, ell: usize) -> LegalityParams {
        LegalityParams::new(x, ell).unwrap()
    }

    #[test]
    fn params_accessors_and_display() {
        let params = p(3, 2);
        assert_eq!(params.x(), 3);
        assert_eq!(params.ell(), 2);
        assert_eq!(params.to_string(), "(x = 3, ℓ = 2)");
    }

    #[test]
    fn params_reject_zero_ell() {
        assert_eq!(LegalityParams::new(1, 0), Err(ParamsError::ZeroEll));
    }

    #[test]
    fn all_vectors_frontier_is_ell_greater_than_x() {
        assert!(p(0, 1).admits_all_vectors());
        assert!(p(1, 2).admits_all_vectors());
        assert!(!p(1, 1).admits_all_vectors());
        assert!(!p(2, 2).admits_all_vectors());
    }

    #[test]
    fn check_vector_accepts_dense_decoding() {
        let i = v(&[5, 5, 5, 1]);
        let decoded = check_vector(&i, &MaxEll::new(1), p(2, 1)).unwrap();
        assert_eq!(decoded, [5].into_iter().collect());
    }

    #[test]
    fn check_vector_rejects_sparse_decoding() {
        let i = v(&[5, 1, 1, 1]);
        let err = check_vector(&i, &MaxEll::new(1), p(2, 1)).unwrap_err();
        assert!(matches!(
            err,
            LegalityViolation::Density {
                count: 1,
                bound: 2,
                ..
            }
        ));
    }

    #[test]
    fn check_vector_rejects_foreign_value() {
        let i = v(&[1, 1]);
        let h = TableFn::from_entries(vec![(i.clone(), [9].into_iter().collect())]);
        let err = check_vector(&i, &h, p(0, 1)).unwrap_err();
        assert!(matches!(
            err,
            LegalityViolation::ValueNotProposed { value: 9, .. }
        ));
    }

    #[test]
    fn check_vector_rejects_empty_decode() {
        let i = v(&[1, 1]);
        let h: TableFn<u32> = TableFn::new();
        let err = check_vector(&i, &h, p(0, 1)).unwrap_err();
        assert!(matches!(
            err,
            LegalityViolation::WrongDecodeSize { got: 0, .. }
        ));
    }

    #[test]
    fn check_vector_rejects_oversized_decode() {
        let i = v(&[1, 2, 2]);
        let h = TableFn::from_entries(vec![(i.clone(), [1, 2].into_iter().collect())]);
        let err = check_vector(&i, &h, p(0, 1)).unwrap_err();
        assert!(matches!(
            err,
            LegalityViolation::WrongDecodeSize {
                got: 2,
                max_allowed: 1,
                ..
            }
        ));
    }

    #[test]
    fn decode_size_capped_by_distinct_values() {
        // ℓ = 3 but only one distinct value: decode of size 1 is the max.
        let i = v(&[4, 4, 4]);
        assert!(check_vector(&i, &MaxEll::new(3), p(1, 3)).is_ok());
    }

    /// The ℓ = 1 sanity check from [20]: two vectors with different decoded
    /// values at Hamming distance ≤ x violate the distance property.
    #[test]
    fn close_vectors_with_different_values_are_illegal() {
        // Both vectors are dense (their decoded value appears 3 > x = 2
        // times) but they are at d_H = 2 ≤ x with disjoint decoded sets.
        let i1 = v(&[1, 1, 1, 2, 9]);
        let i2 = v(&[1, 2, 2, 2, 9]);
        let c = Condition::from_vectors(vec![i1.clone(), i2.clone()]).unwrap();
        let h = TableFn::from_entries(vec![
            (i1, [1].into_iter().collect()),
            (i2, [2].into_iter().collect()),
        ]);
        let err = check(&c, &h, p(2, 1)).unwrap_err();
        assert!(matches!(
            err,
            LegalityViolation::Distance {
                dg: 2,
                count: 0,
                bound: 0,
                ..
            }
        ));
    }

    #[test]
    fn distant_vectors_with_different_values_are_legal() {
        // d_H = 3 > x = 2: the distance property is vacuous for the pair.
        let c = Condition::from_vectors(vec![v(&[1, 1, 1]), v(&[2, 2, 2])]).unwrap();
        let h = TableFn::from_entries(vec![
            (v(&[1, 1, 1]), [1].into_iter().collect()),
            (v(&[2, 2, 2]), [2].into_iter().collect()),
        ]);
        assert!(check(&c, &h, p(2, 1)).is_ok());
    }

    /// Distance must hold for the *common* value count in the intersecting
    /// vector, not just non-emptiness. (For ℓ = 1 with a shared decoded
    /// value, density already implies distance — the interesting case needs
    /// ℓ ≥ 2, where the commonly-decodable set ⋂h is a strict subset of
    /// each h and its surviving copies can dip below the bound.)
    #[test]
    fn common_value_with_too_few_surviving_copies_is_illegal() {
        // x = 3, ℓ = 2. h(I1) = {5,4}, h(I2) = {5,3}: ⋂h = {5}, and 5 has a
        // single copy. d_H = 2 so the bound is x − 2 = 1, but count(5) = 1.
        let i1 = v(&[5, 4, 4, 4, 3, 9]);
        let i2 = v(&[5, 4, 3, 4, 3, 3]);
        assert_eq!(setagree_types::distance::hamming(&i1, &i2), 2);
        let c = Condition::from_vectors(vec![i1.clone(), i2.clone()]).unwrap();
        let h = TableFn::from_entries(vec![
            (i1, [5, 4].into_iter().collect()),
            (i2, [5, 3].into_iter().collect()),
        ]);
        let err = check(&c, &h, p(3, 2)).unwrap_err();
        assert!(matches!(
            err,
            LegalityViolation::Distance {
                dg: 2,
                count: 1,
                bound: 1,
                ..
            }
        ));
    }

    /// Symmetric triple at small mutual distance: legal for x = 4 — the
    /// checker must explore (and accept) the triple, not just pairs.
    #[test]
    fn symmetric_triple_is_explored_and_legal() {
        let a = v(&[9, 9, 9, 9, 9, 0, 0, 5]);
        let b = v(&[9, 9, 9, 9, 0, 9, 0, 5]);
        let c3 = v(&[9, 9, 9, 0, 9, 9, 0, 5]);
        // pairs: d_H = 2; triple: d_G = 3; density: five 9s > x = 4.
        // x = 4: pair bound 2, pair intersecting count(9) = 4 > 2 ✓;
        //        triple bound 1, triple intersecting (9,9,9,⊥,⊥,⊥,0,5): count 3 > 1 ✓.
        let cnd = Condition::from_vectors(vec![a.clone(), b.clone(), c3.clone()]).unwrap();
        let h = TableFn::from_entries(vec![
            (a, [9].into_iter().collect()),
            (b, [9].into_iter().collect()),
            (c3, [9].into_iter().collect()),
        ]);
        assert!(check(&cnd, &h, p(4, 1)).is_ok());
    }

    /// A genuinely triple-only distance violation, constructed directly.
    #[test]
    fn triple_only_distance_violation_is_caught() {
        // Shared tail gives density and pairwise slack; decoded sets intersect
        // pairwise but not jointly.
        // Tail: both 1, 2, 3 appear 3 times in every vector (columns 3..11).
        let tail: Vec<u32> = vec![1, 1, 1, 2, 2, 2, 3, 3, 3];
        let mk = |head: [u32; 2]| {
            let mut e = head.to_vec();
            e.extend_from_slice(&tail);
            InputVector::new(e)
        };
        let g1 = mk([1, 2]); // decodes {1, 2}
        let g2 = mk([2, 3]); // decodes {2, 3}
        let g3 = mk([3, 1]); // decodes {3, 1}
        let h = TableFn::from_entries(vec![
            (g1.clone(), [1, 2].into_iter().collect()),
            (g2.clone(), [2, 3].into_iter().collect()),
            (g3.clone(), [3, 1].into_iter().collect()),
        ]);
        let cnd = Condition::from_vectors(vec![g1, g2, g3]).unwrap();
        // Densities: e.g. g1 count{1,2} = 2 + 3 + 3 = 8 > x for x ≤ 7.
        // Pairs: d_H = 2; ⋂h(g1,g2) = {2}; intersecting vector keeps the tail →
        // count(2) = 3 (+ possibly heads ⊥) → need 3 > x − 2 → ok for x ≤ 4.
        // Triple: d_G = 2 (the two head columns); ⋂h = ∅ → count 0 > x − 2 fails
        // for x ≥ 2.
        let err = check(&cnd, &h, p(2, 2)).unwrap_err();
        match err {
            LegalityViolation::Distance {
                vectors,
                dg,
                count,
                bound,
            } => {
                assert_eq!(vectors.len(), 3, "violation needs the full triple");
                assert_eq!(dg, 2);
                assert_eq!(count, 0);
                assert_eq!(bound, 0);
            }
            other => panic!("expected a distance violation, got {other:?}"),
        }
        // And every pair alone is fine: removing any vector restores legality.
        for skip in 0..3 {
            let vecs: Vec<InputVector<u32>> = cnd.iter().cloned().collect();
            let pair: Vec<InputVector<u32>> = vecs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, v)| v.clone())
                .collect();
            let sub = Condition::from_vectors(pair).unwrap();
            assert!(
                check(&sub, &h, p(2, 2)).is_ok(),
                "pair {skip} should be legal"
            );
        }
    }

    #[test]
    fn empty_condition_is_legal() {
        let c: Condition<u32> = Condition::new(3);
        assert!(is_legal(&c, &MaxEll::new(1), p(2, 1)));
    }

    #[test]
    fn decode_view_intersects_completions() {
        let i1 = v(&[5, 5, 1]);
        let i2 = v(&[5, 5, 2]);
        let c = Condition::from_vectors(vec![i1.clone(), i2.clone()]).unwrap();
        let h = MaxEll::new(1);
        let j = View::from_options(vec![Some(5), Some(5), None]);
        // Both completions decode to {5}; 5 is observed.
        assert_eq!(decode_view(&c, &h, &j), Some([5].into_iter().collect()));
    }

    #[test]
    fn decode_view_none_without_completion() {
        let c = Condition::from_vectors(vec![v(&[5, 5, 1])]).unwrap();
        let j = View::from_options(vec![Some(4), None, None]);
        assert_eq!(decode_view(&c, &MaxEll::new(1), &j), None);
    }

    #[test]
    fn decode_view_restricted_to_observed_values() {
        // The completion decodes {5}, but 5 is not observed in J: empty set.
        let c = Condition::from_vectors(vec![v(&[5, 1, 1])]).unwrap();
        let j = View::from_options(vec![None, Some(1), Some(1)]);
        assert_eq!(decode_view(&c, &MaxEll::new(1), &j), Some(BTreeSet::new()));
    }

    /// Theorem 1: for an (x, ℓ)-legal condition and a view with ≤ x bottoms
    /// contained in some vector, the decoded set is non-empty and ≤ ℓ.
    #[test]
    fn theorem_1_on_a_small_legal_condition() {
        let params = p(1, 1);
        let c = Condition::from_vectors(vec![v(&[7, 7, 1]), v(&[7, 7, 2]), v(&[9, 9, 9])]).unwrap();
        let h = MaxEll::new(1);
        assert!(check(&c, &h, params).is_ok());
        for i in c.iter() {
            // Erase each single entry (x = 1) and decode the view.
            for erase in 0..3 {
                let mut entries: Vec<Option<u32>> = i.iter().cloned().map(Some).collect();
                entries[erase] = None;
                let view = View::from_options(entries);
                let decoded = decode_view(&c, &h, &view).expect("P(J) holds");
                assert!(!decoded.is_empty(), "Theorem 1 non-emptiness");
                assert!(decoded.len() <= params.ell(), "Theorem 1 upper bound");
            }
        }
    }
}
