//! The inclusion structure of the sets of (x, ℓ)-legal conditions
//! (Section 3, Figure 1).
//!
//! Write `F(x, ℓ)` for the *family* of all (x, ℓ)-legal conditions. The
//! paper establishes:
//!
//! * **Theorem 4** — `F(x+1, ℓ) ⊆ F(x, ℓ)` (tolerating more crashes is
//!   harder);
//! * **Theorem 5** — the inclusion is strict;
//! * **Theorem 6** — `F(x, ℓ) ⊆ F(x, ℓ+1)` (allowing more decided values
//!   is easier);
//! * **Theorem 7** — strict as well;
//! * **Theorems 14, 15** — no diagonal implications: `F(x, ℓ)` and
//!   `F(x+1, ℓ+1)` are incomparable;
//! * **Theorems 8, 9** — `F(x, ℓ)` contains the all-vectors condition iff
//!   `ℓ > x`.
//!
//! Consequently family inclusion is exactly the product order
//! `F(a) ⊆ F(b) ⟺ a.x ≥ b.x ∧ a.ℓ ≤ b.ℓ`, and the parameter pairs form a
//! lattice under it — this module exposes that order, its meet/join, and
//! the named lines of Figure 1 (wait-free, x-resilient, reliable).

use crate::legality::LegalityParams;

/// How two families of legal conditions relate by inclusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FamilyRelation {
    /// The families are the same (`a = b`).
    Equal,
    /// `F(a) ⊊ F(b)`: every a-legal condition is b-legal, not conversely.
    StrictlyIncluded,
    /// `F(b) ⊊ F(a)`.
    StrictlyIncludes,
    /// Neither family includes the other (Theorems 14/15 territory).
    Incomparable,
}

/// Returns `true` iff every (a.x, a.ℓ)-legal condition is also
/// (b.x, b.ℓ)-legal — the transitive closure of Theorems 4 and 6.
///
/// # Example
///
/// ```
/// use setagree_conditions::{lattice, LegalityParams};
///
/// let strong = LegalityParams::new(3, 1)?; // consensus-grade, 3 crashes
/// let weak = LegalityParams::new(1, 2)?;   // 2-set grade, 1 crash
/// assert!(lattice::implies(strong, weak));
/// assert!(!lattice::implies(weak, strong));
/// # Ok::<(), setagree_conditions::ParamsError>(())
/// ```
pub fn implies(a: LegalityParams, b: LegalityParams) -> bool {
    a.x() >= b.x() && a.ell() <= b.ell()
}

/// Classifies the inclusion relation between the families `F(a)` and
/// `F(b)`.
pub fn relation(a: LegalityParams, b: LegalityParams) -> FamilyRelation {
    match (implies(a, b), implies(b, a)) {
        (true, true) => FamilyRelation::Equal,
        (true, false) => FamilyRelation::StrictlyIncluded,
        (false, true) => FamilyRelation::StrictlyIncludes,
        (false, false) => FamilyRelation::Incomparable,
    }
}

/// The meet (greatest lower bound) of two parameter pairs in the family
/// order: the weakest parameters whose family is included in both.
pub fn meet(a: LegalityParams, b: LegalityParams) -> LegalityParams {
    LegalityParams::new(a.x().max(b.x()), a.ell().min(b.ell()))
        .expect("meet of valid params is valid")
}

/// The join (least upper bound): the strongest parameters whose family
/// includes both.
pub fn join(a: LegalityParams, b: LegalityParams) -> LegalityParams {
    LegalityParams::new(a.x().min(b.x()), a.ell().max(b.ell()))
        .expect("join of valid params is valid")
}

/// The *wait-free line* of Figure 1 for a system of `n` processes: the
/// parameters `(x = n−1, ℓ)` for `1 ≤ ℓ ≤ n`. Its bottom-left corner
/// `(n−1, 1)` is wait-free consensus.
pub fn wait_free_line(n: usize) -> impl Iterator<Item = LegalityParams> {
    assert!(n >= 1, "need at least one process");
    (1..=n).map(move |ell| LegalityParams::new(n - 1, ell).expect("ℓ ≥ 1 by construction"))
}

/// The *x-resilience line*: parameters `(x, ℓ)` for fixed `x` and
/// `1 ≤ ℓ ≤ n`.
pub fn resilience_line(x: usize, n: usize) -> impl Iterator<Item = LegalityParams> {
    assert!(n >= 1, "need at least one process");
    (1..=n).map(move |ell| LegalityParams::new(x, ell).expect("ℓ ≥ 1 by construction"))
}

/// The *reliable line*: `x = 0` (no crash to tolerate); every condition —
/// including `C_all` — is (0, ℓ)-legal for every ℓ ≥ 1 that admits it.
pub fn reliable_line(n: usize) -> impl Iterator<Item = LegalityParams> {
    resilience_line(0, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: usize, ell: usize) -> LegalityParams {
        LegalityParams::new(x, ell).unwrap()
    }

    #[test]
    fn theorem_4_direction_more_crashes_implies_fewer() {
        assert!(implies(p(3, 2), p(2, 2)));
        assert!(implies(p(3, 2), p(0, 2)));
        assert!(!implies(p(2, 2), p(3, 2)));
    }

    #[test]
    fn theorem_6_direction_fewer_values_implies_more() {
        assert!(implies(p(2, 1), p(2, 2)));
        assert!(implies(p(2, 1), p(2, 5)));
        assert!(!implies(p(2, 2), p(2, 1)));
    }

    #[test]
    fn diagonals_are_incomparable() {
        // Theorems 14 and 15.
        assert_eq!(relation(p(1, 1), p(2, 2)), FamilyRelation::Incomparable);
        assert_eq!(relation(p(2, 2), p(1, 1)), FamilyRelation::Incomparable);
        assert_eq!(relation(p(3, 1), p(4, 2)), FamilyRelation::Incomparable);
    }

    #[test]
    fn relation_is_consistent_with_implies() {
        let pairs = [p(0, 1), p(1, 1), p(2, 1), p(0, 2), p(1, 2), p(2, 2)];
        for &a in &pairs {
            for &b in &pairs {
                let r = relation(a, b);
                match r {
                    FamilyRelation::Equal => assert_eq!(a, b),
                    FamilyRelation::StrictlyIncluded => {
                        assert!(implies(a, b) && !implies(b, a))
                    }
                    FamilyRelation::StrictlyIncludes => {
                        assert!(implies(b, a) && !implies(a, b))
                    }
                    FamilyRelation::Incomparable => {
                        assert!(!implies(a, b) && !implies(b, a))
                    }
                }
            }
        }
    }

    #[test]
    fn meet_and_join_are_lattice_operations() {
        let a = p(3, 1);
        let b = p(1, 2);
        let m = meet(a, b);
        let j = join(a, b);
        assert_eq!(m, p(3, 1));
        assert_eq!(j, p(1, 2));
        // meet implies both; both imply join.
        assert!(implies(m, a) && implies(m, b));
        assert!(implies(a, j) && implies(b, j));
        // Commutativity and idempotence.
        assert_eq!(meet(a, b), meet(b, a));
        assert_eq!(join(a, b), join(b, a));
        assert_eq!(meet(a, a), a);
        assert_eq!(join(a, a), a);
    }

    #[test]
    fn meet_join_absorption() {
        let a = p(2, 2);
        let b = p(4, 1);
        assert_eq!(join(a, meet(a, b)), a);
        assert_eq!(meet(a, join(a, b)), a);
    }

    #[test]
    fn wait_free_line_starts_at_consensus() {
        let line: Vec<_> = wait_free_line(4).collect();
        assert_eq!(line.len(), 4);
        assert_eq!(line[0], p(3, 1), "wait-free consensus corner");
        assert_eq!(line[3], p(3, 4));
        // Along the line, families grow with ℓ.
        assert!(line.windows(2).all(|w| implies(w[0], w[1])));
    }

    #[test]
    fn trivial_condition_frontier_on_lines() {
        // On the wait-free line for n processes, C_all becomes legal exactly
        // when ℓ > n − 1, i.e. only at ℓ = n.
        let line: Vec<_> = wait_free_line(3).collect();
        assert!(!line[0].admits_all_vectors());
        assert!(!line[1].admits_all_vectors());
        assert!(line[2].admits_all_vectors());
        // On the reliable line (x = 0) every ℓ admits it.
        assert!(reliable_line(3).all(|q| q.admits_all_vectors()));
    }

    #[test]
    fn resilience_line_is_monotone() {
        let line: Vec<_> = resilience_line(2, 5).collect();
        assert_eq!(line.len(), 5);
        assert!(line.windows(2).all(|w| implies(w[0], w[1])));
    }
}
