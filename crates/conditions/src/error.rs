//! Error types of the conditions crate.

use std::error::Error;
use std::fmt;

/// Error constructing [`LegalityParams`](crate::LegalityParams) or
/// [`SdtParams`](crate::SdtParams).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParamsError {
    /// The agreement width ℓ must be at least 1 (an input vector encodes at
    /// least one value).
    ZeroEll,
    /// In `S^d_t[ℓ]`, the degree must satisfy `d ≤ t`.
    DegreeExceedsFaults {
        /// The offending degree `d`.
        degree: usize,
        /// The fault bound `t`.
        t: usize,
    },
    /// The all-vectors condition is (x, ℓ)-legal only when `ℓ > x`
    /// (Theorem 9).
    TrivialConditionNotLegal {
        /// The crash tolerance `x`.
        x: usize,
        /// The agreement width ℓ.
        ell: usize,
    },
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamsError::ZeroEll => write!(f, "the agreement width ℓ must be at least 1"),
            ParamsError::DegreeExceedsFaults { degree, t } => {
                write!(
                    f,
                    "condition degree d = {degree} exceeds the fault bound t = {t}"
                )
            }
            ParamsError::TrivialConditionNotLegal { x, ell } => write!(
                f,
                "the all-vectors condition is not ({x}, {ell})-legal: Theorem 9 requires ℓ > x"
            ),
        }
    }
}

impl Error for ParamsError {}

/// Error manipulating an explicit [`Condition`](crate::Condition).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConditionError {
    /// A vector of the wrong length was inserted into a condition over `n`
    /// processes.
    LengthMismatch {
        /// The condition's system size.
        expected: usize,
        /// The offending vector's length.
        got: usize,
    },
}

impl fmt::Display for ConditionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConditionError::LengthMismatch { expected, got } => write!(
                f,
                "input vector has {got} entries but the condition is over {expected} processes"
            ),
        }
    }
}

impl Error for ConditionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_error_messages() {
        assert!(ParamsError::ZeroEll.to_string().contains("at least 1"));
        let e = ParamsError::DegreeExceedsFaults { degree: 5, t: 3 };
        assert!(e.to_string().contains("d = 5"));
        assert!(e.to_string().contains("t = 3"));
    }

    #[test]
    fn condition_error_messages() {
        let e = ConditionError::LengthMismatch {
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains('2'));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ParamsError>();
        assert_err::<ConditionError>();
    }
}
