//! Condition oracles: the interface through which agreement protocols
//! consult a condition.
//!
//! The synchronous algorithm of Figure 2 needs exactly two operations on
//! its condition `C` during the first round:
//!
//! * the predicate `P(V_i)` — does some vector of `C` contain the view
//!   `V_i`? (line 6 vs line 7);
//! * the decoding `h_ℓ(V_i)` of Definition 4, from which the candidate
//!   decision `max(h_ℓ(V_i))` is taken.
//!
//! [`ConditionOracle`] abstracts those operations so protocols work with
//! explicitly enumerated conditions (`ExplicitOracle`), the analytic
//! maximal condition ([`MaxCondition`]), or the
//! trivial all-vectors condition ([`TrivialOracle`]).

use std::collections::BTreeSet;

use setagree_types::{ProposalValue, View};

use crate::condition::Condition;
use crate::error::ParamsError;
use crate::legality::{self, LegalityParams};
use crate::max_condition::MaxCondition;
use crate::recognizing::RecognizingFn;

/// A condition `C` together with its recognizing function, consulted
/// through views.
///
/// Implementors must answer consistently: `decode_view` returns `Some` iff
/// `matches` returns `true`, and for an (x, ℓ)-legal condition the decoded
/// set obeys Theorem 1 (non-empty with at most ℓ values whenever the view
/// has at most `x` missing entries and a completion in `C`).
pub trait ConditionOracle<V: ProposalValue> {
    /// The legality parameters `(x, ℓ)` the condition is designed for.
    fn params(&self) -> LegalityParams;

    /// The predicate `P(J)`: does some `I ∈ C` satisfy `J ≤ I`?
    fn matches(&self, view: &View<V>) -> bool;

    /// The Definition-4 decoding `h_ℓ(J) = ⋂_{I ∈ C, J ≤ I} h_ℓ(I) ∩ val(J)`,
    /// or `None` when `P(J)` is false.
    fn decode_view(&self, view: &View<V>) -> Option<BTreeSet<V>>;
}

impl<V: ProposalValue, O: ConditionOracle<V> + ?Sized> ConditionOracle<V> for &O {
    fn params(&self) -> LegalityParams {
        (**self).params()
    }
    fn matches(&self, view: &View<V>) -> bool {
        (**self).matches(view)
    }
    fn decode_view(&self, view: &View<V>) -> Option<BTreeSet<V>> {
        (**self).decode_view(view)
    }
}

/// An oracle over an explicitly enumerated [`Condition`] and recognizing
/// function. Queries cost `O(|C| · n)`.
///
/// # Example
///
/// ```
/// use setagree_conditions::{Condition, ConditionOracle, ExplicitOracle, LegalityParams, MaxEll};
/// use setagree_types::{InputVector, View};
///
/// let c = Condition::from_vectors(vec![
///     InputVector::new(vec![4, 4, 1]),
///     InputVector::new(vec![4, 4, 2]),
/// ]).unwrap();
/// let oracle = ExplicitOracle::new(c, MaxEll::new(1), LegalityParams::new(1, 1)?);
/// let j = View::from_options(vec![Some(4), Some(4), None]);
/// assert!(oracle.matches(&j));
/// assert_eq!(oracle.decode_view(&j), Some([4].into_iter().collect()));
/// # Ok::<(), setagree_conditions::ParamsError>(())
/// ```
#[derive(Debug, Clone, Hash)]
pub struct ExplicitOracle<V: Ord, H> {
    condition: Condition<V>,
    h: H,
    params: LegalityParams,
}

impl<V: ProposalValue, H: RecognizingFn<V>> ExplicitOracle<V, H> {
    /// Wraps a condition and its recognizing function.
    ///
    /// The constructor does **not** verify legality (that is
    /// [`legality::check`]'s job and may be expensive); protocols built on
    /// an illegal condition lose their agreement guarantees, not safety of
    /// this type.
    pub fn new(condition: Condition<V>, h: H, params: LegalityParams) -> Self {
        ExplicitOracle {
            condition,
            h,
            params,
        }
    }

    /// The underlying condition.
    pub fn condition(&self) -> &Condition<V> {
        &self.condition
    }

    /// The underlying recognizing function.
    pub fn recognizing_fn(&self) -> &H {
        &self.h
    }
}

impl<V: ProposalValue, H: RecognizingFn<V>> ConditionOracle<V> for ExplicitOracle<V, H> {
    fn params(&self) -> LegalityParams {
        self.params
    }

    fn matches(&self, view: &View<V>) -> bool {
        self.condition.matches_view(view)
    }

    fn decode_view(&self, view: &View<V>) -> Option<BTreeSet<V>> {
        legality::decode_view(&self.condition, &self.h, view)
    }
}

/// The all-vectors condition `C_all`, which is (x, ℓ)-legal iff `ℓ > x`
/// (Theorems 8 and 9).
///
/// Running the synchronous algorithm with this oracle reproduces the
/// classical unconditioned `⌊t/k⌋ + 1`-round behaviour (the paper's remark
/// after the round-complexity formula).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrivialOracle {
    inner: MaxCondition,
}

impl TrivialOracle {
    /// Creates the all-vectors oracle for parameters with `ℓ > x`.
    ///
    /// Over systems with `n > x`, `C_all` coincides with the maximal
    /// `max_ℓ` condition (every vector's top-ℓ values occupy at least
    /// `min(ℓ, n) > x` entries), so the oracle delegates to the analytic
    /// [`MaxCondition`].
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError::TrivialConditionNotLegal`] if `ℓ ≤ x` — by
    /// Theorem 9 the all-vectors condition is not (x, ℓ)-legal then.
    pub fn new(params: LegalityParams) -> Result<Self, ParamsError> {
        if !params.admits_all_vectors() {
            return Err(ParamsError::TrivialConditionNotLegal {
                x: params.x(),
                ell: params.ell(),
            });
        }
        Ok(TrivialOracle {
            inner: MaxCondition::new(params),
        })
    }
}

impl<V: ProposalValue> ConditionOracle<V> for TrivialOracle {
    fn params(&self) -> LegalityParams {
        self.inner.params()
    }

    fn matches(&self, view: &View<V>) -> bool {
        self.inner.matches(view)
    }

    fn decode_view(&self, view: &View<V>) -> Option<BTreeSet<V>> {
        self.inner.decode_view(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recognizing::MaxEll;
    use setagree_types::InputVector;

    fn p(x: usize, ell: usize) -> LegalityParams {
        LegalityParams::new(x, ell).unwrap()
    }

    #[test]
    fn explicit_oracle_answers_both_queries() {
        let c = Condition::from_vectors(vec![InputVector::new(vec![4u32, 4, 1])]).unwrap();
        let oracle = ExplicitOracle::new(c, MaxEll::new(1), p(1, 1));
        let hit = View::from_options(vec![Some(4), None, None]);
        let miss = View::from_options(vec![Some(5), None, None]);
        assert!(oracle.matches(&hit));
        assert!(!oracle.matches(&miss));
        assert_eq!(oracle.decode_view(&hit), Some([4].into_iter().collect()));
        assert_eq!(oracle.decode_view(&miss), None);
        assert_eq!(ConditionOracle::<u32>::params(&oracle), p(1, 1));
    }

    #[test]
    fn explicit_oracle_accessors() {
        let c = Condition::from_vectors(vec![InputVector::new(vec![4u32, 4])]).unwrap();
        let oracle = ExplicitOracle::new(c.clone(), MaxEll::new(1), p(1, 1));
        assert_eq!(oracle.condition(), &c);
        assert_eq!(oracle.recognizing_fn(), &MaxEll::new(1));
    }

    #[test]
    fn trivial_oracle_requires_ell_above_x() {
        assert!(TrivialOracle::new(p(1, 2)).is_ok());
        assert!(TrivialOracle::new(p(1, 1)).is_err());
        assert!(TrivialOracle::new(p(2, 1)).is_err());
    }

    #[test]
    fn trivial_oracle_matches_everything_with_enough_processes() {
        let oracle = TrivialOracle::new(p(1, 2)).unwrap();
        // Any full vector matches.
        let full: View<u32> = InputVector::new(vec![1, 2, 3]).into();
        assert!(oracle.matches(&full));
        // Views with bottoms over n > x match too.
        let j = View::from_options(vec![None, Some(7), None]);
        assert!(oracle.matches(&j));
        let decoded = oracle.decode_view(&full).unwrap();
        assert!(!decoded.is_empty() && decoded.len() <= 2);
    }

    #[test]
    fn oracle_by_reference_delegates() {
        let oracle = TrivialOracle::new(p(0, 1)).unwrap();
        let by_ref: &dyn ConditionOracle<u32> = &oracle;
        let full: View<u32> = InputVector::new(vec![5, 5]).into();
        assert!(by_ref.matches(&full));
        assert!((&oracle as &TrivialOracle).decode_view(&full).is_some());
    }
}
