//! The synchronous hierarchies `S^d_t[ℓ]` (Section 5).
//!
//! For a synchronous system with at most `t` crashes, `S^d_t[ℓ]` is the set
//! of all `(t−d, ℓ)`-legal conditions: `d` is the *degree* of the condition
//! (the larger `d`, the weaker — and the more numerous — the conditions),
//! and `t − d` measures its difficulty. The paper's two hierarchies are:
//!
//! * ℓ fixed:  `S^0_t[ℓ] ⊂ S^1_t[ℓ] ⊂ … ⊂ S^t_t[ℓ]`
//! * d fixed:  `S^d_t[1] ⊂ S^d_t[2] ⊂ … ⊂ S^d_t[n]`
//!
//! with the trivial all-vectors condition entering at `d ≥ t − ℓ + 1`
//! (Theorem 8 with `x = t − d`).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::ParamsError;
use crate::lattice;
use crate::legality::LegalityParams;

/// The parameters `(t, d, ℓ)` of a hierarchy member `S^d_t[ℓ]`.
///
/// # Example
///
/// ```
/// use setagree_conditions::SdtParams;
///
/// let s = SdtParams::new(4, 1, 1)?; // S^1_4[1]
/// assert_eq!(s.legality().x(), 3);  // conditions are (t−d, ℓ) = (3, 1)-legal
/// assert!(!s.contains_trivial_condition());
/// assert!(SdtParams::new(4, 4, 1)?.contains_trivial_condition());
/// # Ok::<(), setagree_conditions::ParamsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SdtParams {
    t: usize,
    d: usize,
    ell: usize,
}

impl SdtParams {
    /// Creates `S^d_t[ℓ]`.
    ///
    /// # Errors
    ///
    /// * [`ParamsError::DegreeExceedsFaults`] if `d > t`;
    /// * [`ParamsError::ZeroEll`] if `ell == 0`.
    pub fn new(t: usize, d: usize, ell: usize) -> Result<Self, ParamsError> {
        if ell == 0 {
            return Err(ParamsError::ZeroEll);
        }
        if d > t {
            return Err(ParamsError::DegreeExceedsFaults { degree: d, t });
        }
        Ok(SdtParams { t, d, ell })
    }

    /// The fault bound `t`.
    pub const fn t(&self) -> usize {
        self.t
    }

    /// The condition degree `d`.
    pub const fn degree(&self) -> usize {
        self.d
    }

    /// The agreement width ℓ.
    pub const fn ell(&self) -> usize {
        self.ell
    }

    /// The legality parameters of the member conditions: `(t − d, ℓ)`.
    pub fn legality(&self) -> LegalityParams {
        LegalityParams::new(self.t - self.d, self.ell).expect("ℓ ≥ 1 by construction")
    }

    /// Theorem 8 with `x = t − d`: `S^d_t[ℓ]` contains the all-vectors
    /// condition iff `ℓ > t − d`. The paper requires `ℓ ≤ t − d` for the
    /// condition-based algorithm to beat the unconditioned bound.
    pub const fn contains_trivial_condition(&self) -> bool {
        self.ell > self.t - self.d
    }

    /// Set inclusion `S^d_t[ℓ] ⊆ S^d'_t[ℓ']` between hierarchy members over
    /// the **same** `t` (Theorems 4 and 6 through `x = t − d`).
    ///
    /// Returns `None` when the fault bounds differ (the hierarchies are per
    /// system).
    pub fn included_in(&self, other: &SdtParams) -> Option<bool> {
        if self.t != other.t {
            return None;
        }
        Some(lattice::implies(self.legality(), other.legality()))
    }

    /// The ℓ-fixed hierarchy `S^0_t[ℓ] ⊂ … ⊂ S^t_t[ℓ]`.
    pub fn degree_chain(t: usize, ell: usize) -> Result<Vec<SdtParams>, ParamsError> {
        (0..=t).map(|d| SdtParams::new(t, d, ell)).collect()
    }

    /// The d-fixed hierarchy `S^d_t[1] ⊂ … ⊂ S^d_t[max_ell]`.
    pub fn ell_chain(t: usize, d: usize, max_ell: usize) -> Result<Vec<SdtParams>, ParamsError> {
        (1..=max_ell.max(1))
            .map(|ell| SdtParams::new(t, d, ell))
            .collect()
    }
}

impl fmt::Display for SdtParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S^{}_{}[ℓ={}]", self.d, self.t, self.ell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(SdtParams::new(3, 4, 1).is_err());
        assert!(SdtParams::new(3, 3, 0).is_err());
        assert!(SdtParams::new(3, 3, 1).is_ok());
    }

    #[test]
    fn legality_is_t_minus_d() {
        let s = SdtParams::new(5, 2, 3).unwrap();
        assert_eq!(s.legality(), LegalityParams::new(3, 3).unwrap());
        assert_eq!(s.t(), 5);
        assert_eq!(s.degree(), 2);
        assert_eq!(s.ell(), 3);
    }

    #[test]
    fn degree_chain_is_increasing() {
        let chain = SdtParams::degree_chain(4, 2).unwrap();
        assert_eq!(chain.len(), 5);
        for w in chain.windows(2) {
            assert_eq!(w[0].included_in(&w[1]), Some(true));
            assert_eq!(w[1].included_in(&w[0]), Some(false));
        }
    }

    #[test]
    fn ell_chain_is_increasing() {
        let chain = SdtParams::ell_chain(4, 1, 4).unwrap();
        assert_eq!(chain.len(), 4);
        for w in chain.windows(2) {
            assert_eq!(w[0].included_in(&w[1]), Some(true));
            assert_eq!(w[1].included_in(&w[0]), Some(false));
        }
    }

    #[test]
    fn inclusion_across_different_t_is_undefined() {
        let a = SdtParams::new(3, 1, 1).unwrap();
        let b = SdtParams::new(4, 1, 1).unwrap();
        assert_eq!(a.included_in(&b), None);
    }

    #[test]
    fn trivial_condition_enters_at_t_minus_ell_plus_1() {
        // t = 4, ℓ = 2: trivial condition appears for d ≥ 3.
        let chain = SdtParams::degree_chain(4, 2).unwrap();
        let flags: Vec<bool> = chain
            .iter()
            .map(|s| s.contains_trivial_condition())
            .collect();
        assert_eq!(flags, vec![false, false, false, true, true]);
    }

    #[test]
    fn display_reads_like_the_paper() {
        let s = SdtParams::new(4, 2, 1).unwrap();
        assert_eq!(s.to_string(), "S^2_4[ℓ=1]");
    }
}
