//! Recognizing functions `h_ℓ`.
//!
//! A recognizing function maps each input vector of a condition to the set
//! of (at most ℓ) values that may be decided from it — the paper views an
//! input vector as a *codeword* and `h_ℓ` as its decoder (Section 2.2).
//!
//! Two canonical families are provided, after Section 2.3:
//!
//! * [`MaxEll`] — `max_ℓ(I)`, the ℓ greatest distinct values of `I`;
//! * [`MinEll`] — `min_ℓ(I)`, the ℓ smallest distinct values;
//!
//! plus [`TableFn`], an explicit per-vector table used for hand-built
//! conditions such as the paper's Table 1.

use std::collections::{BTreeMap, BTreeSet};

use setagree_types::{InputVector, ProposalValue};

/// A recognizing function `h_ℓ`: decodes an input vector into the set of
/// values that may be decided from it.
///
/// Implementations must be deterministic: the same vector always decodes to
/// the same set. Whether a given `h_ℓ` actually makes a condition
/// (x, ℓ)-legal is established by [`legality::check`](crate::legality::check).
pub trait RecognizingFn<V: ProposalValue> {
    /// Decodes the vector. For an (x, ℓ)-legal condition the result is a
    /// non-empty subset of `val(I)` of size at most `min(ℓ, |val(I)|)`.
    fn decode(&self, vector: &InputVector<V>) -> BTreeSet<V>;
}

impl<V: ProposalValue, F: RecognizingFn<V> + ?Sized> RecognizingFn<V> for &F {
    fn decode(&self, vector: &InputVector<V>) -> BTreeSet<V> {
        (**self).decode(vector)
    }
}

/// The canonical `max_ℓ` recognizing function: the ℓ greatest distinct
/// values of the vector (Section 2.3).
///
/// # Example
///
/// ```
/// use setagree_conditions::{MaxEll, RecognizingFn};
/// use setagree_types::InputVector;
///
/// let h = MaxEll::new(2);
/// let i = InputVector::new(vec![4, 1, 4, 9]);
/// assert_eq!(h.decode(&i), [4, 9].into_iter().collect());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MaxEll {
    ell: usize,
}

impl MaxEll {
    /// Creates `max_ℓ` for the given ℓ.
    ///
    /// # Panics
    ///
    /// Panics if `ell == 0`: a recognizing function must decode at least
    /// one value.
    pub fn new(ell: usize) -> Self {
        assert!(ell > 0, "max_ℓ requires ℓ ≥ 1");
        MaxEll { ell }
    }

    /// The width ℓ.
    pub fn ell(&self) -> usize {
        self.ell
    }
}

impl<V: ProposalValue> RecognizingFn<V> for MaxEll {
    fn decode(&self, vector: &InputVector<V>) -> BTreeSet<V> {
        vector.greatest_distinct(self.ell)
    }
}

/// The `min_ℓ` recognizing function: the ℓ smallest distinct values.
///
/// Section 2.3 notes every theorem about `max_ℓ` holds for `min_ℓ`;
/// providing both lets tests exercise that symmetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MinEll {
    ell: usize,
}

impl MinEll {
    /// Creates `min_ℓ` for the given ℓ.
    ///
    /// # Panics
    ///
    /// Panics if `ell == 0`.
    pub fn new(ell: usize) -> Self {
        assert!(ell > 0, "min_ℓ requires ℓ ≥ 1");
        MinEll { ell }
    }

    /// The width ℓ.
    pub fn ell(&self) -> usize {
        self.ell
    }
}

impl<V: ProposalValue> RecognizingFn<V> for MinEll {
    fn decode(&self, vector: &InputVector<V>) -> BTreeSet<V> {
        vector.smallest_distinct(self.ell)
    }
}

/// An explicit recognizing function: a per-vector table of decoded sets.
///
/// Used for hand-crafted conditions (the paper's Table 1, the witnesses of
/// Theorems 5/7/15) and for candidates produced by the exhaustive search in
/// [`witness::find_recognizing`](crate::witness::find_recognizing).
///
/// Decoding a vector absent from the table returns the empty set, which
/// [`legality::check`](crate::legality::check) reports as a validity
/// violation — an explicit `h` must cover its whole condition.
///
/// # Example
///
/// ```
/// use setagree_conditions::{RecognizingFn, TableFn};
/// use setagree_types::InputVector;
///
/// let i = InputVector::new(vec!['a', 'a', 'c', 'd']);
/// let h = TableFn::from_entries(vec![(i.clone(), ['a'].into_iter().collect())]);
/// assert_eq!(h.decode(&i), ['a'].into_iter().collect());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TableFn<V> {
    table: BTreeMap<InputVector<V>, BTreeSet<V>>,
}

impl<V: ProposalValue> TableFn<V> {
    /// Creates an empty table.
    pub fn new() -> Self {
        TableFn {
            table: BTreeMap::new(),
        }
    }

    /// Creates a table from `(vector, decoded set)` pairs. Later duplicates
    /// overwrite earlier ones.
    pub fn from_entries(entries: impl IntoIterator<Item = (InputVector<V>, BTreeSet<V>)>) -> Self {
        TableFn {
            table: entries.into_iter().collect(),
        }
    }

    /// Maps `vector` to `decoded`, returning the previous mapping if any.
    pub fn insert(&mut self, vector: InputVector<V>, decoded: BTreeSet<V>) -> Option<BTreeSet<V>> {
        self.table.insert(vector, decoded)
    }

    /// The number of vectors covered by the table.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Returns `true` if the table covers no vector.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Iterates over `(vector, decoded set)` pairs in vector order.
    pub fn iter(&self) -> impl Iterator<Item = (&InputVector<V>, &BTreeSet<V>)> {
        self.table.iter()
    }
}

impl<V: ProposalValue> Default for TableFn<V> {
    fn default() -> Self {
        TableFn::new()
    }
}

impl<V: ProposalValue> FromIterator<(InputVector<V>, BTreeSet<V>)> for TableFn<V> {
    fn from_iter<I: IntoIterator<Item = (InputVector<V>, BTreeSet<V>)>>(iter: I) -> Self {
        TableFn::from_entries(iter)
    }
}

impl<V: ProposalValue> RecognizingFn<V> for TableFn<V> {
    fn decode(&self, vector: &InputVector<V>) -> BTreeSet<V> {
        self.table.get(vector).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(entries: &[u32]) -> InputVector<u32> {
        InputVector::new(entries.to_vec())
    }

    #[test]
    fn max_ell_takes_greatest_distinct() {
        let i = v(&[3, 3, 1, 7, 7]);
        assert_eq!(MaxEll::new(1).decode(&i), [7].into_iter().collect());
        assert_eq!(MaxEll::new(2).decode(&i), [3, 7].into_iter().collect());
        assert_eq!(MaxEll::new(5).decode(&i), [1, 3, 7].into_iter().collect());
    }

    #[test]
    fn min_ell_takes_smallest_distinct() {
        let i = v(&[3, 3, 1, 7, 7]);
        assert_eq!(MinEll::new(1).decode(&i), [1].into_iter().collect());
        assert_eq!(MinEll::new(2).decode(&i), [1, 3].into_iter().collect());
    }

    #[test]
    #[should_panic(expected = "ℓ ≥ 1")]
    fn max_ell_rejects_zero() {
        let _ = MaxEll::new(0);
    }

    #[test]
    #[should_panic(expected = "ℓ ≥ 1")]
    fn min_ell_rejects_zero() {
        let _ = MinEll::new(0);
    }

    #[test]
    fn decode_size_is_min_of_ell_and_distinct() {
        let i = v(&[2, 2, 2]);
        assert_eq!(MaxEll::new(3).decode(&i).len(), 1);
        let j = v(&[1, 2, 3]);
        assert_eq!(MaxEll::new(2).decode(&j).len(), 2);
    }

    #[test]
    fn table_fn_round_trips() {
        let i1 = v(&[1, 1]);
        let i2 = v(&[2, 2]);
        let mut h = TableFn::new();
        assert!(h.is_empty());
        h.insert(i1.clone(), [1].into_iter().collect());
        h.insert(i2.clone(), [2].into_iter().collect());
        assert_eq!(h.len(), 2);
        assert_eq!(h.decode(&i1), [1].into_iter().collect());
        assert_eq!(h.decode(&i2), [2].into_iter().collect());
    }

    #[test]
    fn table_fn_unknown_vector_decodes_empty() {
        let h: TableFn<u32> = TableFn::new();
        assert!(h.decode(&v(&[9, 9])).is_empty());
    }

    #[test]
    fn table_fn_insert_overwrites() {
        let i = v(&[1, 2]);
        let mut h = TableFn::new();
        h.insert(i.clone(), [1].into_iter().collect());
        let prev = h.insert(i.clone(), [2].into_iter().collect());
        assert_eq!(prev, Some([1].into_iter().collect()));
        assert_eq!(h.decode(&i), [2].into_iter().collect());
    }

    #[test]
    fn reference_to_fn_is_also_fn() {
        let h = MaxEll::new(1);
        fn takes<V: ProposalValue>(h: impl RecognizingFn<V>, i: &InputVector<V>) -> BTreeSet<V> {
            h.decode(i)
        }
        assert_eq!(takes(h, &v(&[1, 5])), [5].into_iter().collect());
    }

    #[test]
    fn table_from_iterator() {
        let h: TableFn<u32> = vec![(v(&[1, 1]), [1u32].into_iter().collect::<BTreeSet<_>>())]
            .into_iter()
            .collect();
        assert_eq!(h.len(), 1);
        assert_eq!(h.iter().count(), 1);
    }
}
