//! A guided tour: the paper's definitions, mapped to this crate's API.
//!
//! This module contains no code — it is the cross-reference between
//! Bonnet & Raynal's notation and the types that implement it, with
//! runnable doctests as executable definitions.
//!
//! # Section 2.1 — vectors, views, distances
//!
//! | paper | API |
//! |---|---|
//! | input vector `I` | [`InputVector`](setagree_types::InputVector) |
//! | view `J` with `⊥` entries | [`View`](setagree_types::View) |
//! | `J1 ≤ J2` (containment) | [`View::is_contained_in`](setagree_types::View::is_contained_in) |
//! | `val(I)`, `#_a(I)` | [`InputVector::distinct_values`](setagree_types::InputVector::distinct_values), [`InputVector::count_of`](setagree_types::InputVector::count_of) |
//! | `d_H`, `d_G`, `⋂_{1..z} I_j` | [`distance::hamming`](setagree_types::distance::hamming), [`distance::generalized`](setagree_types::distance::generalized), [`distance::intersecting_vector`](setagree_types::distance::intersecting_vector) |
//!
//! ```
//! use setagree_types::{distance, InputVector};
//! // The paper's running example: d_G of three vectors is 3.
//! let i1 = InputVector::new(vec!['a', 'a', 'e', 'b', 'b']);
//! let i2 = InputVector::new(vec!['a', 'a', 'e', 'c', 'c']);
//! let i3 = InputVector::new(vec!['a', 'f', 'e', 'b', 'c']);
//! assert_eq!(distance::generalized(&[&i1, &i2, &i3]), 3);
//! ```
//!
//! # Section 2.2 — (x, ℓ)-legality (Definition 2)
//!
//! A condition [`Condition`](crate::Condition) is (x, ℓ)-legal w.r.t. a
//! recognizing function [`RecognizingFn`](crate::RecognizingFn) when
//! validity, density and distance hold — [`legality::check`](crate::legality::check)
//! verifies all three exhaustively and reports the violated clause:
//!
//! ```
//! use setagree_conditions::{legality, Condition, LegalityParams, MaxEll};
//! use setagree_types::InputVector;
//!
//! let c = Condition::from_vectors(vec![
//!     InputVector::new(vec![5, 5, 5, 1]),
//!     InputVector::new(vec![9, 9, 9, 2]),
//! ]).unwrap();
//! // Both maxima appear 3 > x = 2 times and the vectors are far apart.
//! assert!(legality::check(&c, &MaxEll::new(1), LegalityParams::new(2, 1).unwrap()).is_ok());
//! ```
//!
//! The ℓ = 1 case *is* the x-legality of Mostefaoui–Rajsbaum–Raynal:
//! conditions that solve asynchronous consensus despite x crashes.
//!
//! # Theorem 1 and Definition 4 — decoding views
//!
//! [`legality::decode_view`](crate::legality::decode_view) computes
//! `h_ℓ(J) = ⋂_{I ∈ C, J ≤ I} h_ℓ(I) ∩ val(J)`; for views with at most x
//! missing entries of a member vector it is non-empty with at most ℓ
//! values (Theorem 1), and it is **monotone** under containment — the
//! property both the synchronous and asynchronous agreement arguments use.
//!
//! # Section 2.3 — the maximal condition and its size
//!
//! [`MaxCondition`](crate::MaxCondition) is `C_max(x, ℓ)`, the largest
//! condition recognized by `max_ℓ` (Theorem 2), implemented *analytically*
//! (membership, predicate `P(J)` and decoding in `O(n log n)`).
//! [`counting::nb`](crate::counting::nb) evaluates its exact size
//! `NB(x, ℓ)` (Theorems 3/13):
//!
//! ```
//! use setagree_conditions::{counting, LegalityParams};
//! let p = LegalityParams::new(2, 1).unwrap();
//! assert_eq!(counting::nb(4, 3, p), 15); // over n = 4 processes, values {1,2,3}
//! ```
//!
//! # Section 3 — the lattice (Figure 1)
//!
//! [`lattice`](crate::lattice) orders the families: `F(x+1, ℓ) ⊊ F(x, ℓ)`
//! (Theorems 4/5), `F(x, ℓ) ⊊ F(x, ℓ+1)` (Theorems 6/7), diagonals
//! incomparable (Theorems 14/15 — witnesses in [`witness`](crate::witness),
//! including the paper's Table 1 via [`witness::table_1`](crate::witness::table_1)).
//! The all-vectors condition sits at the `ℓ > x` frontier
//! ([`LegalityParams::admits_all_vectors`](crate::LegalityParams::admits_all_vectors),
//! Theorems 8/9).
//!
//! # Section 5 — hierarchies for synchronous systems
//!
//! [`SdtParams`](crate::SdtParams) is `S^d_t[ℓ]`, the set of
//! `(t−d, ℓ)`-legal conditions; larger degree d means more conditions but
//! slower decisions — the trade-off quantified by
//! `⌊(d+ℓ−1)/k⌋ + 1` in `setagree-core`'s
//! `ConditionBasedConfig::rounds_in_condition`.
//!
//! # Sections 6–8 — the algorithms
//!
//! Implemented in `setagree-core` (the Figure 2 protocol, baselines and
//! the early-deciding extension) over the `setagree-sync` simulator; the
//! asynchronous Section 4 algorithm lives in `setagree-async`. Conditions
//! reach the protocols through the [`ConditionOracle`](crate::ConditionOracle)
//! interface.

// Documentation-only module.
