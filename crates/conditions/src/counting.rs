//! Counting the maximal `max_ℓ` condition: `NB(x, ℓ)` (Theorem 3 and
//! Theorem 13 / Appendix A).
//!
//! `NB(x, ℓ)` is the number of input vectors, over `n` processes and `m`
//! proposable values `{1, …, m}`, in the (x, ℓ)-legal condition generated
//! by `max_ℓ` — i.e. vectors whose ℓ greatest distinct values occupy more
//! than `x` entries.
//!
//! Two closed forms are provided:
//!
//! * [`nb_x_1`] — the paper's Theorem 3 formula for ℓ = 1, transcribed
//!   verbatim: `NB(x, 1) = Σ_{γ=1}^{m} Σ_{c=x+1}^{n} C(n, c)·(γ−1)^{n−c}`
//!   (γ ranges over the greatest value of the vector, `c` over its
//!   multiplicity);
//! * [`nb`] — the general `NB(x, ℓ)` following the `A + B` decomposition of
//!   Theorem 13: `A` counts the vectors with fewer than ℓ distinct values
//!   (all trivially dense when `n > x`), `B` sums over the top-ℓ distinct
//!   values `γ_1 > … > γ_ℓ` and their multiplicities `c_1, …, c_ℓ` with
//!   `Σ c_i > x`, placing the remaining `n − Σ c_i` entries freely below
//!   `γ_ℓ`.
//!
//! [`nb_brute_force`] enumerates all `m^n` vectors as the ground truth the
//! closed forms are tested against.

use crate::legality::LegalityParams;
use crate::max_condition::MaxCondition;

/// The binomial coefficient `C(n, k)` in exact 128-bit arithmetic.
///
/// # Panics
///
/// Panics on overflow (not reachable for the `n ≤ 64` system sizes this
/// crate targets).
pub fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.checked_mul((n - i) as u128).expect("binomial overflow") / (i as u128 + 1);
    }
    acc
}

/// The number of surjections from an `n`-set onto a `j`-set, by
/// inclusion–exclusion: `Σ_{i=0}^{j} (−1)^i C(j, i) (j−i)^n`.
pub fn surjections(n: usize, j: usize) -> u128 {
    if j == 0 {
        return if n == 0 { 1 } else { 0 };
    }
    if j > n {
        return 0;
    }
    let mut acc: i128 = 0;
    for i in 0..=j {
        let term = (binomial(j, i) as i128)
            .checked_mul(
                ((j - i) as i128)
                    .checked_pow(n as u32)
                    .expect("pow overflow"),
            )
            .expect("surjection overflow");
        if i % 2 == 0 {
            acc += term;
        } else {
            acc -= term;
        }
    }
    debug_assert!(acc >= 0, "surjection count cannot be negative");
    acc as u128
}

/// Theorem 3: `NB(x, 1)` — the size of the maximal (x, 1)-legal condition
/// over `n` processes and values `{1, …, m}`.
///
/// # Example
///
/// ```
/// use setagree_conditions::counting;
///
/// // x = 0: every vector qualifies (its max appears at least once).
/// assert_eq!(counting::nb_x_1(3, 2, 0), 8);
/// // x = 1: the max value must appear at least twice.
/// assert_eq!(counting::nb_x_1(3, 2, 1), 5); // 222, 221, 212, 122, 111
/// ```
pub fn nb_x_1(n: usize, m: u32, x: usize) -> u128 {
    let mut total: u128 = 0;
    for gamma in 1..=m as u128 {
        for c in (x + 1)..=n {
            let below = (gamma - 1)
                .checked_pow((n - c) as u32)
                .expect("pow overflow");
            total += binomial(n, c) * below;
        }
    }
    total
}

/// Theorem 13: the general `NB(x, ℓ)` over `n` processes and values
/// `{1, …, m}`, as the `A + B` decomposition of Appendix A.
///
/// `A` counts vectors with fewer than ℓ distinct values — when `n > x`
/// they all belong to the condition (their `max_ℓ` covers every entry);
/// when `n ≤ x` no vector at all can satisfy density. `B` counts vectors
/// with at least ℓ distinct values by enumerating the ℓ greatest values
/// and their multiplicities.
///
/// # Example
///
/// ```
/// use setagree_conditions::counting;
/// use setagree_conditions::LegalityParams;
///
/// let p = LegalityParams::new(1, 2).unwrap();
/// // Cross-checked against brute force in the crate's tests.
/// assert_eq!(counting::nb(4, 3, p), counting::nb_brute_force(4, 3, p));
/// ```
pub fn nb(n: usize, m: u32, params: LegalityParams) -> u128 {
    let x = params.x();
    let ell = params.ell();
    if n <= x {
        // Density `> x` is unreachable with only n entries.
        return 0;
    }
    let m_us = m as usize;

    // A: vectors with fewer than ℓ distinct values.
    let mut a: u128 = 0;
    for j in 1..ell.min(n + 1).min(m_us + 1) {
        a += binomial(m_us, j) * surjections(n, j);
    }

    // B: vectors with at least ℓ distinct values; enumerate the smallest of
    // the top-ℓ values (g = γ_ℓ) and the multiset of multiplicities.
    let mut b: u128 = 0;
    if ell <= n && ell <= m_us {
        for g in 1..=(m_us - ell + 1) {
            let upper_choices = binomial(m_us - g, ell - 1);
            if upper_choices == 0 {
                continue;
            }
            // Sum over (c_1, …, c_ℓ), c_i ≥ 1, Σ > x, Σ ≤ n, with the
            // remaining n − Σ entries drawn from {1, …, g−1} (so Σ = n is
            // forced when g = 1).
            let placements = sum_compositions(n, ell, x, g - 1);
            b += upper_choices * placements;
        }
    }
    a + b
}

/// Sums `C(n, c_1)·C(n−c_1, c_2)···(below)^{n−Σc}` over all `(c_1, …, c_ℓ)`
/// with `c_i ≥ 1`, `Σ c_i > x`, `Σ c_i ≤ n`, where `below` is the number of
/// values available for the remaining entries.
fn sum_compositions(n: usize, ell: usize, x: usize, below: usize) -> u128 {
    fn rec(
        remaining_slots: usize,
        parts_left: usize,
        sum_so_far: usize,
        x: usize,
        below: usize,
        n: usize,
        acc_ways: u128,
    ) -> u128 {
        if parts_left == 0 {
            if sum_so_far <= x {
                return 0;
            }
            let rest = n - sum_so_far;
            if below == 0 && rest > 0 {
                return 0;
            }
            let fill = (below as u128).pow(rest as u32);
            return acc_ways * fill;
        }
        // Each remaining part needs at least one slot.
        let max_c = remaining_slots.saturating_sub(parts_left - 1);
        let mut total = 0u128;
        for c in 1..=max_c {
            let ways = binomial(remaining_slots, c);
            total += rec(
                remaining_slots - c,
                parts_left - 1,
                sum_so_far + c,
                x,
                below,
                n,
                acc_ways * ways,
            );
        }
        total
    }
    rec(n, ell, 0, x, below, n, 1)
}

/// Ground truth: counts the members of `C_max(x, ℓ)` by enumerating all
/// `m^n` vectors.
///
/// # Panics
///
/// Panics if `m^n > 2^24` (see [`MaxCondition::enumerate`]).
pub fn nb_brute_force(n: usize, m: u32, params: LegalityParams) -> u128 {
    MaxCondition::new(params).enumerate(n, m).len() as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: usize, ell: usize) -> LegalityParams {
        LegalityParams::new(x, ell).unwrap()
    }

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 6), 0);
        assert_eq!(binomial(60, 30), 118_264_581_564_861_424);
    }

    #[test]
    fn pascal_identity_holds() {
        for n in 1..20 {
            for k in 1..n {
                assert_eq!(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
            }
        }
    }

    #[test]
    fn surjection_basics() {
        assert_eq!(surjections(3, 1), 1);
        assert_eq!(surjections(3, 2), 6);
        assert_eq!(surjections(3, 3), 6);
        assert_eq!(surjections(2, 3), 0);
        assert_eq!(surjections(0, 0), 1);
        assert_eq!(surjections(4, 2), 14);
    }

    #[test]
    fn surjections_partition_all_functions() {
        // Σ_j C(m, j) · Surj(n, j) = m^n.
        for (n, m) in [(3usize, 3usize), (4, 2), (5, 3)] {
            let total: u128 = (1..=m).map(|j| binomial(m, j) * surjections(n, j)).sum();
            assert_eq!(total, (m as u128).pow(n as u32));
        }
    }

    #[test]
    fn nb_x_1_small_cases_by_hand() {
        // n = 2, m = 2, x = 1: vectors where the max appears twice: 11, 22.
        assert_eq!(nb_x_1(2, 2, 1), 2);
        // x = 0: all m^n vectors.
        assert_eq!(nb_x_1(3, 3, 0), 27);
    }

    #[test]
    fn nb_x_1_matches_brute_force() {
        for n in 2..=5 {
            for m in 1..=4u32 {
                for x in 0..n {
                    assert_eq!(
                        nb_x_1(n, m, x),
                        nb_brute_force(n, m, p(x, 1)),
                        "NB mismatch at n={n}, m={m}, x={x}"
                    );
                }
            }
        }
    }

    #[test]
    fn nb_general_matches_brute_force() {
        for n in 2..=5 {
            for m in 1..=4u32 {
                for x in 0..n {
                    for ell in 1..=n {
                        let params = p(x, ell);
                        assert_eq!(
                            nb(n, m, params),
                            nb_brute_force(n, m, params),
                            "NB mismatch at n={n}, m={m}, {params}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn nb_reduces_to_theorem_3_for_ell_1() {
        for n in 2..=6 {
            for m in 1..=4u32 {
                for x in 0..n {
                    assert_eq!(nb(n, m, p(x, 1)), nb_x_1(n, m, x));
                }
            }
        }
    }

    #[test]
    fn nb_zero_when_density_unreachable() {
        assert_eq!(nb(3, 4, p(3, 1)), 0);
        assert_eq!(nb(3, 4, p(5, 2)), 0);
    }

    #[test]
    fn nb_is_monotone_in_x_and_ell() {
        // Larger x → fewer vectors; larger ℓ → more vectors.
        let n = 5;
        let m = 3;
        for ell in 1..=3usize {
            for x in 0..n - 1 {
                assert!(nb(n, m, p(x + 1, ell)) <= nb(n, m, p(x, ell)));
            }
        }
        for x in 0..n {
            for ell in 1..=2usize {
                assert!(nb(n, m, p(x, ell)) <= nb(n, m, p(x, ell + 1)));
            }
        }
    }

    #[test]
    fn nb_all_vectors_when_ell_exceeds_x() {
        // Theorem 8 in counting form: ℓ > x ⇒ the condition has all m^n vectors.
        for (n, m, x, ell) in [(4usize, 3u32, 1usize, 2usize), (5, 2, 2, 3), (3, 4, 0, 1)] {
            assert_eq!(nb(n, m, p(x, ell)), (m as u128).pow(n as u32));
        }
    }
}
