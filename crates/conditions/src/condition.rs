//! Explicit conditions: enumerated sets of input vectors.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use setagree_types::{InputVector, ProposalValue, View};

use crate::error::ConditionError;

/// A condition: a set of input vectors over a fixed system of `n`
/// processes (Definition 1).
///
/// All vectors of a condition have the same length `n`; [`Condition::insert`]
/// enforces this invariant.
///
/// # Example
///
/// ```
/// use setagree_conditions::Condition;
/// use setagree_types::{InputVector, View};
///
/// let mut c = Condition::new(3);
/// c.insert(InputVector::new(vec![1, 1, 2]))?;
/// c.insert(InputVector::new(vec![1, 1, 3]))?;
/// assert_eq!(c.len(), 2);
///
/// // The predicate P(J): does some vector of C contain the view J?
/// let j = View::from_options(vec![Some(1), Some(1), None]);
/// assert!(c.matches_view(&j));
/// # Ok::<(), setagree_conditions::ConditionError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Condition<V: Ord> {
    n: usize,
    vectors: BTreeSet<InputVector<V>>,
}

impl<V: ProposalValue> Condition<V> {
    /// Creates an empty condition over a system of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a condition needs a system of at least one process");
        Condition {
            n,
            vectors: BTreeSet::new(),
        }
    }

    /// Creates a condition from vectors, inferring `n` from the first.
    ///
    /// # Errors
    ///
    /// Returns [`ConditionError::LengthMismatch`] if the vectors do not all
    /// have the same length.
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is empty (use [`Condition::new`] for an empty
    /// condition, which needs an explicit `n`).
    pub fn from_vectors(
        vectors: impl IntoIterator<Item = InputVector<V>>,
    ) -> Result<Self, ConditionError> {
        let mut iter = vectors.into_iter();
        let first = iter
            .next()
            .expect("from_vectors needs at least one vector; use Condition::new for empty");
        let mut cond = Condition::new(first.len());
        cond.insert(first)?;
        for v in iter {
            cond.insert(v)?;
        }
        Ok(cond)
    }

    /// The system size `n`.
    pub fn system_size(&self) -> usize {
        self.n
    }

    /// The number of vectors in the condition.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Returns `true` if the condition contains no vector.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Adds a vector; returns `true` if it was not already present.
    ///
    /// # Errors
    ///
    /// Returns [`ConditionError::LengthMismatch`] if `vector.len() != n`.
    pub fn insert(&mut self, vector: InputVector<V>) -> Result<bool, ConditionError> {
        if vector.len() != self.n {
            return Err(ConditionError::LengthMismatch {
                expected: self.n,
                got: vector.len(),
            });
        }
        Ok(self.vectors.insert(vector))
    }

    /// Removes a vector; returns `true` if it was present.
    pub fn remove(&mut self, vector: &InputVector<V>) -> bool {
        self.vectors.remove(vector)
    }

    /// Returns `true` if the vector belongs to the condition.
    pub fn contains(&self, vector: &InputVector<V>) -> bool {
        self.vectors.contains(vector)
    }

    /// Iterates over the vectors in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = &InputVector<V>> {
        self.vectors.iter()
    }

    /// The predicate `P(J)` of Figure 2: `true` iff some vector `I ∈ C`
    /// satisfies `J ≤ I`.
    ///
    /// # Panics
    ///
    /// Panics if the view's length differs from the condition's `n`.
    pub fn matches_view(&self, view: &View<V>) -> bool {
        self.vectors.iter().any(|i| view.is_contained_in_vector(i))
    }

    /// All vectors of the condition containing the given view.
    pub fn completions_of<'a>(
        &'a self,
        view: &'a View<V>,
    ) -> impl Iterator<Item = &'a InputVector<V>> {
        self.vectors
            .iter()
            .filter(move |i| view.is_contained_in_vector(i))
    }

    /// The union of two conditions over the same system.
    ///
    /// # Errors
    ///
    /// Returns [`ConditionError::LengthMismatch`] if the system sizes differ.
    pub fn union(&self, other: &Condition<V>) -> Result<Condition<V>, ConditionError> {
        if self.n != other.n {
            return Err(ConditionError::LengthMismatch {
                expected: self.n,
                got: other.n,
            });
        }
        Ok(Condition {
            n: self.n,
            vectors: self.vectors.union(&other.vectors).cloned().collect(),
        })
    }

    /// Returns `true` if every vector of `self` belongs to `other`.
    pub fn is_subset_of(&self, other: &Condition<V>) -> bool {
        self.n == other.n && self.vectors.is_subset(&other.vectors)
    }

    /// The intersection of two conditions over the same system.
    ///
    /// Intersections of (x, ℓ)-legal conditions are always (x, ℓ)-legal
    /// (legality is downward closed); this is the safe way to combine
    /// domain knowledge from two sources.
    ///
    /// # Errors
    ///
    /// Returns [`ConditionError::LengthMismatch`] if the system sizes differ.
    pub fn intersection(&self, other: &Condition<V>) -> Result<Condition<V>, ConditionError> {
        if self.n != other.n {
            return Err(ConditionError::LengthMismatch {
                expected: self.n,
                got: other.n,
            });
        }
        Ok(Condition {
            n: self.n,
            vectors: self.vectors.intersection(&other.vectors).cloned().collect(),
        })
    }

    /// The vectors of `self` not in `other`.
    ///
    /// # Errors
    ///
    /// Returns [`ConditionError::LengthMismatch`] if the system sizes differ.
    pub fn difference(&self, other: &Condition<V>) -> Result<Condition<V>, ConditionError> {
        if self.n != other.n {
            return Err(ConditionError::LengthMismatch {
                expected: self.n,
                got: other.n,
            });
        }
        Ok(Condition {
            n: self.n,
            vectors: self.vectors.difference(&other.vectors).cloned().collect(),
        })
    }
}

impl<'a, V: ProposalValue> IntoIterator for &'a Condition<V> {
    type Item = &'a InputVector<V>;
    type IntoIter = std::collections::btree_set::Iter<'a, InputVector<V>>;
    fn into_iter(self) -> Self::IntoIter {
        self.vectors.iter()
    }
}

impl<V: ProposalValue + fmt::Display> fmt::Display for Condition<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "condition over n = {} ({} vectors):", self.n, self.len())?;
        for v in &self.vectors {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(entries: &[u32]) -> InputVector<u32> {
        InputVector::new(entries.to_vec())
    }

    #[test]
    fn insert_and_contains() {
        let mut c = Condition::new(2);
        assert!(c.insert(v(&[1, 2])).unwrap());
        assert!(!c.insert(v(&[1, 2])).unwrap(), "duplicate insert is false");
        assert!(c.contains(&v(&[1, 2])));
        assert!(!c.contains(&v(&[2, 1])));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn insert_rejects_wrong_length() {
        let mut c = Condition::new(2);
        let err = c.insert(v(&[1, 2, 3])).unwrap_err();
        assert_eq!(
            err,
            ConditionError::LengthMismatch {
                expected: 2,
                got: 3
            }
        );
    }

    #[test]
    fn from_vectors_infers_n() {
        let c = Condition::from_vectors(vec![v(&[1, 2, 3]), v(&[3, 2, 1])]).unwrap();
        assert_eq!(c.system_size(), 3);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn from_vectors_rejects_mixed_lengths() {
        let res = Condition::from_vectors(vec![v(&[1, 2]), v(&[1, 2, 3])]);
        assert!(res.is_err());
    }

    #[test]
    fn matches_view_is_containment_search() {
        let c = Condition::from_vectors(vec![v(&[1, 2, 3]), v(&[1, 9, 9])]).unwrap();
        let j = View::from_options(vec![Some(1), None, Some(3)]);
        assert!(c.matches_view(&j));
        let j2 = View::from_options(vec![Some(2), None, None]);
        assert!(!c.matches_view(&j2));
    }

    #[test]
    fn completions_filters_containing_vectors() {
        let c = Condition::from_vectors(vec![v(&[1, 2, 3]), v(&[1, 9, 3]), v(&[2, 2, 3])]).unwrap();
        let j = View::from_options(vec![Some(1), None, Some(3)]);
        let found: Vec<_> = c.completions_of(&j).collect();
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn union_and_subset() {
        let a = Condition::from_vectors(vec![v(&[1, 1])]).unwrap();
        let b = Condition::from_vectors(vec![v(&[2, 2])]).unwrap();
        let u = a.union(&b).unwrap();
        assert_eq!(u.len(), 2);
        assert!(a.is_subset_of(&u));
        assert!(b.is_subset_of(&u));
        assert!(!u.is_subset_of(&a));
    }

    #[test]
    fn union_rejects_different_systems() {
        let a: Condition<u32> = Condition::new(2);
        let b: Condition<u32> = Condition::new(3);
        assert!(a.union(&b).is_err());
    }

    #[test]
    fn intersection_and_difference() {
        let a = Condition::from_vectors(vec![v(&[1, 1]), v(&[2, 2])]).unwrap();
        let b = Condition::from_vectors(vec![v(&[2, 2]), v(&[3, 3])]).unwrap();
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.len(), 1);
        assert!(i.contains(&v(&[2, 2])));
        let d = a.difference(&b).unwrap();
        assert_eq!(d.len(), 1);
        assert!(d.contains(&v(&[1, 1])));
        // Set identities: |a| = |a ∩ b| + |a \ b|; union recomposes.
        assert_eq!(a.len(), i.len() + d.len());
        assert!(i.union(&d).unwrap().is_subset_of(&a));
        // System-size mismatches are rejected.
        let c3: Condition<u32> = Condition::new(3);
        assert!(a.intersection(&c3).is_err());
        assert!(a.difference(&c3).is_err());
    }

    #[test]
    fn remove_vector() {
        let mut c = Condition::from_vectors(vec![v(&[1, 1])]).unwrap();
        assert!(c.remove(&v(&[1, 1])));
        assert!(!c.remove(&v(&[1, 1])));
        assert!(c.is_empty());
    }

    #[test]
    fn display_lists_vectors() {
        let c = Condition::from_vectors(vec![v(&[1, 2])]).unwrap();
        let s = c.to_string();
        assert!(s.contains("n = 2"));
        assert!(s.contains("[1, 2]"));
    }

    #[test]
    fn iteration_in_lexicographic_order() {
        let c = Condition::from_vectors(vec![v(&[2, 1]), v(&[1, 2])]).unwrap();
        let vs: Vec<_> = c.iter().collect();
        assert!(vs[0] < vs[1]);
        assert_eq!((&c).into_iter().count(), 2);
    }
}
