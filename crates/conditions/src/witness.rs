//! Witness constructions separating the legality families — the paper's
//! Table 1 and the proofs of Theorems 5, 7, 14 and 15.
//!
//! Each function returns a concrete condition whose legality status is
//! *provable by exhaustive search*: [`find_recognizing`] searches the whole
//! space of candidate recognizing functions, so a `None` result is a proof
//! (for that instance) that the condition is not (x, ℓ)-legal.

use std::collections::BTreeSet;

use setagree_types::{InputVector, ProposalValue};

use crate::condition::Condition;
use crate::legality::{self, LegalityParams};
use crate::max_condition::MaxCondition;
use crate::recognizing::TableFn;

/// The paper's **Table 1**: a four-vector condition over `n = 4` processes
/// that is (1, 1)-legal (with the returned recognizing table) but — per
/// Theorem 14 — not (2, 2)-legal.
///
/// | vector | `h_1` |
/// |---|---|
/// | `(a, a, c, d)` | `{a}` |
/// | `(b, b, c, d)` | `{b}` |
/// | `(a, b, c, c)` | `{c}` |
/// | `(a, b, d, d)` | `{d}` |
///
/// # Example
///
/// ```
/// use setagree_conditions::{legality, witness, LegalityParams};
///
/// let (cond, h) = witness::table_1();
/// let p11 = LegalityParams::new(1, 1)?;
/// assert!(legality::check(&cond, &h, p11).is_ok());
/// let p22 = LegalityParams::new(2, 2)?;
/// assert!(witness::find_recognizing(&cond, p22).is_none());
/// # Ok::<(), setagree_conditions::ParamsError>(())
/// ```
pub fn table_1() -> (Condition<char>, TableFn<char>) {
    let rows: [(&[char; 4], char); 4] = [
        (&['a', 'a', 'c', 'd'], 'a'),
        (&['b', 'b', 'c', 'd'], 'b'),
        (&['a', 'b', 'c', 'c'], 'c'),
        (&['a', 'b', 'd', 'd'], 'd'),
    ];
    let mut cond = Condition::new(4);
    let mut table = TableFn::new();
    for (entries, decoded) in rows {
        let vector = InputVector::new(entries.to_vec());
        cond.insert(vector.clone())
            .expect("length 4 by construction");
        table.insert(vector, [decoded].into_iter().collect());
    }
    (cond, table)
}

/// Exhaustively searches for an (x, ℓ)-recognizing function for the
/// condition. Returns `Some(h)` with a legal table, or `None` when **no**
/// recognizing function exists — i.e. the condition is not (x, ℓ)-legal.
///
/// The search enumerates, per vector, every non-empty value subset of size
/// at most `min(ℓ, |val(I)|)` that satisfies density, then backtracks over
/// assignments pruning with the full legality check on each prefix.
///
/// # Panics
///
/// Panics if the condition has more than 16 vectors or a vector has more
/// than 16 distinct values (the search would be astronomically large;
/// witnesses are small by design).
pub fn find_recognizing<V: ProposalValue>(
    condition: &Condition<V>,
    params: LegalityParams,
) -> Option<TableFn<V>> {
    let vectors: Vec<InputVector<V>> = condition.iter().cloned().collect();
    assert!(
        vectors.len() <= 16,
        "exhaustive recognizing-function search refused for more than 16 vectors"
    );

    let candidates: Vec<Vec<BTreeSet<V>>> = vectors
        .iter()
        .map(|i| candidate_decodings(i, params))
        .collect();
    if candidates.iter().any(|c| c.is_empty()) {
        // Some vector admits no dense decoding at all: not legal.
        return None;
    }

    let mut assigned: Vec<BTreeSet<V>> = Vec::with_capacity(vectors.len());
    if backtrack(&vectors, &candidates, params, &mut assigned) {
        Some(TableFn::from_entries(vectors.into_iter().zip(assigned)))
    } else {
        None
    }
}

/// All density-satisfying candidate decoded sets for one vector.
fn candidate_decodings<V: ProposalValue>(
    vector: &InputVector<V>,
    params: LegalityParams,
) -> Vec<BTreeSet<V>> {
    let values: Vec<V> = vector.distinct_values().into_iter().collect();
    assert!(
        values.len() <= 16,
        "exhaustive recognizing-function search refused for more than 16 distinct values"
    );
    let max_size = params.ell().min(values.len());
    let mut out = Vec::new();
    for mask in 1u32..(1 << values.len()) {
        if (mask.count_ones() as usize) > max_size {
            continue;
        }
        let set: BTreeSet<V> = values
            .iter()
            .enumerate()
            .filter(|(k, _)| mask >> k & 1 == 1)
            .map(|(_, v)| v.clone())
            .collect();
        if vector.count_in(&set) > params.x() {
            out.push(set);
        }
    }
    out
}

fn backtrack<V: ProposalValue>(
    vectors: &[InputVector<V>],
    candidates: &[Vec<BTreeSet<V>>],
    params: LegalityParams,
    assigned: &mut Vec<BTreeSet<V>>,
) -> bool {
    let next = assigned.len();
    if next == vectors.len() {
        return true;
    }
    for cand in &candidates[next] {
        assigned.push(cand.clone());
        // Check legality of the assigned prefix; the check is exhaustive on
        // the sub-condition so any conflict is caught as early as possible.
        let prefix = Condition::from_vectors(vectors[..=next].to_vec())
            .expect("uniform lengths by construction");
        let table = TableFn::from_entries(
            vectors[..=next]
                .iter()
                .cloned()
                .zip(assigned.iter().cloned()),
        );
        if legality::check(&prefix, &table, params).is_ok()
            && backtrack(vectors, candidates, params, assigned)
        {
            return true;
        }
        assigned.pop();
    }
    false
}

/// Theorem 5 witness: a condition that is (x, ℓ)-legal but **not**
/// (x+1, ℓ)-legal — the members of `C_max(x, ℓ)` over values `{1..m}` in
/// which *no* ℓ values occupy more than `x + 1` entries (so density at
/// `x + 1` is unreachable for any candidate function).
///
/// Returns an empty condition when no such vector exists for the chosen
/// `(n, m)`; tests pick instances where it is non-empty.
pub fn theorem_5_witness(n: usize, m: u32, params: LegalityParams) -> Condition<u32> {
    let base = MaxCondition::new(params).enumerate(n, m);
    let mut out = Condition::new(n);
    for vector in &base {
        if top_multiplicity_sum(vector, params.ell()) <= params.x() + 1 {
            out.insert(vector.clone()).expect("same n");
        }
    }
    out
}

/// Theorem 7 witness: a condition that is (x, ℓ+1)-legal but **not**
/// (x, ℓ)-legal — the members of `C_max(x, ℓ+1)` in which no ℓ values
/// occupy more than `x` entries.
///
/// `params` is the *target* pair `(x, ℓ)` that must fail; the witness is
/// built in `C_max(x, ℓ+1)`.
pub fn theorem_7_witness(n: usize, m: u32, params: LegalityParams) -> Condition<u32> {
    let wider = LegalityParams::new(params.x(), params.ell() + 1).expect("ℓ+1 ≥ 1");
    let base = MaxCondition::new(wider).enumerate(n, m);
    let mut out = Condition::new(n);
    for vector in &base {
        if top_multiplicity_sum(vector, params.ell()) <= params.x() {
            out.insert(vector.clone()).expect("same n");
        }
    }
    out
}

/// The largest number of entries any `ell` distinct values occupy in the
/// vector: the sum of its `ell` largest value multiplicities.
fn top_multiplicity_sum<V: ProposalValue>(vector: &InputVector<V>, ell: usize) -> usize {
    let mut counts: Vec<usize> = vector
        .distinct_values()
        .iter()
        .map(|v| vector.count_of(v))
        .collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    counts.into_iter().take(ell).sum()
}

/// Theorem 15 witness (Appendix B): `ℓ + 1` vectors that form an
/// (x, ℓ+1)-legal condition which is **not** (x, ℓ)-legal.
///
/// Construction (values are `1..=n−D` with `D = x − ℓ + 1`):
///
/// * vector `I_i` starts with `D` copies of value `i` (the *different
///   part*), followed by the common tail `1, 2, …, n − D`;
/// * the recognizing function maps every vector to `{1, …, ℓ+1}`.
///
/// Any candidate (x, ℓ)-function must decode `i` from `I_i` (it is the only
/// value dense enough), and the whole set has `d_G = x − ℓ + 1 ≤ x` while
/// the common tail holds each value once — the distance property cannot be
/// met.
///
/// # Panics
///
/// Panics unless `ℓ + 1 ≤ x` and `n ≥ x + 2` (the regime of Theorem 15).
pub fn theorem_15_witness(n: usize, params: LegalityParams) -> (Condition<u32>, TableFn<u32>) {
    let x = params.x();
    let ell = params.ell();
    assert!(ell < x, "Theorem 15 needs ℓ + 1 ≤ x");
    assert!(n >= x + 2, "Theorem 15 needs n ≥ x + 2");
    let d = x - ell + 1;
    let tail_len = n - d;
    debug_assert!(tail_len > ell);

    let mut cond = Condition::new(n);
    let mut table = TableFn::new();
    let decoded: BTreeSet<u32> = (1..=(ell as u32 + 1)).collect();
    for i in 1..=(ell as u32 + 1) {
        let mut entries = vec![i; d];
        entries.extend((1..=tail_len as u32).collect::<Vec<u32>>());
        let vector = InputVector::new(entries);
        cond.insert(vector.clone())
            .expect("length n by construction");
        table.insert(vector, decoded.clone());
    }
    (cond, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recognizing::MaxEll;

    fn p(x: usize, ell: usize) -> LegalityParams {
        LegalityParams::new(x, ell).unwrap()
    }

    #[test]
    fn table_1_is_1_1_legal() {
        let (cond, h) = table_1();
        assert_eq!(cond.len(), 4);
        assert!(legality::check(&cond, &h, p(1, 1)).is_ok());
    }

    #[test]
    fn table_1_is_not_2_2_legal_theorem_14() {
        let (cond, _) = table_1();
        assert!(find_recognizing(&cond, p(2, 2)).is_none());
    }

    #[test]
    fn table_1_search_rediscovers_a_1_1_function() {
        let (cond, _) = table_1();
        let h = find_recognizing(&cond, p(1, 1)).expect("Table 1 is (1,1)-legal");
        assert!(legality::check(&cond, &h, p(1, 1)).is_ok());
    }

    #[test]
    fn find_recognizing_rejects_undecodable_conditions() {
        // Two vectors at Hamming distance 1 that can only decode different
        // values: x = 1 forbids it.
        let c = Condition::from_vectors(vec![
            InputVector::new(vec![1u32, 1, 1, 2]),
            InputVector::new(vec![1u32, 1, 1, 3]),
        ])
        .unwrap();
        // Both can decode {1}: legal. But force x high enough that density
        // admits only the full-count value 1... 1 appears 3 times; x = 3
        // kills every candidate.
        assert!(find_recognizing(&c, p(3, 1)).is_none());
        assert!(find_recognizing(&c, p(2, 1)).is_some());
    }

    #[test]
    fn theorem_5_witness_separates_x_levels() {
        let params = p(1, 1);
        let w = theorem_5_witness(4, 3, params);
        assert!(!w.is_empty(), "witness must be non-empty for n=4, m=3");
        // (x, ℓ)-legal with max_ℓ (it is a subset of C_max(x, ℓ)).
        assert!(legality::check(&w, &MaxEll::new(1), params).is_ok());
        // Not (x+1, ℓ)-legal: no function exists. The witness can be large;
        // restrict to a small sub-condition that already fails (every
        // vector individually fails density at x+1).
        let sub = Condition::from_vectors(w.iter().take(3).cloned().collect::<Vec<_>>()).unwrap();
        assert!(find_recognizing(&sub, p(2, 1)).is_none());
    }

    #[test]
    fn theorem_7_witness_separates_ell_levels() {
        let params = p(2, 1); // target (x, ℓ) that must fail
        let w = theorem_7_witness(4, 3, params);
        assert!(!w.is_empty(), "witness must be non-empty for n=4, m=3");
        // (x, ℓ+1)-legal with max_{ℓ+1}.
        assert!(legality::check(&w, &MaxEll::new(2), p(2, 2)).is_ok());
        // Not (x, ℓ)-legal: density alone kills every vector.
        let sub = Condition::from_vectors(w.iter().take(3).cloned().collect::<Vec<_>>()).unwrap();
        assert!(find_recognizing(&sub, params).is_none());
    }

    #[test]
    fn theorem_15_witness_construction() {
        // x = 3, ℓ = 2, n = 7: D = 2, tail = 1..5.
        let params = p(3, 2);
        let (cond, h) = theorem_15_witness(7, params);
        assert_eq!(cond.len(), 3); // ℓ + 1 vectors
        for vector in &cond {
            assert_eq!(vector.len(), 7);
        }
        // (x, ℓ+1)-legal with the constant table.
        assert!(legality::check(&cond, &h, p(3, 3)).is_ok());
        // Not (x, ℓ)-legal.
        assert!(find_recognizing(&cond, params).is_none());
    }

    #[test]
    #[should_panic(expected = "ℓ + 1 ≤ x")]
    fn theorem_15_rejects_shallow_x() {
        let _ = theorem_15_witness(7, p(2, 2));
    }

    #[test]
    fn top_multiplicity_sum_is_max_over_value_sets() {
        let i = InputVector::new(vec![1u32, 1, 1, 2, 2, 3]);
        assert_eq!(top_multiplicity_sum(&i, 1), 3);
        assert_eq!(top_multiplicity_sum(&i, 2), 5);
        assert_eq!(top_multiplicity_sum(&i, 3), 6);
        assert_eq!(top_multiplicity_sum(&i, 9), 6);
    }

    #[test]
    fn find_recognizing_on_singleton_condition() {
        let c = Condition::from_vectors(vec![InputVector::new(vec![5u32, 5, 1])]).unwrap();
        let h = find_recognizing(&c, p(1, 1)).expect("dense singleton is legal");
        assert!(legality::check(&c, &h, p(1, 1)).is_ok());
        // x = 2: the only candidate {5} has count 2 ≤ 2 → none.
        assert!(find_recognizing(&c, p(2, 1)).is_none());
    }
}
