//! Property-based tests for the vector/view algebra: the laws the rest of
//! the workspace silently relies on.

use proptest::prelude::*;

use setagree_types::{distance, InputVector, ProcessId, View};

fn vectors(n: usize, count: usize) -> impl Strategy<Value = Vec<InputVector<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..5, n), 1..=count)
        .prop_map(|vs| vs.into_iter().map(InputVector::new).collect())
}

fn view_of(n: usize) -> impl Strategy<Value = View<u32>> {
    proptest::collection::vec(proptest::option::of(0u32..5), n).prop_map(View::from_options)
}

proptest! {
    /// d_H is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn hamming_is_a_metric(
        a in proptest::collection::vec(0u32..5, 6),
        b in proptest::collection::vec(0u32..5, 6),
        c in proptest::collection::vec(0u32..5, 6),
    ) {
        let (a, b, c) = (InputVector::new(a), InputVector::new(b), InputVector::new(c));
        prop_assert_eq!(distance::hamming(&a, &a), 0);
        prop_assert_eq!(distance::hamming(&a, &b), distance::hamming(&b, &a));
        prop_assert!(
            distance::hamming(&a, &c)
                <= distance::hamming(&a, &b) + distance::hamming(&b, &c)
        );
    }

    /// d_G generalizes d_H: pairwise max ≤ d_G ≤ sum of pairwise distances,
    /// and d_G is monotone under adding vectors.
    #[test]
    fn generalized_distance_bounds(vs in vectors(5, 4)) {
        let refs: Vec<&InputVector<u32>> = vs.iter().collect();
        let dg = distance::generalized(&refs);
        let mut pair_max = 0;
        let mut pair_sum = 0;
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                let d = distance::hamming(&vs[i], &vs[j]);
                pair_max = pair_max.max(d);
                pair_sum += d;
            }
        }
        if vs.len() >= 2 {
            prop_assert!(dg >= pair_max, "d_G dominates every pairwise d_H");
            prop_assert!(dg <= pair_sum.max(pair_max), "d_G ≤ total disagreement");
        }
        // Monotone: dropping the last vector cannot increase d_G.
        if vs.len() >= 2 {
            let fewer = distance::generalized(&refs[..refs.len() - 1]);
            prop_assert!(fewer <= dg);
        }
    }

    /// The intersecting vector is the greatest lower bound: contained in
    /// every vector, with exactly n − d_G defined entries, and any view
    /// contained in all vectors is contained in it.
    #[test]
    fn intersecting_vector_is_meet(vs in vectors(5, 3), j in view_of(5)) {
        let refs: Vec<&InputVector<u32>> = vs.iter().collect();
        let inter = distance::intersecting_vector(&refs);
        for v in &vs {
            prop_assert!(inter.is_contained_in_vector(v));
        }
        prop_assert_eq!(
            inter.len() - inter.count_bottom(),
            5 - distance::generalized(&refs)
        );
        if vs.iter().all(|v| j.is_contained_in_vector(v)) {
            prop_assert!(j.is_contained_in(&inter), "meet property");
        }
    }

    /// Containment is a partial order: reflexive, antisymmetric,
    /// transitive.
    #[test]
    fn containment_is_a_partial_order(
        a in view_of(5),
        b in view_of(5),
        c in view_of(5),
    ) {
        prop_assert!(a.is_contained_in(&a));
        if a.is_contained_in(&b) && b.is_contained_in(&a) {
            prop_assert_eq!(&a, &b);
        }
        if a.is_contained_in(&b) && b.is_contained_in(&c) {
            prop_assert!(a.is_contained_in(&c));
        }
    }

    /// Counting identities: distinct occurrences sum to the defined-entry
    /// count; count_in distributes over disjoint sets.
    #[test]
    fn occurrence_counts_are_consistent(j in view_of(6)) {
        let defined = j.len() - j.count_bottom();
        let total: usize = j.distinct_values().iter().map(|v| j.count_of(v)).sum();
        prop_assert_eq!(total, defined);
        let all = j.distinct_values();
        prop_assert_eq!(j.count_in(&all), defined);
    }

    /// max_ℓ/min_ℓ extraction: sizes, ordering, and complementarity.
    #[test]
    fn extremal_extraction_laws(
        entries in proptest::collection::vec(0u32..6, 6),
        ell in 1usize..=6,
    ) {
        let i = InputVector::new(entries);
        let top = i.greatest_distinct(ell);
        let bottom = i.smallest_distinct(ell);
        let distinct = i.distinct_count();
        prop_assert_eq!(top.len(), ell.min(distinct));
        prop_assert_eq!(bottom.len(), ell.min(distinct));
        // Every non-top value is below every top value.
        let all = i.distinct_values();
        for v in all.difference(&top) {
            for t in &top {
                prop_assert!(v < t);
            }
        }
        if 2 * ell >= distinct {
            // top and bottom together cover everything.
            let union: std::collections::BTreeSet<u32> =
                top.union(&bottom).cloned().collect();
            prop_assert_eq!(union, all);
        }
    }

    /// View mutation: setting an entry makes exactly that entry defined.
    #[test]
    fn set_affects_one_entry(j in view_of(5), idx in 0usize..5, v in 0u32..5) {
        let mut j2 = j.clone();
        j2.set(ProcessId::new(idx), v);
        prop_assert_eq!(j2.get(ProcessId::new(idx)), Some(&v));
        for other in 0..5 {
            if other != idx {
                prop_assert_eq!(j.get(ProcessId::new(other)), j2.get(ProcessId::new(other)));
            }
        }
    }

    /// Round-trips: vector → view → vector, and completion containment.
    #[test]
    fn vector_view_round_trip(entries in proptest::collection::vec(0u32..5, 5), fill in 0u32..5) {
        let i = InputVector::new(entries);
        let j = i.to_view();
        let rebuilt = j.to_vector();
        prop_assert_eq!(rebuilt.as_ref(), Some(&i));
        prop_assert!(j.is_contained_in_vector(&i));
        // Any view completed with a constant contains the original view.
        let partial = View::from_options(
            i.iter().enumerate().map(|(k, v)| if k % 2 == 0 { Some(*v) } else { None }).collect(),
        );
        let completed = partial.complete_with(&fill);
        prop_assert!(partial.is_contained_in_vector(&completed));
    }
}
