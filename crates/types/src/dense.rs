//! The dense interned-value state engine.
//!
//! The generic [`View`]/[`InputVector`] store owned values in
//! `Vec<Option<V>>`/`Vec<V>`: every merge clones values, every count walks
//! `Option`s, and every distinct-count builds a `BTreeSet`. That is the
//! per-message cost of the paper's protocols — a flood round is `n²`
//! deliveries, each an entry-wise merge of an `n`-entry view.
//!
//! This module replaces the storage for the hot paths: proposal values are
//! interned **once** into a per-system [`ValueTable`] (sorted and deduped,
//! so **id order is value order** and `max_ℓ` becomes integer arithmetic),
//! and views become flat process-indexed [`ValueId`] arrays with a
//! presence bitmap:
//!
//! * [`DenseView`]/[`DenseVector`] hold one `u32` id per process — no
//!   heap allocation at all for systems of `n ≤ 16` processes (the
//!   inline representation), one flat allocation above that;
//! * the `⊥` count is maintained incrementally, so
//!   [`DenseView::count_bottom`] is an O(1) read;
//! * [`DenseView::merge_from`] walks the presence bitmap a word (64
//!   entries) at a time and [`DenseView::merge_missing_from`] skips
//!   already-saturated words entirely — the steady state of a flood is
//!   O(n/64) per delivery instead of O(n) `Option` clones;
//! * [`DenseView::distinct_count`] is a single counting pass over a
//!   stack-allocated id bitmap, and [`DenseView::count_in`]/
//!   [`DenseView::greatest_distinct`] are id-bitmap ([`IdSet`]) passes
//!   that clone no value.
//!
//! The engine is pinned byte-equivalent to the generic representation by
//! the `dense_equivalence` property suite: every operation here matches
//! the corresponding `Vec<Option<V>>` reference through
//! [`ValueTable::view`]/[`ValueTable::intern_view`] round-trips.
//!
//! # Example
//!
//! ```
//! use setagree_types::{DenseView, InputVector, ProcessId, ValueTable};
//!
//! let input = InputVector::new(vec![30u32, 10, 30, 20]);
//! let table = ValueTable::from_vector(&input);
//! assert_eq!(table.len(), 3); // {10, 20, 30} interned, sorted
//!
//! let mut mine = DenseView::all_bottom(4, &table);
//! mine.set(ProcessId::new(0), table.id_of(&30).unwrap());
//! let mut theirs = DenseView::all_bottom(4, &table);
//! theirs.set(ProcessId::new(1), table.id_of(&10).unwrap());
//!
//! mine.merge_missing_from(&theirs);
//! assert_eq!(mine.count_bottom(), 2);
//! assert_eq!(mine.distinct_count(), 2);
//! assert_eq!(table.view(&mine).get(ProcessId::new(1)), Some(&10));
//! ```

use std::fmt;

use crate::process::ProcessId;
use crate::value::ProposalValue;
use crate::vector::InputVector;
use crate::view::View;

/// The index of an interned proposal value in its [`ValueTable`].
///
/// Tables are sorted: `a < b` as values implies `id_of(a) < id_of(b)` —
/// every order-based operation (`max`, `max_ℓ`) runs on raw ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(u32);

impl ValueId {
    /// Wraps a raw table index. Meaningful only against the table that
    /// produced it (see [`ValueTable::id_of`]).
    pub const fn new(raw: u32) -> Self {
        ValueId(raw)
    }

    /// The raw table index.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// The index as a `usize`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The interned, sorted value domain of one system: every distinct value
/// the scenario can propose, mapped to a dense [`ValueId`] once at
/// construction.
///
/// Sorting is the engine's load-bearing invariant: id order **is** value
/// order, so the paper's recognizing functions (`max_ℓ`, `min_ℓ`) and the
/// Figure 2 `max` folds need never touch a `V` again.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ValueTable<V> {
    values: Vec<V>,
}

impl<V: ProposalValue> ValueTable<V> {
    /// Interns every distinct value of `values`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if the iterator yields no value, or more than `u32::MAX`
    /// distinct values.
    pub fn from_values(values: impl IntoIterator<Item = V>) -> Self {
        let mut values: Vec<V> = values.into_iter().collect();
        assert!(!values.is_empty(), "a value table needs at least one value");
        values.sort_unstable();
        values.dedup();
        assert!(
            u32::try_from(values.len()).is_ok(),
            "value domain exceeds u32 ids"
        );
        ValueTable { values }
    }

    /// The table of an input vector's value domain — the natural
    /// construction point: one table per scenario, at scenario build time.
    pub fn from_vector(vector: &InputVector<V>) -> Self {
        Self::from_values(vector.iter().cloned())
    }

    /// The number of distinct interned values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always `false`: tables hold at least one value.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The id of `v`, or `None` if `v` is outside the interned domain.
    pub fn id_of(&self, v: &V) -> Option<ValueId> {
        self.values.binary_search(v).ok().map(|i| ValueId(i as u32))
    }

    /// The value behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id is not from this table.
    pub fn value(&self, id: ValueId) -> &V {
        &self.values[id.index()]
    }

    /// The greatest interned value's id (the table is never empty).
    pub fn max_id(&self) -> ValueId {
        ValueId(self.values.len() as u32 - 1)
    }

    /// The interned values in id (= value) order.
    pub fn iter(&self) -> std::slice::Iter<'_, V> {
        self.values.iter()
    }

    /// Interns a full input vector.
    ///
    /// # Panics
    ///
    /// Panics if an entry is outside the table's domain.
    pub fn intern_vector(&self, vector: &InputVector<V>) -> DenseVector {
        let ids = vector.iter().map(|v| {
            self.id_of(v)
                .expect("input vector entry outside the interned domain")
        });
        DenseVector::from_ids(self.len(), ids)
    }

    /// Interns a view (`⊥` entries stay `⊥`).
    ///
    /// # Panics
    ///
    /// Panics if an observed entry is outside the table's domain.
    pub fn intern_view(&self, view: &View<V>) -> DenseView {
        let mut dense = DenseView::all_bottom(view.len(), self);
        for (i, entry) in view.iter().enumerate() {
            if let Some(v) = entry {
                let id = self
                    .id_of(v)
                    .expect("view entry outside the interned domain");
                dense.set(ProcessId::new(i), id);
            }
        }
        dense
    }

    /// Resolves a dense vector back to owned values.
    ///
    /// # Panics
    ///
    /// Panics if the vector was interned against a different table.
    pub fn vector(&self, dense: &DenseVector) -> InputVector<V> {
        InputVector::new(
            dense
                .as_ids()
                .iter()
                .map(|&id| self.values[id as usize].clone())
                .collect(),
        )
    }

    /// Resolves a dense view back to owned values.
    ///
    /// # Panics
    ///
    /// Panics if the view was interned against a different table.
    pub fn view(&self, dense: &DenseView) -> View<V> {
        View::from_options(
            dense
                .as_slots()
                .iter()
                .map(|&slot| {
                    if slot == BOTTOM {
                        None
                    } else {
                        Some(self.values[slot as usize].clone())
                    }
                })
                .collect(),
        )
    }

    /// Resolves an id set to an owned value set.
    pub fn values_of(&self, ids: &IdSet) -> std::collections::BTreeSet<V> {
        ids.iter()
            .map(|id| self.values[id.index()].clone())
            .collect()
    }
}

/// The slot sentinel for `⊥` (absent) entries.
const BOTTOM: u32 = u32::MAX;

/// Entries inline up to this system size — a 16-process view lives
/// entirely on the stack.
const INLINE_SLOTS: usize = 16;

/// Per-process id slots: inline for `n ≤ 16`, one flat allocation above.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Slots {
    /// `n ≤ INLINE_SLOTS`; unused trailing slots stay `BOTTOM` so the
    /// derived equality and hash are canonical.
    Inline([u32; INLINE_SLOTS]),
    Heap(Vec<u32>),
}

impl Slots {
    fn bottom(n: usize) -> Self {
        if n <= INLINE_SLOTS {
            Slots::Inline([BOTTOM; INLINE_SLOTS])
        } else {
            Slots::Heap(vec![BOTTOM; n])
        }
    }

    fn as_slice(&self, n: usize) -> &[u32] {
        match self {
            Slots::Inline(a) => &a[..n],
            Slots::Heap(v) => v,
        }
    }

    fn as_mut_slice(&mut self, n: usize) -> &mut [u32] {
        match self {
            Slots::Inline(a) => &mut a[..n],
            Slots::Heap(v) => v,
        }
    }
}

/// Presence bitmap words: one inline word covers `n ≤ 64`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Words {
    Inline(u64),
    Heap(Vec<u64>),
}

impl Words {
    fn zero(bits: usize) -> Self {
        if bits <= 64 {
            Words::Inline(0)
        } else {
            Words::Heap(vec![0; bits.div_ceil(64)])
        }
    }

    fn as_slice(&self) -> &[u64] {
        match self {
            Words::Inline(w) => std::slice::from_ref(w),
            Words::Heap(v) => v,
        }
    }

    fn as_mut_slice(&mut self) -> &mut [u64] {
        match self {
            Words::Inline(w) => std::slice::from_mut(w),
            Words::Heap(v) => v,
        }
    }

    fn get(&self, bit: usize) -> bool {
        self.as_slice()[bit / 64] & (1u64 << (bit % 64)) != 0
    }

    fn set(&mut self, bit: usize) {
        self.as_mut_slice()[bit / 64] |= 1u64 << (bit % 64);
    }

    fn count_ones(&self) -> usize {
        self.as_slice()
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }
}

/// A set of [`ValueId`]s as a bitmap over a table's domain: the dense
/// engine's replacement for the `BTreeSet<V>` that
/// [`View::count_in`]/[`View::greatest_distinct`] materialize — no value
/// is ever cloned into it, membership is one bit test, and intersection
/// weights come from single passes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IdSet {
    domain: u32,
    words: Words,
}

impl IdSet {
    /// The empty set over a table's domain.
    pub fn empty<V: ProposalValue>(table: &ValueTable<V>) -> Self {
        Self::over(table.len())
    }

    /// The empty set over a raw domain size (ids `0..domain`).
    pub fn over(domain: usize) -> Self {
        IdSet {
            domain: domain as u32,
            words: Words::zero(domain),
        }
    }

    /// Inserts an id; returns whether it was new.
    ///
    /// # Panics
    ///
    /// Panics if the id is outside the set's domain.
    pub fn insert(&mut self, id: ValueId) -> bool {
        assert!(id.get() < self.domain, "id outside the set's domain");
        let fresh = !self.words.get(id.index());
        self.words.set(id.index());
        fresh
    }

    /// Membership: one bit test.
    pub fn contains(&self, id: ValueId) -> bool {
        id.get() < self.domain && self.words.get(id.index())
    }

    /// The number of ids in the set.
    pub fn len(&self) -> usize {
        self.words.count_ones()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.as_slice().iter().all(|&w| w == 0)
    }

    /// The ids in ascending (= ascending value) order.
    pub fn iter(&self) -> impl Iterator<Item = ValueId> + '_ {
        self.words
            .as_slice()
            .iter()
            .enumerate()
            .flat_map(|(wi, &word)| {
                let mut bits = word;
                std::iter::from_fn(move || {
                    if bits == 0 {
                        return None;
                    }
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(ValueId((wi * 64 + b) as u32))
                })
            })
    }

    /// Keeps only the `ell` greatest ids, dropping the rest — the bitmap
    /// form of `max_ℓ`.
    pub fn retain_greatest(&mut self, ell: usize) {
        let mut keep = ell;
        let words = self.words.as_mut_slice();
        for word in words.iter_mut().rev() {
            let ones = word.count_ones() as usize;
            if ones <= keep {
                keep -= ones;
                continue;
            }
            // Clear the (ones - keep) lowest set bits of this word.
            let mut w = *word;
            for _ in 0..ones - keep {
                w &= w - 1;
            }
            *word = w;
            keep = 0;
        }
    }
}

/// A process-indexed view over interned values: the dense form of
/// [`View`]. See the [module docs](self) for the representation and its
/// complexity guarantees.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DenseView {
    n: u32,
    domain: u32,
    /// `#_⊥`, maintained incrementally: merges and sets only ever flip
    /// entries from `⊥` to observed.
    bottoms: u32,
    present: Words,
    slots: Slots,
}

impl DenseView {
    /// The all-`⊥` view over `n` processes, interned against `table`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn all_bottom<V: ProposalValue>(n: usize, table: &ValueTable<V>) -> Self {
        Self::bottom_with_domain(n, table.len())
    }

    fn bottom_with_domain(n: usize, domain: usize) -> Self {
        assert!(n > 0, "a view needs at least one entry");
        DenseView {
            n: n as u32,
            domain: domain as u32,
            bottoms: n as u32,
            present: Words::zero(n),
            slots: Slots::bottom(n),
        }
    }

    /// The number of processes `n`.
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// Always `false`: views have at least one entry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The size of the interned value domain this view indexes into.
    pub fn domain(&self) -> usize {
        self.domain as usize
    }

    /// The entry observed for a process, or `None` for `⊥`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a process of this system.
    pub fn get(&self, id: ProcessId) -> Option<ValueId> {
        let slot = self.as_slots()[id.index()];
        if slot == BOTTOM {
            None
        } else {
            Some(ValueId(slot))
        }
    }

    /// Records the value observed for `id`, overwriting `⊥` or a previous
    /// observation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a process of this system or `value` is
    /// outside the view's domain.
    pub fn set(&mut self, id: ProcessId, value: ValueId) {
        assert!(value.get() < self.domain, "id outside the view's domain");
        let n = self.n as usize;
        let slot = &mut self.slots.as_mut_slice(n)[id.index()];
        if *slot == BOTTOM {
            self.bottoms -= 1;
            self.present.set(id.index());
        }
        *slot = value.get();
    }

    /// `#_⊥(J)` — an O(1) read off the incremental counter.
    pub fn count_bottom(&self) -> usize {
        self.bottoms as usize
    }

    /// `|val(J)|` in one counting pass over a value-domain bitmap (stack
    /// allocated for domains up to 1024 ids).
    pub fn distinct_count(&self) -> usize {
        self.seen_bitmap(|seen| seen.iter().map(|w| w.count_ones() as usize).sum())
    }

    /// `#_v(J)` for an interned value: a single flat pass.
    pub fn count_of(&self, value: ValueId) -> usize {
        let v = value.get();
        self.as_slots().iter().filter(|&&slot| slot == v).count()
    }

    /// The number of observed entries whose value is in `ids`: a flat
    /// pass of bit tests, the dense [`View::count_in`].
    pub fn count_in(&self, ids: &IdSet) -> usize {
        self.as_slots()
            .iter()
            .filter(|&&slot| slot != BOTTOM && ids.words.get(slot as usize))
            .count()
    }

    /// The greatest observed value, or `None` for the all-`⊥` view.
    pub fn max_id(&self) -> Option<ValueId> {
        self.as_slots()
            .iter()
            .filter(|&&slot| slot != BOTTOM)
            .max()
            .map(|&slot| ValueId(slot))
    }

    /// The `ℓ` greatest observed distinct values as an [`IdSet`]
    /// (`max_ℓ(J)`): one counting pass, no value clones.
    pub fn greatest_distinct(&self, ell: usize) -> IdSet {
        let mut set = IdSet {
            domain: self.domain,
            words: Words::zero(self.domain as usize),
        };
        let words = set.words.as_mut_slice();
        for &slot in self.as_slots() {
            if slot != BOTTOM {
                words[slot as usize / 64] |= 1u64 << (slot % 64);
            }
        }
        set.retain_greatest(ell);
        set
    }

    /// `Σ_{v ∈ max_ℓ(J)} #_v(J)` — the density the `C_max` predicate
    /// tests — without materializing the set: one counting pass and one
    /// weighting pass.
    pub fn greatest_distinct_weight(&self, ell: usize) -> usize {
        let top = self.greatest_distinct(ell);
        self.count_in(&top)
    }

    /// Containment `J ≤ J'`: bitmap-subset word ops plus slot equality
    /// where both are observed.
    ///
    /// # Panics
    ///
    /// Panics if the views have different lengths.
    pub fn is_contained_in(&self, other: &DenseView) -> bool {
        assert_eq!(self.n, other.n, "views over different systems");
        let (mine, theirs) = (self.present.as_slice(), other.present.as_slice());
        if mine.iter().zip(theirs).any(|(m, t)| m & !t != 0) {
            return false;
        }
        self.as_slots()
            .iter()
            .zip(other.as_slots())
            .all(|(&a, &b)| a == BOTTOM || a == b)
    }

    /// Merges another view's observations into this one with the generic
    /// [`View::merge_from`] semantics: every observed entry of `other`
    /// overwrites. Walks the presence bitmap a word at a time and copies
    /// saturated 64-entry chunks as slices.
    ///
    /// # Panics
    ///
    /// Panics if the views have different lengths.
    pub fn merge_from(&mut self, other: &DenseView) {
        assert_eq!(self.n, other.n, "views over different systems");
        let n = self.n as usize;
        let theirs_words = other.present.as_slice();
        let mine_words = self.present.as_mut_slice();
        let mine = self.slots.as_mut_slice(n);
        let theirs = other.slots.as_slice(n);
        for (w, &tw) in theirs_words.iter().enumerate() {
            if tw == 0 {
                continue;
            }
            let extra = tw & !mine_words[w];
            self.bottoms -= extra.count_ones();
            mine_words[w] |= tw;
            let base = w * 64;
            let end = (base + 64).min(n);
            if tw == chunk_mask(base, end) {
                mine[base..end].copy_from_slice(&theirs[base..end]);
            } else {
                let mut bits = tw;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    mine[base + b] = theirs[base + b];
                }
            }
        }
    }

    /// Union of observations: copies only entries that are `⊥` here and
    /// observed in `other`, skipping already-saturated bitmap words
    /// entirely — O(n/64) per call once a flood converges. For views of
    /// the same input vector (the only way protocols merge) this equals
    /// [`DenseView::merge_from`].
    ///
    /// # Panics
    ///
    /// Panics if the views have different lengths.
    pub fn merge_missing_from(&mut self, other: &DenseView) {
        assert_eq!(self.n, other.n, "views over different systems");
        let n = self.n as usize;
        let theirs_words = other.present.as_slice();
        let mine_words = self.present.as_mut_slice();
        let mine = self.slots.as_mut_slice(n);
        let theirs = other.slots.as_slice(n);
        for (w, &tw) in theirs_words.iter().enumerate() {
            let mut missing = tw & !mine_words[w];
            if missing == 0 {
                continue;
            }
            self.bottoms -= missing.count_ones();
            mine_words[w] |= missing;
            let base = w * 64;
            while missing != 0 {
                let b = missing.trailing_zeros() as usize;
                missing &= missing - 1;
                mine[base + b] = theirs[base + b];
            }
        }
    }

    /// Completes the view into a full dense vector by substituting `fill`
    /// for every `⊥` entry.
    ///
    /// # Panics
    ///
    /// Panics if `fill` is outside the view's domain.
    pub fn complete_with(&self, fill: ValueId) -> DenseVector {
        assert!(fill.get() < self.domain, "id outside the view's domain");
        DenseVector::from_ids(
            self.domain as usize,
            self.as_slots()
                .iter()
                .map(|&slot| if slot == BOTTOM { fill } else { ValueId(slot) }),
        )
    }

    /// Converts to a full dense vector if no entry is `⊥`.
    pub fn to_vector(&self) -> Option<DenseVector> {
        if self.bottoms != 0 {
            return None;
        }
        Some(DenseVector::from_ids(
            self.domain as usize,
            self.as_slots().iter().map(|&slot| ValueId(slot)),
        ))
    }

    /// The raw slots (`u32::MAX` is `⊥`), for the wire codec.
    pub fn as_slots(&self) -> &[u32] {
        self.slots.as_slice(self.n as usize)
    }

    /// Rebuilds a view from raw slots (`u32::MAX` is `⊥`) over a domain
    /// of `domain` interned values — the wire codec's decode path.
    ///
    /// Returns `None` if `slots` is empty or an entry is outside the
    /// domain.
    pub fn from_slots(domain: usize, slots: &[u32]) -> Option<Self> {
        if slots.is_empty() {
            return None;
        }
        let mut view = Self::bottom_with_domain(slots.len(), domain);
        for (i, &slot) in slots.iter().enumerate() {
            if slot == BOTTOM {
                continue;
            }
            if slot as usize >= domain {
                return None;
            }
            view.set(ProcessId::new(i), ValueId(slot));
        }
        Some(view)
    }

    /// Runs `f` on the bitmap of observed value ids (bit = id present).
    fn seen_bitmap<R>(&self, f: impl FnOnce(&[u64]) -> R) -> R {
        /// Stack bitmap budget: domains up to 1024 ids (the bench's
        /// largest system) never allocate.
        const STACK_WORDS: usize = 16;
        let words = (self.domain as usize).div_ceil(64);
        let mut stack = [0u64; STACK_WORDS];
        let mut heap;
        let seen: &mut [u64] = if words <= STACK_WORDS {
            &mut stack[..words]
        } else {
            heap = vec![0u64; words];
            &mut heap
        };
        for &slot in self.as_slots() {
            if slot != BOTTOM {
                seen[slot as usize / 64] |= 1u64 << (slot % 64);
            }
        }
        f(seen)
    }
}

impl fmt::Display for DenseView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, &slot) in self.as_slots().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if slot == BOTTOM {
                write!(f, "⊥")?;
            } else {
                write!(f, "#{slot}")?;
            }
        }
        write!(f, "]")
    }
}

/// A process-indexed full vector over interned values: the dense form of
/// [`InputVector`] (no `⊥` entries).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DenseVector {
    domain: u32,
    slots: Slots,
    n: u32,
}

impl DenseVector {
    /// Builds a vector from one id per process.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty or an id is outside the domain.
    pub fn from_ids(domain: usize, ids: impl IntoIterator<Item = ValueId>) -> Self {
        let mut n = 0usize;
        let mut buf: Vec<u32> = Vec::new();
        let mut inline = [BOTTOM; INLINE_SLOTS];
        for id in ids {
            assert!(id.index() < domain, "id outside the vector's domain");
            if n < INLINE_SLOTS {
                inline[n] = id.get();
            } else {
                if buf.is_empty() {
                    buf.extend_from_slice(&inline[..n]);
                }
                buf.push(id.get());
            }
            n += 1;
        }
        assert!(n > 0, "an input vector needs at least one entry");
        let slots = if n <= INLINE_SLOTS {
            Slots::Inline(inline)
        } else {
            Slots::Heap(buf)
        };
        DenseVector {
            domain: domain as u32,
            slots,
            n: n as u32,
        }
    }

    /// The number of processes `n`.
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// Always `false`: vectors have at least one entry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The size of the interned value domain this vector indexes into.
    pub fn domain(&self) -> usize {
        self.domain as usize
    }

    /// The value proposed by a process.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a process of this system.
    pub fn get(&self, id: ProcessId) -> ValueId {
        ValueId(self.as_ids()[id.index()])
    }

    /// The raw ids in process order.
    pub fn as_ids(&self) -> &[u32] {
        self.slots.as_slice(self.n as usize)
    }

    /// `|val(I)|` in one counting pass.
    pub fn distinct_count(&self) -> usize {
        self.to_view().distinct_count()
    }

    /// `#_v(I)` for an interned value.
    pub fn count_of(&self, value: ValueId) -> usize {
        let v = value.get();
        self.as_ids().iter().filter(|&&slot| slot == v).count()
    }

    /// The number of entries whose value is in `ids`.
    pub fn count_in(&self, ids: &IdSet) -> usize {
        self.as_ids()
            .iter()
            .filter(|&&slot| ids.words.get(slot as usize))
            .count()
    }

    /// The greatest proposed value (`max(I)`).
    pub fn max_id(&self) -> ValueId {
        ValueId(*self.as_ids().iter().max().expect("vectors are non-empty"))
    }

    /// The smallest proposed value (`min(I)`).
    pub fn min_id(&self) -> ValueId {
        ValueId(*self.as_ids().iter().min().expect("vectors are non-empty"))
    }

    /// The `ℓ` greatest distinct values (`max_ℓ(I)`) as an [`IdSet`].
    pub fn greatest_distinct(&self, ell: usize) -> IdSet {
        self.to_view().greatest_distinct(ell)
    }

    /// `Σ_{v ∈ max_ℓ(I)} #_v(I)` without materializing a value set — the
    /// quantity `C_max` membership compares against `x`.
    pub fn greatest_distinct_weight(&self, ell: usize) -> usize {
        let top = self.greatest_distinct(ell);
        self.count_in(&top)
    }

    /// The view where only `me`'s entry is observed — the initial local
    /// view of a flood protocol before any round-1 delivery.
    ///
    /// # Panics
    ///
    /// Panics if `me` is not a process of this system.
    pub fn initial_view(&self, me: ProcessId) -> DenseView {
        let mut view = DenseView::bottom_with_domain(self.len(), self.domain as usize);
        view.set(me, self.get(me));
        view
    }

    /// The fully-observed dense view of this vector.
    pub fn to_view(&self) -> DenseView {
        let n = self.n as usize;
        let mut view = DenseView::bottom_with_domain(n, self.domain as usize);
        view.bottoms = 0;
        let words = view.present.as_mut_slice();
        for (w, word) in words.iter_mut().enumerate() {
            *word = chunk_mask(w * 64, (w * 64 + 64).min(n));
        }
        view.slots.as_mut_slice(n).copy_from_slice(self.as_ids());
        view
    }
}

impl fmt::Display for DenseVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, &slot) in self.as_ids().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "#{slot}")?;
        }
        write!(f, "]")
    }
}

/// The bitmap word covering entries `[base, end)` of the word at `base`.
fn chunk_mask(base: usize, end: usize) -> u64 {
    debug_assert!(end > base && end - base <= 64);
    if end - base == 64 {
        u64::MAX
    } else {
        (1u64 << (end - base)) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(values: &[u32]) -> ValueTable<u32> {
        ValueTable::from_values(values.iter().copied())
    }

    #[test]
    fn table_is_sorted_and_deduped() {
        let t = table(&[30, 10, 30, 20]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.iter().copied().collect::<Vec<_>>(), vec![10, 20, 30]);
        assert_eq!(t.id_of(&10), Some(ValueId::new(0)));
        assert_eq!(t.id_of(&30), Some(ValueId::new(2)));
        assert_eq!(t.id_of(&15), None);
        assert_eq!(*t.value(t.max_id()), 30);
    }

    #[test]
    fn id_order_is_value_order() {
        let t = table(&[7, 3, 99, 42]);
        let mut sorted: Vec<u32> = vec![7, 3, 99, 42];
        sorted.sort_unstable();
        for pair in sorted.windows(2) {
            assert!(t.id_of(&pair[0]).unwrap() < t.id_of(&pair[1]).unwrap());
        }
    }

    #[test]
    fn intern_round_trips() {
        let input = InputVector::new(vec![5u32, 2, 5, 9, 2]);
        let t = ValueTable::from_vector(&input);
        let dense = t.intern_vector(&input);
        assert_eq!(t.vector(&dense), input);

        let view = View::from_options(vec![Some(5u32), None, Some(2), None, Some(9)]);
        let dv = t.intern_view(&view);
        assert_eq!(t.view(&dv), view);
        assert_eq!(dv.count_bottom(), 2);
    }

    #[test]
    fn inline_views_never_allocate_slots() {
        let t = table(&[1, 2, 3]);
        let v = DenseView::all_bottom(16, &t);
        assert!(matches!(v.slots, Slots::Inline(_)));
        assert!(matches!(v.present, Words::Inline(_)));
        let big = DenseView::all_bottom(17, &t);
        assert!(matches!(big.slots, Slots::Heap(_)));
    }

    #[test]
    fn set_and_counts() {
        let t = table(&[10, 20, 30]);
        let mut v = DenseView::all_bottom(4, &t);
        assert_eq!(v.count_bottom(), 4);
        assert_eq!(v.distinct_count(), 0);
        v.set(ProcessId::new(0), t.id_of(&30).unwrap());
        v.set(ProcessId::new(2), t.id_of(&30).unwrap());
        v.set(ProcessId::new(3), t.id_of(&10).unwrap());
        assert_eq!(v.count_bottom(), 1);
        assert_eq!(v.distinct_count(), 2);
        assert_eq!(v.count_of(t.id_of(&30).unwrap()), 2);
        assert_eq!(v.max_id(), t.id_of(&30));
        // Overwrite does not disturb the bottom counter.
        v.set(ProcessId::new(0), t.id_of(&20).unwrap());
        assert_eq!(v.count_bottom(), 1);
        assert_eq!(v.distinct_count(), 3);
    }

    #[test]
    fn merge_missing_is_union() {
        let t = table(&[1, 2, 3]);
        let mut a = DenseView::all_bottom(3, &t);
        a.set(ProcessId::new(0), ValueId::new(0));
        let mut b = DenseView::all_bottom(3, &t);
        b.set(ProcessId::new(1), ValueId::new(1));
        b.set(ProcessId::new(0), ValueId::new(2)); // conflicting entry
        a.merge_missing_from(&b);
        // Union keeps a's existing entry, adopts b's fresh one.
        assert_eq!(a.get(ProcessId::new(0)), Some(ValueId::new(0)));
        assert_eq!(a.get(ProcessId::new(1)), Some(ValueId::new(1)));
        assert_eq!(a.count_bottom(), 1);

        let mut c = DenseView::all_bottom(3, &t);
        c.set(ProcessId::new(0), ValueId::new(0));
        c.merge_from(&b);
        // Overwrite adopts b's conflicting entry — the View::merge_from
        // semantics.
        assert_eq!(c.get(ProcessId::new(0)), Some(ValueId::new(2)));
    }

    #[test]
    fn merge_matches_generic_view_across_word_boundaries() {
        // n = 130 spans three bitmap words; exercise full-word copies.
        let n = 130;
        let t = table(&(0..n as u32).collect::<Vec<_>>());
        let mut generic_a = View::all_bottom(n);
        let mut generic_b = View::all_bottom(n);
        let mut dense_a = DenseView::all_bottom(n, &t);
        let mut dense_b = DenseView::all_bottom(n, &t);
        for i in 0..n {
            if i % 3 != 0 {
                generic_a.set(ProcessId::new(i), (i % 7) as u32);
                dense_a.set(ProcessId::new(i), ValueId::new((i % 7) as u32));
            }
            if i % 2 == 0 {
                generic_b.set(ProcessId::new(i), (i % 5) as u32);
                dense_b.set(ProcessId::new(i), ValueId::new((i % 5) as u32));
            }
        }
        let mut merged = dense_a.clone();
        merged.merge_from(&dense_b);
        generic_a.merge_from(&generic_b);
        assert_eq!(t.view(&merged), generic_a);
        assert_eq!(
            merged.count_bottom(),
            generic_a.count_bottom(),
            "incremental ⊥ counter stays exact through word-chunk merges"
        );
        assert_eq!(merged.distinct_count(), generic_a.distinct_count());
    }

    #[test]
    fn greatest_distinct_and_weights() {
        let t = table(&[1, 5, 9, 12]);
        let input = InputVector::new(vec![5u32, 1, 5, 12, 9]);
        let dense = t.intern_vector(&input);
        let top2 = dense.greatest_distinct(2);
        assert_eq!(t.values_of(&top2), [9, 12].into_iter().collect());
        assert_eq!(dense.count_in(&top2), 2);
        assert_eq!(dense.greatest_distinct_weight(2), 2);
        assert_eq!(dense.greatest_distinct_weight(3), 4);
        assert_eq!(t.values_of(&dense.greatest_distinct(0)), Default::default());
        assert_eq!(dense.max_id(), t.id_of(&12).unwrap());
        assert_eq!(dense.min_id(), t.id_of(&1).unwrap());
    }

    #[test]
    fn idset_retains_greatest_across_words() {
        let mut set = IdSet::over(200);
        for id in [3u32, 70, 130, 199] {
            assert!(set.insert(ValueId::new(id)));
        }
        assert!(!set.insert(ValueId::new(70)));
        assert_eq!(set.len(), 4);
        set.retain_greatest(2);
        assert_eq!(
            set.iter().collect::<Vec<_>>(),
            vec![ValueId::new(130), ValueId::new(199)]
        );
        set.retain_greatest(0);
        assert!(set.is_empty());
    }

    #[test]
    fn containment_and_completion() {
        let t = table(&[1, 2, 3]);
        let full = t.intern_vector(&InputVector::new(vec![1u32, 2, 3]));
        let mut partial = DenseView::all_bottom(3, &t);
        partial.set(ProcessId::new(1), t.id_of(&2).unwrap());
        assert!(partial.is_contained_in(&full.to_view()));
        assert!(!full.to_view().is_contained_in(&partial));
        assert_eq!(partial.to_vector(), None);
        assert_eq!(full.to_view().to_vector(), Some(full.clone()));

        let completed = partial.complete_with(t.id_of(&3).unwrap());
        assert_eq!(t.vector(&completed), InputVector::new(vec![3u32, 2, 3]));
    }

    #[test]
    fn slots_round_trip_through_the_wire_shape() {
        let t = table(&[4, 8]);
        let mut v = DenseView::all_bottom(70, &t);
        v.set(ProcessId::new(0), ValueId::new(1));
        v.set(ProcessId::new(69), ValueId::new(0));
        let decoded = DenseView::from_slots(t.len(), v.as_slots()).unwrap();
        assert_eq!(decoded, v);
        assert_eq!(DenseView::from_slots(2, &[]), None);
        assert_eq!(DenseView::from_slots(1, &[1]), None, "id beyond domain");
    }

    #[test]
    fn display_shows_ids_and_bottom() {
        let t = table(&[4, 8]);
        let mut v = DenseView::all_bottom(2, &t);
        v.set(ProcessId::new(0), ValueId::new(1));
        assert_eq!(v.to_string(), "[#1, ⊥]");
        let vec = t.intern_vector(&InputVector::new(vec![4u32, 8]));
        assert_eq!(vec.to_string(), "[#0, #1]");
        assert_eq!(ValueId::new(3).to_string(), "#3");
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn empty_dense_vector_is_rejected() {
        let _ = DenseVector::from_ids(1, std::iter::empty());
    }

    #[test]
    #[should_panic(expected = "different systems")]
    fn merge_rejects_length_mismatch() {
        let t = table(&[1]);
        let mut a = DenseView::all_bottom(2, &t);
        let b = DenseView::all_bottom(3, &t);
        a.merge_from(&b);
    }
}
