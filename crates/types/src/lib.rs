//! Value, process and input-vector algebra for condition-based set agreement.
//!
//! This crate is the foundational substrate of the `setagree` workspace. It
//! implements the combinatorial objects of Section 2.1 of Bonnet & Raynal,
//! *Conditions for Set Agreement with an Application to Synchronous Systems*
//! (ICDCS 2008):
//!
//! * [`ProcessId`] — the identity of one of the `n` processes `p_1 … p_n`.
//! * [`InputVector`] — a vector with one *proposed value* per process.
//! * [`View`] — an input vector in which some entries may be the default
//!   value `⊥` (a process whose proposal was not observed); views are
//!   ordered by *containment* (`J ≤ J'`).
//! * [`distance`] — the Hamming distance `d_H`, the *generalized distance*
//!   `d_G` over arbitrary sets of vectors, and the *intersecting vector*.
//!
//! # Example
//!
//! ```
//! use setagree_types::{InputVector, View, distance};
//!
//! let i1 = InputVector::new(vec![1, 1, 3, 4]);
//! let i2 = InputVector::new(vec![2, 2, 3, 4]);
//!
//! // The two vectors differ in their first two entries.
//! assert_eq!(distance::hamming(&i1, &i2), 2);
//! assert_eq!(distance::generalized(&[&i1, &i2]), 2);
//!
//! // A view observed by a process that missed p1 and p2's proposals:
//! let j = View::from_options(vec![None, None, Some(3), Some(4)]);
//! assert!(j.is_contained_in_vector(&i1));
//! assert!(j.is_contained_in_vector(&i2));
//! assert_eq!(j.count_bottom(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod dense;
pub mod distance;
pub mod process;
pub mod value;
pub mod vector;
pub mod view;

pub use dense::{DenseVector, DenseView, IdSet, ValueId, ValueTable};
pub use distance::{generalized, hamming, intersecting_vector};
pub use process::{ProcessId, ProcessSet};
pub use value::{ProposalValue, Value};
pub use vector::InputVector;
pub use view::View;
