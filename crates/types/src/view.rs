//! Views: input vectors with possibly-missing (`⊥`) entries.
//!
//! A *view* `J` is what a process observes of the input vector: entry `J[i]`
//! is either the value proposed by `p_i` or the default value `⊥` if `p_i`'s
//! proposal was not received (Section 2.1). `⊥` is represented by
//! [`Option::None`], which statically guarantees `⊥ ∉ V`.
//!
//! Views are partially ordered by *containment*: `J ≤ J'` iff every non-`⊥`
//! entry of `J` equals the corresponding entry of `J'`. The synchronous
//! model's ordered round-1 sends guarantee the views obtained by the
//! processes are totally ordered by containment, which the agreement proof
//! of the paper's algorithm relies on.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::process::ProcessId;
use crate::value::ProposalValue;
use crate::vector::InputVector;

/// An input vector in which some entries may be `⊥` (unobserved).
///
/// # Example
///
/// ```
/// use setagree_types::{InputVector, View};
///
/// let smaller = View::from_options(vec![Some(1), None, None]);
/// let larger = View::from_options(vec![Some(1), Some(2), None]);
/// let full = InputVector::new(vec![1, 2, 3]);
///
/// assert!(smaller.is_contained_in(&larger));
/// assert!(larger.is_contained_in_vector(&full));
/// assert_eq!(smaller.count_bottom(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct View<V> {
    entries: Vec<Option<V>>,
}

impl<V: ProposalValue> View<V> {
    /// Creates a view from per-process optional values (`None` is `⊥`).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty.
    pub fn from_options(entries: Vec<Option<V>>) -> Self {
        assert!(!entries.is_empty(), "a view needs at least one entry");
        View { entries }
    }

    /// The all-`⊥` view over `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn all_bottom(n: usize) -> Self {
        assert!(n > 0, "a view needs at least one entry");
        View {
            entries: vec![None; n],
        }
    }

    /// The number of processes `n = |J|`.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always `false`: views have at least one entry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The entry observed for the given process (`None` is `⊥`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a process of this system.
    pub fn get(&self, id: ProcessId) -> Option<&V> {
        self.entries[id.index()].as_ref()
    }

    /// Records the value proposed by `id`, overwriting `⊥` or a previous
    /// observation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a process of this system.
    pub fn set(&mut self, id: ProcessId, v: V) {
        self.entries[id.index()] = Some(v);
    }

    /// Iterates over the entries in process order (`None` is `⊥`).
    pub fn iter(&self) -> std::slice::Iter<'_, Option<V>> {
        self.entries.iter()
    }

    /// `#_⊥(J)`: the number of `⊥` entries.
    pub fn count_bottom(&self) -> usize {
        self.entries.iter().filter(|e| e.is_none()).count()
    }

    /// `val(J)`: the set of distinct non-`⊥` values present in the view.
    pub fn distinct_values(&self) -> BTreeSet<V> {
        self.entries.iter().flatten().cloned().collect()
    }

    /// `|val(J)|`: the number of distinct non-`⊥` values, without cloning
    /// any value out of the view (mirrors
    /// [`InputVector::distinct_count`](crate::InputVector::distinct_count)
    /// — use it in checks that would otherwise materialize
    /// [`distinct_values`](View::distinct_values) only to take `.len()`).
    pub fn distinct_count(&self) -> usize {
        self.distinct_with_counts().len()
    }

    /// The distinct non-`⊥` values with their multiplicities, ascending —
    /// one sort of borrowed entries, **zero clones**. This is the single
    /// counting pass behind [`distinct_count`](View::distinct_count),
    /// [`greatest_distinct`](View::greatest_distinct) and the legality
    /// oracles' `C_max` checks, which previously materialized whole
    /// `BTreeSet<V>`s per check.
    pub fn distinct_with_counts(&self) -> Vec<(&V, usize)> {
        let mut refs: Vec<&V> = self.entries.iter().flatten().collect();
        refs.sort_unstable();
        let mut runs: Vec<(&V, usize)> = Vec::with_capacity(refs.len().min(16));
        for v in refs {
            match runs.last_mut() {
                Some((last, count)) if *last == v => *count += 1,
                _ => runs.push((v, 1)),
            }
        }
        runs
    }

    /// `Σ_{v ∈ max_ℓ(J)} #_v(J)`: the total multiplicity of the `ℓ`
    /// greatest distinct observed values — the density `C_max` compares
    /// against `x` — in one counting pass with no value set materialized.
    pub fn greatest_distinct_weight(&self, ell: usize) -> usize {
        self.distinct_with_counts()
            .iter()
            .rev()
            .take(ell)
            .map(|(_, count)| count)
            .sum()
    }

    /// `#_v(J)`: the number of non-`⊥` entries equal to `v`.
    pub fn count_of(&self, v: &V) -> usize {
        self.entries
            .iter()
            .filter(|e| e.as_ref() == Some(v))
            .count()
    }

    /// The total number of non-`⊥` entries whose value belongs to `values`.
    pub fn count_in(&self, values: &BTreeSet<V>) -> usize {
        self.entries
            .iter()
            .flatten()
            .filter(|v| values.contains(*v))
            .count()
    }

    /// The greatest non-`⊥` value (`max(V_i)` in Figure 2), or `None` if the
    /// view is all-`⊥`.
    pub fn max_value(&self) -> Option<&V> {
        self.entries.iter().flatten().max()
    }

    /// The `ℓ` greatest distinct non-`⊥` values (`max_ℓ(J)`). Clones only
    /// the `≤ ℓ` returned values, not the whole distinct set.
    pub fn greatest_distinct(&self, ell: usize) -> BTreeSet<V> {
        self.distinct_with_counts()
            .iter()
            .rev()
            .take(ell)
            .map(|(v, _)| (*v).clone())
            .collect()
    }

    /// Containment `J ≤ J'`: every non-`⊥` entry of `self` equals the
    /// corresponding entry of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the views have different lengths.
    pub fn is_contained_in(&self, other: &View<V>) -> bool {
        assert_eq!(self.len(), other.len(), "views over different systems");
        self.entries
            .iter()
            .zip(&other.entries)
            .all(|(a, b)| match a {
                None => true,
                Some(va) => b.as_ref() == Some(va),
            })
    }

    /// Containment `J ≤ I` against a full input vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn is_contained_in_vector(&self, vector: &InputVector<V>) -> bool {
        assert_eq!(self.len(), vector.len(), "view and vector lengths differ");
        self.entries
            .iter()
            .zip(vector.iter())
            .all(|(a, b)| match a {
                None => true,
                Some(va) => va == b,
            })
    }

    /// Converts to a full input vector if the view has no `⊥` entry.
    pub fn to_vector(&self) -> Option<InputVector<V>> {
        let entries: Option<Vec<V>> = self.entries.iter().cloned().collect();
        entries.map(InputVector::new)
    }

    /// Merges another view's observations into this one (entry-wise union;
    /// `other`'s non-`⊥` entries overwrite). For views of the *same* input
    /// vector — the only way protocols use it — the union is exactly the
    /// least upper bound in the containment order.
    ///
    /// # Panics
    ///
    /// Panics if the views have different lengths.
    ///
    /// # Example
    ///
    /// ```
    /// use setagree_types::View;
    ///
    /// let mut mine = View::from_options(vec![Some(1), None, None]);
    /// let theirs = View::from_options(vec![None, Some(2), None]);
    /// mine.merge_from(&theirs);
    /// assert_eq!(mine, View::from_options(vec![Some(1), Some(2), None]));
    /// ```
    pub fn merge_from(&mut self, other: &View<V>) {
        assert_eq!(self.len(), other.len(), "views over different systems");
        for (mine, theirs) in self.entries.iter_mut().zip(other.entries.iter()) {
            if let Some(v) = theirs {
                *mine = Some(v.clone());
            }
        }
    }

    /// Completes the view into a full vector by substituting `fill` for
    /// every `⊥` entry. Used by adversarial completion enumeration.
    pub fn complete_with(&self, fill: &V) -> InputVector<V> {
        InputVector::new(
            self.entries
                .iter()
                .map(|e| e.clone().unwrap_or_else(|| fill.clone()))
                .collect(),
        )
    }

    /// Consumes the view, returning its entries.
    pub fn into_entries(self) -> Vec<Option<V>> {
        self.entries
    }
}

impl<V: ProposalValue> From<InputVector<V>> for View<V> {
    fn from(vector: InputVector<V>) -> Self {
        View {
            entries: vector.into_entries().into_iter().map(Some).collect(),
        }
    }
}

impl<V: fmt::Display> fmt::Display for View<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match e {
                Some(v) => write!(f, "{v}")?,
                None => write!(f, "⊥")?,
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jv(entries: &[Option<u32>]) -> View<u32> {
        View::from_options(entries.to_vec())
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn empty_view_is_rejected() {
        let _ = View::<u32>::from_options(vec![]);
    }

    #[test]
    fn all_bottom_counts() {
        let j = View::<u32>::all_bottom(4);
        assert_eq!(j.count_bottom(), 4);
        assert_eq!(j.distinct_values(), BTreeSet::new());
        assert_eq!(j.distinct_count(), 0);
        assert_eq!(j.max_value(), None);
    }

    #[test]
    fn distinct_count_matches_distinct_values() {
        for entries in [
            vec![Some(1u32), Some(1), None, Some(2)],
            vec![Some(3), Some(2), Some(1)],
            vec![None, Some(7)],
        ] {
            let j = View::from_options(entries);
            assert_eq!(j.distinct_count(), j.distinct_values().len());
        }
    }

    #[test]
    fn set_and_get() {
        let mut j = View::all_bottom(3);
        j.set(ProcessId::new(1), 7u32);
        assert_eq!(j.get(ProcessId::new(1)), Some(&7));
        assert_eq!(j.get(ProcessId::new(0)), None);
        assert_eq!(j.count_bottom(), 2);
    }

    #[test]
    fn containment_is_reflexive_and_monotone() {
        let j1 = jv(&[Some(1), None, None]);
        let j2 = jv(&[Some(1), Some(2), None]);
        let j3 = jv(&[Some(1), Some(2), Some(3)]);
        assert!(j1.is_contained_in(&j1));
        assert!(j1.is_contained_in(&j2));
        assert!(j2.is_contained_in(&j3));
        assert!(j1.is_contained_in(&j3), "containment is transitive");
        assert!(!j2.is_contained_in(&j1));
    }

    #[test]
    fn containment_requires_matching_values() {
        let j1 = jv(&[Some(1), None]);
        let j2 = jv(&[Some(2), Some(2)]);
        assert!(!j1.is_contained_in(&j2));
    }

    #[test]
    fn containment_in_vector() {
        let i = InputVector::new(vec![1, 2, 3]);
        assert!(jv(&[None, Some(2), None]).is_contained_in_vector(&i));
        assert!(!jv(&[Some(9), None, None]).is_contained_in_vector(&i));
    }

    #[test]
    fn to_vector_requires_fullness() {
        assert_eq!(jv(&[Some(1), None]).to_vector(), None);
        assert_eq!(
            jv(&[Some(1), Some(2)]).to_vector(),
            Some(InputVector::new(vec![1, 2]))
        );
    }

    #[test]
    fn complete_with_fills_bottoms() {
        let j = jv(&[Some(1), None, Some(3)]);
        assert_eq!(j.complete_with(&9), InputVector::new(vec![1, 9, 3]));
    }

    #[test]
    fn count_helpers() {
        let j = jv(&[Some(1), Some(1), None, Some(2)]);
        assert_eq!(j.count_of(&1), 2);
        assert_eq!(j.count_in(&[1, 2].into_iter().collect()), 3);
        assert_eq!(j.greatest_distinct(1), [2].into_iter().collect());
    }

    #[test]
    fn merge_from_is_union_and_idempotent() {
        let mut a = jv(&[Some(1), None, Some(3)]);
        let b = jv(&[None, Some(2), Some(3)]);
        a.merge_from(&b);
        assert_eq!(a, jv(&[Some(1), Some(2), Some(3)]));
        let before = a.clone();
        a.merge_from(&b);
        assert_eq!(a, before, "merging again changes nothing");
    }

    #[test]
    fn merge_from_makes_the_least_upper_bound() {
        let a = jv(&[Some(1), None, None]);
        let b = jv(&[None, None, Some(3)]);
        let mut union = a.clone();
        union.merge_from(&b);
        assert!(a.is_contained_in(&union));
        assert!(b.is_contained_in(&union));
        assert_eq!(union.count_bottom(), 1);
    }

    #[test]
    #[should_panic(expected = "different systems")]
    fn merge_from_rejects_length_mismatch() {
        let mut a = jv(&[Some(1)]);
        a.merge_from(&View::from_options(vec![Some(1), Some(2)]));
    }

    #[test]
    fn display_prints_bottom() {
        assert_eq!(jv(&[Some(1), None]).to_string(), "[1, ⊥]");
    }

    #[test]
    fn from_vector_is_full() {
        let j: View<u32> = InputVector::new(vec![4, 5]).into();
        assert_eq!(j.count_bottom(), 0);
    }
}
