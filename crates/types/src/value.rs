//! Proposal values.
//!
//! The framework is generic over the type of proposed values: anything that
//! is cloneable, totally ordered and debuggable qualifies (the total order
//! is what the paper's deterministic extraction functions `max_ℓ`/`min_ℓ`
//! rely on). The [`Value`] newtype is a convenient concrete choice used by
//! the examples, tests and benchmarks of this workspace.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The bound required of a proposable value.
///
/// This is a *trait alias*: it is blanket-implemented for every type that
/// satisfies the bound, so user types never implement it by hand.
///
/// The total order ([`Ord`]) is load-bearing: the paper's canonical
/// recognizing functions `max_ℓ` and `min_ℓ` (Section 2.3) extract the ℓ
/// greatest (resp. smallest) values of an input vector, and the synchronous
/// algorithm of Figure 2 reduces value classes with `max`.
///
/// # Example
///
/// ```
/// fn takes_value<V: setagree_types::ProposalValue>(v: V) -> V { v }
/// takes_value(42u64);
/// takes_value("strings work too");
/// ```
pub trait ProposalValue: Clone + Ord + fmt::Debug {}

impl<T: Clone + Ord + fmt::Debug> ProposalValue for T {}

/// A concrete proposal value: a thin, ordered wrapper around `u32`.
///
/// `Value` exists so that examples, tests and benchmarks share one obvious
/// value type without committing the framework to it — every public API in
/// this workspace is generic over [`ProposalValue`].
///
/// # Example
///
/// ```
/// use setagree_types::Value;
///
/// let v = Value::new(7);
/// assert_eq!(v.get(), 7);
/// assert_eq!(Value::from(7u32), v);
/// assert_eq!(v.to_string(), "7");
/// assert!(Value::new(3) < Value::new(4));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Value(u32);

impl Value {
    /// Creates a new value.
    pub const fn new(raw: u32) -> Self {
        Value(raw)
    }

    /// Returns the wrapped integer.
    pub const fn get(self) -> u32 {
        self.0
    }
}

impl From<u32> for Value {
    fn from(raw: u32) -> Self {
        Value(raw)
    }
}

impl From<Value> for u32 {
    fn from(v: Value) -> Self {
        v.0
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrips_through_u32() {
        for raw in [0u32, 1, 17, u32::MAX] {
            assert_eq!(u32::from(Value::from(raw)), raw);
            assert_eq!(Value::new(raw).get(), raw);
        }
    }

    #[test]
    fn value_order_matches_integer_order() {
        assert!(Value::new(1) < Value::new(2));
        assert!(Value::new(2) > Value::new(1));
        assert_eq!(Value::new(5).max(Value::new(9)), Value::new(9));
    }

    #[test]
    fn value_display_is_the_integer() {
        assert_eq!(Value::new(123).to_string(), "123");
    }

    #[test]
    fn value_default_is_zero() {
        assert_eq!(Value::default(), Value::new(0));
    }

    #[test]
    fn common_types_are_proposal_values() {
        fn assert_pv<V: ProposalValue>() {}
        assert_pv::<Value>();
        assert_pv::<u64>();
        assert_pv::<String>();
        assert_pv::<(u8, u8)>();
    }

    #[test]
    fn value_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Value>();
    }
}
