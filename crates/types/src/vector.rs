//! Input vectors.
//!
//! An *input vector* `I` has one entry per process: `I[i]` is the value
//! proposed by `p_i` (Section 2.1). Unlike a [`View`], an
//! input vector has **no** `⊥` entries — it is the ground truth of an
//! execution, of which processes observe views.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::process::ProcessId;
use crate::value::ProposalValue;
use crate::view::View;

/// A vector with one proposed value per process (no `⊥` entries).
///
/// # Example
///
/// ```
/// use setagree_types::{InputVector, ProcessId};
///
/// let i = InputVector::new(vec![3, 1, 3, 2]);
/// assert_eq!(i.len(), 4);
/// assert_eq!(*i.get(ProcessId::new(0)), 3);
/// // val(I): the set of distinct values present in I.
/// assert_eq!(i.distinct_values(), [1, 2, 3].into_iter().collect());
/// // #_3(I): the number of occurrences of 3 in I.
/// assert_eq!(i.count_of(&3), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InputVector<V> {
    entries: Vec<V>,
}

impl<V: ProposalValue> InputVector<V> {
    /// Creates an input vector from one value per process.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty: the paper assumes `n ≥ 1`.
    pub fn new(entries: Vec<V>) -> Self {
        assert!(
            !entries.is_empty(),
            "an input vector needs at least one entry"
        );
        InputVector { entries }
    }

    /// The number of processes `n = |I|`.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always `false`: input vectors have at least one entry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The value proposed by the given process.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a process of this system (index ≥ n).
    pub fn get(&self, id: ProcessId) -> &V {
        &self.entries[id.index()]
    }

    /// Iterates over the entries in process order `p_1 … p_n`.
    pub fn iter(&self) -> std::slice::Iter<'_, V> {
        self.entries.iter()
    }

    /// Borrows the entries as a slice, in process order.
    pub fn as_slice(&self) -> &[V] {
        &self.entries
    }

    /// `val(I)`: the set of distinct values present in the vector.
    pub fn distinct_values(&self) -> BTreeSet<V> {
        self.entries.iter().cloned().collect()
    }

    /// `|val(I)|`: the number of distinct values, without allocating the set
    /// contents beyond what ordering requires.
    pub fn distinct_count(&self) -> usize {
        self.distinct_with_counts().len()
    }

    /// The distinct values with their multiplicities, ascending — one
    /// sort of borrowed entries, zero clones (the counterpart of
    /// [`View::distinct_with_counts`](crate::View::distinct_with_counts)).
    pub fn distinct_with_counts(&self) -> Vec<(&V, usize)> {
        let mut refs: Vec<&V> = self.entries.iter().collect();
        refs.sort_unstable();
        let mut runs: Vec<(&V, usize)> = Vec::with_capacity(refs.len().min(16));
        for v in refs {
            match runs.last_mut() {
                Some((last, count)) if *last == v => *count += 1,
                _ => runs.push((v, 1)),
            }
        }
        runs
    }

    /// `Σ_{v ∈ max_ℓ(I)} #_v(I)`: the total multiplicity of the `ℓ`
    /// greatest distinct values — the density the paper's `C_max(x, ℓ)`
    /// membership compares against `x` — without materializing any value
    /// set.
    pub fn greatest_distinct_weight(&self, ell: usize) -> usize {
        self.distinct_with_counts()
            .iter()
            .rev()
            .take(ell)
            .map(|(_, count)| count)
            .sum()
    }

    /// `#_v(I)`: the number of entries equal to `v`.
    pub fn count_of(&self, v: &V) -> usize {
        self.entries.iter().filter(|e| *e == v).count()
    }

    /// The total number of entries whose value belongs to `values`
    /// (`Σ_{v ∈ values} #_v(I)` — the quantity bounded by the paper's
    /// *density* property).
    pub fn count_in(&self, values: &BTreeSet<V>) -> usize {
        self.entries.iter().filter(|e| values.contains(*e)).count()
    }

    /// The greatest value of the vector (`max(I)`).
    pub fn max_value(&self) -> &V {
        self.entries
            .iter()
            .max()
            .expect("input vectors are non-empty")
    }

    /// The smallest value of the vector (`min(I)`).
    pub fn min_value(&self) -> &V {
        self.entries
            .iter()
            .min()
            .expect("input vectors are non-empty")
    }

    /// The `ℓ` greatest **distinct** values of the vector — the paper's
    /// `max_ℓ(I)` (Section 2.3). Returns `min(ℓ, |val(I)|)` values.
    ///
    /// # Example
    ///
    /// ```
    /// use setagree_types::InputVector;
    ///
    /// let i = InputVector::new(vec![5, 2, 5, 9]);
    /// assert_eq!(i.greatest_distinct(2), [5, 9].into_iter().collect());
    /// ```
    pub fn greatest_distinct(&self, ell: usize) -> BTreeSet<V> {
        self.distinct_with_counts()
            .iter()
            .rev()
            .take(ell)
            .map(|(v, _)| (*v).clone())
            .collect()
    }

    /// The `ℓ` smallest distinct values — the paper's `min_ℓ(I)`.
    pub fn smallest_distinct(&self, ell: usize) -> BTreeSet<V> {
        self.distinct_with_counts()
            .iter()
            .take(ell)
            .map(|(v, _)| (*v).clone())
            .collect()
    }

    /// The full view of this vector: every entry observed, none `⊥`.
    pub fn to_view(&self) -> View<V> {
        View::from_options(self.entries.iter().cloned().map(Some).collect())
    }

    /// Consumes the vector, returning its entries.
    pub fn into_entries(self) -> Vec<V> {
        self.entries
    }
}

impl<V: ProposalValue> From<Vec<V>> for InputVector<V> {
    /// Equivalent to [`InputVector::new`].
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty.
    fn from(entries: Vec<V>) -> Self {
        InputVector::new(entries)
    }
}

impl<'a, V: ProposalValue> IntoIterator for &'a InputVector<V> {
    type Item = &'a V;
    type IntoIter = std::slice::Iter<'a, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

impl<V: ProposalValue> IntoIterator for InputVector<V> {
    type Item = V;
    type IntoIter = std::vec::IntoIter<V>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<V: fmt::Display> fmt::Display for InputVector<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(entries: &[u32]) -> InputVector<u32> {
        InputVector::new(entries.to_vec())
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn empty_vector_is_rejected() {
        let _ = InputVector::<u32>::new(vec![]);
    }

    #[test]
    fn get_indexes_by_process() {
        let i = v(&[10, 20, 30]);
        assert_eq!(*i.get(ProcessId::new(1)), 20);
    }

    #[test]
    fn distinct_values_and_count() {
        let i = v(&[1, 1, 2, 3, 3, 3]);
        assert_eq!(i.distinct_values(), [1, 2, 3].into_iter().collect());
        assert_eq!(i.distinct_count(), 3);
        assert_eq!(i.count_of(&3), 3);
        assert_eq!(i.count_of(&9), 0);
    }

    #[test]
    fn count_in_sums_occurrences() {
        let i = v(&[1, 1, 2, 3]);
        let set: BTreeSet<u32> = [1, 3].into_iter().collect();
        assert_eq!(i.count_in(&set), 3);
        assert_eq!(i.count_in(&BTreeSet::new()), 0);
    }

    #[test]
    fn min_max_values() {
        let i = v(&[4, 2, 9, 2]);
        assert_eq!(*i.max_value(), 9);
        assert_eq!(*i.min_value(), 2);
    }

    #[test]
    fn greatest_distinct_takes_top_ell() {
        let i = v(&[5, 2, 5, 9, 1]);
        assert_eq!(i.greatest_distinct(1), [9].into_iter().collect());
        assert_eq!(i.greatest_distinct(2), [9, 5].into_iter().collect());
        assert_eq!(i.greatest_distinct(10), [1, 2, 5, 9].into_iter().collect());
        assert_eq!(i.greatest_distinct(0), BTreeSet::new());
    }

    #[test]
    fn smallest_distinct_takes_bottom_ell() {
        let i = v(&[5, 2, 5, 9, 1]);
        assert_eq!(i.smallest_distinct(2), [1, 2].into_iter().collect());
    }

    #[test]
    fn to_view_has_no_bottom() {
        let i = v(&[1, 2]);
        let j = i.to_view();
        assert_eq!(j.count_bottom(), 0);
        assert!(j.is_contained_in_vector(&i));
    }

    #[test]
    fn display_formats_like_a_vector() {
        assert_eq!(v(&[1, 2, 3]).to_string(), "[1, 2, 3]");
    }

    #[test]
    fn iteration_yields_entries_in_order() {
        let i = v(&[7, 8]);
        assert_eq!(i.iter().copied().collect::<Vec<_>>(), vec![7, 8]);
        assert_eq!((&i).into_iter().count(), 2);
        assert_eq!(i.clone().into_iter().collect::<Vec<_>>(), vec![7, 8]);
        assert_eq!(i.into_entries(), vec![7, 8]);
    }
}
