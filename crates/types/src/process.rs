//! Process identities.
//!
//! The system consists of a finite set of `n` processes `Π = {p_1, …, p_n}`
//! (Section 2.1 of the paper). A [`ProcessId`] is a zero-based index into
//! that set; [`ProcessSet`] is a compact set of process identities used by
//! the simulator substrates to track crashed/decided processes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The identity of one process among `n`.
///
/// Internally zero-based (`ProcessId::new(0)` is the paper's `p_1`); the
/// [`fmt::Display`] implementation prints the paper's one-based name so that
/// traces read like the paper.
///
/// # Example
///
/// ```
/// use setagree_types::ProcessId;
///
/// let p = ProcessId::new(0);
/// assert_eq!(p.index(), 0);
/// assert_eq!(p.to_string(), "p1");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ProcessId(usize);

impl ProcessId {
    /// Creates the identity of the process with the given zero-based index.
    pub const fn new(index: usize) -> Self {
        ProcessId(index)
    }

    /// Returns the zero-based index of this process.
    pub const fn index(self) -> usize {
        self.0
    }

    /// Iterates over the identities of all `n` processes, in the paper's
    /// predetermined order `p_1, p_2, …, p_n`.
    ///
    /// # Example
    ///
    /// ```
    /// use setagree_types::ProcessId;
    ///
    /// let ids: Vec<_> = ProcessId::all(3).collect();
    /// assert_eq!(ids, vec![ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)]);
    /// ```
    pub fn all(n: usize) -> impl DoubleEndedIterator<Item = ProcessId> + ExactSizeIterator {
        (0..n).map(ProcessId)
    }
}

impl From<usize> for ProcessId {
    fn from(index: usize) -> Self {
        ProcessId(index)
    }
}

impl From<ProcessId> for usize {
    fn from(id: ProcessId) -> Self {
        id.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0 + 1)
    }
}

/// A set of process identities over a fixed universe of `n` processes.
///
/// Backed by a boolean membership vector: O(1) insert/contains, O(n)
/// iteration — the right trade-off for simulator bookkeeping where `n` is
/// small and membership tests are hot.
///
/// # Example
///
/// ```
/// use setagree_types::{ProcessId, ProcessSet};
///
/// let mut crashed = ProcessSet::empty(4);
/// crashed.insert(ProcessId::new(2));
/// assert!(crashed.contains(ProcessId::new(2)));
/// assert!(!crashed.contains(ProcessId::new(0)));
/// assert_eq!(crashed.len(), 1);
/// assert_eq!(crashed.complement().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProcessSet {
    members: Vec<bool>,
}

impl ProcessSet {
    /// Creates an empty set over a universe of `n` processes.
    pub fn empty(n: usize) -> Self {
        ProcessSet {
            members: vec![false; n],
        }
    }

    /// Creates the full set containing all `n` processes.
    pub fn full(n: usize) -> Self {
        ProcessSet {
            members: vec![true; n],
        }
    }

    /// The size `n` of the process universe (not the cardinality of the set).
    pub fn universe(&self) -> usize {
        self.members.len()
    }

    /// The number of processes in the set.
    pub fn len(&self) -> usize {
        self.members.iter().filter(|&&m| m).count()
    }

    /// Returns `true` if no process is in the set.
    pub fn is_empty(&self) -> bool {
        !self.members.iter().any(|&m| m)
    }

    /// Inserts a process; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the universe.
    pub fn insert(&mut self, id: ProcessId) -> bool {
        let slot = &mut self.members[id.index()];
        let fresh = !*slot;
        *slot = true;
        fresh
    }

    /// Removes a process; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the universe.
    pub fn remove(&mut self, id: ProcessId) -> bool {
        let slot = &mut self.members[id.index()];
        let present = *slot;
        *slot = false;
        present
    }

    /// Returns `true` if the process is in the set.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the universe.
    pub fn contains(&self, id: ProcessId) -> bool {
        self.members[id.index()]
    }

    /// Iterates over the members in increasing process order.
    pub fn iter(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.members
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| ProcessId(i))
    }

    /// The set of processes *not* in this set (e.g. `UP_r`, the processes
    /// that have not crashed by the end of round `r`).
    pub fn complement(&self) -> ProcessSet {
        ProcessSet {
            members: self.members.iter().map(|&m| !m).collect(),
        }
    }

    /// The union of two sets over the same universe.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union(&self, other: &ProcessSet) -> ProcessSet {
        assert_eq!(
            self.universe(),
            other.universe(),
            "process sets over different universes"
        );
        ProcessSet {
            members: self
                .members
                .iter()
                .zip(&other.members)
                .map(|(&a, &b)| a || b)
                .collect(),
        }
    }
}

impl FromIterator<ProcessId> for ProcessSet {
    /// Collects process ids into a set whose universe is just large enough
    /// to hold the largest id.
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let ids: Vec<ProcessId> = iter.into_iter().collect();
        let n = ids.iter().map(|id| id.index() + 1).max().unwrap_or(0);
        let mut set = ProcessSet::empty(n);
        for id in ids {
            set.insert(id);
        }
        set
    }
}

impl Extend<ProcessId> for ProcessSet {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }
}

impl fmt::Display for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for id in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{id}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_display_is_one_based() {
        assert_eq!(ProcessId::new(0).to_string(), "p1");
        assert_eq!(ProcessId::new(9).to_string(), "p10");
    }

    #[test]
    fn all_yields_n_ids_in_order() {
        let ids: Vec<_> = ProcessId::all(4).collect();
        assert_eq!(ids.len(), 4);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empty_and_full_sets() {
        let e = ProcessSet::empty(5);
        let f = ProcessSet::full(5);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(f.len(), 5);
        assert_eq!(e.complement(), f);
        assert_eq!(f.complement(), e);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = ProcessSet::empty(3);
        assert!(s.insert(ProcessId::new(1)));
        assert!(!s.insert(ProcessId::new(1)), "double insert reports false");
        assert!(s.contains(ProcessId::new(1)));
        assert!(s.remove(ProcessId::new(1)));
        assert!(!s.remove(ProcessId::new(1)), "double remove reports false");
        assert!(s.is_empty());
    }

    #[test]
    fn union_merges_members() {
        let mut a = ProcessSet::empty(4);
        let mut b = ProcessSet::empty(4);
        a.insert(ProcessId::new(0));
        b.insert(ProcessId::new(3));
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        assert!(u.contains(ProcessId::new(0)) && u.contains(ProcessId::new(3)));
    }

    #[test]
    #[should_panic(expected = "different universes")]
    fn union_rejects_mismatched_universes() {
        let _ = ProcessSet::empty(3).union(&ProcessSet::empty(4));
    }

    #[test]
    fn from_iterator_sizes_universe() {
        let s: ProcessSet = [ProcessId::new(2), ProcessId::new(0)].into_iter().collect();
        assert_eq!(s.universe(), 3);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn display_lists_members() {
        let s: ProcessSet = [ProcessId::new(0), ProcessId::new(2)].into_iter().collect();
        assert_eq!(s.to_string(), "{p1, p3}");
    }

    #[test]
    fn iter_is_in_increasing_order() {
        let mut s = ProcessSet::empty(6);
        for i in [5, 1, 3] {
            s.insert(ProcessId::new(i));
        }
        let got: Vec<_> = s.iter().map(|p| p.index()).collect();
        assert_eq!(got, vec![1, 3, 5]);
    }
}
