//! Distances between input vectors.
//!
//! Implements the metric toolbox of Section 2.1:
//!
//! * [`hamming`] — `d_H(J_1, J_2)`, the number of entries in which two
//!   vectors differ;
//! * [`generalized`] — `d_G(J_1, …, J_z)`, the number of distinct entries
//!   for which at least two of the vectors differ (reduces to `d_H` for two
//!   vectors);
//! * [`intersecting_vector`] — `⋂_{1..z} I_j`, the view containing the
//!   `n − d_G` entries on which all vectors agree, `⊥` elsewhere.

use crate::value::ProposalValue;
use crate::vector::InputVector;
use crate::view::View;

/// The Hamming distance `d_H(a, b)`: the number of entries in which `a` and
/// `b` differ.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
///
/// # Example
///
/// ```
/// use setagree_types::{distance, InputVector};
///
/// let a = InputVector::new(vec![1, 2, 3]);
/// let b = InputVector::new(vec![1, 9, 9]);
/// assert_eq!(distance::hamming(&a, &b), 2);
/// ```
pub fn hamming<V: ProposalValue>(a: &InputVector<V>, b: &InputVector<V>) -> usize {
    assert_eq!(a.len(), b.len(), "vectors over different systems");
    a.iter().zip(b.iter()).filter(|(x, y)| x != y).count()
}

/// The generalized distance `d_G(I_1, …, I_z)`: the number of entry
/// positions at which at least two of the vectors differ.
///
/// For two vectors this is exactly the Hamming distance; for one vector (or
/// an empty set) it is `0`.
///
/// # Panics
///
/// Panics if the vectors do not all have the same length.
///
/// # Example
///
/// The paper's own example:
/// `d_G([a,a,e,b,b], [a,a,e,c,c], [a,f,e,b,c]) = 3` — positions 2, 4, 5
/// (1-based) are contested.
///
/// ```
/// use setagree_types::{distance, InputVector};
///
/// let i1 = InputVector::new(vec!['a', 'a', 'e', 'b', 'b']);
/// let i2 = InputVector::new(vec!['a', 'a', 'e', 'c', 'c']);
/// let i3 = InputVector::new(vec!['a', 'f', 'e', 'b', 'c']);
/// assert_eq!(distance::generalized(&[&i1, &i2, &i3]), 3);
/// ```
pub fn generalized<V: ProposalValue>(vectors: &[&InputVector<V>]) -> usize {
    let Some((first, rest)) = vectors.split_first() else {
        return 0;
    };
    let n = first.len();
    for v in rest {
        assert_eq!(v.len(), n, "vectors over different systems");
    }
    (0..n)
        .filter(|&pos| {
            let pivot = &first.as_slice()[pos];
            rest.iter().any(|v| &v.as_slice()[pos] != pivot)
        })
        .count()
}

/// The intersecting vector `⋂_{1..z} I_j`: a view whose entry at position
/// `p` is the common value if all vectors agree at `p`, and `⊥` otherwise.
///
/// By construction the view has exactly `n − d_G(I_1, …, I_z)` non-`⊥`
/// entries.
///
/// # Panics
///
/// Panics if `vectors` is empty or the vectors have different lengths.
///
/// # Example
///
/// ```
/// use setagree_types::{distance, InputVector, View};
///
/// let i1 = InputVector::new(vec![1, 2, 3]);
/// let i2 = InputVector::new(vec![1, 9, 3]);
/// let inter = distance::intersecting_vector(&[&i1, &i2]);
/// assert_eq!(inter, View::from_options(vec![Some(1), None, Some(3)]));
/// ```
pub fn intersecting_vector<V: ProposalValue>(vectors: &[&InputVector<V>]) -> View<V> {
    let (first, rest) = vectors
        .split_first()
        .expect("intersecting vector of an empty set is undefined");
    let n = first.len();
    for v in rest {
        assert_eq!(v.len(), n, "vectors over different systems");
    }
    View::from_options(
        (0..n)
            .map(|pos| {
                let pivot = &first.as_slice()[pos];
                if rest.iter().all(|v| &v.as_slice()[pos] == pivot) {
                    Some(pivot.clone())
                } else {
                    None
                }
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(entries: &[u32]) -> InputVector<u32> {
        InputVector::new(entries.to_vec())
    }

    #[test]
    fn hamming_of_identical_vectors_is_zero() {
        let a = v(&[1, 2, 3]);
        assert_eq!(hamming(&a, &a), 0);
    }

    #[test]
    fn hamming_counts_differences() {
        assert_eq!(hamming(&v(&[1, 2, 3]), &v(&[3, 2, 1])), 2);
        assert_eq!(hamming(&v(&[1, 1]), &v(&[2, 2])), 2);
    }

    #[test]
    fn hamming_is_symmetric() {
        let a = v(&[1, 5, 5, 2]);
        let b = v(&[1, 4, 5, 3]);
        assert_eq!(hamming(&a, &b), hamming(&b, &a));
    }

    #[test]
    #[should_panic(expected = "different systems")]
    fn hamming_rejects_length_mismatch() {
        let _ = hamming(&v(&[1]), &v(&[1, 2]));
    }

    #[test]
    fn generalized_on_two_vectors_is_hamming() {
        let a = v(&[1, 2, 3, 4]);
        let b = v(&[1, 9, 3, 8]);
        assert_eq!(generalized(&[&a, &b]), hamming(&a, &b));
    }

    #[test]
    fn generalized_on_singleton_or_empty_is_zero() {
        let a = v(&[1, 2]);
        assert_eq!(generalized(&[&a]), 0);
        assert_eq!(generalized::<u32>(&[]), 0);
    }

    #[test]
    fn generalized_matches_paper_example() {
        // d_G((a,a,e,b,b), (a,a,e,c,c), (a,f,e,b,c)) = 3
        let i1 = InputVector::new(vec!['a', 'a', 'e', 'b', 'b']);
        let i2 = InputVector::new(vec!['a', 'a', 'e', 'c', 'c']);
        let i3 = InputVector::new(vec!['a', 'f', 'e', 'b', 'c']);
        assert_eq!(generalized(&[&i1, &i2, &i3]), 3);
    }

    #[test]
    fn generalized_is_monotone_in_the_set() {
        // Adding a vector can only grow the number of contested positions.
        let i1 = v(&[1, 1, 1, 1]);
        let i2 = v(&[1, 1, 2, 2]);
        let i3 = v(&[9, 1, 2, 2]);
        let d12 = generalized(&[&i1, &i2]);
        let d123 = generalized(&[&i1, &i2, &i3]);
        assert!(d123 >= d12);
        assert_eq!(d12, 2);
        assert_eq!(d123, 3);
    }

    #[test]
    fn intersecting_vector_has_n_minus_dg_entries() {
        let i1 = v(&[1, 2, 3, 4]);
        let i2 = v(&[1, 9, 3, 8]);
        let inter = intersecting_vector(&[&i1, &i2]);
        let dg = generalized(&[&i1, &i2]);
        assert_eq!(inter.len() - inter.count_bottom(), i1.len() - dg);
    }

    #[test]
    fn intersecting_vector_of_singleton_is_full() {
        let i = v(&[4, 5, 6]);
        let inter = intersecting_vector(&[&i]);
        assert_eq!(inter.to_vector(), Some(i));
    }

    #[test]
    fn intersecting_vector_is_contained_in_every_vector() {
        let i1 = v(&[1, 2, 3, 4, 5]);
        let i2 = v(&[1, 0, 3, 0, 5]);
        let i3 = v(&[1, 2, 3, 0, 5]);
        let inter = intersecting_vector(&[&i1, &i2, &i3]);
        for i in [&i1, &i2, &i3] {
            assert!(inter.is_contained_in_vector(i));
        }
    }

    #[test]
    #[should_panic(expected = "empty set is undefined")]
    fn intersecting_vector_rejects_empty_input() {
        let _ = intersecting_vector::<u32>(&[]);
    }
}
