//! Criterion benches for the protocols: end-to-end [`Scenario`] runs of
//! the Figure 2 algorithm vs the baselines on the simulator, scaling with
//! `n`, plus the asynchronous algorithm, the threaded executor, and the
//! `broadcast` group tracking the zero-copy message fan-out on a
//! heavy-message flood.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use setagree_bench::{in_condition_input, out_of_condition_input, spread_input};
use setagree_conditions::MaxCondition;
use setagree_core::{
    ConditionBasedConfig, DenseFlood, Executor, ProtocolSpec, Scenario, ScenarioSuite,
};
use setagree_runtime::run_threaded;
use setagree_sync::{run_protocol, FailurePattern, Step, SyncProtocol};
use setagree_types::{DenseVector, InputVector, ProcessId, ValueTable, View};

fn config_for(n: usize) -> ConditionBasedConfig {
    // t ≈ n/2, k = 2, d = t − 2, ℓ = 2 — a representative operating point.
    let t = n / 2;
    ConditionBasedConfig::builder(n, t, 2)
        .condition_degree(t - 2)
        .ell(2)
        .build()
        .expect("valid for n ≥ 8")
}

fn bench_condition_based(c: &mut Criterion) {
    let mut group = c.benchmark_group("condition_based_run");
    let mut rng = SmallRng::seed_from_u64(7);
    for n in [8usize, 16, 32, 64] {
        let config = config_for(n);
        let oracle = MaxCondition::new(config.legality());
        let inside = Scenario::condition_based(config, oracle)
            .input(in_condition_input(n, config.legality(), &mut rng))
            .pattern(FailurePattern::none(n));
        let outside = Scenario::condition_based(config, oracle)
            .input(out_of_condition_input(n, config.legality()))
            .pattern(FailurePattern::none(n));
        group.bench_with_input(BenchmarkId::new("in_condition", n), &n, |b, _| {
            b.iter(|| inside.run().unwrap());
        });
        group.bench_with_input(BenchmarkId::new("out_of_condition", n), &n, |b, _| {
            b.iter(|| outside.run().unwrap());
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_run");
    for n in [8usize, 16, 32, 64] {
        let t = n / 2;
        let floodset = Scenario::flood_set(n, t, 2).input(spread_input(n));
        let early = Scenario::early_deciding(n, t, 2).input(spread_input(n));
        group.bench_with_input(BenchmarkId::new("floodset", n), &n, |b, _| {
            b.iter(|| floodset.run().unwrap());
        });
        group.bench_with_input(BenchmarkId::new("early_deciding", n), &n, |b, _| {
            b.iter(|| early.run().unwrap());
        });
    }
    group.finish();
}

fn bench_async(c: &mut Criterion) {
    let mut group = c.benchmark_group("async_run");
    let mut rng = SmallRng::seed_from_u64(11);
    for n in [8usize, 16, 32] {
        let params = setagree_conditions::LegalityParams::new(2, 2).unwrap();
        let oracle = MaxCondition::new(params);
        let scenario = Scenario::async_set_agreement(n, params, oracle)
            .input(in_condition_input(n, params, &mut rng));
        let shared = scenario
            .clone()
            .executor(Executor::AsyncSharedMemory { seed: 3 });
        let message = scenario.executor(Executor::AsyncMessagePassing { seed: 3 });
        group.bench_with_input(BenchmarkId::new("shared_memory", n), &n, |b, _| {
            b.iter(|| shared.run().unwrap());
        });
        group.bench_with_input(BenchmarkId::new("message_passing", n), &n, |b, _| {
            b.iter(|| message.run().unwrap());
        });
    }
    group.finish();
}

fn bench_early_condition(c: &mut Criterion) {
    let mut group = c.benchmark_group("early_condition_run");
    for n in [8usize, 16, 32] {
        let config = config_for(n);
        let oracle = MaxCondition::new(config.legality());
        let scenario = Scenario::early_condition_based(config, oracle)
            .input(out_of_condition_input(n, config.legality()))
            .pattern(FailurePattern::none(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| scenario.run().unwrap());
        });
    }
    group.finish();
}

fn bench_executors(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor");
    let n = 16;
    let t = 8;
    let simulator = Scenario::flood_set(n, t, 2).input(spread_input(n));
    let threaded = Scenario::flood_set(n, t, 2)
        .input(spread_input(n))
        .executor(Executor::Threaded);
    group.bench_function("simulator_floodset", |b| {
        b.iter(|| simulator.run().unwrap());
    });
    group.bench_function("threaded_floodset", |b| {
        b.iter(|| threaded.run().unwrap());
    });
    group.finish();
}

/// A flood-style protocol with the paper's heavy message shape: the full
/// `View<u32>` snapshot, re-broadcast and merged in place every round.
/// Each round is n broadcasts fanned out to n recipients — exactly the
/// O(n²) delivery pattern whose per-recipient deep clones the zero-copy
/// engines eliminated.
#[derive(Debug)]
struct ViewFlood {
    rounds: usize,
    view: View<u32>,
}

impl ViewFlood {
    fn system(n: usize, rounds: usize) -> Vec<ViewFlood> {
        (0..n)
            .map(|i| {
                let mut view = View::all_bottom(n);
                view.set(ProcessId::new(i), i as u32 + 1);
                ViewFlood { rounds, view }
            })
            .collect()
    }
}

impl SyncProtocol for ViewFlood {
    type Msg = View<u32>;
    type Output = u32;

    fn message(&mut self, _round: usize) -> View<u32> {
        self.view.clone()
    }

    fn receive(&mut self, _round: usize, _from: ProcessId, msg: &View<u32>) {
        self.view.merge_from(msg);
    }

    fn compute(&mut self, round: usize) -> Step<u32> {
        if round >= self.rounds {
            // The per-round check on the clone-free distinct count.
            Step::Decide(self.view.distinct_count() as u32)
        } else {
            Step::Continue
        }
    }
}

/// The interned inputs for an `n`-process dense flood with the same
/// value shape as [`ViewFlood::system`]: process `i` proposes `i + 1`.
fn dense_inputs(n: usize) -> DenseVector {
    let vector = InputVector::new((1..=n as u32).collect::<Vec<_>>());
    ValueTable::from_vector(&vector).intern_vector(&vector)
}

/// The broadcast hot path at large n: one owned view per sender per
/// round, delivered n times by reference (simulator) or behind one `Arc`
/// (threaded). The `simulator`/`threaded` rows run the generic
/// `View<u32>` flood (the pre-dense representation, kept as the
/// baseline); the `dense`/`dense_threaded` rows run [`DenseFlood`] on
/// the interned-id engine, whose word-level union merges are what make
/// the n ≥ 256 rows feasible at all.
fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast");
    const ROUNDS: usize = 3;
    for n in [16usize, 64, 128] {
        let pattern = FailurePattern::none(n);
        group.bench_with_input(BenchmarkId::new("simulator", n), &n, |b, &n| {
            b.iter(|| run_protocol(ViewFlood::system(n, ROUNDS), &pattern, ROUNDS + 1).unwrap());
        });
    }
    for n in [16usize, 64, 128, 256, 512, 1024] {
        let pattern = FailurePattern::none(n);
        let inputs = dense_inputs(n);
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, _| {
            b.iter(|| {
                run_protocol(DenseFlood::system(&inputs, ROUNDS), &pattern, ROUNDS + 1).unwrap()
            });
        });
    }
    // The threaded executor runs n pooled OS threads per run; keep it to
    // the mid sizes so the group stays runnable on small machines.
    for n in [16usize, 64] {
        let pattern = FailurePattern::none(n);
        group.bench_with_input(BenchmarkId::new("threaded", n), &n, |b, &n| {
            b.iter(|| run_threaded(ViewFlood::system(n, ROUNDS), &pattern, ROUNDS + 1).unwrap());
        });
        let inputs = dense_inputs(n);
        group.bench_with_input(BenchmarkId::new("dense_threaded", n), &n, |b, _| {
            b.iter(|| {
                run_threaded(DenseFlood::system(&inputs, ROUNDS), &pattern, ROUNDS + 1).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_suite_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("suite_batch");
    let mut rng = SmallRng::seed_from_u64(13);
    for n in [16usize, 32] {
        let config = config_for(n);
        let t = n / 2;
        let oracle = MaxCondition::new(config.legality());
        // Identical workload in both variants: only the scheduling differs.
        let inputs: Vec<_> = (0..8)
            .map(|_| in_condition_input(n, config.legality(), &mut rng))
            .collect();
        let build = || {
            ScenarioSuite::new()
                .spec(ProtocolSpec::condition_based(config, oracle))
                .spec(ProtocolSpec::flood_set(n, t, 2))
                .spec(ProtocolSpec::early_deciding(n, t, 2))
                .inputs(inputs.clone())
                .pattern(FailurePattern::none(n))
                .pattern(FailurePattern::staircase(n, t, 2))
        };
        let suite = build();
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |b, _| {
            b.iter(|| suite.run());
        });
        let sequential = build().threads(1);
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| sequential.run());
        });
    }
    group.finish();
}

fn bench_suite_cache(c: &mut Criterion) {
    use std::sync::Arc;

    use setagree_core::SuiteCache;

    let mut group = c.benchmark_group("suite_cache");
    let mut rng = SmallRng::seed_from_u64(17);
    for n in [16usize, 32] {
        let config = config_for(n);
        let t = n / 2;
        let oracle = MaxCondition::new(config.legality());
        let inputs: Vec<_> = (0..8)
            .map(|_| in_condition_input(n, config.legality(), &mut rng))
            .collect();
        let build = || {
            ScenarioSuite::new()
                .spec(ProtocolSpec::condition_based(config, oracle))
                .spec(ProtocolSpec::flood_set(n, t, 2))
                .inputs(inputs.clone())
                .pattern(FailurePattern::none(n))
                .pattern(FailurePattern::staircase(n, t, 2))
        };
        // Cold: a fresh cache every iteration — full execution plus the
        // key hashing and insertion overhead the cache adds.
        group.bench_with_input(BenchmarkId::new("cold", n), &n, |b, _| {
            b.iter(|| {
                let cache = Arc::new(SuiteCache::new());
                build().cache(&cache).run()
            });
        });
        // Warm: one shared pre-filled cache — every cell served without
        // re-execution; the floor the cache buys on reruns.
        let warm = Arc::new(SuiteCache::new());
        let primed = build().cache(&warm);
        primed.run();
        group.bench_with_input(BenchmarkId::new("warm", n), &n, |b, _| {
            b.iter(|| primed.run());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_condition_based,
    bench_baselines,
    bench_async,
    bench_early_condition,
    bench_executors,
    bench_broadcast,
    bench_suite_batch,
    bench_suite_cache
);
criterion_main!(benches);
